//! Stage-by-stage visualization of the SPROUT optimizer (Fig. 8).
//!
//! ```text
//! cargo run -p sprout-examples --bin stages
//! ```
//!
//! Runs the pipeline manually — seed, growth, refinement — dumping an
//! SVG snapshot and the objective value after each stage, reproducing
//! the montage of Fig. 8 on the two-rail board.

use sprout_board::presets;
use sprout_core::current::{injection_pairs, node_current, PairPolicy};
use sprout_core::grow::grow_to_area;
use sprout_core::refine::smart_refine;
use sprout_core::seed::{seed_subgraph, SeedOptions};
use sprout_core::space::SpaceSpec;
use sprout_core::tile::{identify_terminals, space_to_graph, TileOptions};
use sprout_core::NodeId;
use sprout_examples::out_dir;
use sprout_render::SvgScene;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let board = presets::two_rail();
    let layer = presets::TWO_RAIL_ROUTE_LAYER;
    let (vdd1, net) = board.power_nets().next().expect("preset has rails");
    println!("reproducing Fig. 8 on {} / {}", board.name(), net.name);

    let spec = SpaceSpec::build(&board, vdd1, layer, &[])?;
    let graph = space_to_graph(&spec, TileOptions::square(0.5))?;
    let terminals = identify_terminals(&graph, &spec, vdd1)?;
    let pairs = injection_pairs(&terminals, PairPolicy::SourceToSinks, net.current_a);
    let protected: Vec<NodeId> = terminals.iter().flat_map(|t| t.covered.clone()).collect();
    let terminal_nodes: Vec<NodeId> = terminals.iter().map(|t| t.node).collect();

    let dir = out_dir();
    let snapshot = |name: &str, sub: &sprout_core::Subgraph| {
        let mut scene = SvgScene::new(&board, layer);
        scene.add_subgraph(&graph, sub, "#d95f02");
        let path = dir.join(format!("stage_{name}.svg"));
        std::fs::write(&path, scene.to_svg()).expect("write snapshot");
        path.display().to_string()
    };

    // (a/b) Seed subgraph — pairwise shortest paths + void filling.
    let mut sub = seed_subgraph(&graph, &terminals, vdd1, layer, SeedOptions::default())?;
    let r_seed = node_current(&graph, &sub, &pairs)?.resistance_sq();
    println!(
        "seed:    {:>4} tiles, {:.2} mm², R = {:.3} sq  → {}",
        sub.order(),
        sub.area_mm2(),
        r_seed,
        snapshot("a_seed", &sub)
    );

    // (c/d) SmartGrow to the budget.
    let budget = 25.0;
    let mid_budget = (sub.area_mm2() + budget) / 2.0;
    grow_to_area(&graph, &mut sub, &pairs, 20, mid_budget)?;
    let r_mid = node_current(&graph, &sub, &pairs)?.resistance_sq();
    println!(
        "grow ½:  {:>4} tiles, {:.2} mm², R = {:.3} sq  → {}",
        sub.order(),
        sub.area_mm2(),
        r_mid,
        snapshot("b_grow_mid", &sub)
    );
    grow_to_area(&graph, &mut sub, &pairs, 20, budget)?;
    let r_grown = node_current(&graph, &sub, &pairs)?.resistance_sq();
    println!(
        "grow:    {:>4} tiles, {:.2} mm², R = {:.3} sq  → {}",
        sub.order(),
        sub.area_mm2(),
        r_grown,
        snapshot("c_grown", &sub)
    );

    // (e/f) SmartRefine until the improvement stalls.
    let mut last = r_grown;
    for i in 0..6 {
        let out = smart_refine(&graph, &mut sub, &pairs, &protected, &terminal_nodes, 10)?;
        println!(
            "refine {}: moved {:>2}, R {:.3} → {:.3} sq",
            i + 1,
            out.moved,
            out.resistance_before_sq,
            out.resistance_after_sq
        );
        if (last - out.resistance_after_sq).abs() < 1e-4 * last {
            println!("negligible reduction — terminating as §II-E prescribes");
            break;
        }
        last = out.resistance_after_sq;
    }
    println!("final:   → {}", snapshot("d_refined", &sub));
    println!(
        "total reduction: {:.1} % of the seed resistance",
        (1.0 - last / r_seed) * 100.0
    );
    Ok(())
}
