//! Routing-as-a-service walkthrough: the fault-hardened job service.
//!
//! ```text
//! cargo run -p sprout-examples --bin serve_demo
//! ```
//!
//! Four acts, each exercising one robustness mechanism of
//! [`RoutingService`]:
//!
//! 1. **Happy path** — submit a sweep of jobs, watch them all complete.
//! 2. **Backpressure** — flood a tiny queue with no workers: equal
//!    priority saturates with a typed retry-after hint; a high-priority
//!    arrival sheds the newest lower-priority job instead.
//! 3. **Chaos** — a seeded fault plan panics and stalls workers; the
//!    service contains every panic and retries each job to a terminal
//!    state.
//! 4. **Crash recovery** — a job is killed mid-run (after its first
//!    wave's checkpoint), the service instance is dropped, and a second
//!    instance over the same data directory resumes the job from the
//!    checkpoint and finishes it.

use sprout_serve::chaos::ServeFaultPlan;
use sprout_serve::job::{JobSpec, Priority};
use sprout_serve::service::{RoutingService, ServiceConfig, SubmitError};
use std::time::Duration;

fn demo_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        router: sprout_examples::example_config(),
        ..ServiceConfig::default()
    }
}

fn main() {
    // ---- Act 1: the happy path -----------------------------------------
    println!("=== 1. happy path ===");
    let svc = RoutingService::start(demo_config()).expect("service starts");
    let mut ids = Vec::new();
    for k in 0..4 {
        let budget = 20.0 + (k % 3) as f64 * 2.0;
        ids.push(svc.submit(JobSpec::two_rail(budget)).expect("accepted"));
    }
    assert!(svc.wait_idle(Duration::from_secs(300)));
    svc.shutdown(true);
    for id in &ids {
        let snap = svc.status(*id).expect("known");
        println!(
            "job {id}: {} after {} attempt(s), {:.1} ms, {:.1} mm2",
            snap.state, snap.attempts, snap.run_ms, snap.area_mm2
        );
    }

    // ---- Act 2: backpressure -------------------------------------------
    println!("\n=== 2. backpressure ===");
    let svc = RoutingService::start(ServiceConfig {
        workers: 0, // nobody drains the queue: saturation on demand
        queue_capacity: 3,
        ..demo_config()
    })
    .expect("service starts");
    for _ in 0..3 {
        svc.submit(JobSpec::two_rail(20.0)).expect("accepted");
    }
    match svc.submit(JobSpec::two_rail(20.0)) {
        Err(SubmitError::Saturated { retry_after_ms }) => {
            println!("4th normal job rejected; retry after {retry_after_ms:.0} ms");
        }
        other => println!("unexpected: {other:?}"),
    }
    let mut vip = JobSpec::two_rail(20.0);
    vip.priority = Priority::High;
    let vip_id = svc.submit(vip).expect("high priority displaces");
    println!(
        "high-priority job {vip_id} admitted by shedding; shed count = {}",
        svc.metrics().shed
    );
    svc.shutdown(false);

    // ---- Act 3: chaos --------------------------------------------------
    println!("\n=== 3. chaos: panics and stalls ===");
    let svc = RoutingService::start(ServiceConfig {
        fault: Some(ServeFaultPlan {
            seed: 7,
            panic_rate: 0.5,
            kill_rate: 0.0,
            slow_rate: 0.3,
            slow_ms: 5,
        }),
        ..demo_config()
    })
    .expect("service starts");
    for _ in 0..6 {
        svc.submit(JobSpec::two_rail(20.0)).expect("accepted");
    }
    assert!(svc.wait_idle(Duration::from_secs(300)));
    svc.shutdown(true);
    let m = svc.metrics();
    println!(
        "6 jobs: {} completed, {} panics contained, {} retries, {} invariant violations",
        m.completed, m.worker_panics, m.retries, m.terminal_violations
    );

    // ---- Act 4: crash recovery -----------------------------------------
    println!("\n=== 4. crash recovery ===");
    let mut dir = std::env::temp_dir();
    dir.push(format!("sprout-serve-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let svc = RoutingService::start(ServiceConfig {
        workers: 1,
        data_dir: Some(dir.clone()),
        fault: Some(ServeFaultPlan {
            seed: 0,
            panic_rate: 0.0,
            kill_rate: 1.1, // every first attempt dies mid-job
            slow_rate: 0.0,
            slow_ms: 0,
        }),
        ..demo_config()
    })
    .expect("service starts");
    let id = svc.submit(JobSpec::two_rail(20.0)).expect("accepted");
    svc.wait_idle(Duration::from_secs(300));
    let snap = svc.status(id).expect("known");
    println!(
        "job {id} killed mid-run (state {}, killed={}): journal survives, no terminal record",
        snap.state, snap.killed
    );
    svc.shutdown(true);
    drop(svc);

    let svc = RoutingService::start(ServiceConfig {
        workers: 1,
        data_dir: Some(dir.clone()),
        ..demo_config()
    })
    .expect("restarted service");
    assert!(svc.wait_idle(Duration::from_secs(300)));
    svc.shutdown(true);
    let snap = svc.status(id).expect("recovered job");
    println!(
        "after restart: job {id} {} (recovered={}, {} rail(s) restored from checkpoint)",
        snap.state, snap.recovered, snap.resumed
    );
    let _ = std::fs::remove_dir_all(&dir);
}
