//! Two-rail case study: SPROUT vs the manual-style baseline (Table II).
//!
//! ```text
//! cargo run -p sprout-examples --bin two_rail
//! ```
//!
//! Routes both rails of the §III-A board with SPROUT and with the
//! regular-geometry baseline, extracts both layouts with the same
//! engine, and prints a Table II-shaped comparison.

use sprout_baseline::{ManualConfig, ManualRouter};
use sprout_board::presets;
use sprout_core::router::Router;
use sprout_examples::{example_config, out_dir};
use sprout_extract::ac::ac_impedance_25mhz;
use sprout_extract::network::RailNetwork;
use sprout_extract::resistance::dc_resistance;
use sprout_render::SvgScene;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let board = presets::two_rail();
    let layer = presets::TWO_RAIL_ROUTE_LAYER;
    let budgets = [22.0, 20.0];
    let router = Router::new(&board, example_config());
    let manual = ManualRouter::new(
        &board,
        ManualConfig {
            tile_pitch_mm: example_config().tile_pitch_mm,
            ..ManualConfig::default()
        },
    );

    println!("net      engine   area(mm²)   R_dc        L@25MHz");
    let mut scene = SvgScene::new(&board, layer);
    let mut claimed_sprout = Vec::new();
    let mut claimed_manual = Vec::new();
    for (k, (net_id, net)) in board.power_nets().enumerate() {
        let budget = budgets[k.min(budgets.len() - 1)];
        let sprout_route = router.route_net_with(net_id, layer, budget, &claimed_sprout, &[])?;
        let manual_route = manual.route_net_with(net_id, layer, budget, &claimed_manual)?;
        for (engine, route) in [("SPROUT", &sprout_route), ("manual", &manual_route)] {
            let network = RailNetwork::build(&board, route)?;
            let dc = dc_resistance(&network)?;
            let ac = ac_impedance_25mhz(&network)?;
            println!(
                "{:<8} {:<8} {:>8.1}   {:>7.2} mΩ  {:>7.1} pH",
                net.name,
                engine,
                route.shape.area_mm2(),
                dc.total_ohm * 1e3,
                ac.inductance_h * 1e12
            );
        }
        claimed_sprout.extend(sprout_route.shape.blocker_polygons());
        claimed_manual.extend(manual_route.shape.blocker_polygons());
        scene.add_route(format!("{} (SPROUT)", net.name), &sprout_route.shape);
    }
    let path = out_dir().join("two_rail.svg");
    std::fs::write(&path, scene.to_svg())?;
    println!("\nlayout (Fig. 9 style) written to {}", path.display());
    Ok(())
}
