//! Fault-injection walkthrough: the recovery subsystem in action.
//!
//! ```text
//! cargo run -p sprout-examples --bin faults
//! ```
//!
//! Routes the two-rail board under increasingly hostile deterministic
//! [`FaultPlan`]s — solver failures, NaN conductances, a degenerate
//! polygon, a stage timeout — and prints what each [`RecoveryPolicy`]
//! does about it: the shipped objective, the diagnostics trail, or the
//! typed error.

use sprout_board::presets;
use sprout_core::recovery::{FaultPlan, RecoveryConfig, RecoveryPolicy};
use sprout_core::router::Router;
use sprout_examples::example_config;

fn main() {
    let board = presets::two_rail();
    let layer = presets::TWO_RAIL_ROUTE_LAYER;
    let (net, _) = board.power_nets().next().expect("two_rail has power nets");

    let scenarios: [(&str, FaultPlan); 4] = [
        ("quiet (no faults)", FaultPlan::quiet(0)),
        (
            "flaky solver (30% failures)",
            FaultPlan {
                solver_failure_rate: 0.3,
                ..FaultPlan::quiet(7)
            },
        ),
        (
            "NaN conductances + degenerate polygon",
            FaultPlan {
                nan_conductance_rate: 0.005,
                degenerate_polygon: true,
                ..FaultPlan::quiet(3)
            },
        ),
        (
            "certain solver failure",
            FaultPlan {
                solver_failure_rate: 1.0,
                ..FaultPlan::quiet(11)
            },
        ),
    ];

    for (label, plan) in scenarios {
        println!("=== {label} ===");
        for policy in [
            RecoveryPolicy::BestSoFar,
            RecoveryPolicy::SkipStage,
            RecoveryPolicy::FailFast,
        ] {
            let mut config = example_config();
            config.recovery = RecoveryConfig {
                policy,
                fault: Some(plan),
                ..RecoveryConfig::default()
            };
            let router = Router::new(&board, config);
            match router.route_net(net, layer, 22.0) {
                Ok(r) => {
                    let d = &r.diagnostics;
                    println!(
                        "  {policy:<9?} ok: R = {:>9.4} sq, area {:>5.1} mm², \
                         {} fallback(s), {} sanitized edge-batch(es), \
                         {} skip/revert(s), {} overrun(s)",
                        r.final_resistance_sq,
                        r.shape.area_mm2(),
                        d.solver_fallbacks,
                        d.edges_sanitized,
                        d.stages_skipped,
                        d.budget_overruns,
                    );
                    for w in &d.warnings {
                        println!("            warn: {w}");
                    }
                }
                Err(e) => println!("  {policy:<9?} error: {e}"),
            }
        }
    }
}
