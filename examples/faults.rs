//! Fault-injection walkthrough: the recovery subsystem in action.
//!
//! ```text
//! cargo run -p sprout-examples --bin faults
//! ```
//!
//! Routes the two-rail board under increasingly hostile deterministic
//! [`FaultPlan`]s — solver failures, NaN conductances, a degenerate
//! polygon, a stage timeout — and prints what each [`RecoveryPolicy`]
//! does about it: the shipped objective, the diagnostics trail, or the
//! typed error. The final two sections move up a level to the job
//! supervisor: a worker panic contained to its rail, and a mid-run
//! kill followed by a checkpoint resume.

use sprout_board::presets;
use sprout_core::recovery::{FaultPlan, RecoveryConfig, RecoveryPolicy};
use sprout_core::router::Router;
use sprout_core::supervisor::{RailOutcome, Supervisor, SupervisorConfig};
use sprout_examples::example_config;

fn main() {
    let board = presets::two_rail();
    let layer = presets::TWO_RAIL_ROUTE_LAYER;
    let (net, _) = board.power_nets().next().expect("two_rail has power nets");

    let scenarios: [(&str, FaultPlan); 4] = [
        ("quiet (no faults)", FaultPlan::quiet(0)),
        (
            "flaky solver (30% failures)",
            FaultPlan {
                solver_failure_rate: 0.3,
                ..FaultPlan::quiet(7)
            },
        ),
        (
            "NaN conductances + degenerate polygon",
            FaultPlan {
                nan_conductance_rate: 0.005,
                degenerate_polygon: true,
                ..FaultPlan::quiet(3)
            },
        ),
        (
            "certain solver failure",
            FaultPlan {
                solver_failure_rate: 1.0,
                ..FaultPlan::quiet(11)
            },
        ),
    ];

    for (label, plan) in scenarios {
        println!("=== {label} ===");
        for policy in [
            RecoveryPolicy::BestSoFar,
            RecoveryPolicy::SkipStage,
            RecoveryPolicy::FailFast,
        ] {
            let mut config = example_config();
            config.recovery = RecoveryConfig {
                policy,
                fault: Some(plan),
                ..RecoveryConfig::default()
            };
            let router = Router::new(&board, config);
            match router.route_net(net, layer, 22.0) {
                Ok(r) => {
                    let d = &r.diagnostics;
                    println!(
                        "  {policy:<9?} ok: R = {:>9.4} sq, area {:>5.1} mm², \
                         {} fallback(s), {} sanitized edge-batch(es), \
                         {} skip/revert(s), {} overrun(s)",
                        r.final_resistance_sq,
                        r.shape.area_mm2(),
                        d.solver_fallbacks,
                        d.edges_sanitized,
                        d.stages_skipped,
                        d.budget_overruns,
                    );
                    for w in &d.warnings {
                        println!("            warn: {w}");
                    }
                }
                Err(e) => println!("  {policy:<9?} error: {e}"),
            }
        }
    }

    supervisor_panic_demo(&board);
    supervisor_resume_demo(&board);
}

/// Prints one line per rail of a [`sprout_core::supervisor::JobReport`].
fn print_rails(report: &sprout_core::supervisor::JobReport) {
    for rail in &report.rails {
        let verdict = match &rail.outcome {
            RailOutcome::Routed(results) => format!(
                "routed, R = {:.4} sq",
                results
                    .last()
                    .map(|r| r.final_resistance_sq)
                    .unwrap_or(f64::INFINITY)
            ),
            RailOutcome::Restored(r) => {
                format!(
                    "restored from checkpoint, R = {:.4} sq",
                    r.final_resistance_sq
                )
            }
            RailOutcome::Failed(e) => format!("failed: {e}"),
            RailOutcome::Skipped { reason } => format!("skipped: {reason}"),
        };
        println!(
            "    {:?} layer {} (wave {}, {} attempt(s)): {verdict}",
            rail.net, rail.layer, rail.wave, rail.attempts
        );
    }
    for w in &report.warnings {
        println!("    warn: {w}");
    }
}

/// One worker panics mid-route; the supervisor reports it as a typed
/// per-rail failure while the sibling rail completes untouched.
fn supervisor_panic_demo(board: &sprout_board::Board) {
    println!("=== supervisor: worker panic contained to its rail ===");
    println!("  (the panic printed below is injected; the supervisor catches it)");
    // Panic injection is a deterministic per-rail-index draw, so scan
    // for a seed that fells exactly the first rail.
    let plan = (0..10_000)
        .map(|seed| FaultPlan {
            worker_panic_rate: 0.5,
            ..FaultPlan::quiet(seed)
        })
        .find(|p| p.worker_panics(0) && !p.worker_panics(1))
        .expect("a seed splitting the rails");
    let mut config = example_config();
    config.recovery = RecoveryConfig {
        fault: Some(plan),
        ..RecoveryConfig::default()
    };
    let requests: Vec<_> = board
        .power_nets()
        .map(|(id, _)| (id, presets::TWO_RAIL_ROUTE_LAYER, 22.0))
        .collect();
    let report = Supervisor::new(board, config, SupervisorConfig::default()).run(&requests);
    print_rails(&report);
}

/// The job is killed right after wave 0's checkpoint lands; the rerun
/// restores the finished rail bit-identically and routes only the rest.
fn supervisor_resume_demo(board: &sprout_board::Board) {
    println!("=== supervisor: mid-run kill, then checkpoint resume ===");
    let checkpoint =
        std::env::temp_dir().join(format!("sprout-faults-demo-{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&checkpoint);
    let requests: Vec<_> = board
        .power_nets()
        .map(|(id, _)| (id, presets::TWO_RAIL_ROUTE_LAYER, 22.0))
        .collect();

    println!("  first run (killed after wave 0):");
    let killed = Supervisor::new(
        board,
        example_config(),
        SupervisorConfig {
            checkpoint: Some(checkpoint.clone()),
            kill_after_wave: Some(0),
            ..SupervisorConfig::sequential()
        },
    )
    .run(&requests);
    print_rails(&killed);

    println!("  resumed run:");
    let resumed = Supervisor::new(
        board,
        example_config(),
        SupervisorConfig {
            checkpoint: Some(checkpoint.clone()),
            ..SupervisorConfig::sequential()
        },
    )
    .run(&requests);
    print_rails(&resumed);
    println!(
        "  {} rail(s) restored without rerouting; job complete: {}",
        resumed.resumed,
        resumed.is_complete()
    );
    let _ = std::fs::remove_file(&checkpoint);
}
