//! Multilayer routing demo (Appendix, Fig. 13).
//!
//! ```text
//! cargo run -p sprout-examples --bin multilayer
//! ```
//!
//! Builds a board whose routing layer is split by a full-height wall,
//! shows that single-layer routing fails, then plans vias through a
//! second layer and routes each region.

use sprout_board::{Board, DesignRules, Element, ElementRole, Net, Stackup};
use sprout_core::multilayer::{plan_multilayer, route_multilayer, MultilayerConfig};
use sprout_core::router::{Router, RouterConfig};
use sprout_core::SproutError;
use sprout_examples::out_dir;
use sprout_geom::{Point, Polygon, Rect};
use sprout_render::SvgScene;

fn walled_board() -> Result<(Board, sprout_board::NetId), Box<dyn std::error::Error>> {
    let outline = Rect::new(Point::new(0.0, 0.0), Point::new(12.0, 8.0))?;
    let mut board = Board::new(
        "walled-demo",
        outline,
        Stackup::eight_layer(),
        DesignRules::default(),
    );
    let vdd = board.add_net(Net::power("VDD", 2.0, 1e9, 1.0)?);
    let pad = |c: Point| -> Result<Polygon, sprout_geom::GeomError> {
        Polygon::rectangle(
            Point::new(c.x - 0.25, c.y - 0.25),
            Point::new(c.x + 0.25, c.y + 0.25),
        )
    };
    board.add_element(Element::terminal(
        vdd,
        6,
        pad(Point::new(2.0, 4.0))?,
        ElementRole::Source,
    ))?;
    board.add_element(Element::terminal(
        vdd,
        6,
        pad(Point::new(10.0, 4.0))?,
        ElementRole::Sink,
    ))?;
    board.add_element(Element::blockage(
        6,
        Polygon::rectangle(Point::new(5.5, 0.0), Point::new(6.5, 8.0))?,
    ))?;
    Ok((board, vdd))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (board, vdd) = walled_board()?;
    let config = RouterConfig {
        tile_pitch_mm: 0.5,
        grow_iterations: 8,
        refine_iterations: 2,
        reheat: None,
        ..RouterConfig::default()
    };
    let router = Router::new(&board, config);

    // Single-layer routing cannot cross the wall (Fig. 5b situation).
    match router.route_net(vdd, 6, 15.0) {
        Err(SproutError::DisjointSpace { .. }) => {
            println!("single-layer routing on layer 7 fails: space is disjoint (expected)")
        }
        other => println!("unexpected single-layer outcome: {other:?}"),
    }

    // Multilayer: descend to layer 5 (index 4) and come back.
    let ml = MultilayerConfig::default();
    let plan = plan_multilayer(&board, vdd, &[4, 6], ml)?;
    println!("planned {} vias:", plan.vias.len());
    for v in &plan.vias {
        println!(
            "  via at ({:.2}, {:.2}) joining layers {} and {}",
            v.location.x,
            v.location.y,
            v.layers.0 + 1,
            v.layers.1 + 1
        );
    }

    let (_, results) = route_multilayer(&router, &board, vdd, &[4, 6], 10.0, ml)?;
    println!("routed {} shapes:", results.len());
    let dir = out_dir();
    for (k, r) in results.iter().enumerate() {
        println!(
            "  layer {}: {:.1} mm² over {} tiles (R = {:.3} sq)",
            r.layer + 1,
            r.shape.area_mm2(),
            r.subgraph.order(),
            r.final_resistance_sq
        );
        let mut scene = SvgScene::new(&board, r.layer);
        scene.add_route(format!("region {k}"), &r.shape);
        let path = dir.join(format!("multilayer_l{}_r{}.svg", r.layer + 1, k));
        std::fs::write(&path, scene.to_svg())?;
    }
    println!("snapshots written to {}", dir.display());
    Ok(())
}
