//! Shared helpers for the SPROUT examples.

use sprout_core::router::RouterConfig;
use std::path::PathBuf;

/// A router configuration tuned for interactive examples: coarse enough
/// to finish in seconds even in debug builds, fine enough to produce a
/// recognizable SPROUT shape.
pub fn example_config() -> RouterConfig {
    RouterConfig {
        tile_pitch_mm: 0.5,
        grow_iterations: 12,
        refine_iterations: 4,
        ..RouterConfig::default()
    }
}

/// Output directory for example artifacts (`target/examples`).
///
/// # Panics
///
/// Panics if the directory cannot be created.
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from("target/examples");
    std::fs::create_dir_all(&dir).expect("create target/examples");
    dir
}

/// Formats ohms as milliohms with two decimals.
pub fn fmt_mohm(ohm: f64) -> String {
    format!("{:.2} mΩ", ohm * 1e3)
}

/// Formats henrys as picohenrys with one decimal.
pub fn fmt_ph(h: f64) -> String {
    format!("{:.1} pH", h * 1e12)
}
