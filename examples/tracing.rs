//! Observability demo: span trees, JSONL traces, and metrics.
//!
//! ```text
//! cargo run -p sprout-examples --bin tracing
//! ```
//!
//! Routes one rail three times under the three bundled recorders:
//!
//! 1. [`StderrSink`] — live depth-indented span tree on stderr,
//! 2. [`JsonlSink`] — one JSON object per event, written to
//!    `target/examples/trace.jsonl` (query with `jq`),
//! 3. [`MemorySink`] — in-process capture, used here to print the
//!    stage order the router actually executed.
//!
//! Finally prints the global metric registry — counters accumulate
//! across all three runs because metrics, unlike spans, are always on.

use sprout_board::presets;
use sprout_core::router::{Router, RouterConfig};
use sprout_core::RunReport;
use sprout_examples::out_dir;
use sprout_telemetry::sinks::{JsonlSink, MemorySink, StderrSink};
use sprout_telemetry::{metrics, Event, Recorder, RecorderScope};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let board = presets::two_rail();
    let (vdd1, _) = board.power_nets().next().expect("preset has rails");
    let layer = presets::TWO_RAIL_ROUTE_LAYER;
    let config = RouterConfig {
        tile_pitch_mm: 0.6,
        grow_iterations: 8,
        refine_iterations: 2,
        ..RouterConfig::default()
    };
    let router = Router::new(&board, config);

    // 1. Live span tree on stderr.
    println!("--- stderr span tree ---");
    {
        let _scope = RecorderScope::install(Arc::new(StderrSink::new()));
        router.route_net(vdd1, layer, 22.0)?;
    }

    // 2. JSONL trace file.
    let path = out_dir().join("trace.jsonl");
    let sink = Arc::new(JsonlSink::new(std::fs::File::create(&path)?));
    let result = {
        let _scope = RecorderScope::install(sink.clone());
        router.route_net(vdd1, layer, 22.0)?
    };
    sink.flush();
    println!("--- JSONL trace written to {} ---", path.display());
    println!(
        "    try: jq -r 'select(.ev==\"span_end\") | \"\\(.name) \\(.elapsed_ns/1e6)ms\"' {}",
        path.display()
    );

    // The same run condensed into a machine-readable report line.
    let report = RunReport::from_results("tracing example", std::slice::from_ref(&result));
    println!("--- RunReport ---");
    println!("{}", report.to_json());

    // 3. In-memory capture: the executed stage order.
    let memory = Arc::new(MemorySink::new());
    {
        let _scope = RecorderScope::install(memory.clone());
        router.route_net(vdd1, layer, 22.0)?;
    }
    let stages: Vec<&str> = memory
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::SpanStart { name, depth: 1, .. } => Some(*name),
            _ => None,
        })
        .collect();
    println!("--- stage spans under the route span: {stages:?} ---");

    // Metrics are always on; the registry now holds all three runs.
    let snap = metrics::global().snapshot();
    println!("--- global counters ---");
    for (name, value) in &snap.counters {
        println!("{name:<28} {value}");
    }
    Ok(())
}
