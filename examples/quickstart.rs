//! Quickstart: synthesize one power rail and extract its impedance.
//!
//! ```text
//! cargo run -p sprout-examples --bin quickstart
//! ```
//!
//! Walks the full SPROUT flow of Fig. 2: board in, prototype layout out,
//! parasitics extracted, SVG written to `target/examples/quickstart.svg`.

use sprout_board::presets;
use sprout_core::drc::check_route;
use sprout_core::router::Router;
use sprout_examples::{example_config, fmt_mohm, fmt_ph, out_dir};
use sprout_extract::ac::ac_impedance_25mhz;
use sprout_extract::network::RailNetwork;
use sprout_extract::resistance::dc_resistance;
use sprout_render::SvgScene;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The board: the paper's two-rail wireless application (§III-A).
    let board = presets::two_rail();
    let layer = presets::TWO_RAIL_ROUTE_LAYER;
    let (vdd1, net) = board.power_nets().next().expect("preset has rails");
    println!(
        "board: {} ({} layers)",
        board.name(),
        board.stackup().layer_count()
    );
    println!(
        "routing {} on layer {} (rail current {} A)",
        net.name,
        layer + 1,
        net.current_a
    );

    // 2. Synthesize the power shape under a 25 mm² metal budget.
    let router = Router::new(&board, example_config());
    let result = router.route_net(vdd1, layer, 25.0)?;
    println!(
        "synthesized {:.1} mm² of copper over {} tiles in {:.0} ms ({} linear solves)",
        result.shape.area_mm2(),
        result.subgraph.order(),
        result.timings.total_ms(),
        result.timings.solves,
    );
    println!(
        "objective fell {:.3} → {:.3} squares over {} optimizer steps",
        result
            .resistance_history_sq
            .first()
            .copied()
            .unwrap_or(f64::NAN),
        result.final_resistance_sq,
        result.resistance_history_sq.len(),
    );

    // 3. Design-rule check.
    let violations = check_route(&board, vdd1, layer, &result.shape, &[])?;
    println!("DRC: {} violations", violations.len());

    // 4. Extract parasitics the way the paper's Tables II/III do.
    let network = RailNetwork::build(&board, &result)?;
    let dc = dc_resistance(&network)?;
    let ac = ac_impedance_25mhz(&network)?;
    println!("DC resistance: {}", fmt_mohm(dc.total_ohm));
    println!("loop inductance @ 25 MHz: {}", fmt_ph(ac.inductance_h));

    // 5. Render.
    let mut scene = SvgScene::new(&board, layer);
    scene.add_route(net.name.clone(), &result.shape);
    let path = out_dir().join("quickstart.svg");
    std::fs::write(&path, scene.to_svg())?;
    println!("layout written to {}", path.display());
    Ok(())
}
