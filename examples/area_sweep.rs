//! Area/impedance trade-off exploration (a fast cut of §III-C/Fig. 12).
//!
//! ```text
//! cargo run -p sprout-examples --bin area_sweep
//! ```
//!
//! Sweeps the metal-area budget of one rail and prints resistance,
//! inductance, minimum load voltage, and FinFET delay at each point —
//! the four panels of Fig. 12. (The full three-rail reproduction lives
//! in `cargo run -p sprout-bench --release --bin fig12`.)

use sprout_board::presets;
use sprout_core::router::Router;
use sprout_examples::example_config;
use sprout_extract::ac::ac_impedance_25mhz;
use sprout_extract::delay::FinFetModel;
use sprout_extract::network::RailNetwork;
use sprout_extract::pdn::RailPdn;
use sprout_extract::resistance::dc_resistance;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let board = presets::two_rail();
    let layer = presets::TWO_RAIL_ROUTE_LAYER;
    let (vdd1, net) = board.power_nets().next().expect("preset has rails");
    let router = Router::new(&board, example_config());
    let finfet = FinFetModel::paper_32nm();

    println!("area(mm²)  R_dc(mΩ)  L(pH)   Vmin(V)  delay(rel)");
    for budget in [18.0, 22.0, 26.0, 30.0, 34.0] {
        let route = router.route_net(vdd1, layer, budget)?;
        let network = RailNetwork::build(&board, &route)?;
        let dc = dc_resistance(&network)?;
        let ac = ac_impedance_25mhz(&network)?;
        let pdn = RailPdn {
            supply_v: net.supply_v,
            resistance_ohm: dc.total_ohm,
            inductance_h: ac.inductance_h,
            decaps: board.decaps_for(vdd1).cloned().collect(),
            load_a: net.current_a,
            slew_a_per_s: net.slew_a_per_s,
        };
        let droop = pdn.simulate_droop()?;
        let delay = finfet.relative_delay(droop.v_min.max(finfet.vth_v + 0.05));
        println!(
            "{:>8.1}  {:>8.2}  {:>6.1}  {:>7.4}  {:>9.4}",
            route.shape.area_mm2(),
            dc.total_ohm * 1e3,
            ac.inductance_h * 1e12,
            droop.v_min,
            delay
        );
    }
    println!("\nexpected shape (Fig. 12): R and L fall with area at a diminishing rate;");
    println!("V_min rises; relative delay falls.");
    Ok(())
}
