//! Full PDN sign-off report for a board file.
//!
//! ```text
//! cargo run -p sprout-examples --bin pdn_report [-- path/to/board.txt]
//! ```
//!
//! The downstream-user workflow: import a board from the plain-text
//! format, synthesize every rail, and produce the complete report the
//! paper's Fig. 2 loop evaluates — DC resistance, impedance profile
//! against a target mask, current density, droop, delay — plus DXF and
//! SVG handoff files.

use sprout_board::io::parse_board;
use sprout_core::drc::check_route;
use sprout_core::router::Router;
use sprout_examples::{example_config, out_dir};
use sprout_extract::ac::{ac_impedance_25mhz, impedance_profile};
use sprout_extract::delay::FinFetModel;
use sprout_extract::density::current_density;
use sprout_extract::network::RailNetwork;
use sprout_extract::pdn::RailPdn;
use sprout_extract::resistance::dc_resistance;
use sprout_render::dxf::DxfDocument;
use sprout_render::SvgScene;

/// A self-contained demo board in the text interchange format.
const DEMO_BOARD: &str = "\
# pdn_report demo: one 3 A rail with a blockage and a decap
board report-demo 18 10
stackup eight
rules 0.1 0.1 0.2 20
net power VDD 3.0 6e7 1.0
net ground GND
source VDD 7 1.5 5.0 0.45
sink VDD 7 15.0 4.0 0.4
sink VDD 7 15.8 4.0 0.4
sink VDD 7 15.0 4.8 0.4
sink VDD 7 15.8 4.8 0.4
decappad VDD 7 11.0 7.0 0.4
obstacle GND 7 8.0 2.5 0.45
blockage 7 7.0 4.5 9.0 6.5
decap VDD 8 11.0 7.0 1e-5 5e-3 4e-10
";

/// The routing layer of the demo board (0-based).
const LAYER: usize = 6;
/// Flat target-impedance mask for the demo rail (Ω).
const TARGET_OHM: f64 = 0.35;
/// Copper line-density limit (A/mm) for the demo rules.
const DENSITY_LIMIT: f64 = 8.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => DEMO_BOARD.to_owned(),
    };
    let board = parse_board(&text)?;
    board.validate()?;
    println!(
        "board `{}`: {} power rails",
        board.name(),
        board.power_nets().count()
    );

    let config = example_config();
    let router = Router::new(&board, config);
    let finfet = FinFetModel::paper_32nm();
    let mut dxf = DxfDocument::new();
    let mut scene = SvgScene::new(&board, LAYER);
    let mut claimed = Vec::new();

    for (net_id, net) in board.power_nets() {
        println!(
            "\n=== rail {} ({} A @ {:.0} A/µs) ===",
            net.name,
            net.current_a,
            net.slew_a_per_s / 1e6
        );
        let route = router.route_net_with(net_id, LAYER, 20.0, &claimed, &[])?;
        println!(
            "  synthesized {:.1} mm² over {} tiles",
            route.shape.area_mm2(),
            route.subgraph.order()
        );

        let drc = check_route(&board, net_id, LAYER, &route.shape, &claimed)?;
        println!("  DRC: {} violations", drc.len());

        let network = RailNetwork::build(&board, &route)?;
        let dc = dc_resistance(&network)?;
        let ac = ac_impedance_25mhz(&network)?;
        println!(
            "  R_dc = {:.2} mΩ, L@25MHz = {:.0} pH",
            dc.total_ohm * 1e3,
            ac.inductance_h * 1e12
        );

        // Impedance profile vs target mask (Fig. 1's pass/fail check).
        let profile = impedance_profile(&network, 1e5, 1e9, 41)?;
        let (f_peak, z_peak) = profile.peak();
        let violations = profile.mask_violations(TARGET_OHM);
        println!(
            "  Z(f): peak {:.3} Ω at {:.1} MHz; mask {:.2} Ω {}",
            z_peak,
            f_peak / 1e6,
            TARGET_OHM,
            if violations.is_empty() {
                "met everywhere".to_owned()
            } else {
                format!("violated above {:.1} MHz", violations[0] / 1e6)
            }
        );

        // Current density (Table I's power-routing constraint).
        let density = current_density(
            &network,
            net.current_a,
            router.config().tile_pitch_mm,
            DENSITY_LIMIT,
        )?;
        println!(
            "  current density: peak {:.2} A/mm (limit {DENSITY_LIMIT} A/mm, {} hot branches), dissipation {:.1} mW",
            density.max_density_a_per_mm,
            density.violations.len(),
            density.dissipation_w * 1e3
        );

        // Droop + delay.
        let pdn = RailPdn {
            supply_v: net.supply_v,
            resistance_ohm: dc.total_ohm,
            inductance_h: ac.inductance_h,
            decaps: board.decaps_for(net_id).cloned().collect(),
            load_a: net.current_a,
            slew_a_per_s: net.slew_a_per_s,
        };
        let droop = pdn.simulate_droop()?;
        println!(
            "  V_min = {:.4} V → relative delay {:.4}",
            droop.v_min,
            finfet.relative_delay(droop.v_min.max(finfet.vth_v + 0.05))
        );

        dxf.add_shape(&format!("{}_L{}", net.name, LAYER + 1), &route.shape);
        scene.add_route(net.name.clone(), &route.shape);
        claimed.extend(route.shape.blocker_polygons());
    }

    let dir = out_dir();
    dxf.write_to(dir.join("pdn_report.dxf"))?;
    std::fs::write(dir.join("pdn_report.svg"), scene.to_svg())?;
    println!("\nhandoff files: {}/pdn_report.{{dxf,svg}}", dir.display());
    Ok(())
}
