//! Fleet-mode walkthrough: multi-process sharded routing with worker
//! supervision, leases, and kill-resilient work redistribution.
//!
//! ```text
//! cargo build -p sprout-serve --bins   # the demo spawns real workers
//! cargo run -p sprout-examples --bin fleet_demo
//! ```
//!
//! Three acts, each exercising one robustness mechanism of
//! [`FleetCoordinator`]:
//!
//! 1. **Happy path** — jobs sharded across two worker processes, all
//!    complete, heartbeats keep everyone honest.
//! 2. **Kill chaos** — every job's first attempt `kill -9`s its own
//!    worker right after the wave-0 checkpoint; the coordinator expires
//!    the lease, respawns a worker, and the retry *resumes from the
//!    checkpoint* instead of re-routing.
//! 3. **Coordinator crash + restart** — the coordinator itself dies
//!    abruptly mid-flight; a second coordinator over the same data
//!    directory replays the journal and finishes every job exactly
//!    once.

use sprout_serve::chaos::FleetFaultPlan;
use sprout_serve::fleet::{FleetConfig, FleetCoordinator};
use sprout_serve::job::JobSpec;
use std::path::PathBuf;
use std::time::Duration;

/// The worker binary next to this example's own executable — built by
/// `cargo build -p sprout-serve --bins`.
fn worker_path() -> PathBuf {
    let mut p = std::env::current_exe().expect("current exe");
    p.pop();
    p.push("sprout_fleet_worker");
    if !p.exists() {
        eprintln!(
            "fleet_demo: worker binary missing at {}\n\
             build it first: cargo build -p sprout-serve --bins",
            p.display()
        );
        std::process::exit(2);
    }
    p
}

fn demo_config(name: &str) -> FleetConfig {
    let mut dir = std::env::temp_dir();
    dir.push(format!("sprout-fleet-demo-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    FleetConfig {
        workers: 2,
        worker_cmd: Some(worker_path()),
        worker_args: vec!["--router".into(), "fast".into()],
        data_dir: Some(dir),
        ..FleetConfig::default()
    }
}

fn submit_sweep(fleet: &FleetCoordinator, jobs: usize) -> Vec<u64> {
    (0..jobs)
        .map(|k| {
            let budget = 20.0 + (k % 3) as f64 * 2.0;
            fleet.submit(JobSpec::two_rail(budget)).expect("accepted")
        })
        .collect()
}

fn main() {
    // ---- Act 1: the happy path -----------------------------------------
    println!("=== 1. happy path: jobs sharded across processes ===");
    let fleet = FleetCoordinator::start(demo_config("happy")).expect("fleet starts");
    let ids = submit_sweep(&fleet, 4);
    assert!(fleet.wait_idle(Duration::from_secs(300)));
    for id in &ids {
        let snap = fleet.status(*id).expect("known");
        println!(
            "job {id}: {} after {} attempt(s), {:.1} ms, {:.1} mm2",
            snap.state, snap.attempts, snap.run_ms, snap.area_mm2
        );
    }
    let m = fleet.metrics();
    println!(
        "workers live {} — every job routed in a worker process, zero faults",
        m.workers_live
    );
    fleet.drain(Duration::from_secs(30));
    drop(fleet);

    // ---- Act 2: kill chaos ---------------------------------------------
    println!("\n=== 2. kill chaos: every first attempt dies mid-run ===");
    let mut config = demo_config("chaos");
    config.max_worker_restarts = 12;
    config.fault = Some(FleetFaultPlan {
        seed: 7,
        kill_rate: 1.0, // attempt 0 always killed, right after wave 0's checkpoint
        stall_rate: 0.0,
        stall_ms: 0,
        blackout_rate: 0.0,
        blackout_ms: 0,
    });
    let fleet = FleetCoordinator::start(config).expect("fleet starts");
    let ids = submit_sweep(&fleet, 4);
    assert!(fleet.wait_idle(Duration::from_secs(300)));
    for id in &ids {
        let snap = fleet.status(*id).expect("known");
        println!(
            "job {id}: {} — {} of {} rails restored from the checkpoint on retry",
            snap.state, snap.resumed, snap.rails_total
        );
    }
    let m = fleet.metrics();
    println!(
        "workers dead {} restarts {} redispatches {} — and still exactly one \
         terminal state per job (violations: {})",
        m.workers_dead, m.worker_restarts, m.redispatches, m.terminal_violations
    );
    fleet.drain(Duration::from_secs(30));
    drop(fleet);

    // ---- Act 3: coordinator crash + restart ----------------------------
    println!("\n=== 3. coordinator crash: journal replay finishes the work ===");
    let config = demo_config("restart");
    let fleet = FleetCoordinator::start(config.clone()).expect("fleet starts");
    let ids = submit_sweep(&fleet, 4);
    std::thread::sleep(Duration::from_millis(60));
    fleet.shutdown_abrupt(); // SIGKILL the workers, finalize nothing
    drop(fleet);
    println!("coordinator died with work in flight…");

    let fleet = FleetCoordinator::start(config).expect("fleet restarts");
    let m = fleet.metrics();
    println!(
        "…restart re-admitted {} unfinished job(s) from the journal",
        m.recovered
    );
    assert!(fleet.wait_idle(Duration::from_secs(300)));
    for id in &ids {
        if let Some(snap) = fleet.status(*id) {
            println!(
                "job {id}: {} (terminal transitions: {})",
                snap.state, snap.terminal_transitions
            );
        }
    }
    assert_eq!(fleet.metrics().terminal_violations, 0);
    fleet.drain(Duration::from_secs(30));
    println!("\nevery accepted job reached exactly one terminal state — fleet contract held");
}
