//! Fleet coordinator: sharding jobs across worker *processes* with
//! leases, heartbeats, and kill-resilient redistribution.
//!
//! [`RoutingService`](crate::service::RoutingService) survives panicked
//! threads; [`FleetCoordinator`] survives lost processes. It spawns N
//! `sprout_fleet_worker` children speaking the newline-delimited JSON
//! protocol of [`crate::proto`] over stdin/stdout and enforces one
//! invariant under any fault schedule: **every accepted job reaches
//! exactly one terminal state**.
//!
//! The machinery, layer by layer:
//!
//! * **Leases** — a job is dispatched under a fresh lease id. Only a
//!   `done` frame carrying the *current* lease finalizes the job; a
//!   slow-then-revived worker reporting under an expired lease is
//!   counted in [`FleetMetrics::stale_finalizes`] and ignored.
//! * **Heartbeats** — workers beat on a timer from a dedicated thread.
//!   A worker silent past [`FleetConfig::heartbeat_timeout_ms`] is
//!   declared dead: its lease expires, its job re-enters the queue with
//!   the attempt bumped and a seeded-jitter [`BackoffConfig`] delay,
//!   and the next healthy worker resumes it *from its last completed
//!   wave* — the supervisor checkpoint in the shared data directory is
//!   the cross-process handoff.
//! * **Idempotent finalize** — terminal records are appended to
//!   `fleet.journal` keyed on `(job id, spec fingerprint)`; replay is
//!   first-wins ([`replay_journal`]), so duplicate or interleaved
//!   terminal records — the revived-worker case — collapse to exactly
//!   one terminal state, across coordinator restarts too.
//! * **Supervision** — dead workers are respawned (bounded by
//!   [`FleetConfig::max_worker_restarts`]); when every worker is dead
//!   and the restart budget is spent, queued jobs fail with a typed
//!   error instead of waiting forever.
//! * **Graceful drain** — [`FleetCoordinator::drain`] stops leasing,
//!   waits for in-flight leases to finish, sends `drain` frames, and
//!   reaps the children. Jobs still queued stay journaled for the next
//!   coordinator — exactly what a SIGTERM'd deployment wants.

use crate::backoff::BackoffConfig;
use crate::chaos::FleetFaultPlan;
use crate::events::{EventBus, EventKind};
use crate::job::{JobSnapshot, JobSpec, JobState, Priority};
use crate::proto::{spec_fingerprint, CoordFrame, DoneFrame, WorkerFrame, MAX_FRAME_BYTES};
use crate::queue::{Admitted, BoundedQueue, Popped, QueueEntry};
use crate::service::{percentiles, render_json, Readiness, ServeError, SubmitError};
use sprout_telemetry::{self as telemetry, json::Obj};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Fleet configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker processes to spawn at start.
    pub workers: usize,
    /// Worker executable. `None` resolves `sprout_fleet_worker` next to
    /// the current executable — correct for the shipped binaries, which
    /// land in the same target directory.
    pub worker_cmd: Option<PathBuf>,
    /// Extra arguments appended to every worker invocation (e.g.
    /// `--router fast`).
    pub worker_args: Vec<String>,
    /// Admission-queue capacity (the backpressure bound).
    pub queue_capacity: usize,
    /// Journal + checkpoint directory, shared with the workers. `None`
    /// disables crash recovery *and* cross-process resume.
    pub data_dir: Option<PathBuf>,
    /// Heartbeat period workers are told to use (ms).
    pub heartbeat_ms: u64,
    /// Silence past this declares a worker dead (ms). Must comfortably
    /// exceed `heartbeat_ms`.
    pub heartbeat_timeout_ms: u64,
    /// Dispatch attempts per job before it fails terminally.
    pub max_job_retries: usize,
    /// Replacement workers spawned over the coordinator's lifetime.
    pub max_worker_restarts: usize,
    /// Seeded-jitter delay schedule for re-dispatch.
    pub backoff: BackoffConfig,
    /// Deadline for jobs that do not bring their own (ms).
    pub default_deadline_ms: Option<f64>,
    /// Queue-depth fraction at which `/readyz` reports overload.
    pub overload_watermark: f64,
    /// SIGKILL workers on death declaration. `false` leaves a silent
    /// worker running — the configuration that exercises the
    /// stale-finalize path, since the zombie eventually reports.
    pub kill_dead_workers: bool,
    /// Process-level fault plan forwarded to every worker (testing
    /// only).
    pub fault: Option<FleetFaultPlan>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 2,
            worker_cmd: None,
            worker_args: Vec::new(),
            queue_capacity: 64,
            data_dir: None,
            heartbeat_ms: 50,
            heartbeat_timeout_ms: 500,
            max_job_retries: 3,
            max_worker_restarts: 8,
            backoff: BackoffConfig {
                base_ms: 20.0,
                ..BackoffConfig::default()
            },
            default_deadline_ms: None,
            overload_watermark: 0.75,
            kill_dead_workers: true,
            fault: None,
        }
    }
}

/// Fleet counters, the `/metrics` payload of a fleet-backed server.
#[derive(Debug, Clone, Default)]
pub struct FleetMetrics {
    /// Workers currently alive (heartbeating or within their timeout).
    pub workers_live: usize,
    /// Workers spawned since start (initial + replacements).
    pub workers_spawned: u64,
    /// Workers declared dead.
    pub workers_dead: u64,
    /// Replacement workers spawned after a death.
    pub worker_restarts: u64,
    /// Jobs waiting in the queue.
    pub queue_depth: usize,
    /// Jobs currently out under a lease.
    pub leased: usize,
    /// Jobs accepted (recovered jobs included).
    pub accepted: u64,
    /// Submissions rejected with backpressure.
    pub rejected: u64,
    /// Terminal: completed.
    pub completed: u64,
    /// Terminal: partial results shipped.
    pub best_so_far: u64,
    /// Terminal: failed with a typed error.
    pub failed: u64,
    /// Terminal: shed under saturation.
    pub shed: u64,
    /// Terminal: deadline expired.
    pub expired: u64,
    /// Terminal: cancelled.
    pub cancelled: u64,
    /// Worker-reported retryable failures re-dispatched.
    pub retries: u64,
    /// Leases expired by worker death and re-dispatched.
    pub redispatches: u64,
    /// `done` frames rejected for carrying an expired lease or an
    /// already-terminal job — the double-finalize attempts defeated.
    pub stale_finalizes: u64,
    /// Jobs re-admitted from the journal at start.
    pub recovered: u64,
    /// Duplicate/conflicting journal records ignored during replay.
    pub journal_duplicates: u64,
    /// In-memory double-finalize attempts — always 0 unless the
    /// exactly-once invariant broke.
    pub terminal_violations: u64,
    /// Median admission→terminal latency (ms).
    pub latency_p50_ms: f64,
    /// 99th-percentile admission→terminal latency (ms).
    pub latency_p99_ms: f64,
    /// Seconds since the coordinator started.
    pub uptime_seconds: f64,
    /// Events published onto the fleet's per-job event bus.
    pub events_published: u64,
    /// Events evicted from full per-job rings (drop-oldest).
    pub events_dropped: u64,
    /// Median admission→lease queue wait (ms).
    pub queue_wait_p50_ms: f64,
    /// 99th-percentile admission→lease queue wait (ms).
    pub queue_wait_p99_ms: f64,
    /// Queue-wait samples recorded (one per lease grant).
    pub queue_wait_count: u64,
    /// Sum of all queue waits (ms) — the Prometheus summary `_sum`.
    pub queue_wait_sum_ms: f64,
    /// Sum of all terminal latencies (ms) — the Prometheus summary `_sum`.
    pub latency_sum_ms: f64,
}

impl FleetMetrics {
    /// One JSON line (the fleet `/metrics` body).
    pub fn to_json(&self) -> String {
        let mut o = Obj::new();
        o.u64("workers_live", self.workers_live as u64)
            .u64("workers_spawned", self.workers_spawned)
            .u64("workers_dead", self.workers_dead)
            .u64("worker_restarts", self.worker_restarts)
            .u64("queue_depth", self.queue_depth as u64)
            .u64("leased", self.leased as u64)
            .u64("accepted", self.accepted)
            .u64("rejected", self.rejected)
            .u64("completed", self.completed)
            .u64("best_so_far", self.best_so_far)
            .u64("failed", self.failed)
            .u64("shed", self.shed)
            .u64("expired", self.expired)
            .u64("cancelled", self.cancelled)
            .u64("retries", self.retries)
            .u64("redispatches", self.redispatches)
            .u64("stale_finalizes", self.stale_finalizes)
            .u64("recovered", self.recovered)
            .u64("journal_duplicates", self.journal_duplicates)
            .u64("terminal_violations", self.terminal_violations)
            .f64("latency_p50_ms", self.latency_p50_ms)
            .f64("latency_p99_ms", self.latency_p99_ms)
            .f64("uptime_seconds", self.uptime_seconds)
            .u64("events_published", self.events_published)
            .u64("events_dropped", self.events_dropped)
            .f64("queue_wait_p50_ms", self.queue_wait_p50_ms)
            .f64("queue_wait_p99_ms", self.queue_wait_p99_ms);
        o.finish()
    }

    /// Prometheus text exposition of the same counters, under
    /// `<prefix>` (the fleet server uses `sprout_fleet_`).
    pub fn to_prometheus(&self, prefix: &str) -> String {
        use sprout_telemetry::prom::PromText;
        let name = |n: &str| format!("{prefix}{n}");
        let mut p = PromText::new();
        p.gauge(
            &name("queue_depth"),
            "Jobs waiting in the queue.",
            self.queue_depth as f64,
        );
        p.gauge(
            &name("leased"),
            "Jobs currently out under a lease.",
            self.leased as f64,
        );
        p.gauge(
            &name("workers_live"),
            "Workers currently alive.",
            self.workers_live as f64,
        );
        p.gauge(
            &name("uptime_seconds"),
            "Seconds since the coordinator started.",
            self.uptime_seconds,
        );
        let counters: &[(&str, &str, u64)] = &[
            (
                "workers_spawned_total",
                "Workers spawned since start.",
                self.workers_spawned,
            ),
            (
                "workers_dead_total",
                "Workers declared dead.",
                self.workers_dead,
            ),
            (
                "worker_restarts_total",
                "Replacement workers spawned.",
                self.worker_restarts,
            ),
            ("accepted_total", "Jobs accepted.", self.accepted),
            (
                "rejected_total",
                "Submissions rejected with backpressure.",
                self.rejected,
            ),
            ("completed_total", "Jobs completed.", self.completed),
            (
                "best_so_far_total",
                "Partial results shipped.",
                self.best_so_far,
            ),
            (
                "failed_total",
                "Jobs failed with a typed error.",
                self.failed,
            ),
            ("shed_total", "Jobs shed under saturation.", self.shed),
            (
                "expired_total",
                "Jobs expired past their deadline.",
                self.expired,
            ),
            ("cancelled_total", "Jobs cancelled.", self.cancelled),
            (
                "retries_total",
                "Worker-reported retryable failures re-dispatched.",
                self.retries,
            ),
            (
                "redispatches_total",
                "Leases expired by worker death and re-dispatched.",
                self.redispatches,
            ),
            (
                "stale_finalizes_total",
                "Double-finalize attempts defeated.",
                self.stale_finalizes,
            ),
            (
                "recovered_total",
                "Jobs re-admitted from the journal.",
                self.recovered,
            ),
            (
                "journal_duplicates_total",
                "Duplicate journal records ignored.",
                self.journal_duplicates,
            ),
            (
                "terminal_violations_total",
                "Exactly-once invariant violations.",
                self.terminal_violations,
            ),
            (
                "events_published_total",
                "Events published onto the event bus.",
                self.events_published,
            ),
            (
                "events_dropped_total",
                "Events evicted from full per-job rings.",
                self.events_dropped,
            ),
        ];
        for (n, help, v) in counters {
            p.counter(&name(n), help, *v);
        }
        let terminal = self.completed
            + self.best_so_far
            + self.failed
            + self.shed
            + self.expired
            + self.cancelled;
        p.summary(
            &name("latency_ms"),
            "Admission-to-terminal latency (ms).",
            &[(0.5, self.latency_p50_ms), (0.99, self.latency_p99_ms)],
            terminal,
            self.latency_sum_ms,
        );
        p.summary(
            &name("queue_wait_ms"),
            "Admission-to-lease queue wait (ms).",
            &[
                (0.5, self.queue_wait_p50_ms),
                (0.99, self.queue_wait_p99_ms),
            ],
            self.queue_wait_count,
            self.queue_wait_sum_ms,
        );
        p.registry("sprout_", telemetry::metrics::global());
        p.finish()
    }
}

// ---- journal -----------------------------------------------------------

/// The outcome of replaying a fleet journal — a pure function of the
/// journal text, exposed so the idempotence tests can drive it with
/// hand-built (including hostile) journals.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// Admitted jobs without a terminal record, in id order: the work a
    /// restarted coordinator must re-dispatch.
    pub pending: Vec<(u64, JobSpec, Option<f64>)>,
    /// First terminal record per job: `id → (state name, fingerprint)`.
    pub terminal: HashMap<u64, (String, u64)>,
    /// Duplicate admits and duplicate/conflicting terminal records
    /// ignored (first record wins).
    pub duplicates: u64,
    /// Unparseable or orphaned lines skipped.
    pub malformed: u64,
    /// One past the highest id seen.
    pub next_id: u64,
}

/// Replays a fleet journal. First record wins throughout: a journal
/// holding duplicate or interleaved terminal records for one job — the
/// slow-then-revived worker, or a double-finalize bug — still replays
/// to exactly one terminal state per job. A terminal record whose
/// fingerprint does not match the admitted spec is ignored as
/// malformed: it cannot have been computed for that job.
pub fn replay_journal(text: &str) -> JournalReplay {
    use sprout_telemetry::json::{self, Json};
    let mut out = JournalReplay::default();
    let mut admitted: HashMap<u64, (JobSpec, u64, Option<f64>)> = HashMap::new();
    let mut order: Vec<u64> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.len() > MAX_FRAME_BYTES {
            out.malformed += 1;
            continue;
        }
        let Ok(root) = json::parse(line) else {
            out.malformed += 1;
            continue;
        };
        let kind = root.get("kind").and_then(Json::as_str).unwrap_or("");
        let Some(id) = root.get("id").and_then(Json::as_u64) else {
            out.malformed += 1;
            continue;
        };
        // Fingerprints are full 64-bit values; JSON numbers are f64 and
        // would round them, so the journal stores them as hex strings.
        let Some(fp) = root
            .get("fp")
            .and_then(Json::as_str)
            .and_then(|h| u64::from_str_radix(h, 16).ok())
        else {
            out.malformed += 1;
            continue;
        };
        out.next_id = out.next_id.max(id + 1);
        match kind {
            "admit" => {
                let Some(spec_json) = root.get("spec").map(render_json) else {
                    out.malformed += 1;
                    continue;
                };
                let Ok(spec) = JobSpec::parse(&spec_json) else {
                    out.malformed += 1;
                    continue;
                };
                if spec_fingerprint(&spec) != fp {
                    out.malformed += 1;
                    continue;
                }
                if admitted.contains_key(&id) {
                    out.duplicates += 1;
                    continue;
                }
                let deadline = root.get("deadline_ms").and_then(|v| v.as_f64());
                admitted.insert(id, (spec, fp, deadline));
                order.push(id);
            }
            "done" => {
                let Some(state) = root.get("state").and_then(Json::as_str) else {
                    out.malformed += 1;
                    continue;
                };
                match admitted.get(&id) {
                    None => out.malformed += 1, // orphaned terminal record
                    Some((_, admit_fp, _)) if *admit_fp != fp => out.malformed += 1,
                    Some(_) => match out.terminal.entry(id) {
                        Entry::Occupied(_) => out.duplicates += 1, // first record wins
                        Entry::Vacant(v) => {
                            v.insert((state.to_owned(), fp));
                        }
                    },
                }
            }
            _ => out.malformed += 1,
        }
    }
    for id in order {
        if out.terminal.contains_key(&id) {
            continue;
        }
        let (spec, _, deadline) = admitted.remove(&id).expect("ordered ids were admitted");
        out.pending.push((id, spec, deadline));
    }
    out
}

fn state_from_name(name: &str) -> Option<JobState> {
    match name {
        "completed" => Some(JobState::Completed),
        "best_so_far" => Some(JobState::BestSoFar),
        "failed" => Some(JobState::Failed),
        "shed" => Some(JobState::Shed),
        "expired" => Some(JobState::Expired),
        "cancelled" => Some(JobState::Cancelled),
        _ => None,
    }
}

// ---- coordinator internals ---------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Idle,
    Leased { job: u64, lease: u64 },
    Dead,
}

struct WorkerSlot {
    child: Option<Child>,
    stdin: Option<ChildStdin>,
    pid: u32,
    state: SlotState,
    last_beat: Instant,
}

struct FleetJob {
    id: u64,
    spec: JobSpec,
    fp: u64,
    state: JobState,
    priority: Priority,
    attempts: usize,
    submitted: Instant,
    deadline_ms: Option<f64>,
    queue_ms: f64,
    run_ms: f64,
    rails_total: usize,
    rails_complete: usize,
    resumed: usize,
    recovered: bool,
    lease: Option<(u64, usize)>,
    solves: u64,
    area_mm2: f64,
    error: Option<String>,
    terminal_transitions: usize,
}

impl FleetJob {
    fn snapshot(&self) -> JobSnapshot {
        JobSnapshot {
            id: self.id,
            tag: self.spec.tag.clone(),
            state: self.state,
            priority: self.priority,
            attempts: self.attempts,
            rails_total: self.rails_total,
            rails_complete: self.rails_complete,
            resumed: self.resumed,
            recovered: self.recovered,
            killed: false,
            queue_ms: self.queue_ms,
            run_ms: self.run_ms,
            solves: self.solves,
            area_mm2: self.area_mm2,
            error: self.error.clone(),
            terminal_transitions: self.terminal_transitions,
        }
    }
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    best_so_far: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    cancelled: AtomicU64,
    retries: AtomicU64,
    redispatches: AtomicU64,
    stale_finalizes: AtomicU64,
    recovered: AtomicU64,
    journal_duplicates: AtomicU64,
    terminal_violations: AtomicU64,
    workers_spawned: AtomicU64,
    workers_dead: AtomicU64,
    worker_restarts: AtomicU64,
}

struct Inner {
    workers: Vec<WorkerSlot>,
    jobs: HashMap<u64, FleetJob>,
}

struct Shared {
    config: FleetConfig,
    queue: BoundedQueue,
    inner: Mutex<Inner>,
    journal: Mutex<Option<std::fs::File>>,
    counters: Counters,
    latencies: Mutex<Vec<f64>>,
    queue_waits: Mutex<Vec<f64>>,
    next_id: AtomicU64,
    next_lease: AtomicU64,
    draining: AtomicBool,
    started: Instant,
    bus: Arc<EventBus>,
}

/// The running fleet coordinator. Share behind an `Arc` when multiple
/// frontends need it — the HTTP server does.
pub struct FleetCoordinator {
    shared: Arc<Shared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl FleetCoordinator {
    /// Starts the fleet: prepares the data directory, replays the
    /// journal (re-admitting unfinished jobs — coordinator crash
    /// recovery), spawns the worker processes, and starts the
    /// dispatcher and heartbeat monitor.
    ///
    /// # Errors
    ///
    /// [`ServeError`] when the configuration is unusable, the data
    /// directory cannot be prepared, or no worker can be spawned.
    pub fn start(config: FleetConfig) -> Result<FleetCoordinator, ServeError> {
        if config.workers == 0 {
            return Err(ServeError::InvalidConfig(
                "a fleet needs at least one worker",
            ));
        }
        if config.heartbeat_timeout_ms <= config.heartbeat_ms {
            return Err(ServeError::InvalidConfig(
                "heartbeat_timeout_ms must exceed heartbeat_ms",
            ));
        }

        let mut journal_file = None;
        let mut replay = JournalReplay::default();
        if let Some(dir) = &config.data_dir {
            std::fs::create_dir_all(dir).map_err(|e| ServeError::Io(e.to_string()))?;
            let path = dir.join("fleet.journal");
            if let Ok(text) = std::fs::read_to_string(&path) {
                replay = replay_journal(&text);
            }
            journal_file = Some(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                    .map_err(|e| ServeError::Io(e.to_string()))?,
            );
        }

        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            inner: Mutex::new(Inner {
                workers: Vec::new(),
                jobs: HashMap::new(),
            }),
            journal: Mutex::new(journal_file),
            counters: Counters::default(),
            latencies: Mutex::new(Vec::new()),
            queue_waits: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(replay.next_id.max(1)),
            next_lease: AtomicU64::new(1),
            draining: AtomicBool::new(false),
            started: Instant::now(),
            bus: Arc::new(EventBus::default()),
            config,
        });
        shared
            .counters
            .journal_duplicates
            .store(replay.duplicates, Ordering::Relaxed);

        let fleet = FleetCoordinator {
            shared: Arc::clone(&shared),
            threads: Mutex::new(Vec::new()),
        };

        // Materialize journal state: terminal jobs stay terminal (their
        // in-memory guard blocks any late double finalize), unfinished
        // jobs re-enter the queue.
        {
            let mut inner = lock_inner(&shared);
            for (&id, (state, fp)) in &replay.terminal {
                let Some(state) = state_from_name(state) else {
                    continue; // tombstones (e.g. rejected submissions)
                };
                inner.jobs.insert(
                    id,
                    FleetJob {
                        id,
                        spec: JobSpec::two_rail(0.1), // spec not re-materialized for terminal jobs
                        fp: *fp,
                        state,
                        priority: Priority::Normal,
                        attempts: 0,
                        submitted: Instant::now(),
                        deadline_ms: None,
                        queue_ms: 0.0,
                        run_ms: 0.0,
                        rails_total: 0,
                        rails_complete: 0,
                        resumed: 0,
                        recovered: true,
                        lease: None,
                        solves: 0,
                        area_mm2: 0.0,
                        error: None,
                        terminal_transitions: 1,
                    },
                );
            }
            for (id, spec, deadline_ms) in replay.pending {
                let priority = spec.priority;
                let fp = spec_fingerprint(&spec);
                inner.jobs.insert(
                    id,
                    FleetJob {
                        id,
                        rails_total: spec.rails.len(),
                        spec,
                        fp,
                        state: JobState::Queued,
                        priority,
                        attempts: 0,
                        submitted: Instant::now(),
                        deadline_ms,
                        queue_ms: 0.0,
                        run_ms: 0.0,
                        rails_complete: 0,
                        resumed: 0,
                        recovered: true,
                        lease: None,
                        solves: 0,
                        area_mm2: 0.0,
                        error: None,
                        terminal_transitions: 0,
                    },
                );
                shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
                shared.counters.recovered.fetch_add(1, Ordering::Relaxed);
                telemetry::counter!("fleet.recovered");
                shared.queue.reenter(id, priority, 0, Duration::ZERO);
            }
        }

        for _ in 0..shared.config.workers {
            let handle = spawn_worker(&shared).map_err(|e| ServeError::Io(e.to_string()))?;
            fleet
                .threads
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(handle);
        }

        {
            let mut threads = fleet.threads.lock().unwrap_or_else(|e| e.into_inner());
            let s = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("fleet-dispatch".into())
                    .spawn(move || dispatch_loop(&s))
                    .map_err(|e| ServeError::Io(e.to_string()))?,
            );
            let s = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("fleet-monitor".into())
                    .spawn(move || monitor_loop(&s))
                    .map_err(|e| ServeError::Io(e.to_string()))?,
            );
        }
        Ok(fleet)
    }

    /// Submits a job. The id returns only once the admission record is
    /// in the journal — from that point the fleet guarantees exactly
    /// one terminal state, across worker deaths and coordinator
    /// restarts.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] with the HTTP-facing rejection reason.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, SubmitError> {
        let s = &self.shared;
        if s.draining.load(Ordering::SeqCst) {
            return Err(SubmitError::Draining);
        }
        let board = spec.resolve_board().map_err(SubmitError::Invalid)?;
        spec.requests(&board).map_err(SubmitError::Invalid)?;

        let id = s.next_id.fetch_add(1, Ordering::SeqCst);
        let priority = spec.priority;
        let fp = spec_fingerprint(&spec);
        let deadline_ms = spec.deadline_ms.or(s.config.default_deadline_ms);

        // Journal before queueing — accepted means crash-survivable.
        if let Err(e) = journal_admit(s, id, fp, &spec, deadline_ms) {
            return Err(SubmitError::Journal(e));
        }

        {
            let mut inner = lock_inner(s);
            inner.jobs.insert(
                id,
                FleetJob {
                    id,
                    rails_total: spec.rails.len(),
                    spec,
                    fp,
                    state: JobState::Queued,
                    priority,
                    attempts: 0,
                    submitted: Instant::now(),
                    deadline_ms,
                    queue_ms: 0.0,
                    run_ms: 0.0,
                    rails_complete: 0,
                    resumed: 0,
                    recovered: false,
                    lease: None,
                    solves: 0,
                    area_mm2: 0.0,
                    error: None,
                    terminal_transitions: 0,
                },
            );
        }

        match s.queue.admit(id, priority) {
            Ok(Admitted::Queued) => {}
            Ok(Admitted::Shed { victim }) => {
                telemetry::counter!("fleet.sheds");
                finalize(
                    s,
                    victim,
                    JobState::Shed,
                    Some("shed by higher-priority arrival".into()),
                );
            }
            Err(_) => {
                // Rejected: tombstone the admit line so a restart never
                // resurrects a job the client was told was refused.
                {
                    let mut inner = lock_inner(s);
                    inner.jobs.remove(&id);
                }
                journal_done(s, id, fp, "rejected");
                s.counters.rejected.fetch_add(1, Ordering::Relaxed);
                telemetry::counter!("fleet.rejected");
                let retry_after_ms = s.config.backoff.delay_ms(id, 0);
                return Err(if s.draining.load(Ordering::SeqCst) {
                    SubmitError::Draining
                } else {
                    SubmitError::Saturated { retry_after_ms }
                });
            }
        }
        s.counters.accepted.fetch_add(1, Ordering::Relaxed);
        telemetry::counter!("fleet.accepted");
        Ok(id)
    }

    /// The snapshot of one job, if known.
    pub fn status(&self, id: u64) -> Option<JobSnapshot> {
        let inner = lock_inner(&self.shared);
        inner.jobs.get(&id).map(FleetJob::snapshot)
    }

    /// Snapshots of every known job, ordered by id.
    pub fn jobs(&self) -> Vec<JobSnapshot> {
        let inner = lock_inner(&self.shared);
        let mut out: Vec<JobSnapshot> = inner.jobs.values().map(FleetJob::snapshot).collect();
        out.sort_by_key(|j| j.id);
        out
    }

    /// Cancels a *queued* job. Jobs already out under a lease cannot be
    /// cancelled cross-process (there is no preemption frame — by
    /// design, a leased job either finishes or its worker dies);
    /// `false` for those, for unknown ids, and for terminal jobs.
    pub fn cancel(&self, id: u64) -> bool {
        let s = &self.shared;
        {
            let inner = lock_inner(s);
            match inner.jobs.get(&id) {
                Some(rec) if !rec.state.is_terminal() && rec.lease.is_none() => {}
                _ => return false,
            }
        }
        if s.queue.remove(id) {
            finalize(
                s,
                id,
                JobState::Cancelled,
                Some("cancelled while queued".into()),
            );
            return true;
        }
        false
    }

    /// Current readiness: `Draining` once a drain began (the fleet
    /// `/readyz` turns 503), `Overloaded` past the queue watermark.
    pub fn ready(&self) -> Readiness {
        let s = &self.shared;
        if s.draining.load(Ordering::SeqCst) {
            return Readiness::Draining;
        }
        let cap = s.queue.capacity().max(1);
        let watermark = (s.config.overload_watermark.clamp(0.0, 1.0) * cap as f64).ceil() as usize;
        if s.queue.len() >= watermark.max(1) {
            Readiness::Overloaded
        } else {
            Readiness::Ready
        }
    }

    /// The per-job event bus feeding `GET /jobs/:id/events`. Worker
    /// progress frames are republished here, so a fleet-backed stream
    /// looks identical to an in-process one.
    pub fn events(&self) -> Arc<EventBus> {
        Arc::clone(&self.shared.bus)
    }

    /// Current counters and latency percentiles.
    pub fn metrics(&self) -> FleetMetrics {
        let s = &self.shared;
        let c = &s.counters;
        let (workers_live, leased) = {
            let inner = lock_inner(s);
            (
                inner
                    .workers
                    .iter()
                    .filter(|w| w.state != SlotState::Dead)
                    .count(),
                inner.jobs.values().filter(|j| j.lease.is_some()).count(),
            )
        };
        let (p50, p99, lat_sum) = {
            let lat = s.latencies.lock().unwrap_or_else(|e| e.into_inner());
            let (p50, p99) = percentiles(&lat);
            (p50, p99, lat.iter().sum())
        };
        let (qw50, qw99, qw_count, qw_sum) = {
            let qw = s.queue_waits.lock().unwrap_or_else(|e| e.into_inner());
            let (p50, p99) = percentiles(&qw);
            (p50, p99, qw.len() as u64, qw.iter().sum())
        };
        FleetMetrics {
            workers_live,
            workers_spawned: c.workers_spawned.load(Ordering::Relaxed),
            workers_dead: c.workers_dead.load(Ordering::Relaxed),
            worker_restarts: c.worker_restarts.load(Ordering::Relaxed),
            queue_depth: s.queue.len(),
            leased,
            accepted: c.accepted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            best_so_far: c.best_so_far.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            expired: c.expired.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            redispatches: c.redispatches.load(Ordering::Relaxed),
            stale_finalizes: c.stale_finalizes.load(Ordering::Relaxed),
            recovered: c.recovered.load(Ordering::Relaxed),
            journal_duplicates: c.journal_duplicates.load(Ordering::Relaxed),
            terminal_violations: c.terminal_violations.load(Ordering::Relaxed),
            latency_p50_ms: p50,
            latency_p99_ms: p99,
            uptime_seconds: s.started.elapsed().as_secs_f64(),
            events_published: s.bus.events_published(),
            events_dropped: s.bus.events_dropped(),
            queue_wait_p50_ms: qw50,
            queue_wait_p99_ms: qw99,
            queue_wait_count: qw_count,
            queue_wait_sum_ms: qw_sum,
            latency_sum_ms: lat_sum,
        }
    }

    /// OS pids of the workers currently considered live — the handles
    /// the process-level chaos tests aim real `SIGKILL`/`SIGSTOP` at.
    pub fn worker_pids(&self) -> Vec<u32> {
        let inner = lock_inner(&self.shared);
        inner
            .workers
            .iter()
            .filter(|w| w.state != SlotState::Dead)
            .map(|w| w.pid)
            .collect()
    }

    /// Blocks until every accepted job is terminal or the timeout
    /// passes. `true` when idle was reached.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.is_idle() {
                return true;
            }
            if Instant::now() >= deadline {
                return self.is_idle();
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn is_idle(&self) -> bool {
        let s = &self.shared;
        if !s.queue.is_empty() {
            return false;
        }
        let inner = lock_inner(s);
        inner.jobs.values().all(|r| r.state.is_terminal())
    }

    /// Graceful drain (the SIGTERM path): stop admitting and leasing,
    /// wait for in-flight leases to finish (bounded by `timeout`), ask
    /// every worker to exit, and reap the children. Jobs still queued
    /// stay journaled — a later coordinator recovers them. Returns
    /// `true` when every lease finished in time.
    pub fn drain(&self, timeout: Duration) -> bool {
        let s = &self.shared;
        s.draining.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + timeout;
        let drained = loop {
            let outstanding = {
                let inner = lock_inner(s);
                inner.jobs.values().filter(|j| j.lease.is_some()).count()
            };
            if outstanding == 0 {
                break true;
            }
            if Instant::now() >= deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(5));
        };

        // Ask workers to exit, then close their stdin so even a worker
        // that misses the frame sees EOF.
        {
            let mut inner = lock_inner(s);
            for w in inner.workers.iter_mut() {
                if let Some(stdin) = &mut w.stdin {
                    let _ = writeln!(stdin, "{}", CoordFrame::Drain.to_json());
                    let _ = stdin.flush();
                }
                w.stdin = None;
            }
        }
        self.reap_all(Duration::from_secs(10));
        s.queue.close();
        self.join_threads();
        drained
    }

    /// Abrupt stop — the coordinator-crash simulation for restart
    /// tests: kill every worker, join nothing gracefully, finalize
    /// nothing. The journal and checkpoints stay exactly as they were;
    /// only a fresh [`FleetCoordinator::start`] on the same data
    /// directory finishes the surviving jobs.
    pub fn shutdown_abrupt(&self) {
        let s = &self.shared;
        s.draining.store(true, Ordering::SeqCst);
        {
            let mut inner = lock_inner(s);
            for w in inner.workers.iter_mut() {
                w.stdin = None;
                if let Some(child) = &mut w.child {
                    let _ = child.kill();
                }
            }
        }
        self.reap_all(Duration::from_secs(5));
        s.queue.close();
        self.join_threads();
    }

    fn reap_all(&self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        loop {
            let mut alive = false;
            {
                let mut inner = lock_inner(&self.shared);
                for w in inner.workers.iter_mut() {
                    if let Some(child) = &mut w.child {
                        match child.try_wait() {
                            Ok(Some(_)) => {
                                w.child = None;
                            }
                            Ok(None) => alive = true,
                            Err(_) => {
                                w.child = None;
                            }
                        }
                    }
                }
                if alive && Instant::now() >= deadline {
                    for w in inner.workers.iter_mut() {
                        if let Some(child) = &mut w.child {
                            let _ = child.kill();
                            let _ = child.wait();
                            w.child = None;
                        }
                    }
                    return;
                }
            }
            if !alive {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn join_threads(&self) {
        let mut threads = self.threads.lock().unwrap_or_else(|e| e.into_inner());
        for h in threads.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for FleetCoordinator {
    fn drop(&mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        {
            let mut inner = lock_inner(&self.shared);
            for w in inner.workers.iter_mut() {
                w.stdin = None;
                if let Some(child) = &mut w.child {
                    let _ = child.kill();
                    let _ = child.wait();
                    w.child = None;
                }
            }
        }
        self.shared.queue.close();
        self.join_threads();
    }
}

fn lock_inner(s: &Shared) -> std::sync::MutexGuard<'_, Inner> {
    s.inner.lock().unwrap_or_else(|e| e.into_inner())
}

// ---- journal writes ----------------------------------------------------

fn journal_admit(
    s: &Shared,
    id: u64,
    fp: u64,
    spec: &JobSpec,
    deadline_ms: Option<f64>,
) -> Result<(), String> {
    let mut journal = s.journal.lock().unwrap_or_else(|e| e.into_inner());
    let Some(file) = journal.as_mut() else {
        return Ok(());
    };
    let mut o = Obj::new();
    o.str("kind", "admit")
        .u64("id", id)
        .str("fp", &format!("{fp:016x}"))
        .raw("spec", &spec.to_json());
    if let Some(d) = deadline_ms {
        o.f64("deadline_ms", d);
    }
    writeln!(file, "{}", o.finish())
        .and_then(|_| file.flush())
        .map_err(|e| e.to_string())
}

fn journal_done(s: &Shared, id: u64, fp: u64, state: &str) {
    let mut journal = s.journal.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(file) = journal.as_mut() {
        let mut o = Obj::new();
        o.str("kind", "done")
            .u64("id", id)
            .str("fp", &format!("{fp:016x}"))
            .str("state", state);
        let _ = writeln!(file, "{}", o.finish());
        let _ = file.flush();
    }
}

// ---- terminal transition -----------------------------------------------

/// The single terminal transition: in-memory exactly-once guard, one
/// terminal counter, one journal record, checkpoint cleanup.
fn finalize(s: &Shared, id: u64, state: JobState, error: Option<String>) {
    debug_assert!(state.is_terminal());
    let (latency_ms, fp, terminal_error) = {
        let mut inner = lock_inner(s);
        let Some(rec) = inner.jobs.get_mut(&id) else {
            return;
        };
        rec.terminal_transitions += 1;
        if rec.terminal_transitions > 1 {
            s.counters
                .terminal_violations
                .fetch_add(1, Ordering::Relaxed);
            telemetry::counter!("fleet.terminal_violations");
            return;
        }
        rec.state = state;
        rec.lease = None;
        if rec.error.is_none() {
            rec.error = error;
        }
        (
            rec.submitted.elapsed().as_secs_f64() * 1e3,
            rec.fp,
            rec.error.clone(),
        )
    };

    let counter = match state {
        JobState::Completed => &s.counters.completed,
        JobState::BestSoFar => &s.counters.best_so_far,
        JobState::Failed => &s.counters.failed,
        JobState::Shed => &s.counters.shed,
        JobState::Expired => &s.counters.expired,
        JobState::Cancelled => &s.counters.cancelled,
        JobState::Queued | JobState::Running => return,
    };
    counter.fetch_add(1, Ordering::Relaxed);
    telemetry::point("fleet_job_terminal")
        .field("job", id)
        .field("state", state.name())
        .field("latency_ms", latency_ms)
        .emit();
    // Exactly one Terminal event per job: guarded by the same
    // terminal_transitions check a zombie finalize cannot pass.
    s.bus.publish(id, EventKind::Terminal, |o| {
        o.str("state", state.name()).f64("latency_ms", latency_ms);
        if let Some(e) = &terminal_error {
            o.str("error", e);
        }
    });
    {
        let mut lat = s.latencies.lock().unwrap_or_else(|e| e.into_inner());
        lat.push(latency_ms);
    }
    journal_done(s, id, fp, state.name());
    if let Some(dir) = &s.config.data_dir {
        let _ = std::fs::remove_file(dir.join(format!("ckpt-{id}")));
    }
}

// ---- worker lifecycle --------------------------------------------------

fn worker_command(config: &FleetConfig) -> PathBuf {
    config.worker_cmd.clone().unwrap_or_else(|| {
        std::env::current_exe()
            .map(|p| p.with_file_name("sprout_fleet_worker"))
            .unwrap_or_else(|_| PathBuf::from("sprout_fleet_worker"))
    })
}

fn spawn_worker(s: &Arc<Shared>) -> std::io::Result<JoinHandle<()>> {
    let mut cmd = Command::new(worker_command(&s.config));
    cmd.arg("--heartbeat-ms")
        .arg(s.config.heartbeat_ms.to_string())
        .args(&s.config.worker_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if let Some(f) = &s.config.fault {
        cmd.arg("--chaos-seed").arg(f.seed.to_string());
        cmd.arg("--kill-rate").arg(f.kill_rate.to_string());
        cmd.arg("--stall-rate").arg(f.stall_rate.to_string());
        cmd.arg("--stall-ms").arg(f.stall_ms.to_string());
        cmd.arg("--blackout-rate").arg(f.blackout_rate.to_string());
        cmd.arg("--blackout-ms").arg(f.blackout_ms.to_string());
    }
    let mut child = cmd.spawn()?;
    let stdin = child.stdin.take();
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| std::io::Error::other("worker stdout not captured"))?;
    let pid = child.id();

    let w = {
        let mut inner = lock_inner(s);
        inner.workers.push(WorkerSlot {
            child: Some(child),
            stdin,
            pid,
            state: SlotState::Idle,
            last_beat: Instant::now(),
        });
        inner.workers.len() - 1
    };
    s.counters.workers_spawned.fetch_add(1, Ordering::Relaxed);
    telemetry::counter!("fleet.workers_spawned");

    let shared = Arc::clone(s);
    std::thread::Builder::new()
        .name(format!("fleet-read-{w}"))
        .spawn(move || reader_loop(&shared, w, stdout))
}

fn reader_loop(s: &Arc<Shared>, w: usize, stdout: std::process::ChildStdout) {
    let reader = BufReader::new(stdout);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let Ok(frame) = WorkerFrame::parse(&line) else {
            telemetry::counter!("fleet.bad_frames");
            continue;
        };
        match frame {
            WorkerFrame::Hello { .. } | WorkerFrame::Heartbeat { .. } => {
                let mut inner = lock_inner(s);
                let slot = &mut inner.workers[w];
                if slot.state != SlotState::Dead {
                    slot.last_beat = Instant::now();
                }
            }
            WorkerFrame::Progress {
                job,
                lease,
                wave,
                waves,
                rails_complete,
                stage,
                elapsed_ms,
                solve_ms,
            } => {
                let publish = {
                    let mut inner = lock_inner(s);
                    if inner.workers[w].state != SlotState::Dead {
                        inner.workers[w].last_beat = Instant::now();
                    }
                    match inner.jobs.get_mut(&job) {
                        // Only the current lease publishes: a zombie
                        // worker's frames must not pollute the stream.
                        Some(rec) if rec.lease == Some((lease, w)) => {
                            rec.rails_complete = rec.rails_complete.max(rails_complete);
                            Some((rec.rails_complete, rec.rails_total))
                        }
                        _ => None,
                    }
                };
                if let Some((rails_done, rails_total)) = publish {
                    if stage == "wave" {
                        s.bus.publish(job, EventKind::Progress, |o| {
                            o.u64("wave", wave as u64)
                                .u64("waves", waves as u64)
                                .u64("rails_complete", rails_done as u64)
                                .u64("rails_total", rails_total as u64)
                                .f64("elapsed_ms", elapsed_ms)
                                .f64("solve_ms", solve_ms);
                        });
                    } else {
                        s.bus.publish(job, EventKind::Stage, |o| {
                            o.str("stage", &stage).f64("elapsed_ms", elapsed_ms);
                        });
                    }
                }
            }
            WorkerFrame::Done(done) => handle_done(s, w, done),
        }
    }
    // EOF: the worker process is gone (exit, SIGKILL, or drain).
    worker_died(s, w, "worker pipe closed");
    let child = {
        let mut inner = lock_inner(s);
        inner.workers[w].child.take()
    };
    if let Some(mut c) = child {
        let _ = c.wait();
    }
}

/// Declares worker `w` dead (idempotent): expires its lease so the job
/// re-enters the queue with backoff, optionally SIGKILLs the process,
/// and spawns a replacement while the restart budget lasts.
fn worker_died(s: &Arc<Shared>, w: usize, why: &str) {
    let expired_lease = {
        let mut inner = lock_inner(s);
        let slot = &mut inner.workers[w];
        if slot.state == SlotState::Dead {
            return;
        }
        let lease = match slot.state {
            SlotState::Leased { job, lease } => Some((job, lease)),
            _ => None,
        };
        slot.state = SlotState::Dead;
        slot.stdin = None;
        if s.config.kill_dead_workers {
            if let Some(child) = &mut slot.child {
                let _ = child.kill();
            }
        }
        lease
    };
    // A worker exiting cleanly after the Drain frame is retirement, not
    // death — don't let graceful shutdown inflate the fault counters.
    if !s.draining.load(Ordering::SeqCst) || expired_lease.is_some() {
        s.counters.workers_dead.fetch_add(1, Ordering::Relaxed);
        telemetry::point("fleet_worker_dead")
            .field("worker", w)
            .field("why", why)
            .emit();
    }

    if let Some((job, lease)) = expired_lease {
        expire_lease(s, job, lease, w);
    }

    // Supervision: replace the dead worker while the budget lasts. The
    // replacement's reader thread is detached — it exits on its pipe's
    // EOF, and shutdown reaps the child itself.
    if !s.draining.load(Ordering::SeqCst) {
        let restarts = s.counters.worker_restarts.load(Ordering::Relaxed);
        if (restarts as usize) < s.config.max_worker_restarts {
            s.counters.worker_restarts.fetch_add(1, Ordering::Relaxed);
            match spawn_worker(s) {
                Ok(handle) => drop(handle),
                Err(_) => telemetry::counter!("fleet.respawn_failed"),
            }
        }
    }
}

/// Expires the lease `(job, lease)` held by dead worker `w`: the job
/// re-enters the queue (attempt bumped, seeded backoff) or fails
/// terminally once the retry budget is spent.
fn expire_lease(s: &Arc<Shared>, job: u64, lease: u64, w: usize) {
    let next = {
        let mut inner = lock_inner(s);
        let Some(rec) = inner.jobs.get_mut(&job) else {
            return;
        };
        if rec.state.is_terminal() || rec.lease != Some((lease, w)) {
            return;
        }
        rec.lease = None;
        rec.state = JobState::Queued;
        if rec.attempts <= s.config.max_job_retries {
            Some((rec.priority, rec.attempts))
        } else {
            None
        }
    };
    s.counters.redispatches.fetch_add(1, Ordering::Relaxed);
    telemetry::counter!("fleet.redispatches");
    match next {
        Some((priority, attempts)) => {
            let delay = s
                .config
                .backoff
                .delay_ms(job, attempts.saturating_sub(1) as u32);
            s.bus.publish(job, EventKind::Retry, |o| {
                o.str("reason", "worker_died")
                    .u64("attempt", attempts as u64)
                    .f64("backoff_ms", delay);
            });
            s.queue.reenter(
                job,
                priority,
                attempts,
                Duration::from_secs_f64(delay / 1e3),
            );
        }
        None => finalize(
            s,
            job,
            JobState::Failed,
            Some("worker died and the re-dispatch budget is exhausted".into()),
        ),
    }
}

/// Handles a `done` frame from worker `w`. Only the current lease may
/// finalize; everything else is a defeated double-finalize attempt.
fn handle_done(s: &Arc<Shared>, w: usize, done: DoneFrame) {
    let decision = {
        let mut inner = lock_inner(s);
        if inner.workers[w].state != SlotState::Dead {
            inner.workers[w].last_beat = Instant::now();
        }
        // Free the slot if this frame settles the lease it holds —
        // even a stale done means the worker finished *something*.
        if inner.workers[w].state
            == (SlotState::Leased {
                job: done.job,
                lease: done.lease,
            })
        {
            inner.workers[w].state = SlotState::Idle;
        }
        let Some(rec) = inner.jobs.get_mut(&done.job) else {
            s.counters.stale_finalizes.fetch_add(1, Ordering::Relaxed);
            return;
        };
        if rec.state.is_terminal() || rec.lease != Some((done.lease, w)) {
            // Expired lease or already-terminal job: the revived-worker
            // double finalize, rejected.
            s.counters.stale_finalizes.fetch_add(1, Ordering::Relaxed);
            telemetry::counter!("fleet.stale_finalizes");
            return;
        }
        rec.lease = None;
        rec.run_ms += done.run_ms;
        rec.rails_complete = rec.rails_complete.max(done.rails_complete);
        rec.resumed += done.resumed;
        rec.solves += done.solves;
        rec.area_mm2 = done.area_mm2.max(rec.area_mm2);
        let retry_ok =
            done.retryable && done.state == "failed" && rec.attempts <= s.config.max_job_retries;
        if retry_ok {
            rec.state = JobState::Queued;
            Decision::Retry(rec.priority, rec.attempts)
        } else {
            match done.state.as_str() {
                "completed" => Decision::Final(JobState::Completed, None),
                "expired" => {
                    if done.rails_complete > 0 {
                        Decision::Final(JobState::BestSoFar, done.error.clone())
                    } else {
                        Decision::Final(
                            JobState::Expired,
                            done.error
                                .clone()
                                .or_else(|| Some("deadline expired".into())),
                        )
                    }
                }
                _ => {
                    if done.rails_complete > 0 {
                        Decision::Final(JobState::BestSoFar, done.error.clone())
                    } else {
                        Decision::Final(
                            JobState::Failed,
                            done.error
                                .clone()
                                .or_else(|| Some("no rail completed".into())),
                        )
                    }
                }
            }
        }
    };
    match decision {
        Decision::Retry(priority, attempts) => {
            s.counters.retries.fetch_add(1, Ordering::Relaxed);
            telemetry::counter!("fleet.retries");
            let delay = s
                .config
                .backoff
                .delay_ms(done.job, attempts.saturating_sub(1) as u32);
            s.bus.publish(done.job, EventKind::Retry, |o| {
                o.str("reason", "attempt_failed")
                    .u64("attempt", attempts as u64)
                    .f64("backoff_ms", delay);
            });
            s.queue.reenter(
                done.job,
                priority,
                attempts,
                Duration::from_secs_f64(delay / 1e3),
            );
        }
        Decision::Final(state, error) => finalize(s, done.job, state, error),
    }
}

enum Decision {
    Retry(Priority, usize),
    Final(JobState, Option<String>),
}

// ---- dispatcher --------------------------------------------------------

fn idle_live_worker(inner: &Inner) -> Option<usize> {
    inner
        .workers
        .iter()
        .position(|w| w.state == SlotState::Idle)
}

fn dispatch_loop(s: &Arc<Shared>) {
    loop {
        if s.draining.load(Ordering::SeqCst) {
            // Drain: stop leasing. Queued jobs stay journaled for the
            // next coordinator. Exit once the queue is closed.
            match s.queue.pop(Duration::from_millis(20)) {
                Popped::Closed => return,
                _ => continue,
            }
        }

        // Pop only when a lease could actually be granted: a popped
        // entry with no healthy worker would spin.
        let has_idle = {
            let inner = lock_inner(s);
            idle_live_worker(&inner).is_some()
        };
        if !has_idle {
            // All workers dead with the restart budget spent: fail
            // queued jobs with a typed error instead of leasing into
            // the void forever.
            let fleet_lost = {
                let inner = lock_inner(s);
                inner.workers.iter().all(|w| w.state == SlotState::Dead)
            } && s.counters.worker_restarts.load(Ordering::Relaxed) as usize
                >= s.config.max_worker_restarts;
            if fleet_lost {
                match s.queue.pop(Duration::from_millis(20)) {
                    Popped::Closed => return,
                    Popped::Timeout => continue,
                    Popped::Entry(entry) => {
                        finalize(
                            s,
                            entry.id,
                            JobState::Failed,
                            Some("no live workers and the restart budget is exhausted".into()),
                        );
                        continue;
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(2));
            continue;
        }

        match s.queue.pop(Duration::from_millis(20)) {
            Popped::Closed => return,
            Popped::Timeout => continue,
            Popped::Entry(entry) => dispatch(s, entry),
        }
    }
}

fn dispatch(s: &Arc<Shared>, entry: QueueEntry) {
    let id = entry.id;
    let lease = s.next_lease.fetch_add(1, Ordering::SeqCst);
    let mut inner = lock_inner(s);
    let Some(w) = idle_live_worker(&inner) else {
        // The worker died between the check and the pop: requeue
        // without burning an attempt.
        if let Some(rec) = inner.jobs.get(&id) {
            if !rec.state.is_terminal() {
                let priority = rec.priority;
                drop(inner);
                s.queue
                    .reenter(id, priority, entry.attempt, Duration::from_millis(5));
            }
        }
        return;
    };
    let Some(rec) = inner.jobs.get_mut(&id) else {
        return;
    };
    if rec.state.is_terminal() {
        return;
    }
    let elapsed_ms = rec.submitted.elapsed().as_secs_f64() * 1e3;
    if let Some(d) = rec.deadline_ms {
        if d - elapsed_ms <= 0.0 {
            drop(inner);
            finalize(
                s,
                id,
                JobState::Expired,
                Some(format!(
                    "deadline of {d:.0} ms expired after {elapsed_ms:.0} ms in queue"
                )),
            );
            return;
        }
    }
    rec.state = JobState::Running;
    rec.attempts = entry.attempt + 1;
    rec.queue_ms = elapsed_ms - rec.run_ms;
    {
        let mut qw = s.queue_waits.lock().unwrap_or_else(|e| e.into_inner());
        qw.push(rec.queue_ms.max(0.0));
    }
    telemetry::histogram!("fleet.queue_wait_ms", rec.queue_ms.max(0.0) as u64);
    rec.lease = Some((lease, w));
    let priority = rec.priority;
    let frame = CoordFrame::Lease {
        job: id,
        lease,
        attempt: entry.attempt,
        spec: rec.spec.clone(),
        deadline_ms: rec.deadline_ms.map(|d| d - elapsed_ms),
        checkpoint: s
            .config
            .data_dir
            .as_ref()
            .map(|d| d.join(format!("ckpt-{id}")).to_string_lossy().into_owned()),
    };
    inner.workers[w].state = SlotState::Leased { job: id, lease };
    let ok = match inner.workers[w].stdin.as_mut() {
        Some(stdin) => writeln!(stdin, "{}", frame.to_json())
            .and_then(|_| stdin.flush())
            .is_ok(),
        None => false,
    };
    if ok {
        telemetry::counter!("fleet.leases");
        return;
    }
    // The pipe is broken: the worker is dead. Roll the lease back (no
    // attempt burned), requeue, and let the death path clean the slot —
    // the slot keeps its Leased marker so worker_died stays idempotent,
    // but the rolled-back record makes expire_lease a no-op.
    if let Some(rec) = inner.jobs.get_mut(&id) {
        rec.lease = None;
        rec.state = JobState::Queued;
    }
    drop(inner);
    s.queue
        .reenter(id, priority, entry.attempt, Duration::from_millis(5));
    worker_died(s, w, "lease write failed");
}

// ---- monitor -----------------------------------------------------------

fn monitor_loop(s: &Arc<Shared>) {
    let timeout = Duration::from_millis(s.config.heartbeat_timeout_ms);
    let tick = Duration::from_millis((s.config.heartbeat_timeout_ms / 4).max(5));
    while !s.draining.load(Ordering::SeqCst) {
        let silent: Vec<usize> = {
            let inner = lock_inner(s);
            inner
                .workers
                .iter()
                .enumerate()
                .filter(|(_, w)| w.state != SlotState::Dead && w.last_beat.elapsed() > timeout)
                .map(|(i, _)| i)
                .collect()
        };
        for w in silent {
            worker_died(s, w, "heartbeat timeout");
        }
        std::thread::sleep(tick);
    }
}

// ---- SIGTERM -----------------------------------------------------------

static SIGTERM: AtomicBool = AtomicBool::new(false);

/// Installs a SIGTERM handler (once) and returns the flag it sets —
/// the graceful-drain trigger for the fleet binaries. On non-Unix
/// platforms the flag simply never fires.
pub fn sigterm_flag() -> &'static AtomicBool {
    #[cfg(unix)]
    {
        use std::sync::Once;
        static INSTALL: Once = Once::new();
        INSTALL.call_once(|| {
            extern "C" fn handler(_sig: i32) {
                // Only the async-signal-safe atomic store happens here.
                SIGTERM.store(true, Ordering::SeqCst);
            }
            extern "C" {
                fn signal(signum: i32, handler: usize) -> usize;
            }
            const SIGTERM_NO: i32 = 15;
            let f: extern "C" fn(i32) = handler;
            #[allow(clippy::fn_to_numeric_cast, clippy::fn_to_numeric_cast_any)]
            unsafe {
                signal(SIGTERM_NO, f as usize);
            }
        });
    }
    &SIGTERM
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admit_line(id: u64, spec: &JobSpec) -> String {
        let mut o = Obj::new();
        o.str("kind", "admit")
            .u64("id", id)
            .str("fp", &format!("{:016x}", spec_fingerprint(spec)))
            .raw("spec", &spec.to_json());
        o.finish()
    }

    fn done_line(id: u64, spec: &JobSpec, state: &str) -> String {
        let mut o = Obj::new();
        o.str("kind", "done")
            .u64("id", id)
            .str("fp", &format!("{:016x}", spec_fingerprint(spec)))
            .str("state", state);
        o.finish()
    }

    #[test]
    fn replay_is_first_wins_for_duplicate_terminals() {
        let spec = JobSpec::two_rail(20.0);
        let journal = [
            admit_line(1, &spec),
            done_line(1, &spec, "completed"),
            done_line(1, &spec, "failed"), // revived worker's late report
            done_line(1, &spec, "completed"),
        ]
        .join("\n");
        let r = replay_journal(&journal);
        assert_eq!(r.terminal.len(), 1);
        assert_eq!(r.terminal[&1].0, "completed");
        assert_eq!(r.duplicates, 2);
        assert!(r.pending.is_empty());
    }

    #[test]
    fn replay_readmits_unfinished_jobs_in_order() {
        let spec = JobSpec::two_rail(20.0);
        let journal = [
            admit_line(3, &spec),
            admit_line(1, &spec),
            admit_line(2, &spec),
            done_line(2, &spec, "failed"),
        ]
        .join("\n");
        let r = replay_journal(&journal);
        let ids: Vec<u64> = r.pending.iter().map(|(id, _, _)| *id).collect();
        assert_eq!(ids, vec![3, 1]); // journal order, not id order
        assert_eq!(r.next_id, 4);
    }

    #[test]
    fn replay_rejects_fingerprint_mismatch_and_garbage() {
        let spec = JobSpec::two_rail(20.0);
        let other = JobSpec::two_rail(99.0);
        let journal = [
            admit_line(1, &spec),
            done_line(1, &other, "completed"), // fp of a different spec
            "not json at all".into(),
            done_line(7, &spec, "completed"), // orphan: no admit
        ]
        .join("\n");
        let r = replay_journal(&journal);
        assert!(r.terminal.is_empty(), "mismatched fp must not finalize");
        assert_eq!(r.malformed, 3);
        assert_eq!(r.pending.len(), 1, "job 1 is still pending");
    }
}
