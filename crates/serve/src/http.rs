//! A hardened, dependency-free HTTP/1.1 front end for
//! [`RoutingService`].
//!
//! Deliberately minimal: one request per connection
//! (`Connection: close`), thread-per-connection with a hard cap, and a
//! parser with explicit limits on request-line, header, and body sizes.
//! Anything outside those limits is answered with a typed status code
//! — the server never panics on hostile input and never buffers an
//! unbounded body.
//!
//! Routes:
//!
//! | Method | Path               | Meaning                             |
//! |--------|--------------------|-------------------------------------|
//! | POST   | `/jobs`            | submit a [`JobSpec`] (JSON body)    |
//! | GET    | `/jobs`            | snapshots of all jobs               |
//! | GET    | `/jobs/<id>`       | one job's snapshot                  |
//! | GET    | `/jobs/<id>/events`| live NDJSON event stream (chunked); |
//! |        |                    | `?since=seq` long-polls instead     |
//! | GET    | `/jobs/<id>/profile`| the job's performance profile      |
//! |        |                    | (timeline summary + ScalingDiagnosis)|
//! | POST   | `/jobs/<id>/cancel`| cancel a job                        |
//! | GET    | `/healthz`         | liveness (always 200 while serving) |
//! | GET    | `/readyz`          | readiness (503 when not `Ready`)    |
//! | GET    | `/metrics`         | metrics as JSON, or Prometheus text |
//! |        |                    | via `Accept: text/plain` or         |
//! |        |                    | `?format=prometheus`                |
//!
//! Backpressure surfaces as HTTP: a saturated queue is `429` with a
//! `Retry-After` header, a draining service is `503`. The event stream
//! applies a write timeout, so a consumer that stops reading gets its
//! connection dropped instead of wedging a server thread.

use crate::events::{EventBus, EventKind};
use crate::fleet::FleetCoordinator;
use crate::job::{JobSnapshot, JobSpec};
use crate::service::{Readiness, RoutingService, SubmitError};
use sprout_telemetry::json::Obj;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Maximum request-line length (bytes).
const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Maximum single header line (bytes).
const MAX_HEADER_LINE: usize = 8 * 1024;
/// Maximum header count.
const MAX_HEADERS: usize = 64;
/// Maximum request body (bytes) — far above any legitimate [`JobSpec`].
const MAX_BODY: usize = 1024 * 1024;
/// Per-connection read timeout.
const READ_TIMEOUT: Duration = Duration::from_secs(5);
/// Per-connection write timeout — a consumer that stops reading a
/// chunked stream errors the writer out instead of wedging it.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);
/// Concurrent connections before the listener answers 503 immediately.
const MAX_CONNECTIONS: usize = 64;
/// How long one `?since=` long-poll blocks before returning empty.
const LONG_POLL_TIMEOUT: Duration = Duration::from_millis(1500);
/// Streaming wake-up granularity: the event wait per loop turn, between
/// which the writer probes for a silent client disconnect.
const STREAM_TICK: Duration = Duration::from_millis(250);

/// The service surface the HTTP front end routes to. Implemented by
/// both the in-process [`RoutingService`] and the multi-process
/// [`FleetCoordinator`], so the same daemon binary can front either.
pub trait JobBackend: Send + Sync {
    /// Admit a job; `Err` carries the backpressure/validation verdict.
    fn submit(&self, spec: JobSpec) -> Result<u64, SubmitError>;
    /// One job's snapshot, if known.
    fn status(&self, id: u64) -> Option<JobSnapshot>;
    /// Snapshots of every job.
    fn jobs(&self) -> Vec<JobSnapshot>;
    /// Request cancellation; `true` if the job could still be cancelled.
    fn cancel(&self, id: u64) -> bool;
    /// Readiness verdict for `/readyz`.
    fn ready(&self) -> Readiness;
    /// The `/metrics` JSON body.
    fn metrics_json(&self) -> String;
    /// The `/metrics` Prometheus text-exposition body.
    fn metrics_prometheus(&self) -> String;
    /// The per-job event bus backing `/jobs/<id>/events`.
    fn events(&self) -> Arc<EventBus>;
    /// The job's performance profile (JSON), if one was recorded.
    /// Default `None`: backends whose routing runs in other processes
    /// (fleet mode) have no in-process timeline to serve.
    fn profile(&self, _id: u64) -> Option<String> {
        None
    }
}

impl JobBackend for RoutingService {
    fn submit(&self, spec: JobSpec) -> Result<u64, SubmitError> {
        RoutingService::submit(self, spec)
    }
    fn status(&self, id: u64) -> Option<JobSnapshot> {
        RoutingService::status(self, id)
    }
    fn jobs(&self) -> Vec<JobSnapshot> {
        RoutingService::jobs(self)
    }
    fn cancel(&self, id: u64) -> bool {
        RoutingService::cancel(self, id)
    }
    fn ready(&self) -> Readiness {
        RoutingService::ready(self)
    }
    fn metrics_json(&self) -> String {
        self.metrics().to_json()
    }
    fn metrics_prometheus(&self) -> String {
        self.metrics().to_prometheus("sprout_serve_")
    }
    fn events(&self) -> Arc<EventBus> {
        RoutingService::events(self)
    }
    fn profile(&self, id: u64) -> Option<String> {
        RoutingService::profile(self, id)
    }
}

impl JobBackend for FleetCoordinator {
    fn submit(&self, spec: JobSpec) -> Result<u64, SubmitError> {
        FleetCoordinator::submit(self, spec)
    }
    fn status(&self, id: u64) -> Option<JobSnapshot> {
        FleetCoordinator::status(self, id)
    }
    fn jobs(&self) -> Vec<JobSnapshot> {
        FleetCoordinator::jobs(self)
    }
    fn cancel(&self, id: u64) -> bool {
        FleetCoordinator::cancel(self, id)
    }
    fn ready(&self) -> Readiness {
        FleetCoordinator::ready(self)
    }
    fn metrics_json(&self) -> String {
        self.metrics().to_json()
    }
    fn metrics_prometheus(&self) -> String {
        self.metrics().to_prometheus("sprout_fleet_")
    }
    fn events(&self) -> Arc<EventBus> {
        FleetCoordinator::events(self)
    }
}

/// The HTTP server handle. Dropping it stops the listener.
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// serves `service` — a [`RoutingService`] or a
    /// [`FleetCoordinator`] — until [`HttpServer::stop`] or drop.
    ///
    /// # Errors
    ///
    /// The bind error as a string.
    pub fn bind<B: JobBackend + 'static>(
        addr: &str,
        service: Arc<B>,
    ) -> Result<HttpServer, String> {
        let service: Arc<dyn JobBackend> = service;
        let listener = TcpListener::bind(addr).map_err(|e| e.to_string())?;
        let local = listener.local_addr().map_err(|e| e.to_string())?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let live = Arc::new(AtomicUsize::new(0));
        let accept_thread = std::thread::Builder::new()
            .name("sprout-serve-http".into())
            .spawn(move || {
                // A short accept timeout lets the loop observe `stop`.
                let _ = listener.set_nonblocking(false);
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if live.load(Ordering::SeqCst) >= MAX_CONNECTIONS {
                        let _ = respond_plain(&stream, 503, "Service Unavailable", "over capacity");
                        continue;
                    }
                    live.fetch_add(1, Ordering::SeqCst);
                    let service = Arc::clone(&service);
                    let live = Arc::clone(&live);
                    let _ = std::thread::Builder::new()
                        .name("sprout-serve-conn".into())
                        .spawn(move || {
                            let _ = handle_connection(&stream, &*service);
                            live.fetch_sub(1, Ordering::SeqCst);
                        });
                }
            })
            .map_err(|e| e.to_string())?;
        Ok(HttpServer {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept loop.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one last local connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

struct Request {
    method: String,
    path: String,
    query: String,
    accept: String,
    body: String,
}

enum ParseOutcome {
    Ok(Request),
    /// `(status, reason, detail)` — the request was rejected before
    /// reaching a route.
    Reject(u16, &'static str, String),
}

fn handle_connection(stream: &TcpStream, service: &dyn JobBackend) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let request = match parse_request(stream) {
        Ok(ParseOutcome::Ok(r)) => r,
        Ok(ParseOutcome::Reject(status, reason, detail)) => {
            return respond_plain(stream, status, reason, &detail);
        }
        Err(_) => return respond_plain(stream, 408, "Request Timeout", "read failed"),
    };
    route(stream, service, &request)
}

fn parse_request(stream: &TcpStream) -> std::io::Result<ParseOutcome> {
    let mut reader = BufReader::new(stream);

    let mut line = String::new();
    let n = reader
        .by_ref()
        .take(MAX_REQUEST_LINE as u64 + 1)
        .read_line(&mut line)?;
    if n == 0 || n > MAX_REQUEST_LINE {
        return Ok(ParseOutcome::Reject(
            414,
            "URI Too Long",
            "request line too long or empty".into(),
        ));
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Ok(ParseOutcome::Reject(
            400,
            "Bad Request",
            "malformed request line".into(),
        ));
    };
    let method = method.to_owned();
    let (path, query) = match path.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (path.to_owned(), String::new()),
    };

    let mut content_length = 0usize;
    let mut accept = String::new();
    for _ in 0..MAX_HEADERS {
        let mut header = String::new();
        let n = reader
            .by_ref()
            .take(MAX_HEADER_LINE as u64 + 1)
            .read_line(&mut header)?;
        if n == 0 || n > MAX_HEADER_LINE {
            return Ok(ParseOutcome::Reject(
                431,
                "Request Header Fields Too Large",
                "header too long or connection closed mid-headers".into(),
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            let body = if content_length > 0 {
                let mut buf = vec![0u8; content_length];
                reader.read_exact(&mut buf)?;
                match String::from_utf8(buf) {
                    Ok(s) => s,
                    Err(_) => {
                        return Ok(ParseOutcome::Reject(
                            400,
                            "Bad Request",
                            "body is not UTF-8".into(),
                        ))
                    }
                }
            } else {
                String::new()
            };
            return Ok(ParseOutcome::Ok(Request {
                method,
                path,
                query,
                accept,
                body,
            }));
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                match value.trim().parse::<usize>() {
                    Ok(len) if len <= MAX_BODY => content_length = len,
                    _ => {
                        return Ok(ParseOutcome::Reject(
                            413,
                            "Payload Too Large",
                            format!("content-length above the {MAX_BODY}-byte cap"),
                        ))
                    }
                }
            } else if name.eq_ignore_ascii_case("accept") {
                accept = value.trim().to_ascii_lowercase();
            }
        }
    }
    Ok(ParseOutcome::Reject(
        431,
        "Request Header Fields Too Large",
        "too many headers".into(),
    ))
}

fn route(stream: &TcpStream, service: &dyn JobBackend, req: &Request) -> std::io::Result<()> {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/jobs") => match JobSpec::parse(&req.body) {
            Ok(spec) => match service.submit(spec) {
                Ok(id) => {
                    let mut o = Obj::new();
                    o.u64("id", id).str("state", "queued");
                    respond_json(stream, 202, "Accepted", &o.finish(), &[])
                }
                Err(SubmitError::Saturated { retry_after_ms }) => {
                    let retry_s = (retry_after_ms / 1e3).ceil().max(1.0) as u64;
                    let header = format!("Retry-After: {retry_s}");
                    let mut o = Obj::new();
                    o.str("error", "queue saturated")
                        .f64("retry_after_ms", retry_after_ms);
                    respond_json(stream, 429, "Too Many Requests", &o.finish(), &[&header])
                }
                Err(SubmitError::Draining) => {
                    respond_plain(stream, 503, "Service Unavailable", "draining")
                }
                Err(SubmitError::Invalid(e)) => {
                    respond_plain(stream, 400, "Bad Request", &e.to_string())
                }
                Err(SubmitError::Journal(e)) => {
                    respond_plain(stream, 500, "Internal Server Error", &e)
                }
            },
            Err(e) => respond_plain(stream, 400, "Bad Request", &e.to_string()),
        },
        ("GET", "/jobs") => {
            let body = sprout_telemetry::json::array(service.jobs().iter().map(|j| j.to_json()));
            respond_json(stream, 200, "OK", &body, &[])
        }
        ("GET", "/healthz") => respond_plain(stream, 200, "OK", "alive"),
        ("GET", "/readyz") => {
            let r = service.ready();
            let (status, reason) = match r {
                Readiness::Ready | Readiness::Overloaded => (200, "OK"),
                Readiness::Draining => (503, "Service Unavailable"),
            };
            respond_plain(stream, status, reason, r.name())
        }
        ("GET", "/metrics") => {
            // Content negotiation: Prometheus scrapers send
            // `Accept: text/plain` (or set `?format=prometheus`);
            // everything else keeps the JSON body.
            let wants_prom = query_param(&req.query, "format").as_deref() == Some("prometheus")
                || (req.accept.contains("text/plain") && !req.accept.contains("application/json"));
            if wants_prom {
                let body = service.metrics_prometheus();
                let head = format!(
                    "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                    body.len()
                );
                let mut w = stream;
                w.write_all(head.as_bytes())?;
                w.write_all(body.as_bytes())?;
                w.flush()
            } else {
                respond_json(stream, 200, "OK", &service.metrics_json(), &[])
            }
        }
        ("GET", path) if path.starts_with("/jobs/") && path.ends_with("/events") => {
            let id = path
                .strip_prefix("/jobs/")
                .and_then(|r| r.strip_suffix("/events"))
                .and_then(|r| r.parse::<u64>().ok());
            match id {
                Some(id) if service.status(id).is_some() => serve_events(stream, service, id, req),
                Some(_) => respond_plain(stream, 404, "Not Found", "unknown job"),
                None => respond_plain(stream, 400, "Bad Request", "bad job id"),
            }
        }
        ("GET", path) if path.starts_with("/jobs/") && path.ends_with("/profile") => {
            let id = path
                .strip_prefix("/jobs/")
                .and_then(|r| r.strip_suffix("/profile"))
                .and_then(|r| r.parse::<u64>().ok());
            match id {
                Some(id) => match service.profile(id) {
                    Some(body) => respond_json(stream, 200, "OK", &body, &[]),
                    None if service.status(id).is_some() => {
                        respond_plain(stream, 404, "Not Found", "no profile recorded")
                    }
                    None => respond_plain(stream, 404, "Not Found", "unknown job"),
                },
                None => respond_plain(stream, 400, "Bad Request", "bad job id"),
            }
        }
        ("POST", path) if path.starts_with("/jobs/") && path.ends_with("/cancel") => {
            let id = path
                .strip_prefix("/jobs/")
                .and_then(|r| r.strip_suffix("/cancel"))
                .and_then(|r| r.parse::<u64>().ok());
            match id {
                Some(id) if service.cancel(id) => respond_plain(stream, 200, "OK", "cancelling"),
                Some(_) => respond_plain(stream, 404, "Not Found", "unknown or terminal job"),
                None => respond_plain(stream, 400, "Bad Request", "bad job id"),
            }
        }
        ("GET", path) if path.starts_with("/jobs/") => {
            match path
                .strip_prefix("/jobs/")
                .and_then(|r| r.parse::<u64>().ok())
            {
                Some(id) => match service.status(id) {
                    Some(snap) => respond_json(stream, 200, "OK", &snap.to_json(), &[]),
                    None => respond_plain(stream, 404, "Not Found", "unknown job"),
                },
                None => respond_plain(stream, 400, "Bad Request", "bad job id"),
            }
        }
        _ => respond_plain(stream, 404, "Not Found", "no such route"),
    }
}

/// `GET /jobs/<id>/events` — with `?since=seq` a single bounded
/// long-poll response, otherwise a chunked NDJSON stream that ends
/// after the job's terminal event.
fn serve_events(
    stream: &TcpStream,
    service: &dyn JobBackend,
    id: u64,
    req: &Request,
) -> std::io::Result<()> {
    let bus = service.events();

    if let Some(since) = query_param(&req.query, "since") {
        let Ok(since) = since.parse::<u64>() else {
            return respond_plain(stream, 400, "Bad Request", "bad since cursor");
        };
        let page = bus.wait_since(id, since, LONG_POLL_TIMEOUT);
        let mut body = String::new();
        for ev in &page.events {
            body.push_str(&ev.line);
            body.push('\n');
        }
        let dropped = format!("X-Dropped-Events: {}", page.dropped);
        let terminal = format!("X-Stream-Terminal: {}", page.terminal);
        let head = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nContent-Length: {}\r\n{dropped}\r\n{terminal}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        let mut w = stream;
        w.write_all(head.as_bytes())?;
        w.write_all(body.as_bytes())?;
        return w.flush();
    }

    // Streaming path. The write timeout is the backpressure boundary:
    // a consumer that stops reading fills the socket buffer and the
    // next chunk write errors out, freeing the thread. The routing hot
    // path never blocks either way — publishers only append to the
    // ring.
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    let mut w = stream;
    w.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
    )?;
    w.flush()?;

    let mut since = 0u64;
    loop {
        let page = bus.wait_since(id, since, STREAM_TICK);
        let mut saw_terminal = false;
        for ev in &page.events {
            since = ev.seq;
            write_chunk(stream, &format!("{}\n", ev.line))?;
            if ev.kind == EventKind::Terminal {
                saw_terminal = true;
            }
        }
        if saw_terminal || (page.terminal && page.events.is_empty()) {
            break;
        }
        // Idle tick: probe for a silent client disconnect so an
        // abandoned stream on a quiet job does not pin a thread.
        if page.events.is_empty() && client_gone(stream) {
            return Ok(());
        }
    }
    let mut w = stream;
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

/// One HTTP/1.1 chunk: hex length, CRLF, data, CRLF.
fn write_chunk(mut stream: &TcpStream, data: &str) -> std::io::Result<()> {
    let framed = format!("{:x}\r\n{data}\r\n", data.len());
    stream.write_all(framed.as_bytes())?;
    stream.flush()
}

/// `true` when the peer has closed its end — a non-blocking peek sees
/// EOF. `WouldBlock` means the client is still there, just quiet.
fn client_gone(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let gone = match stream.peek(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false,
        Err(_) => true,
    };
    let _ = stream.set_nonblocking(false);
    gone
}

/// The value of `key` in a raw query string (`a=1&b=2`), undecoded.
fn query_param(query: &str, key: &str) -> Option<String> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then(|| v.to_owned())
    })
}

fn respond_json(
    mut stream: &TcpStream,
    status: u16,
    reason: &str,
    body: &str,
    extra_headers: &[&str],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for h in extra_headers {
        head.push_str(h);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn respond_plain(
    mut stream: &TcpStream,
    status: u16,
    reason: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
