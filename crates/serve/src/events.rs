//! Bounded per-job event bus: the live observability plane.
//!
//! Everything a client can watch over `GET /jobs/:id/events` flows
//! through one [`EventBus`]: supervisor wave progress, per-stage span
//! timings (grow/refine/reheat — the paper's §II stages), solver
//! residual points, retry/panic incidents, and exactly one terminal
//! event per job. Producers never block on consumers: each job owns a
//! bounded ring (drop-oldest, like [`sprout_telemetry::ring::RingSink`])
//! and every publish is a short mutex hold plus a condvar notify —
//! whether zero or many HTTP streams are attached.
//!
//! Events carry a per-job monotone sequence number starting at 1, so a
//! long-poll client can resume with `?since=seq` and replay is
//! idempotent: the same `since` always yields the same suffix (minus
//! anything the ring has dropped, which the `dropped` counters admit
//! to).
//!
//! In-process jobs feed the bus two ways: the supervisor's `on_wave`
//! hook publishes [`EventKind::Progress`], and a [`JobRecorder`]
//! installed around the routing run captures telemetry spans/points
//! with job attribution. Fleet mode feeds the same bus from
//! [`WorkerFrame::Progress`](crate::proto::WorkerFrame) frames instead,
//! so streaming behaves identically under `--fleet N`.

use sprout_telemetry::json::Obj;
use sprout_telemetry::prof::ProfMutex;
use sprout_telemetry::{Event, Recorder};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar};
use std::time::{Duration, Instant};

/// Default per-job ring capacity. Generous for a routing job (a few
/// dozen stage spans plus iteration points per rail) while bounding a
/// pathological producer to ~tens of KiB of rendered lines per job.
pub const DEFAULT_EVENT_CAPACITY: usize = 256;

/// What a bus event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A supervisor wave finished (checkpoint already on disk).
    Progress,
    /// A pipeline stage span closed (space/tile/seed/grow/refine/
    /// reheat/backconv).
    Stage,
    /// A solver/iteration point: objective residuals, solver
    /// fallbacks, budget overruns.
    Residual,
    /// A rail or job attempt is being retried.
    Retry,
    /// A worker panic was caught at the isolation boundary.
    Panic,
    /// The job reached its single terminal state. Always the last
    /// event of a stream.
    Terminal,
}

impl EventKind {
    /// Wire name used in the `"event"` field of every NDJSON line.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Progress => "progress",
            EventKind::Stage => "stage",
            EventKind::Residual => "residual",
            EventKind::Retry => "retry",
            EventKind::Panic => "panic",
            EventKind::Terminal => "terminal",
        }
    }
}

/// One published event: the rendered NDJSON line plus the metadata
/// consumers filter on without re-parsing it.
#[derive(Debug, Clone)]
pub struct JobEvent {
    /// Per-job monotone sequence number, starting at 1.
    pub seq: u64,
    /// The job this event belongs to.
    pub job: u64,
    /// Event class.
    pub kind: EventKind,
    /// Rendered JSON object (single line, no trailing newline).
    pub line: String,
}

/// A `snapshot_since`/`wait_since` result page.
#[derive(Debug, Clone, Default)]
pub struct EventPage {
    /// Events with `seq > since`, in sequence order.
    pub events: Vec<JobEvent>,
    /// Events this job's ring has dropped so far (drop-oldest).
    pub dropped: u64,
    /// Whether the job's terminal event has been published. Once true
    /// the stream is complete: no further events will ever arrive.
    pub terminal: bool,
}

#[derive(Debug, Default)]
struct Channel {
    events: VecDeque<JobEvent>,
    next_seq: u64,
    dropped: u64,
    terminals: u64,
}

/// The bus: per-job bounded rings plus process-wide publish/drop
/// counters surfaced as `events_published`/`events_dropped` metrics.
#[derive(Debug)]
pub struct EventBus {
    capacity: usize,
    // Contention-accounted: every publisher and every streaming client
    // serializes here, so under load this lock is the first suspect the
    // profiler's ScalingDiagnosis should be able to confirm or clear.
    channels: ProfMutex<HashMap<u64, Channel>>,
    wake: Condvar,
    published: AtomicU64,
    dropped: AtomicU64,
}

impl Default for EventBus {
    fn default() -> Self {
        EventBus::new(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventBus {
    /// A bus whose per-job rings hold at most `capacity` events
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> EventBus {
        EventBus {
            capacity: capacity.max(1),
            channels: ProfMutex::new("serve.event_bus", HashMap::new()),
            wake: Condvar::new(),
            published: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Publishes one event for `job`. The bus assigns the sequence
    /// number and renders the line as
    /// `{"seq":N,"job":J,"event":"kind",...}` with `fields` appending
    /// the kind-specific rest. Never blocks on consumers: a full ring
    /// drops its oldest event and counts it.
    pub fn publish(&self, job: u64, kind: EventKind, fields: impl FnOnce(&mut Obj)) {
        let mut channels = self.channels.lock();
        let ch = channels.entry(job).or_default();
        ch.next_seq += 1;
        let seq = ch.next_seq;
        let mut obj = Obj::new();
        obj.u64("seq", seq)
            .u64("job", job)
            .str("event", kind.name());
        fields(&mut obj);
        if ch.events.len() >= self.capacity {
            ch.events.pop_front();
            ch.dropped += 1;
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        if kind == EventKind::Terminal {
            ch.terminals += 1;
        }
        ch.events.push_back(JobEvent {
            seq,
            job,
            kind,
            line: obj.finish(),
        });
        self.published.fetch_add(1, Ordering::Relaxed);
        drop(channels);
        self.wake.notify_all();
    }

    /// Every buffered event for `job` with `seq > since`, without
    /// waiting. An unknown job yields an empty non-terminal page.
    pub fn snapshot_since(&self, job: u64, since: u64) -> EventPage {
        let channels = self.channels.lock();
        Self::page(&channels, job, since)
    }

    /// Like [`EventBus::snapshot_since`], but blocks until the page is
    /// non-empty, the job is terminal, or `timeout` elapses — the
    /// long-poll primitive.
    pub fn wait_since(&self, job: u64, since: u64, timeout: Duration) -> EventPage {
        let deadline = Instant::now() + timeout;
        let mut channels = self.channels.lock();
        loop {
            let page = Self::page(&channels, job, since);
            if !page.events.is_empty() || page.terminal {
                return page;
            }
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return page;
            };
            if left.is_zero() {
                return page;
            }
            let (guard, _timed_out) = self
                .wake
                .wait_timeout(channels, left)
                .unwrap_or_else(|e| e.into_inner());
            channels = guard;
        }
    }

    fn page(channels: &HashMap<u64, Channel>, job: u64, since: u64) -> EventPage {
        let Some(ch) = channels.get(&job) else {
            return EventPage::default();
        };
        EventPage {
            events: ch
                .events
                .iter()
                .filter(|e| e.seq > since)
                .cloned()
                .collect(),
            dropped: ch.dropped,
            terminal: ch.terminals > 0,
        }
    }

    /// Terminal events ever published for `job` — the exactly-once
    /// observability contract (counted even if the ring later drops
    /// the event itself).
    pub fn terminal_events(&self, job: u64) -> u64 {
        let channels = self.channels.lock();
        channels.get(&job).map(|c| c.terminals).unwrap_or(0)
    }

    /// Total events published since the bus was created.
    pub fn events_published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Total events dropped to drop-oldest backpressure.
    pub fn events_dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Stage spans forwarded to the bus, in pipeline order — the paper's
/// §II stages as instrumented in `sprout-core`'s router.
pub const STAGE_SPANS: [&str; 7] = [
    "space", "tile", "seed", "grow", "refine", "reheat", "backconv",
];

/// Points forwarded as [`EventKind::Residual`]: per-iteration
/// objective samples plus solver incidents.
const RESIDUAL_POINTS: [&str; 7] = [
    "grow_iter",
    "refine_iter",
    "reheat_iter",
    "cg_not_converged",
    "bicgstab_not_converged",
    "solver_fallback",
    "budget_overrun",
];

/// A [`Recorder`] adapter that tags telemetry with a job id and feeds
/// the bus, chaining to whatever recorder was already current so
/// existing sinks keep seeing everything.
///
/// Only an allowlist is forwarded — stage span ends, residual points,
/// retry and panic points — so the per-event cost stays a filtered
/// match for the torrent of solver-internal events.
pub struct JobRecorder {
    bus: Arc<EventBus>,
    job: u64,
    inner: Option<Arc<dyn Recorder>>,
}

impl JobRecorder {
    /// An adapter for `job` publishing to `bus` and chaining to
    /// `inner` (pass [`sprout_telemetry::current`]'s result to keep
    /// the previously-installed recorder live).
    pub fn new(bus: Arc<EventBus>, job: u64, inner: Option<Arc<dyn Recorder>>) -> JobRecorder {
        JobRecorder { bus, job, inner }
    }
}

impl std::fmt::Debug for JobRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobRecorder")
            .field("job", &self.job)
            .field("chained", &self.inner.is_some())
            .finish()
    }
}

impl Recorder for JobRecorder {
    fn record(&self, event: &Event) {
        match event {
            Event::SpanEnd {
                name,
                elapsed_ns,
                fields,
                ..
            } if STAGE_SPANS.contains(name) => {
                self.bus.publish(self.job, EventKind::Stage, |obj| {
                    obj.str("stage", name)
                        .f64("elapsed_ms", *elapsed_ns as f64 / 1e6);
                    for (k, v) in fields {
                        obj.value(k, v);
                    }
                });
            }
            Event::Point { name, fields, .. } => {
                let kind = match *name {
                    "retry" => EventKind::Retry,
                    "worker_panic" => EventKind::Panic,
                    n if RESIDUAL_POINTS.contains(&n) => EventKind::Residual,
                    _ => {
                        if let Some(inner) = &self.inner {
                            inner.record(event);
                        }
                        return;
                    }
                };
                self.bus.publish(self.job, kind, |obj| {
                    obj.str("point", name);
                    for (k, v) in fields {
                        obj.value(k, v);
                    }
                });
            }
            _ => {}
        }
        if let Some(inner) = &self.inner {
            inner.record(event);
        }
    }

    fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprout_telemetry::json::{parse, Json};
    use sprout_telemetry::{self as telemetry, RecorderScope};

    #[test]
    fn sequences_are_monotone_and_replay_is_idempotent() {
        let bus = EventBus::new(16);
        for i in 0..5u64 {
            bus.publish(7, EventKind::Progress, |o| {
                o.u64("wave", i);
            });
        }
        let all = bus.snapshot_since(7, 0);
        assert_eq!(all.events.len(), 5);
        assert_eq!(
            all.events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5]
        );
        // Replay from the same cursor twice: identical pages.
        let a = bus.snapshot_since(7, 2);
        let b = bus.snapshot_since(7, 2);
        assert_eq!(
            a.events.iter().map(|e| &e.line).collect::<Vec<_>>(),
            b.events.iter().map(|e| &e.line).collect::<Vec<_>>()
        );
        assert_eq!(a.events.first().map(|e| e.seq), Some(3));
        // Every line parses and self-describes.
        let root = parse(&all.events[0].line).expect("event line is JSON");
        assert_eq!(root.get("seq").and_then(Json::as_u64), Some(1));
        assert_eq!(root.get("job").and_then(Json::as_u64), Some(7));
        assert_eq!(root.get("event").and_then(Json::as_str), Some("progress"));
    }

    #[test]
    fn full_ring_drops_oldest_and_counts_it() {
        let bus = EventBus::new(3);
        for i in 0..5u64 {
            bus.publish(1, EventKind::Progress, |o| {
                o.u64("wave", i);
            });
        }
        let page = bus.snapshot_since(1, 0);
        assert_eq!(page.events.len(), 3);
        assert_eq!(page.events[0].seq, 3, "oldest two evicted");
        assert_eq!(page.dropped, 2);
        assert_eq!(bus.events_published(), 5);
        assert_eq!(bus.events_dropped(), 2);
    }

    #[test]
    fn exactly_at_capacity_nothing_drops_one_more_evicts_first() {
        let bus = EventBus::new(4);
        for i in 0..4u64 {
            bus.publish(9, EventKind::Progress, |o| {
                o.u64("wave", i);
            });
        }
        // Exactly full: every event still present, nothing dropped.
        let page = bus.snapshot_since(9, 0);
        assert_eq!(
            page.events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        assert_eq!(page.dropped, 0);
        assert_eq!(bus.events_dropped(), 0);
        // One past capacity: exactly the oldest goes.
        bus.publish(9, EventKind::Progress, |o| {
            o.u64("wave", 4);
        });
        let page = bus.snapshot_since(9, 0);
        assert_eq!(
            page.events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4, 5]
        );
        assert_eq!(page.dropped, 1);
    }

    #[test]
    fn since_cursor_replays_consistently_across_eviction() {
        let bus = EventBus::new(3);
        for i in 0..6u64 {
            bus.publish(5, EventKind::Progress, |o| {
                o.u64("wave", i);
            });
        }
        // Ring now holds seqs 4..6; the client's cursor (1) predates
        // the eviction horizon. The page yields the surviving suffix
        // and admits to the gap via `dropped`.
        let a = bus.snapshot_since(5, 1);
        assert_eq!(
            a.events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![4, 5, 6]
        );
        assert_eq!(a.dropped, 3);
        // Replay with the same cursor is idempotent...
        let b = bus.snapshot_since(5, 1);
        assert_eq!(
            a.events.iter().map(|e| &e.line).collect::<Vec<_>>(),
            b.events.iter().map(|e| &e.line).collect::<Vec<_>>()
        );
        // ...and a caught-up cursor yields an empty page, not an error.
        let done = bus.snapshot_since(5, 6);
        assert!(done.events.is_empty());
        assert_eq!(done.dropped, 3);
    }

    #[test]
    fn terminal_state_survives_full_ring_eviction() {
        let bus = EventBus::new(2);
        bus.publish(8, EventKind::Terminal, |o| {
            o.str("state", "completed");
        });
        // Flood the ring until the terminal *event* itself is evicted.
        for i in 0..5u64 {
            bus.publish(8, EventKind::Progress, |o| {
                o.u64("wave", i);
            });
        }
        let page = bus.snapshot_since(8, 0);
        assert!(
            page.events.iter().all(|e| e.kind != EventKind::Terminal),
            "terminal event was evicted from the ring"
        );
        // The terminal *state* must survive eviction: streams still
        // complete and the exactly-once counter still reads 1.
        assert!(page.terminal);
        assert_eq!(bus.terminal_events(8), 1);
        let t0 = Instant::now();
        let page = bus.wait_since(8, 6, Duration::from_secs(10));
        assert!(page.terminal && page.events.is_empty());
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "terminal job must not block the long-poll"
        );
    }

    #[test]
    fn wait_since_wakes_on_publish_and_on_terminal() {
        let bus = Arc::new(EventBus::new(8));
        let b2 = Arc::clone(&bus);
        let waiter = std::thread::spawn(move || b2.wait_since(3, 0, Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(30));
        bus.publish(3, EventKind::Terminal, |o| {
            o.str("state", "completed");
        });
        let page = waiter.join().expect("waiter");
        assert_eq!(page.events.len(), 1);
        assert!(page.terminal);
        assert_eq!(bus.terminal_events(3), 1);
        // A drained cursor on a terminal job returns immediately.
        let t0 = Instant::now();
        let page = bus.wait_since(3, 1, Duration::from_secs(10));
        assert!(page.terminal && page.events.is_empty());
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn recorder_adapter_forwards_the_allowlist_with_attribution() {
        let bus = Arc::new(EventBus::new(32));
        {
            let rec = Arc::new(JobRecorder::new(Arc::clone(&bus), 42, None));
            let _scope = RecorderScope::install(rec);
            let _stage = telemetry::span("grow").field("rail", 1u64).enter();
            telemetry::point("grow_iter").field("iter", 0u64).emit();
            telemetry::point("worker_panic").field("why", "test").emit();
            telemetry::point("uninteresting").emit();
            // `_stage` drops here: SpanEnd("grow") forwarded.
        }
        let page = bus.snapshot_since(42, 0);
        let kinds: Vec<EventKind> = page.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![EventKind::Residual, EventKind::Panic, EventKind::Stage]
        );
        for e in &page.events {
            let root = parse(&e.line).expect("line parses");
            assert_eq!(root.get("job").and_then(Json::as_u64), Some(42));
        }
        let stage = &page.events[2];
        let root = parse(&stage.line).expect("stage line parses");
        assert_eq!(root.get("stage").and_then(Json::as_str), Some("grow"));
        assert!(root.get("elapsed_ms").and_then(Json::as_f64).is_some());
    }
}
