//! Deterministic service-level fault injection.
//!
//! [`ServeFaultPlan`] is the service's counterpart to the router's
//! `FaultPlan`: a seeded, reproducible description of what to break.
//! Decisions are pure functions of `(seed, job id, attempt)` through
//! [`sprout_rng::hash3`] — no RNG state, no ordering sensitivity — so a
//! chaos sweep that fails replays identically from its seed.
//!
//! Faults injected at this layer:
//!
//! * **Worker panic** — the service worker panics before the job runs;
//!   the service's `catch_unwind` boundary must convert it to a typed
//!   retryable error. Injected only on attempt 0, so a retried job
//!   always makes progress.
//! * **Mid-job kill** — the job routes its first wave, checkpoints, and
//!   then its worker "dies" (the deterministic stand-in for `kill -9`):
//!   the job never finalizes and no completion record is journaled.
//!   Only a restarted service can recover it — which is exactly what
//!   the crash-recovery tests assert. Mutually exclusive with the panic
//!   fault and injected only on attempt 0.
//! * **Slow job** — the worker stalls before routing, driving deadline
//!   and backpressure paths.

use sprout_rng::{hash3, u64_to_f64};

/// Seeded service-fault plan. `None` everywhere in production.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeFaultPlan {
    /// Seed for every injection decision.
    pub seed: u64,
    /// Probability a job's first attempt panics in the worker.
    pub panic_rate: f64,
    /// Probability a job's first attempt is killed mid-job after its
    /// first checkpoint. Exclusive with `panic_rate` per job: a job
    /// that panics is never also killed.
    pub kill_rate: f64,
    /// Probability any attempt stalls for [`ServeFaultPlan::slow_ms`]
    /// before routing.
    pub slow_rate: f64,
    /// Stall duration for slow jobs (ms).
    pub slow_ms: u64,
}

impl ServeFaultPlan {
    /// A quiet plan: nothing injected.
    pub fn quiet(seed: u64) -> ServeFaultPlan {
        ServeFaultPlan {
            seed,
            panic_rate: 0.0,
            kill_rate: 0.0,
            slow_rate: 0.0,
            slow_ms: 0,
        }
    }

    fn draw(&self, salt: u64, job: u64, attempt: usize) -> f64 {
        u64_to_f64(hash3(self.seed ^ salt, job, attempt as u64))
    }

    /// Should this attempt panic in the worker? (Attempt 0 only.)
    pub fn panics(&self, job: u64, attempt: usize) -> bool {
        attempt == 0 && self.draw(0x50A71C, job, attempt) < self.panic_rate
    }

    /// Should this attempt be killed mid-job? (Attempt 0 only, never
    /// when the panic fault already claimed the job.)
    pub fn kills(&self, job: u64, attempt: usize) -> bool {
        attempt == 0
            && !self.panics(job, attempt)
            && self.draw(0x4B11, job, attempt) < self.kill_rate
    }

    /// Should this attempt stall before routing?
    pub fn slows(&self, job: u64, attempt: usize) -> bool {
        self.draw(0x510, job, attempt) < self.slow_rate
    }
}

/// Seeded *process-level* fault plan for fleet workers — the
/// [`ServeFaultPlan`] idea one robustness boundary out. Decisions are
/// pure functions of `(seed, job id, attempt)`, drawn inside the worker
/// process itself, so a fleet chaos run replays identically from its
/// seed at any worker count.
///
/// * **Kill** — the worker calls `exit(9)` right after the first wave's
///   checkpoint hits disk (the deterministic stand-in for `kill -9`).
///   The coordinator sees EOF on the worker's pipe, expires the lease,
///   and re-dispatches the job; the next worker resumes from the
///   checkpoint. Attempt 0 only, so a re-dispatched job always makes
///   progress.
/// * **Stall** — the worker sleeps before routing (SIGSTOP stand-in);
///   long stalls trip the heartbeat timeout and force re-dispatch.
/// * **Heartbeat blackout** — the worker keeps routing but suppresses
///   heartbeats for a window, then *finishes and reports anyway*: the
///   slow-then-revived case whose stale completion the coordinator must
///   reject. Attempt 0 only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetFaultPlan {
    /// Seed for every injection decision.
    pub seed: u64,
    /// Probability a job's first attempt kills its worker process right
    /// after the first checkpoint.
    pub kill_rate: f64,
    /// Probability any attempt stalls before routing.
    pub stall_rate: f64,
    /// Stall duration (ms).
    pub stall_ms: u64,
    /// Probability a job's first attempt suppresses heartbeats for
    /// [`FleetFaultPlan::blackout_ms`] while still finishing the job.
    pub blackout_rate: f64,
    /// Heartbeat-blackout window (ms). Longer than the coordinator's
    /// heartbeat timeout, or nothing interesting happens.
    pub blackout_ms: u64,
}

impl FleetFaultPlan {
    /// A quiet plan: nothing injected.
    pub fn quiet(seed: u64) -> FleetFaultPlan {
        FleetFaultPlan {
            seed,
            kill_rate: 0.0,
            stall_rate: 0.0,
            stall_ms: 0,
            blackout_rate: 0.0,
            blackout_ms: 0,
        }
    }

    fn draw(&self, salt: u64, job: u64, attempt: usize) -> f64 {
        u64_to_f64(hash3(self.seed ^ salt, job, attempt as u64))
    }

    /// Should this attempt kill the worker process after the first
    /// wave's checkpoint? (Attempt 0 only.)
    pub fn kills(&self, job: u64, attempt: usize) -> bool {
        attempt == 0 && self.draw(0xF1EE74B11, job, attempt) < self.kill_rate
    }

    /// Should this attempt stall before routing?
    pub fn stalls(&self, job: u64, attempt: usize) -> bool {
        self.draw(0xF1EE7510, job, attempt) < self.stall_rate
    }

    /// Should this attempt black out heartbeats while still finishing?
    /// (Attempt 0 only, never on an attempt that already kills.)
    pub fn blackouts(&self, job: u64, attempt: usize) -> bool {
        attempt == 0
            && !self.kills(job, attempt)
            && self.draw(0xF1EE7B1AC, job, attempt) < self.blackout_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_decisions_are_deterministic_and_kill_excludes_blackout() {
        let plan = FleetFaultPlan {
            seed: 42,
            kill_rate: 0.5,
            stall_rate: 0.3,
            stall_ms: 5,
            blackout_rate: 0.5,
            blackout_ms: 50,
        };
        for job in 0..64 {
            assert_eq!(plan.kills(job, 0), plan.kills(job, 0));
            assert!(
                !(plan.kills(job, 0) && plan.blackouts(job, 0)),
                "kill and blackout are exclusive"
            );
            // Re-dispatched attempts always make progress.
            assert!(!plan.kills(job, 1));
            assert!(!plan.blackouts(job, 1));
        }
        let quiet = FleetFaultPlan::quiet(7);
        for job in 0..32 {
            assert!(!quiet.kills(job, 0) && !quiet.stalls(job, 0) && !quiet.blackouts(job, 0));
        }
    }

    #[test]
    fn decisions_are_deterministic_and_exclusive() {
        let plan = ServeFaultPlan {
            seed: 42,
            panic_rate: 0.5,
            kill_rate: 0.5,
            slow_rate: 0.3,
            slow_ms: 5,
        };
        for job in 0..64 {
            assert_eq!(plan.panics(job, 0), plan.panics(job, 0));
            assert_eq!(plan.kills(job, 0), plan.kills(job, 0));
            assert!(
                !(plan.panics(job, 0) && plan.kills(job, 0)),
                "panic and kill are exclusive"
            );
            // Retries always make progress: no attempt-1 injection.
            assert!(!plan.panics(job, 1));
            assert!(!plan.kills(job, 1));
        }
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let plan = ServeFaultPlan::quiet(7);
        for job in 0..32 {
            for attempt in 0..3 {
                assert!(!plan.panics(job, attempt));
                assert!(!plan.kills(job, attempt));
                assert!(!plan.slows(job, attempt));
            }
        }
    }
}
