//! Fleet wire protocol: newline-delimited JSON frames between the
//! coordinator and its worker processes.
//!
//! The coordinator owns each worker's stdin/stdout pipe pair. Frames
//! are one JSON object per line — the same hand-rolled JSON as the rest
//! of the workspace, hardened the same way: a frame that fails to parse
//! is a typed [`ProtoError`], never a panic, and the peer that sent it
//! is treated as faulty rather than trusted.
//!
//! Worker → coordinator: [`WorkerFrame::Hello`] once at startup,
//! [`WorkerFrame::Heartbeat`] on a timer (the liveness signal leases
//! hang off), [`WorkerFrame::Progress`] after every supervisor wave
//! (sent only once that wave's checkpoint is on disk), and
//! [`WorkerFrame::Done`] when a leased job finishes.
//!
//! Coordinator → worker: [`CoordFrame::Lease`] assigning one job (spec
//! embedded, checkpoint path shared through the coordinator's data
//! directory — that file is the cross-process resume handoff), and
//! [`CoordFrame::Drain`] asking the worker to exit once idle.
//!
//! Every `Done` is keyed by `(job, lease)` and the journal key adds the
//! [`spec_fingerprint`]: a revived worker reporting under an expired
//! lease is detected and ignored, which is what makes finalize
//! idempotent at the fleet level.

use crate::job::JobSpec;
use sprout_board::io::fnv1a64;
use sprout_telemetry::json::{self, Json, Obj};
use std::fmt;

/// Longest accepted frame line (bytes). A worker that emits more is
/// malfunctioning or hostile; the coordinator drops the frame.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// A frame the protocol could not accept.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    /// The line is not valid JSON.
    Json(String),
    /// The `type` field is missing or unknown.
    UnknownType(String),
    /// A required field is missing or mistyped for the frame type.
    Field(&'static str),
    /// The line exceeds [`MAX_FRAME_BYTES`].
    Oversized(usize),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Json(e) => write!(f, "frame is not valid JSON: {e}"),
            ProtoError::UnknownType(t) => write!(f, "unknown frame type `{t}`"),
            ProtoError::Field(what) => write!(f, "missing or mistyped frame field `{what}`"),
            ProtoError::Oversized(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME_BYTES}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Fingerprint of a job spec — FNV-1a over its canonical JSON line.
/// The journal's idempotent-finalize key is `(job id, fingerprint)`:
/// a terminal record only counts for the job it was actually computed
/// for, even across coordinator restarts and id reuse by a corrupt
/// journal.
pub fn spec_fingerprint(spec: &JobSpec) -> u64 {
    fnv1a64(spec.to_json().as_bytes())
}

/// Terminal outcome a worker reports for a leased job. The worker
/// *classifies*; the coordinator *decides* (retry vs finalize), so the
/// retry policy lives in exactly one process.
#[derive(Debug, Clone, PartialEq)]
pub struct DoneFrame {
    /// Job id.
    pub job: u64,
    /// The lease this run was performed under.
    pub lease: u64,
    /// Outcome hint: `completed`, `expired`, or `failed`.
    pub state: String,
    /// Rails restored from the checkpoint instead of re-routed.
    pub resumed: usize,
    /// Rails complete at the end of the attempt.
    pub rails_complete: usize,
    /// Rails in the job.
    pub rails_total: usize,
    /// Shipped metal area (mm²).
    pub area_mm2: f64,
    /// Linear solves spent.
    pub solves: u64,
    /// Routing wall clock (ms).
    pub run_ms: f64,
    /// First typed error, for non-completed outcomes.
    pub error: Option<String>,
    /// `true` when the failure class is worth re-dispatching.
    pub retryable: bool,
}

/// A frame sent by a worker process.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerFrame {
    /// First frame after startup.
    Hello {
        /// The worker's OS process id.
        pid: u32,
    },
    /// Periodic liveness signal.
    Heartbeat {
        /// Monotone per-worker sequence number.
        seq: u64,
    },
    /// One supervisor wave finished and its checkpoint is on disk —
    /// or, when `stage` names a pipeline stage rather than `"wave"`, a
    /// stage span closed. Either way the coordinator republishes the
    /// frame onto its event bus so `GET /jobs/:id/events` streams the
    /// same shapes in fleet mode as in-process.
    Progress {
        /// Job id.
        job: u64,
        /// Lease id.
        lease: u64,
        /// Wave just completed (0-based).
        wave: usize,
        /// Total waves.
        waves: usize,
        /// Rails complete so far.
        rails_complete: usize,
        /// What made progress: `"wave"` for wave completion, else a
        /// pipeline stage name (`grow`, `refine`, `reheat`, …).
        stage: String,
        /// Wall-clock since the attempt started (wave frames) or the
        /// stage span's own duration (stage frames), in ms.
        elapsed_ms: f64,
        /// Cumulative solve-stage wall time so far (ms); 0 for stage
        /// frames.
        solve_ms: f64,
    },
    /// A leased job finished.
    Done(DoneFrame),
}

impl WorkerFrame {
    /// Serializes the frame as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut o = Obj::new();
        match self {
            WorkerFrame::Hello { pid } => {
                o.str("type", "hello").u64("pid", u64::from(*pid));
            }
            WorkerFrame::Heartbeat { seq } => {
                o.str("type", "heartbeat").u64("seq", *seq);
            }
            WorkerFrame::Progress {
                job,
                lease,
                wave,
                waves,
                rails_complete,
                stage,
                elapsed_ms,
                solve_ms,
            } => {
                o.str("type", "progress")
                    .u64("job", *job)
                    .u64("lease", *lease)
                    .u64("wave", *wave as u64)
                    .u64("waves", *waves as u64)
                    .u64("rails_complete", *rails_complete as u64)
                    .str("stage", stage)
                    .f64("elapsed_ms", *elapsed_ms)
                    .f64("solve_ms", *solve_ms);
            }
            WorkerFrame::Done(d) => {
                o.str("type", "done")
                    .u64("job", d.job)
                    .u64("lease", d.lease)
                    .str("state", &d.state)
                    .u64("resumed", d.resumed as u64)
                    .u64("rails_complete", d.rails_complete as u64)
                    .u64("rails_total", d.rails_total as u64)
                    .f64("area_mm2", d.area_mm2)
                    .u64("solves", d.solves)
                    .f64("run_ms", d.run_ms)
                    .bool("retryable", d.retryable);
                if let Some(e) = &d.error {
                    o.str("error", e);
                }
            }
        }
        o.finish()
    }

    /// Parses one frame line.
    ///
    /// # Errors
    ///
    /// A typed [`ProtoError`]; hostile input never panics.
    pub fn parse(line: &str) -> Result<WorkerFrame, ProtoError> {
        let root = parse_frame(line)?;
        let ty = frame_type(&root)?;
        match ty.as_str() {
            "hello" => Ok(WorkerFrame::Hello {
                pid: need_u64(&root, "pid")? as u32,
            }),
            "heartbeat" => Ok(WorkerFrame::Heartbeat {
                seq: need_u64(&root, "seq")?,
            }),
            "progress" => Ok(WorkerFrame::Progress {
                job: need_u64(&root, "job")?,
                lease: need_u64(&root, "lease")?,
                wave: need_u64(&root, "wave")? as usize,
                waves: need_u64(&root, "waves")? as usize,
                rails_complete: need_u64(&root, "rails_complete")? as usize,
                // Lenient, like DoneFrame's optional fields: a frame
                // from an older worker still parses as wave progress.
                stage: root
                    .get("stage")
                    .and_then(Json::as_str)
                    .unwrap_or("wave")
                    .to_owned(),
                elapsed_ms: root.get("elapsed_ms").and_then(Json::as_f64).unwrap_or(0.0),
                solve_ms: root.get("solve_ms").and_then(Json::as_f64).unwrap_or(0.0),
            }),
            "done" => Ok(WorkerFrame::Done(DoneFrame {
                job: need_u64(&root, "job")?,
                lease: need_u64(&root, "lease")?,
                state: root
                    .get("state")
                    .and_then(Json::as_str)
                    .ok_or(ProtoError::Field("state"))?
                    .to_owned(),
                resumed: need_u64(&root, "resumed")? as usize,
                rails_complete: need_u64(&root, "rails_complete")? as usize,
                rails_total: need_u64(&root, "rails_total")? as usize,
                area_mm2: root.get("area_mm2").and_then(Json::as_f64).unwrap_or(0.0),
                solves: root.get("solves").and_then(Json::as_u64).unwrap_or(0),
                run_ms: root.get("run_ms").and_then(Json::as_f64).unwrap_or(0.0),
                error: root.get("error").and_then(Json::as_str).map(str::to_owned),
                retryable: matches!(root.get("retryable"), Some(Json::Bool(true))),
            })),
            other => Err(ProtoError::UnknownType(other.to_owned())),
        }
    }
}

/// A frame sent by the coordinator.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordFrame {
    /// Assign one job under a lease.
    Lease {
        /// Job id.
        job: u64,
        /// Lease id — unique per dispatch, so a re-dispatched job's
        /// stale first run is distinguishable from the live one.
        lease: u64,
        /// Dispatch attempt (0-based) — the fault plan's and backoff's
        /// escalation key.
        attempt: usize,
        /// The job spec, embedded.
        spec: JobSpec,
        /// Wall budget remaining at dispatch (ms).
        deadline_ms: Option<f64>,
        /// Supervisor checkpoint path, shared through the coordinator's
        /// data directory: attempt `n+1` on any worker resumes from the
        /// waves attempt `n` finished on whichever worker ran it.
        checkpoint: Option<String>,
    },
    /// Finish the current job (if any), then exit cleanly.
    Drain,
}

impl CoordFrame {
    /// Serializes the frame as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut o = Obj::new();
        match self {
            CoordFrame::Lease {
                job,
                lease,
                attempt,
                spec,
                deadline_ms,
                checkpoint,
            } => {
                o.str("type", "lease")
                    .u64("job", *job)
                    .u64("lease", *lease)
                    .u64("attempt", *attempt as u64)
                    .raw("spec", &spec.to_json());
                if let Some(d) = deadline_ms {
                    o.f64("deadline_ms", *d);
                }
                if let Some(c) = checkpoint {
                    o.str("checkpoint", c);
                }
            }
            CoordFrame::Drain => {
                o.str("type", "drain");
            }
        }
        o.finish()
    }

    /// Parses one frame line.
    ///
    /// # Errors
    ///
    /// A typed [`ProtoError`]; hostile input never panics.
    pub fn parse(line: &str) -> Result<CoordFrame, ProtoError> {
        let root = parse_frame(line)?;
        let ty = frame_type(&root)?;
        match ty.as_str() {
            "lease" => {
                let spec_json = root
                    .get("spec")
                    .map(crate::service::render_json)
                    .ok_or(ProtoError::Field("spec"))?;
                let spec = JobSpec::parse(&spec_json)
                    .map_err(|e| ProtoError::Json(format!("embedded spec: {e}")))?;
                Ok(CoordFrame::Lease {
                    job: need_u64(&root, "job")?,
                    lease: need_u64(&root, "lease")?,
                    attempt: need_u64(&root, "attempt")? as usize,
                    spec,
                    deadline_ms: root.get("deadline_ms").and_then(Json::as_f64),
                    checkpoint: root
                        .get("checkpoint")
                        .and_then(Json::as_str)
                        .map(str::to_owned),
                })
            }
            "drain" => Ok(CoordFrame::Drain),
            other => Err(ProtoError::UnknownType(other.to_owned())),
        }
    }
}

fn parse_frame(line: &str) -> Result<Json, ProtoError> {
    if line.len() > MAX_FRAME_BYTES {
        return Err(ProtoError::Oversized(line.len()));
    }
    json::parse(line.trim()).map_err(ProtoError::Json)
}

fn frame_type(root: &Json) -> Result<String, ProtoError> {
    root.get("type")
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or(ProtoError::Field("type"))
}

fn need_u64(root: &Json, field: &'static str) -> Result<u64, ProtoError> {
    root.get(field)
        .and_then(Json::as_u64)
        .ok_or(ProtoError::Field(field))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_frames_round_trip() {
        let frames = [
            WorkerFrame::Hello { pid: 4242 },
            WorkerFrame::Heartbeat { seq: 17 },
            WorkerFrame::Progress {
                job: 3,
                lease: 9,
                wave: 1,
                waves: 2,
                rails_complete: 1,
                stage: "wave".into(),
                elapsed_ms: 12.5,
                solve_ms: 7.25,
            },
            WorkerFrame::Progress {
                job: 3,
                lease: 9,
                wave: 0,
                waves: 2,
                rails_complete: 0,
                stage: "grow".into(),
                elapsed_ms: 3.5,
                solve_ms: 0.0,
            },
            WorkerFrame::Done(DoneFrame {
                job: 3,
                lease: 9,
                state: "completed".into(),
                resumed: 1,
                rails_complete: 2,
                rails_total: 2,
                area_mm2: 38.5,
                solves: 120,
                run_ms: 41.25,
                error: None,
                retryable: false,
            }),
            WorkerFrame::Done(DoneFrame {
                job: 4,
                lease: 11,
                state: "failed".into(),
                resumed: 0,
                rails_complete: 0,
                rails_total: 2,
                area_mm2: 0.0,
                solves: 0,
                run_ms: 1.0,
                error: Some("solver diverged".into()),
                retryable: true,
            }),
        ];
        for f in frames {
            assert_eq!(WorkerFrame::parse(&f.to_json()).expect("roundtrip"), f);
        }
    }

    #[test]
    fn coord_frames_round_trip() {
        let frames = [
            CoordFrame::Lease {
                job: 5,
                lease: 21,
                attempt: 1,
                spec: JobSpec::two_rail(20.0),
                deadline_ms: Some(1500.0),
                checkpoint: Some("/tmp/fleet/ckpt-5".into()),
            },
            CoordFrame::Lease {
                job: 6,
                lease: 22,
                attempt: 0,
                spec: JobSpec::two_rail(22.0),
                deadline_ms: None,
                checkpoint: None,
            },
            CoordFrame::Drain,
        ];
        for f in frames {
            assert_eq!(CoordFrame::parse(&f.to_json()).expect("roundtrip"), f);
        }
    }

    #[test]
    fn legacy_progress_frames_parse_leniently() {
        // A frame from a worker predating the enrichment fields must
        // still parse as wave progress with zeroed timings.
        let legacy =
            r#"{"type":"progress","job":3,"lease":9,"wave":1,"waves":2,"rails_complete":1}"#;
        match WorkerFrame::parse(legacy).expect("legacy frame parses") {
            WorkerFrame::Progress {
                stage,
                elapsed_ms,
                solve_ms,
                ..
            } => {
                assert_eq!(stage, "wave");
                assert_eq!(elapsed_ms, 0.0);
                assert_eq!(solve_ms, 0.0);
            }
            other => panic!("expected progress, got {other:?}"),
        }
    }

    #[test]
    fn hostile_frames_are_typed_rejections() {
        assert!(matches!(
            WorkerFrame::parse("not json"),
            Err(ProtoError::Json(_))
        ));
        assert!(matches!(
            WorkerFrame::parse("{}"),
            Err(ProtoError::Field("type"))
        ));
        assert!(matches!(
            WorkerFrame::parse(r#"{"type":"warp"}"#),
            Err(ProtoError::UnknownType(_))
        ));
        assert!(matches!(
            WorkerFrame::parse(r#"{"type":"heartbeat"}"#),
            Err(ProtoError::Field("seq"))
        ));
        assert!(matches!(
            CoordFrame::parse(r#"{"type":"lease","job":1,"lease":1,"attempt":0}"#),
            Err(ProtoError::Field("spec"))
        ));
        let big = format!(
            r#"{{"type":"heartbeat","seq":1,"pad":"{}"}}"#,
            "x".repeat(MAX_FRAME_BYTES)
        );
        assert!(matches!(
            WorkerFrame::parse(&big),
            Err(ProtoError::Oversized(_))
        ));
    }

    #[test]
    fn fingerprint_tracks_the_spec() {
        let a = JobSpec::two_rail(20.0);
        let mut b = JobSpec::two_rail(20.0);
        assert_eq!(spec_fingerprint(&a), spec_fingerprint(&b));
        b.rails[0].budget_mm2 = 21.0;
        assert_ne!(spec_fingerprint(&a), spec_fingerprint(&b));
    }
}
