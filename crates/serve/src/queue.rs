//! Bounded admission queue with priorities, delayed retries, and
//! explicit backpressure.
//!
//! The queue is the service's robustness boundary: it never grows
//! beyond its capacity. When full, [`BoundedQueue::admit`] either sheds
//! the lowest-priority queued job to make room for a strictly
//! higher-priority arrival, or rejects the arrival outright — the
//! caller turns that into an HTTP 429 with a `Retry-After` hint.
//! Retries and crash-recovered jobs re-enter through
//! [`BoundedQueue::reenter`], which bypasses the capacity check: a job
//! the service already accepted is never dropped by its own queue.
//!
//! Ordering: highest priority first; FIFO (admission sequence) within a
//! priority; entries with a future `ready_at` (retry backoff) are
//! invisible until their delay elapses.

use crate::job::Priority;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// One queued job.
#[derive(Debug, Clone)]
pub struct QueueEntry {
    /// Job id.
    pub id: u64,
    /// Admission priority.
    pub priority: Priority,
    /// Admission sequence number (FIFO tie-break within a priority).
    pub seq: u64,
    /// The entry is invisible to [`BoundedQueue::pop`] before this
    /// instant (retry backoff delay).
    pub ready_at: Instant,
    /// Service-level attempt counter (0 = first run).
    pub attempt: usize,
}

/// Why an admission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The queue is at capacity and no queued job has a strictly lower
    /// priority than the arrival.
    Full,
    /// The queue is closed (service draining or stopped).
    Closed,
}

/// The result of a successful admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admitted {
    /// There was room.
    Queued,
    /// The queue was full; the returned lower-priority job was shed to
    /// make room. The caller must finalize the shed job.
    Shed {
        /// Id of the evicted job.
        victim: u64,
    },
}

/// What [`BoundedQueue::pop`] returned.
#[derive(Debug)]
pub enum Popped {
    /// A ready entry, removed from the queue.
    Entry(QueueEntry),
    /// Nothing became ready within the timeout.
    Timeout,
    /// The queue is closed and drained.
    Closed,
}

#[derive(Debug, Default)]
struct Inner {
    entries: Vec<QueueEntry>,
    seq: u64,
    closed: bool,
}

/// The bounded, priority-aware admission queue. All methods are
/// thread-safe; blocking is confined to [`BoundedQueue::pop`].
#[derive(Debug)]
pub struct BoundedQueue {
    inner: Mutex<Inner>,
    cv: Condvar,
    capacity: usize,
}

impl BoundedQueue {
    /// An empty queue holding at most `capacity` admitted jobs
    /// (re-entered jobs are exempt; capacity 0 is clamped to 1).
    pub fn new(capacity: usize) -> BoundedQueue {
        BoundedQueue {
            inner: Mutex::new(Inner::default()),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Queued entries right now (including not-yet-ready retries).
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admits a new job, enforcing the capacity bound. On a full queue
    /// the lowest-priority entry is shed if it is strictly lower
    /// priority than the arrival (newest victim first, so older work is
    /// preserved); otherwise the arrival is rejected.
    pub fn admit(&self, id: u64, priority: Priority) -> Result<Admitted, AdmitError> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(AdmitError::Closed);
        }
        let mut outcome = Admitted::Queued;
        if inner.entries.len() >= self.capacity {
            // Victim: minimum priority, newest seq among that priority.
            let victim = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| (e.priority, std::cmp::Reverse(e.seq)))
                .map(|(i, e)| (i, e.priority, e.id));
            match victim {
                Some((i, vp, vid)) if vp < priority => {
                    inner.entries.swap_remove(i);
                    outcome = Admitted::Shed { victim: vid };
                }
                _ => return Err(AdmitError::Full),
            }
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.entries.push(QueueEntry {
            id,
            priority,
            seq,
            ready_at: Instant::now(),
            attempt: 0,
        });
        drop(inner);
        self.cv.notify_one();
        Ok(outcome)
    }

    /// Re-enters an already-accepted job (retry or crash recovery)
    /// after `delay`. Exempt from the capacity bound: an accepted job
    /// is never dropped by its own queue.
    pub fn reenter(&self, id: u64, priority: Priority, attempt: usize, delay: Duration) {
        let mut inner = self.lock();
        if inner.closed {
            // Draining: the service finalizes the job as cancelled
            // instead; dropping here would lose it silently, so the
            // entry is still recorded and drained by `pop`.
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.entries.push(QueueEntry {
            id,
            priority,
            seq,
            ready_at: Instant::now() + delay,
            attempt,
        });
        drop(inner);
        self.cv.notify_one();
    }

    /// Removes a queued (not yet running) job; `true` if it was found.
    pub fn remove(&self, id: u64) -> bool {
        let mut inner = self.lock();
        match inner.entries.iter().position(|e| e.id == id) {
            Some(i) => {
                inner.entries.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// Pops the best ready entry: highest priority, then lowest
    /// admission sequence. Blocks up to `timeout` waiting for an entry
    /// to become ready. Closed queues still drain their backlog.
    pub fn pop(&self, timeout: Duration) -> Popped {
        let deadline = Instant::now() + timeout;
        let mut inner = self.lock();
        loop {
            let now = Instant::now();
            let best = inner
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.ready_at <= now)
                .min_by_key(|(_, e)| (std::cmp::Reverse(e.priority), e.seq))
                .map(|(i, _)| i);
            if let Some(i) = best {
                let entry = inner.entries.swap_remove(i);
                return Popped::Entry(entry);
            }
            if inner.closed && inner.entries.is_empty() {
                return Popped::Closed;
            }
            // Wake at the earliest ready_at, the pop deadline, or the
            // next close/notify — whichever comes first.
            let next_ready = inner.entries.iter().map(|e| e.ready_at).min();
            let wake = match next_ready {
                Some(t) => t.min(deadline),
                None => deadline,
            };
            if wake <= now {
                return Popped::Timeout;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(inner, wake - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
            if Instant::now() >= deadline {
                // One last ready check before reporting a timeout.
                let now = Instant::now();
                if let Some(i) = inner
                    .entries
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.ready_at <= now)
                    .min_by_key(|(_, e)| (std::cmp::Reverse(e.priority), e.seq))
                    .map(|(i, _)| i)
                {
                    let entry = inner.entries.swap_remove(i);
                    return Popped::Entry(entry);
                }
                return if inner.closed && inner.entries.is_empty() {
                    Popped::Closed
                } else {
                    Popped::Timeout
                };
            }
        }
    }

    /// Closes the queue: no new admissions; `pop` drains the backlog
    /// then reports [`Popped::Closed`].
    pub fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }

    /// Closes the queue and removes every pending entry, returning the
    /// removed entries so the caller can finalize them.
    pub fn close_and_clear(&self) -> Vec<QueueEntry> {
        let mut inner = self.lock();
        inner.closed = true;
        let drained = std::mem::take(&mut inner.entries);
        drop(inner);
        self.cv.notify_all();
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Priority;

    #[test]
    fn fifo_within_priority_and_priority_order_across() {
        let q = BoundedQueue::new(8);
        q.admit(1, Priority::Normal).unwrap();
        q.admit(2, Priority::Low).unwrap();
        q.admit(3, Priority::High).unwrap();
        q.admit(4, Priority::Normal).unwrap();
        let order: Vec<u64> = (0..4)
            .map(|_| match q.pop(Duration::from_millis(10)) {
                Popped::Entry(e) => e.id,
                other => panic!("expected entry, got {other:?}"),
            })
            .collect();
        assert_eq!(order, vec![3, 1, 4, 2]);
    }

    #[test]
    fn full_queue_sheds_lowest_priority_for_higher_arrival() {
        let q = BoundedQueue::new(2);
        q.admit(1, Priority::Low).unwrap();
        q.admit(2, Priority::Low).unwrap();
        // Equal priority: rejected, nothing shed.
        assert_eq!(q.admit(3, Priority::Low), Err(AdmitError::Full));
        // Higher priority: the *newest* low-priority job is shed.
        assert_eq!(q.admit(4, Priority::High), Ok(Admitted::Shed { victim: 2 }));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn reenter_bypasses_capacity() {
        let q = BoundedQueue::new(1);
        q.admit(1, Priority::Normal).unwrap();
        q.reenter(2, Priority::Normal, 1, Duration::ZERO);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn delayed_entries_are_invisible_until_ready() {
        let q = BoundedQueue::new(4);
        q.reenter(1, Priority::Normal, 1, Duration::from_millis(50));
        match q.pop(Duration::from_millis(5)) {
            Popped::Timeout => {}
            other => panic!("not ready yet, got {other:?}"),
        }
        match q.pop(Duration::from_millis(500)) {
            Popped::Entry(e) => assert_eq!(e.id, 1),
            other => panic!("expected entry, got {other:?}"),
        }
    }

    #[test]
    fn closed_queue_drains_then_reports_closed() {
        let q = BoundedQueue::new(4);
        q.admit(1, Priority::Normal).unwrap();
        q.close();
        assert_eq!(q.admit(2, Priority::High), Err(AdmitError::Closed));
        match q.pop(Duration::from_millis(10)) {
            Popped::Entry(e) => assert_eq!(e.id, 1),
            other => panic!("expected entry, got {other:?}"),
        }
        match q.pop(Duration::from_millis(10)) {
            Popped::Closed => {}
            other => panic!("expected closed, got {other:?}"),
        }
    }
}
