//! # sprout-serve — fault-hardened routing as a service
//!
//! The supervisor (`sprout-core`) makes one routing job robust; this
//! crate makes a *stream* of jobs robust. It wraps the supervisor in a
//! long-running service with the failure-handling machinery a
//! deployment needs, all std-only like the rest of the workspace:
//!
//! * **Admission control and backpressure** — a [`queue::BoundedQueue`]
//!   caps in-flight work; saturation sheds strictly-lower-priority jobs
//!   or rejects with a retry-after hint. The queue never grows without
//!   bound.
//! * **Deadline propagation** — per-job deadlines, measured from
//!   admission, flow into the supervisor and from there into every
//!   pipeline stage's wall budget.
//! * **Retries with deterministic backoff** — [`backoff::BackoffConfig`]
//!   produces a monotone, bounded, *seeded* schedule: bit-identical on
//!   any machine and thread count, so chaos runs replay exactly.
//! * **Crash recovery** — accepted jobs are journaled before they
//!   queue; terminal states are journaled exactly once; a restarted
//!   service re-admits unfinished jobs and resumes them from their
//!   supervisor checkpoints.
//! * **Graceful degradation** — past the overload watermark, attempts
//!   run under the `BestSoFar` policy with tightened budgets, and
//!   `/readyz` reports the pressure.
//! * **Chaos harness** — [`chaos::ServeFaultPlan`] injects worker
//!   panics, mid-job kills, and stalls, seeded and reproducible.
//! * **Live observability** — every job feeds a bounded
//!   [`events::EventBus`] ring (wave progress, pipeline stage spans,
//!   solver residuals, retries, exactly one terminal event), streamed
//!   to clients as chunked NDJSON via `GET /jobs/<id>/events` or a
//!   `?since=` long-poll; `/metrics` negotiates JSON or Prometheus
//!   text exposition. Publishing never blocks the routing hot path.
//! * **Fleet mode** — [`fleet::FleetCoordinator`] shards jobs across
//!   worker *processes* ([`worker`], speaking the framed protocol of
//!   [`proto`]) with heartbeat liveness, lease-based assignment,
//!   idempotent journal-fingerprinted finalize, and bounded worker
//!   respawn — the robustness boundary above panicked threads: lost
//!   processes. [`chaos::FleetFaultPlan`] injects the process-level
//!   faults (kill -9, stalls, heartbeat blackouts).
//!
//! The service invariant, asserted end to end by the chaos suites at
//! both levels: *every accepted job ends in exactly one terminal state
//! — completed, a best-so-far partial, or a typed error — and the
//! service never panics and never loses an accepted job.*
//!
//! Four binaries ship with the crate: `sprout_served` (the HTTP
//! daemon), `serve_batch` (a load-driving batch client),
//! `sprout_fleet` (the fleet coordinator CLI) and
//! `sprout_fleet_worker` (the per-process fleet worker).

#![warn(missing_docs)]

pub mod backoff;
pub mod chaos;
pub mod events;
pub mod fleet;
pub mod http;
pub mod job;
pub mod proto;
pub mod queue;
pub mod service;
pub mod worker;

pub use backoff::BackoffConfig;
pub use chaos::{FleetFaultPlan, ServeFaultPlan};
pub use events::{EventBus, EventKind, EventPage, JobEvent, JobRecorder};
pub use fleet::{replay_journal, FleetConfig, FleetCoordinator, FleetMetrics, JournalReplay};
pub use http::{HttpServer, JobBackend};
pub use job::{JobSnapshot, JobSpec, JobState, Priority, SpecError};
pub use proto::{spec_fingerprint, CoordFrame, DoneFrame, ProtoError, WorkerFrame};
pub use queue::{AdmitError, Admitted, BoundedQueue};
pub use service::{
    Readiness, RoutingService, ServeError, ServiceConfig, ServiceMetrics, SubmitError,
};
pub use worker::{run_worker, WorkerConfig};
