//! # sprout-serve — fault-hardened routing as a service
//!
//! The supervisor (`sprout-core`) makes one routing job robust; this
//! crate makes a *stream* of jobs robust. It wraps the supervisor in a
//! long-running service with the failure-handling machinery a
//! deployment needs, all std-only like the rest of the workspace:
//!
//! * **Admission control and backpressure** — a [`queue::BoundedQueue`]
//!   caps in-flight work; saturation sheds strictly-lower-priority jobs
//!   or rejects with a retry-after hint. The queue never grows without
//!   bound.
//! * **Deadline propagation** — per-job deadlines, measured from
//!   admission, flow into the supervisor and from there into every
//!   pipeline stage's wall budget.
//! * **Retries with deterministic backoff** — [`backoff::BackoffConfig`]
//!   produces a monotone, bounded, *seeded* schedule: bit-identical on
//!   any machine and thread count, so chaos runs replay exactly.
//! * **Crash recovery** — accepted jobs are journaled before they
//!   queue; terminal states are journaled exactly once; a restarted
//!   service re-admits unfinished jobs and resumes them from their
//!   supervisor checkpoints.
//! * **Graceful degradation** — past the overload watermark, attempts
//!   run under the `BestSoFar` policy with tightened budgets, and
//!   `/readyz` reports the pressure.
//! * **Chaos harness** — [`chaos::ServeFaultPlan`] injects worker
//!   panics, mid-job kills, and stalls, seeded and reproducible.
//!
//! The service invariant, asserted end to end by the chaos suite:
//! *every accepted job ends in exactly one terminal state — completed,
//! a best-so-far partial, or a typed error — and the service never
//! panics and never loses an accepted job.*
//!
//! Two binaries ship with the crate: `sprout_served` (the HTTP daemon)
//! and `serve_batch` (a load-driving batch client).

#![warn(missing_docs)]

pub mod backoff;
pub mod chaos;
pub mod http;
pub mod job;
pub mod queue;
pub mod service;

pub use backoff::BackoffConfig;
pub use chaos::ServeFaultPlan;
pub use http::HttpServer;
pub use job::{JobSnapshot, JobSpec, JobState, Priority, SpecError};
pub use queue::{AdmitError, Admitted, BoundedQueue};
pub use service::{
    Readiness, RoutingService, ServeError, ServiceConfig, ServiceMetrics, SubmitError,
};
