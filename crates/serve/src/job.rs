//! Job specifications, states, and snapshots.
//!
//! A [`JobSpec`] is what a client submits: which board, which rails,
//! at what priority and deadline. It round-trips through the
//! workspace's hand-rolled JSON ([`sprout_telemetry::json`]) — the same
//! format is accepted over HTTP, written to the admission journal, and
//! re-parsed during crash recovery. Parsing is hardened: every field is
//! validated with explicit bounds and a typed [`SpecError`]; hostile
//! bodies (wrong types, absurd counts, non-finite numbers) are rejected
//! without panicking.
//!
//! A job moves `Queued → Running → <terminal>` where the terminal
//! states are exactly [`JobState::Completed`], [`JobState::BestSoFar`]
//! (partial result under degradation), or a typed failure
//! ([`Failed`](JobState::Failed) / [`Shed`](JobState::Shed) /
//! [`Expired`](JobState::Expired) / [`Cancelled`](JobState::Cancelled)).
//! The service enforces that every accepted job reaches exactly one
//! terminal state — the chaos suite asserts it under injected faults.

use sprout_board::presets::{self, RandomBoardConfig};
use sprout_board::Board;
use sprout_core::supervisor::RailRequest;
use sprout_telemetry::json::{self, Json, Obj};
use std::fmt;

/// Admission priority. Under queue saturation, lower priorities are
/// shed first; within a priority the queue is FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Shed first under overload.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Sheds `Low`/`Normal` work when the queue is full.
    High,
}

impl Priority {
    /// Parses the wire name (`low` / `normal` / `high`).
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "low" => Some(Priority::Low),
            "normal" => Some(Priority::Normal),
            "high" => Some(Priority::High),
            _ => None,
        }
    }

    /// The wire name.
    pub fn name(&self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// Which board a job routes on. Boards are referenced, not embedded:
/// the job journal and the wire format stay small, and a recovered job
/// reconstructs a bit-identical board from the reference.
#[derive(Debug, Clone, PartialEq)]
pub enum BoardSpec {
    /// A named preset: `two_rail`, `three_rail`, or `six_rail`.
    Preset(String),
    /// A seeded random board ([`presets::random_board`]).
    Random {
        /// Generator seed.
        seed: u64,
        /// Number of power nets.
        nets: usize,
    },
}

/// One rail request of a job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RailSpec {
    /// Index into the board's power-net order.
    pub net: usize,
    /// Routing layer (stackup index).
    pub layer: usize,
    /// Metal area budget (mm²).
    pub budget_mm2: f64,
}

/// A routing job submission.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Board reference.
    pub board: BoardSpec,
    /// Rails to route, in request order.
    pub rails: Vec<RailSpec>,
    /// Admission priority.
    pub priority: Priority,
    /// Wall-clock deadline for the whole job (ms), measured from
    /// admission; `None` uses the service default.
    pub deadline_ms: Option<f64>,
    /// Tile pitch override (mm); `None` uses the service default.
    pub tile_pitch_mm: Option<f64>,
    /// Free-form client label, echoed in status responses.
    pub tag: String,
}

/// Hard caps on spec fields — the admission-side input hardening.
pub const MAX_RAILS_PER_JOB: usize = 256;
const MAX_TAG_BYTES: usize = 256;
const MAX_LAYER: usize = 64;
const MAX_RANDOM_NETS: usize = 16;
const PITCH_RANGE_MM: (f64, f64) = (0.05, 5.0);

/// A typed job-spec rejection. Every variant maps to HTTP 400.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The body is not valid JSON.
    Json(String),
    /// A required field is missing or has the wrong type.
    Field(&'static str),
    /// A field is outside its accepted range.
    Range(&'static str, String),
    /// The board preset name is not known.
    UnknownPreset(String),
    /// A rail's net index exceeds the board's power-net count.
    UnknownNet {
        /// Requested index.
        index: usize,
        /// Power nets on the board.
        nets: usize,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "invalid JSON: {e}"),
            SpecError::Field(what) => write!(f, "missing or mistyped field `{what}`"),
            SpecError::Range(what, detail) => write!(f, "field `{what}` out of range: {detail}"),
            SpecError::UnknownPreset(p) => write!(
                f,
                "unknown board preset `{p}` (expected two_rail, three_rail, six_rail, or random)"
            ),
            SpecError::UnknownNet { index, nets } => {
                write!(
                    f,
                    "rail net index {index} out of range (board has {nets} power nets)"
                )
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl JobSpec {
    /// A two-rail job at the given budget — the smoke-test staple.
    pub fn two_rail(budget_mm2: f64) -> JobSpec {
        JobSpec {
            board: BoardSpec::Preset("two_rail".into()),
            rails: vec![
                RailSpec {
                    net: 0,
                    layer: presets::TWO_RAIL_ROUTE_LAYER,
                    budget_mm2,
                },
                RailSpec {
                    net: 1,
                    layer: presets::TWO_RAIL_ROUTE_LAYER,
                    budget_mm2,
                },
            ],
            priority: Priority::Normal,
            deadline_ms: None,
            tile_pitch_mm: None,
            tag: String::new(),
        }
    }

    /// Serializes the spec as one JSON line (the wire/journal format).
    pub fn to_json(&self) -> String {
        let mut o = Obj::new();
        let mut b = Obj::new();
        match &self.board {
            BoardSpec::Preset(name) => {
                b.str("preset", name);
            }
            BoardSpec::Random { seed, nets } => {
                b.str("preset", "random")
                    .u64("seed", *seed)
                    .u64("nets", *nets as u64);
            }
        }
        o.raw("board", &b.finish());
        let rails = json::array(self.rails.iter().map(|r| {
            let mut ro = Obj::new();
            ro.u64("net", r.net as u64)
                .u64("layer", r.layer as u64)
                .f64("budget_mm2", r.budget_mm2);
            ro.finish()
        }));
        o.raw("rails", &rails);
        o.str("priority", self.priority.name());
        if let Some(d) = self.deadline_ms {
            o.f64("deadline_ms", d);
        }
        if let Some(p) = self.tile_pitch_mm {
            o.f64("tile_pitch_mm", p);
        }
        if !self.tag.is_empty() {
            o.str("tag", &self.tag);
        }
        o.finish()
    }

    /// Parses and validates a submission body.
    ///
    /// # Errors
    ///
    /// A typed [`SpecError`] naming the offending construct. Never
    /// panics, whatever the input.
    pub fn parse(text: &str) -> Result<JobSpec, SpecError> {
        let root = json::parse(text.trim()).map_err(SpecError::Json)?;
        let board_obj = root.get("board").ok_or(SpecError::Field("board"))?;
        let preset = board_obj
            .get("preset")
            .and_then(Json::as_str)
            .ok_or(SpecError::Field("board.preset"))?;
        let board = match preset {
            "two_rail" | "three_rail" | "six_rail" => BoardSpec::Preset(preset.to_owned()),
            "random" => {
                let seed = board_obj
                    .get("seed")
                    .and_then(Json::as_u64)
                    .ok_or(SpecError::Field("board.seed"))?;
                let nets = board_obj.get("nets").and_then(Json::as_u64).unwrap_or(2) as usize;
                if nets == 0 || nets > MAX_RANDOM_NETS {
                    return Err(SpecError::Range(
                        "board.nets",
                        format!("{nets} not in 1..={MAX_RANDOM_NETS}"),
                    ));
                }
                BoardSpec::Random { seed, nets }
            }
            other => return Err(SpecError::UnknownPreset(other.to_owned())),
        };

        let rails_json = root
            .get("rails")
            .and_then(Json::as_array)
            .ok_or(SpecError::Field("rails"))?;
        if rails_json.is_empty() {
            return Err(SpecError::Range("rails", "empty rail list".into()));
        }
        if rails_json.len() > MAX_RAILS_PER_JOB {
            return Err(SpecError::Range(
                "rails",
                format!(
                    "{} rails exceeds the cap of {MAX_RAILS_PER_JOB}",
                    rails_json.len()
                ),
            ));
        }
        let mut rails = Vec::with_capacity(rails_json.len());
        for r in rails_json {
            let net = r
                .get("net")
                .and_then(Json::as_u64)
                .ok_or(SpecError::Field("rails[].net"))? as usize;
            let layer = r
                .get("layer")
                .and_then(Json::as_u64)
                .ok_or(SpecError::Field("rails[].layer"))? as usize;
            if layer > MAX_LAYER {
                return Err(SpecError::Range(
                    "rails[].layer",
                    format!("{layer} exceeds {MAX_LAYER}"),
                ));
            }
            let budget_mm2 = r
                .get("budget_mm2")
                .and_then(Json::as_f64)
                .ok_or(SpecError::Field("rails[].budget_mm2"))?;
            if !budget_mm2.is_finite() || budget_mm2 <= 0.0 {
                return Err(SpecError::Range(
                    "rails[].budget_mm2",
                    format!("{budget_mm2} is not a positive finite area"),
                ));
            }
            rails.push(RailSpec {
                net,
                layer,
                budget_mm2,
            });
        }

        let priority = match root.get("priority").and_then(Json::as_str) {
            None => Priority::Normal,
            Some(p) => Priority::parse(p).ok_or(SpecError::Field("priority"))?,
        };
        let deadline_ms = match root.get("deadline_ms") {
            None => None,
            Some(v) => {
                let d = v.as_f64().ok_or(SpecError::Field("deadline_ms"))?;
                if !d.is_finite() || d <= 0.0 {
                    return Err(SpecError::Range(
                        "deadline_ms",
                        format!("{d} is not a positive finite duration"),
                    ));
                }
                Some(d)
            }
        };
        let tile_pitch_mm = match root.get("tile_pitch_mm") {
            None => None,
            Some(v) => {
                let p = v.as_f64().ok_or(SpecError::Field("tile_pitch_mm"))?;
                if !(PITCH_RANGE_MM.0..=PITCH_RANGE_MM.1).contains(&p) {
                    return Err(SpecError::Range(
                        "tile_pitch_mm",
                        format!("{p} not in {}..={} mm", PITCH_RANGE_MM.0, PITCH_RANGE_MM.1),
                    ));
                }
                Some(p)
            }
        };
        let tag = root
            .get("tag")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_owned();
        if tag.len() > MAX_TAG_BYTES {
            return Err(SpecError::Range(
                "tag",
                format!("{} bytes exceeds {MAX_TAG_BYTES}", tag.len()),
            ));
        }

        Ok(JobSpec {
            board,
            rails,
            priority,
            deadline_ms,
            tile_pitch_mm,
            tag,
        })
    }

    /// Materializes the referenced board. Deterministic: the same spec
    /// always reconstructs the same board (the crash-recovery and
    /// checkpoint-fingerprint guarantee).
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownPreset`] for unresolvable references.
    pub fn resolve_board(&self) -> Result<Board, SpecError> {
        match &self.board {
            BoardSpec::Preset(name) => match name.as_str() {
                "two_rail" => Ok(presets::two_rail()),
                "three_rail" => Ok(presets::three_rail()),
                "six_rail" => Ok(presets::six_rail()),
                other => Err(SpecError::UnknownPreset(other.to_owned())),
            },
            BoardSpec::Random { seed, nets } => Ok(presets::random_board(
                *seed,
                RandomBoardConfig {
                    nets: *nets,
                    ..RandomBoardConfig::default()
                },
            )),
        }
    }

    /// Resolves the rail list against `board` into supervisor requests.
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownNet`] when a net index is out of range.
    pub fn requests(&self, board: &Board) -> Result<Vec<RailRequest>, SpecError> {
        let nets: Vec<_> = board.power_nets().map(|(id, _)| id).collect();
        let mut out = Vec::with_capacity(self.rails.len());
        for r in &self.rails {
            let net = *nets.get(r.net).ok_or(SpecError::UnknownNet {
                index: r.net,
                nets: nets.len(),
            })?;
            out.push((net, r.layer, r.budget_mm2));
        }
        Ok(out)
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting in the queue (possibly for a retry slot).
    Queued,
    /// A worker is routing it.
    Running,
    /// Terminal: every rail completed (routed or restored).
    Completed,
    /// Terminal: a partial result shipped — some rails completed, the
    /// rest carry typed errors (graceful degradation under overload,
    /// deadline pressure, or persistent faults).
    BestSoFar,
    /// Terminal: no rail completed; the record carries the typed error.
    Failed,
    /// Terminal: evicted from a full queue by a higher-priority job.
    Shed,
    /// Terminal: the deadline expired before the job could finish.
    Expired,
    /// Terminal: cancelled by the client or a non-draining shutdown.
    Cancelled,
}

impl JobState {
    /// `true` for the six terminal states.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }

    /// The wire name.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::BestSoFar => "best_so_far",
            JobState::Failed => "failed",
            JobState::Shed => "shed",
            JobState::Expired => "expired",
            JobState::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A point-in-time public view of one job.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// Job id.
    pub id: u64,
    /// Client tag.
    pub tag: String,
    /// Current state.
    pub state: JobState,
    /// Admission priority.
    pub priority: Priority,
    /// Service-level attempts so far.
    pub attempts: usize,
    /// Rails requested.
    pub rails_total: usize,
    /// Rails complete (routed or checkpoint-restored).
    pub rails_complete: usize,
    /// Rails restored from a checkpoint instead of re-routed.
    pub resumed: usize,
    /// `true` when the job was re-admitted by crash recovery.
    pub recovered: bool,
    /// `true` when an injected mid-job kill crashed this job's worker
    /// (the job stays non-terminal until a restarted service recovers
    /// it).
    pub killed: bool,
    /// Time spent queued (ms).
    pub queue_ms: f64,
    /// Routing wall-clock of the last attempt (ms).
    pub run_ms: f64,
    /// Linear solves across all completed rails.
    pub solves: u64,
    /// Total shipped metal area (mm²).
    pub area_mm2: f64,
    /// The typed error, for failed/shed/expired/cancelled jobs.
    pub error: Option<String>,
    /// Terminal transitions recorded — the never-more-than-once
    /// invariant the chaos suite asserts.
    pub terminal_transitions: usize,
}

impl JobSnapshot {
    /// One JSON line for HTTP status responses.
    pub fn to_json(&self) -> String {
        let mut o = Obj::new();
        o.u64("id", self.id)
            .str("state", self.state.name())
            .str("priority", self.priority.name())
            .u64("attempts", self.attempts as u64)
            .u64("rails_total", self.rails_total as u64)
            .u64("rails_complete", self.rails_complete as u64)
            .u64("resumed", self.resumed as u64)
            .bool("recovered", self.recovered)
            .f64("queue_ms", self.queue_ms)
            .f64("run_ms", self.run_ms)
            .u64("solves", self.solves)
            .f64("area_mm2", self.area_mm2)
            .u64("terminal_transitions", self.terminal_transitions as u64);
        if !self.tag.is_empty() {
            o.str("tag", &self.tag);
        }
        if let Some(e) = &self.error {
            o.str("error", e);
        }
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_json() {
        let mut spec = JobSpec::two_rail(20.0);
        spec.priority = Priority::High;
        spec.deadline_ms = Some(1500.0);
        spec.tile_pitch_mm = Some(0.5);
        spec.tag = "roundtrip".into();
        let parsed = JobSpec::parse(&spec.to_json()).expect("roundtrip");
        assert_eq!(parsed, spec);
    }

    #[test]
    fn hostile_specs_are_rejected_with_typed_errors() {
        assert!(matches!(
            JobSpec::parse("not json"),
            Err(SpecError::Json(_))
        ));
        assert!(matches!(
            JobSpec::parse("{}"),
            Err(SpecError::Field("board"))
        ));
        assert!(matches!(
            JobSpec::parse(r#"{"board":{"preset":"nope"},"rails":[]}"#),
            Err(SpecError::UnknownPreset(_))
        ));
        assert!(matches!(
            JobSpec::parse(r#"{"board":{"preset":"two_rail"},"rails":[]}"#),
            Err(SpecError::Range("rails", _))
        ));
        assert!(matches!(
            JobSpec::parse(
                r#"{"board":{"preset":"two_rail"},"rails":[{"net":0,"layer":6,"budget_mm2":-3}]}"#
            ),
            Err(SpecError::Range("rails[].budget_mm2", _))
        ));
        assert!(matches!(
            JobSpec::parse(
                r#"{"board":{"preset":"two_rail"},"rails":[{"net":0,"layer":6,"budget_mm2":20}],"deadline_ms":0}"#
            ),
            Err(SpecError::Range("deadline_ms", _))
        ));
    }

    #[test]
    fn net_index_is_validated_against_the_board() {
        let mut spec = JobSpec::two_rail(20.0);
        spec.rails[1].net = 99;
        let board = spec.resolve_board().unwrap();
        assert!(matches!(
            spec.requests(&board),
            Err(SpecError::UnknownNet { index: 99, nets: 2 })
        ));
    }

    #[test]
    fn terminal_states_are_exactly_the_six() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        for s in [
            JobState::Completed,
            JobState::BestSoFar,
            JobState::Failed,
            JobState::Shed,
            JobState::Expired,
            JobState::Cancelled,
        ] {
            assert!(s.is_terminal());
        }
    }
}
