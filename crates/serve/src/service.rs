//! The fault-hardened routing service.
//!
//! [`RoutingService`] fronts the supervisor with the robustness
//! machinery a long-running deployment needs:
//!
//! * **Bounded admission** — jobs enter through a [`BoundedQueue`];
//!   when it is full, [`RoutingService::submit`] either sheds a
//!   strictly-lower-priority queued job or rejects the arrival with a
//!   retry-after hint. Accepted jobs are never silently dropped.
//! * **Deadline propagation** — each job's wall-clock deadline is
//!   measured from admission; the remaining budget at each attempt is
//!   handed to the supervisor, which folds it into every worker's
//!   per-stage budgets.
//! * **Retry with seeded backoff** — retryable failures re-enter the
//!   queue after a [`BackoffConfig`] delay; the supervisor checkpoint
//!   is kept between attempts so completed rails restore instead of
//!   re-routing.
//! * **Crash recovery** — every accepted job is journaled to the data
//!   directory before it is queued; a terminal record is journaled
//!   (with `create_new`, so a double finalize cannot go unnoticed)
//!   when it finishes. A restarted service re-admits every journaled
//!   job without a terminal record and resumes it from its supervisor
//!   checkpoint.
//! * **Graceful degradation** — under queue pressure jobs run with the
//!   `BestSoFar` recovery policy and a tightened wall budget: a partial
//!   result beats a timed-out queue.
//!
//! The invariant everything above serves, asserted by the chaos suite:
//! **every accepted job reaches exactly one terminal state, and the
//! service never panics** — whatever the fault plan injects.

use crate::backoff::BackoffConfig;
use crate::chaos::ServeFaultPlan;
use crate::events::{EventBus, EventKind, JobRecorder};
use crate::job::{JobSnapshot, JobSpec, JobState, Priority, SpecError};
use crate::queue::{Admitted, BoundedQueue, Popped, QueueEntry};
use sprout_core::recovery::{CancelToken, RecoveryPolicy};
use sprout_core::report::RunReport;
use sprout_core::router::RouterConfig;
use sprout_core::supervisor::{is_retryable, Supervisor, SupervisorConfig};
use sprout_core::SproutError;
use sprout_telemetry::{self as telemetry, json::Obj};
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads pulling jobs from the queue.
    pub workers: usize,
    /// Admission-queue capacity (the backpressure bound).
    pub queue_capacity: usize,
    /// Router configuration applied to every job (pitch may be
    /// overridden per job).
    pub router: RouterConfig,
    /// Supervisor threads per job (rails of one job in parallel).
    pub supervisor_threads: usize,
    /// Supervisor-level retries per rail within one attempt.
    pub supervisor_retries: usize,
    /// Service-level retries per job (re-queued with backoff).
    pub max_job_retries: usize,
    /// Retry-delay schedule.
    pub backoff: BackoffConfig,
    /// Deadline for jobs that do not bring their own (ms from
    /// admission); `None` means no default deadline.
    pub default_deadline_ms: Option<f64>,
    /// Journal/checkpoint directory. `None` disables crash recovery
    /// (jobs still run, but a killed service forgets them).
    pub data_dir: Option<PathBuf>,
    /// Queue-depth fraction at which the service reports itself
    /// overloaded and degrades new attempts to `BestSoFar`.
    pub overload_watermark: f64,
    /// Per-stage wall budget (ms) applied to attempts started while
    /// overloaded.
    pub degraded_wall_ms: f64,
    /// Service-level fault injection (testing only).
    pub fault: Option<ServeFaultPlan>,
    /// Retain a [`RunReport`] per completed attempt for benches.
    pub keep_reports: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 32,
            router: RouterConfig::default(),
            supervisor_threads: 1,
            supervisor_retries: 1,
            max_job_retries: 2,
            backoff: BackoffConfig::default(),
            default_deadline_ms: None,
            data_dir: None,
            overload_watermark: 0.75,
            degraded_wall_ms: 2_000.0,
            fault: None,
            keep_reports: false,
        }
    }
}

/// Why a submission was not accepted.
#[derive(Debug)]
pub enum SubmitError {
    /// The spec failed validation (HTTP 400).
    Invalid(SpecError),
    /// The queue is full and nothing in it has lower priority; retry
    /// after the hinted delay (HTTP 429 + `Retry-After`).
    Saturated {
        /// Suggested client backoff (ms).
        retry_after_ms: f64,
    },
    /// The service is draining or stopped (HTTP 503).
    Draining,
    /// The journal write failed; the job was not accepted (HTTP 500).
    Journal(String),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Invalid(e) => write!(f, "invalid job spec: {e}"),
            SubmitError::Saturated { retry_after_ms } => {
                write!(f, "queue saturated; retry after {retry_after_ms:.0} ms")
            }
            SubmitError::Draining => write!(f, "service is draining"),
            SubmitError::Journal(e) => write!(f, "journal write failed: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why the service could not start.
#[derive(Debug)]
pub enum ServeError {
    /// The data directory could not be created or scanned.
    Io(String),
    /// A configuration value is unusable.
    InvalidConfig(&'static str),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "service I/O error: {e}"),
            ServeError::InvalidConfig(what) => write!(f, "invalid service config: {what}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Health/readiness of the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Readiness {
    /// Accepting work with headroom.
    Ready,
    /// Accepting work, but the queue is past the overload watermark —
    /// new attempts run degraded.
    Overloaded,
    /// Not accepting work (draining or stopped).
    Draining,
}

impl Readiness {
    /// The wire name.
    pub fn name(&self) -> &'static str {
        match self {
            Readiness::Ready => "ready",
            Readiness::Overloaded => "overloaded",
            Readiness::Draining => "draining",
        }
    }
}

/// A point-in-time snapshot of the service counters.
#[derive(Debug, Clone, Default)]
pub struct ServiceMetrics {
    /// Jobs waiting in the queue (retry delays included).
    pub queue_depth: usize,
    /// Jobs currently routing.
    pub running: usize,
    /// Jobs accepted since start (recovered jobs included).
    pub accepted: u64,
    /// Submissions rejected with backpressure.
    pub rejected: u64,
    /// Terminal: completed.
    pub completed: u64,
    /// Terminal: partial results shipped.
    pub best_so_far: u64,
    /// Terminal: failed with a typed error.
    pub failed: u64,
    /// Terminal: shed under saturation.
    pub shed: u64,
    /// Terminal: deadline expired.
    pub expired: u64,
    /// Terminal: cancelled.
    pub cancelled: u64,
    /// Service-level retries performed.
    pub retries: u64,
    /// Jobs re-admitted by crash recovery.
    pub recovered: u64,
    /// Workers "killed" mid-job by the fault plan.
    pub killed: u64,
    /// Worker panics contained by the service boundary.
    pub worker_panics: u64,
    /// Jobs observed in more than one terminal state — always 0 unless
    /// the exactly-once invariant broke.
    pub terminal_violations: u64,
    /// Median admission→terminal latency (ms) over terminal jobs.
    pub latency_p50_ms: f64,
    /// 99th-percentile admission→terminal latency (ms).
    pub latency_p99_ms: f64,
    /// Worker *processes* alive — always 0 for the in-process service;
    /// populated by fleet mode. Emitted so `/metrics` scrapes the same
    /// field names against either backend.
    pub workers_live: usize,
    /// Jobs out under a process lease — always 0 for the in-process
    /// service.
    pub leased: usize,
    /// Leases expired by worker death and re-dispatched — always 0 for
    /// the in-process service.
    pub redispatches: u64,
    /// Seconds since the service started.
    pub uptime_seconds: f64,
    /// Events published on the per-job observability bus.
    pub events_published: u64,
    /// Bus events dropped to drop-oldest backpressure.
    pub events_dropped: u64,
    /// Median admission→start queue wait (ms) over started attempts.
    pub queue_wait_p50_ms: f64,
    /// 99th-percentile admission→start queue wait (ms).
    pub queue_wait_p99_ms: f64,
    /// Attempt starts measured for the queue-wait percentiles.
    pub queue_wait_count: u64,
    /// Sum of measured queue waits (ms) — the Prometheus `_sum`.
    pub queue_wait_sum_ms: f64,
    /// Sum of terminal latencies (ms) — the Prometheus `_sum`.
    pub latency_sum_ms: f64,
}

impl ServiceMetrics {
    /// One JSON line (the `/metrics` body).
    pub fn to_json(&self) -> String {
        let mut o = Obj::new();
        o.u64("queue_depth", self.queue_depth as u64)
            .u64("running", self.running as u64)
            .u64("accepted", self.accepted)
            .u64("rejected", self.rejected)
            .u64("completed", self.completed)
            .u64("best_so_far", self.best_so_far)
            .u64("failed", self.failed)
            .u64("shed", self.shed)
            .u64("expired", self.expired)
            .u64("cancelled", self.cancelled)
            .u64("retries", self.retries)
            .u64("recovered", self.recovered)
            .u64("killed", self.killed)
            .u64("worker_panics", self.worker_panics)
            .u64("terminal_violations", self.terminal_violations)
            .f64("latency_p50_ms", self.latency_p50_ms)
            .f64("latency_p99_ms", self.latency_p99_ms)
            .u64("workers_live", self.workers_live as u64)
            .u64("leased", self.leased as u64)
            .u64("redispatches", self.redispatches)
            .f64("uptime_seconds", self.uptime_seconds)
            .u64("events_published", self.events_published)
            .u64("events_dropped", self.events_dropped)
            .f64("queue_wait_p50_ms", self.queue_wait_p50_ms)
            .f64("queue_wait_p99_ms", self.queue_wait_p99_ms);
        o.finish()
    }

    /// Prometheus text exposition of the same counters (the
    /// `/metrics` body under content negotiation), with `prefix`
    /// (`sprout_serve_` or `sprout_fleet_`) naming the backend.
    pub fn to_prometheus(&self, prefix: &str) -> String {
        use sprout_telemetry::prom::PromText;
        let mut p = PromText::new();
        let n = |name: &str| format!("{prefix}{name}");
        p.gauge(
            &n("queue_depth"),
            "jobs waiting in the queue",
            self.queue_depth as f64,
        )
        .gauge(&n("running"), "jobs currently routing", self.running as f64)
        .gauge(
            &n("workers_live"),
            "worker processes alive",
            self.workers_live as f64,
        )
        .gauge(
            &n("leased"),
            "jobs out under a process lease",
            self.leased as f64,
        )
        .gauge(
            &n("uptime_seconds"),
            "seconds since service start",
            self.uptime_seconds,
        )
        .counter(&n("accepted_total"), "jobs accepted", self.accepted)
        .counter(&n("rejected_total"), "submissions rejected", self.rejected)
        .counter(&n("completed_total"), "jobs completed", self.completed)
        .counter(
            &n("best_so_far_total"),
            "partial results shipped",
            self.best_so_far,
        )
        .counter(&n("failed_total"), "jobs failed", self.failed)
        .counter(&n("shed_total"), "jobs shed under saturation", self.shed)
        .counter(
            &n("expired_total"),
            "jobs past their deadline",
            self.expired,
        )
        .counter(&n("cancelled_total"), "jobs cancelled", self.cancelled)
        .counter(&n("retries_total"), "service-level retries", self.retries)
        .counter(
            &n("recovered_total"),
            "jobs re-admitted by recovery",
            self.recovered,
        )
        .counter(&n("killed_total"), "workers killed mid-job", self.killed)
        .counter(
            &n("worker_panics_total"),
            "worker panics contained",
            self.worker_panics,
        )
        .counter(
            &n("terminal_violations_total"),
            "exactly-once violations (must stay 0)",
            self.terminal_violations,
        )
        .counter(
            &n("redispatches_total"),
            "leases re-dispatched",
            self.redispatches,
        )
        .counter(
            &n("events_published_total"),
            "observability events published",
            self.events_published,
        )
        .counter(
            &n("events_dropped_total"),
            "observability events dropped",
            self.events_dropped,
        )
        .summary(
            &n("latency_ms"),
            "admission to terminal latency (ms)",
            &[(0.5, self.latency_p50_ms), (0.99, self.latency_p99_ms)],
            self.terminal_total(),
            self.latency_sum_ms,
        )
        .summary(
            &n("queue_wait_ms"),
            "admission to start queue wait (ms)",
            &[
                (0.5, self.queue_wait_p50_ms),
                (0.99, self.queue_wait_p99_ms),
            ],
            self.queue_wait_count,
            self.queue_wait_sum_ms,
        );
        // Per-stage wall time and everything else the routing layer
        // observes into the global registry rides along with the
        // workspace prefix.
        p.registry("sprout_", telemetry::metrics::global());
        p.finish()
    }

    fn terminal_total(&self) -> u64 {
        self.completed + self.best_so_far + self.failed + self.shed + self.expired + self.cancelled
    }
}

/// One job's full record, owned by the service.
#[derive(Debug)]
struct JobRecord {
    id: u64,
    spec: JobSpec,
    state: JobState,
    priority: Priority,
    attempts: usize,
    submitted: Instant,
    deadline_ms: Option<f64>,
    queue_ms: f64,
    run_ms: f64,
    rails_total: usize,
    rails_complete: usize,
    resumed: usize,
    recovered: bool,
    killed: bool,
    cancel_requested: bool,
    cancel: CancelToken,
    solves: u64,
    area_mm2: f64,
    error: Option<String>,
    terminal_transitions: usize,
}

impl JobRecord {
    fn snapshot(&self) -> JobSnapshot {
        JobSnapshot {
            id: self.id,
            tag: self.spec.tag.clone(),
            state: self.state,
            priority: self.priority,
            attempts: self.attempts,
            rails_total: self.rails_total,
            rails_complete: self.rails_complete,
            resumed: self.resumed,
            recovered: self.recovered,
            killed: self.killed,
            queue_ms: self.queue_ms,
            run_ms: self.run_ms,
            solves: self.solves,
            area_mm2: self.area_mm2,
            error: self.error.clone(),
            terminal_transitions: self.terminal_transitions,
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    best_so_far: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    cancelled: AtomicU64,
    retries: AtomicU64,
    recovered: AtomicU64,
    killed: AtomicU64,
    worker_panics: AtomicU64,
    terminal_violations: AtomicU64,
}

#[derive(Debug)]
struct Shared {
    config: ServiceConfig,
    queue: BoundedQueue,
    jobs: Mutex<HashMap<u64, JobRecord>>,
    next_id: AtomicU64,
    draining: AtomicBool,
    running: AtomicUsize,
    counters: Counters,
    latencies: Mutex<Vec<f64>>,
    queue_waits: Mutex<Vec<f64>>,
    reports: Mutex<Vec<RunReport>>,
    started: Instant,
    bus: Arc<EventBus>,
    // Latest attempt's performance profile per job, served over
    // `GET /jobs/<id>/profile`. Rendered JSON, bounded by job count.
    profiles: Mutex<HashMap<u64, String>>,
}

/// The running service. Cheap to clone handles are not provided —
/// share it behind an `Arc` if multiple frontends need it (the HTTP
/// server does exactly that).
#[derive(Debug)]
pub struct RoutingService {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl RoutingService {
    /// Starts the service: prepares the data directory, re-admits every
    /// journaled job without a terminal record (crash recovery), and
    /// spawns the worker pool.
    ///
    /// # Errors
    ///
    /// [`ServeError`] when the configuration is unusable or the data
    /// directory cannot be prepared.
    pub fn start(config: ServiceConfig) -> Result<RoutingService, ServeError> {
        if config.workers == 0 && config.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig(
                "a service needs at least one worker or a queue",
            ));
        }
        if let Some(dir) = &config.data_dir {
            std::fs::create_dir_all(dir).map_err(|e| ServeError::Io(e.to_string()))?;
        }
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            draining: AtomicBool::new(false),
            running: AtomicUsize::new(0),
            counters: Counters::default(),
            latencies: Mutex::new(Vec::new()),
            queue_waits: Mutex::new(Vec::new()),
            reports: Mutex::new(Vec::new()),
            started: Instant::now(),
            bus: Arc::new(EventBus::default()),
            profiles: Mutex::new(HashMap::new()),
            config,
        });

        let service = RoutingService {
            shared: Arc::clone(&shared),
            workers: Mutex::new(Vec::new()),
        };
        service.recover_journal()?;

        let recorder = telemetry::current();
        let mut workers = service.workers.lock().unwrap_or_else(|e| e.into_inner());
        for w in 0..shared.config.workers {
            let shared = Arc::clone(&shared);
            let recorder = recorder.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("sprout-serve-{w}"))
                    .spawn(move || {
                        let _telemetry = recorder.map(telemetry::RecorderScope::install);
                        worker_loop(&shared);
                    })
                    .map_err(|e| ServeError::Io(e.to_string()))?,
            );
        }
        drop(workers);
        Ok(service)
    }

    /// Submits a job. Returns its id once the job is journaled and
    /// queued — from that point on the service guarantees exactly one
    /// terminal state.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] with the HTTP-facing rejection reason.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, SubmitError> {
        let s = &self.shared;
        if s.draining.load(Ordering::SeqCst) {
            return Err(SubmitError::Draining);
        }
        // Validate the board reference and rail list up front: an
        // unresolvable job must be rejected, not accepted-then-failed.
        let board = spec.resolve_board().map_err(SubmitError::Invalid)?;
        spec.requests(&board).map_err(SubmitError::Invalid)?;

        let id = s.next_id.fetch_add(1, Ordering::SeqCst);
        let priority = spec.priority;
        let deadline_ms = spec.deadline_ms.or(s.config.default_deadline_ms);
        let record = JobRecord {
            id,
            rails_total: spec.rails.len(),
            spec,
            state: JobState::Queued,
            priority,
            attempts: 0,
            submitted: Instant::now(),
            deadline_ms,
            queue_ms: 0.0,
            run_ms: 0.0,
            rails_complete: 0,
            resumed: 0,
            recovered: false,
            killed: false,
            cancel_requested: false,
            cancel: CancelToken::new(),
            solves: 0,
            area_mm2: 0.0,
            error: None,
            terminal_transitions: 0,
        };

        // Journal before queueing: a job is "accepted" only once it
        // would survive a crash.
        if let Err(e) = self.journal_admit(&record) {
            return Err(SubmitError::Journal(e));
        }

        {
            let mut jobs = s.jobs.lock().unwrap_or_else(|e| e.into_inner());
            jobs.insert(id, record);
        }

        match s.queue.admit(id, priority) {
            Ok(Admitted::Queued) => {}
            Ok(Admitted::Shed { victim }) => {
                telemetry::counter!("serve.sheds");
                self.finalize_external(
                    victim,
                    JobState::Shed,
                    Some("shed by higher-priority arrival".into()),
                );
            }
            Err(_) => {
                // Rejected: roll the journal and record back — the job
                // was never accepted.
                let mut jobs = s.jobs.lock().unwrap_or_else(|e| e.into_inner());
                jobs.remove(&id);
                drop(jobs);
                self.journal_remove(id);
                s.counters.rejected.fetch_add(1, Ordering::Relaxed);
                telemetry::counter!("serve.rejected");
                let retry_after_ms = s.config.backoff.delay_ms(id, 0);
                return Err(if s.draining.load(Ordering::SeqCst) {
                    SubmitError::Draining
                } else {
                    SubmitError::Saturated { retry_after_ms }
                });
            }
        }
        s.counters.accepted.fetch_add(1, Ordering::Relaxed);
        telemetry::counter!("serve.accepted");
        telemetry::gauge!("serve.queue_depth", s.queue.len() as i64);
        Ok(id)
    }

    /// The snapshot of one job, if known.
    pub fn status(&self, id: u64) -> Option<JobSnapshot> {
        let jobs = self.shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
        jobs.get(&id).map(JobRecord::snapshot)
    }

    /// Snapshots of every known job, ordered by id.
    pub fn jobs(&self) -> Vec<JobSnapshot> {
        let jobs = self.shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<JobSnapshot> = jobs.values().map(JobRecord::snapshot).collect();
        out.sort_by_key(|j| j.id);
        out
    }

    /// Cancels a job: queued jobs finalize immediately; running jobs
    /// get their cancel token triggered and finalize when the
    /// supervisor yields. `false` when the id is unknown or already
    /// terminal.
    pub fn cancel(&self, id: u64) -> bool {
        let s = &self.shared;
        let token = {
            let mut jobs = s.jobs.lock().unwrap_or_else(|e| e.into_inner());
            let Some(rec) = jobs.get_mut(&id) else {
                return false;
            };
            if rec.state.is_terminal() {
                return false;
            }
            rec.cancel_requested = true;
            rec.cancel.clone()
        };
        token.cancel();
        if s.queue.remove(id) {
            self.finalize_external(
                id,
                JobState::Cancelled,
                Some("cancelled while queued".into()),
            );
        }
        true
    }

    /// Current health/readiness.
    pub fn ready(&self) -> Readiness {
        let s = &self.shared;
        if s.draining.load(Ordering::SeqCst) {
            return Readiness::Draining;
        }
        if overloaded(s) {
            Readiness::Overloaded
        } else {
            Readiness::Ready
        }
    }

    /// The per-job event bus feeding `GET /jobs/:id/events`.
    pub fn events(&self) -> Arc<EventBus> {
        Arc::clone(&self.shared.bus)
    }

    /// The latest attempt's performance profile for `id` (rendered
    /// JSON: timeline summary plus
    /// [`sprout_telemetry::prof::ScalingDiagnosis`]), once a routing
    /// attempt has run. Feeds `GET /jobs/<id>/profile`.
    pub fn profile(&self, id: u64) -> Option<String> {
        let profiles = self
            .shared
            .profiles
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        profiles.get(&id).cloned()
    }

    /// Current counters and latency percentiles.
    pub fn metrics(&self) -> ServiceMetrics {
        let s = &self.shared;
        let c = &s.counters;
        let (p50, p99, lat_sum) = {
            let lat = s.latencies.lock().unwrap_or_else(|e| e.into_inner());
            let (p50, p99) = percentiles(&lat);
            (p50, p99, lat.iter().sum())
        };
        let (qw50, qw99, qw_count, qw_sum) = {
            let qw = s.queue_waits.lock().unwrap_or_else(|e| e.into_inner());
            let (p50, p99) = percentiles(&qw);
            (p50, p99, qw.len() as u64, qw.iter().sum())
        };
        ServiceMetrics {
            queue_depth: s.queue.len(),
            running: s.running.load(Ordering::SeqCst),
            accepted: c.accepted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            best_so_far: c.best_so_far.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            expired: c.expired.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            recovered: c.recovered.load(Ordering::Relaxed),
            killed: c.killed.load(Ordering::Relaxed),
            worker_panics: c.worker_panics.load(Ordering::Relaxed),
            terminal_violations: c.terminal_violations.load(Ordering::Relaxed),
            latency_p50_ms: p50,
            latency_p99_ms: p99,
            workers_live: 0,
            leased: 0,
            redispatches: 0,
            uptime_seconds: s.started.elapsed().as_secs_f64(),
            events_published: s.bus.events_published(),
            events_dropped: s.bus.events_dropped(),
            queue_wait_p50_ms: qw50,
            queue_wait_p99_ms: qw99,
            queue_wait_count: qw_count,
            queue_wait_sum_ms: qw_sum,
            latency_sum_ms: lat_sum,
        }
    }

    /// Blocks until every accepted job is terminal (killed jobs — which
    /// only a restart can finish — are excluded) or the timeout passes.
    /// `true` when idle was reached.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.is_idle() {
                return true;
            }
            if Instant::now() >= deadline {
                return self.is_idle();
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    fn is_idle(&self) -> bool {
        let s = &self.shared;
        if !s.queue.is_empty() || s.running.load(Ordering::SeqCst) > 0 {
            return false;
        }
        let jobs = s.jobs.lock().unwrap_or_else(|e| e.into_inner());
        jobs.values().all(|r| r.state.is_terminal() || r.killed)
    }

    /// Stops the service. With `drain` the queue is emptied by the
    /// workers first; without it, queued jobs are finalized as
    /// cancelled (their journals stay, so a later service instance
    /// could still recover them — cancelled is terminal, though, so the
    /// terminal record prevents that). Killed jobs are left
    /// non-terminal on purpose: only a restart may finish them.
    pub fn shutdown(&self, drain: bool) {
        let s = &self.shared;
        s.draining.store(true, Ordering::SeqCst);
        if drain {
            s.queue.close();
        } else {
            let dropped = s.queue.close_and_clear();
            for entry in dropped {
                self.finalize_external(
                    entry.id,
                    JobState::Cancelled,
                    Some("service shut down before the job ran".into()),
                );
            }
        }
        let mut workers = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        for h in workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Takes the retained per-attempt [`RunReport`]s (empty unless
    /// [`ServiceConfig::keep_reports`] is set).
    pub fn take_reports(&self) -> Vec<RunReport> {
        let mut reports = self
            .shared
            .reports
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *reports)
    }

    // ---- journal -------------------------------------------------------

    fn journal_admit(&self, record: &JobRecord) -> Result<(), String> {
        let Some(dir) = &self.shared.config.data_dir else {
            return Ok(());
        };
        let mut o = Obj::new();
        o.u64("id", record.id).raw("spec", &record.spec.to_json());
        if let Some(d) = record.deadline_ms {
            o.f64("deadline_ms", d);
        }
        let body = o.finish();
        let tmp = dir.join(format!("job-{}.tmp", record.id));
        let path = dir.join(format!("job-{}.json", record.id));
        std::fs::write(&tmp, body).map_err(|e| e.to_string())?;
        std::fs::rename(&tmp, &path).map_err(|e| e.to_string())
    }

    fn journal_remove(&self, id: u64) {
        if let Some(dir) = &self.shared.config.data_dir {
            let _ = std::fs::remove_file(dir.join(format!("job-{id}.json")));
        }
    }

    /// Re-admits journaled jobs that never reached a terminal record.
    fn recover_journal(&self) -> Result<(), ServeError> {
        let s = &self.shared;
        let Some(dir) = s.config.data_dir.clone() else {
            return Ok(());
        };
        let entries = std::fs::read_dir(&dir).map_err(|e| ServeError::Io(e.to_string()))?;
        let mut max_id = 0u64;
        let mut pending: Vec<(u64, JobSpec, Option<f64>)> = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(id) = name
                .strip_prefix("job-")
                .and_then(|r| r.strip_suffix(".json"))
                .and_then(|r| r.parse::<u64>().ok())
            else {
                continue;
            };
            max_id = max_id.max(id);
            if dir.join(format!("done-{id}.json")).exists() {
                continue;
            }
            // A journal this service cannot parse is a warning, not a
            // crash: log and move on.
            let Ok(text) = std::fs::read_to_string(entry.path()) else {
                continue;
            };
            let Ok(root) = sprout_telemetry::json::parse(&text) else {
                telemetry::counter!("serve.journal_unreadable");
                continue;
            };
            let spec_json = match root.get("spec") {
                Some(v) => render_json(v),
                None => continue,
            };
            let Ok(spec) = JobSpec::parse(&spec_json) else {
                telemetry::counter!("serve.journal_unreadable");
                continue;
            };
            let deadline = root.get("deadline_ms").and_then(|v| v.as_f64());
            pending.push((id, spec, deadline));
        }
        s.next_id.store(max_id + 1, Ordering::SeqCst);
        pending.sort_by_key(|(id, _, _)| *id);
        for (id, spec, deadline_ms) in pending {
            let priority = spec.priority;
            let record = JobRecord {
                id,
                rails_total: spec.rails.len(),
                spec,
                state: JobState::Queued,
                priority,
                attempts: 0,
                // The original admission clock died with the original
                // process; a recovered job's deadline restarts here.
                submitted: Instant::now(),
                deadline_ms,
                queue_ms: 0.0,
                run_ms: 0.0,
                rails_complete: 0,
                resumed: 0,
                recovered: true,
                killed: false,
                cancel_requested: false,
                cancel: CancelToken::new(),
                solves: 0,
                area_mm2: 0.0,
                error: None,
                terminal_transitions: 0,
            };
            {
                let mut jobs = s.jobs.lock().unwrap_or_else(|e| e.into_inner());
                jobs.insert(id, record);
            }
            s.counters.accepted.fetch_add(1, Ordering::Relaxed);
            s.counters.recovered.fetch_add(1, Ordering::Relaxed);
            telemetry::counter!("serve.recovered");
            s.queue.reenter(id, priority, 0, Duration::ZERO);
        }
        Ok(())
    }

    /// Finalizes a job that is not currently owned by a worker (shed
    /// victims, cancelled-while-queued, non-drain shutdown).
    fn finalize_external(&self, id: u64, state: JobState, error: Option<String>) {
        finalize(&self.shared, id, state, error, 0.0);
    }
}

impl Drop for RoutingService {
    fn drop(&mut self) {
        // A dropped service stops accepting and drains workers; jobs
        // still queued stay journaled for the next instance.
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        let mut workers = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        for h in workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn overloaded(s: &Shared) -> bool {
    let cap = s.queue.capacity().max(1);
    let watermark = (s.config.overload_watermark.clamp(0.0, 1.0) * cap as f64).ceil() as usize;
    s.queue.len() >= watermark.max(1)
}

/// Renders a parsed [`sprout_telemetry::json::Json`] back to text —
/// the journal embeds the spec as a nested object and `JobSpec::parse`
/// wants the text form. Shared with the fleet journal and protocol,
/// which embed specs the same way.
pub(crate) fn render_json(v: &sprout_telemetry::json::Json) -> String {
    use sprout_telemetry::json::{array, escape_into, fmt_f64, Json};
    match v {
        Json::Null => "null".into(),
        Json::Bool(b) => (if *b { "true" } else { "false" }).into(),
        Json::Num(n) => {
            let mut s = String::new();
            fmt_f64(&mut s, *n);
            s
        }
        Json::Str(s) => {
            let mut out = String::from("\"");
            escape_into(&mut out, s);
            out.push('"');
            out
        }
        Json::Arr(items) => array(items.iter().map(render_json)),
        Json::Obj(members) => {
            let mut o = Obj::new();
            for (k, v) in members {
                o.raw(k, &render_json(v));
            }
            o.finish()
        }
    }
}

pub(crate) fn percentiles(latencies: &[f64]) -> (f64, f64) {
    if latencies.is_empty() {
        return (0.0, 0.0);
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pick = |q: f64| {
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    };
    (pick(0.50), pick(0.99))
}

// ---- worker side -------------------------------------------------------

fn worker_loop(s: &Arc<Shared>) {
    loop {
        match s.queue.pop(Duration::from_millis(50)) {
            Popped::Closed => break,
            Popped::Timeout => continue,
            Popped::Entry(entry) => {
                s.running.fetch_add(1, Ordering::SeqCst);
                // The worker's own panic boundary: whatever run_one
                // does — including injected panics — the loop survives
                // and the job gets a typed outcome.
                let id = entry.id;
                let attempt = entry.attempt;
                let result = catch_unwind(AssertUnwindSafe(|| run_one(s, entry)));
                if result.is_err() {
                    s.counters.worker_panics.fetch_add(1, Ordering::Relaxed);
                    telemetry::counter!("serve.worker_panics");
                    handle_worker_panic(s, id, attempt);
                }
                s.running.fetch_sub(1, Ordering::SeqCst);
                telemetry::gauge!("serve.queue_depth", s.queue.len() as i64);
            }
        }
    }
}

/// A worker panicked while holding job `id`: convert to a retryable
/// typed error, exactly as the supervisor does for rail panics.
fn handle_worker_panic(s: &Arc<Shared>, id: u64, attempt: usize) {
    let retry = {
        let mut jobs = s.jobs.lock().unwrap_or_else(|e| e.into_inner());
        match jobs.get_mut(&id) {
            Some(rec) if !rec.state.is_terminal() => {
                rec.attempts = rec.attempts.max(attempt + 1);
                if rec.attempts <= s.config.max_job_retries && !rec.cancel_requested {
                    rec.state = JobState::Queued;
                    Some((rec.priority, rec.attempts))
                } else {
                    None
                }
            }
            _ => return,
        }
    };
    match retry {
        Some((priority, attempts)) => {
            s.counters.retries.fetch_add(1, Ordering::Relaxed);
            telemetry::counter!("serve.retries");
            let delay = s.config.backoff.delay_ms(id, (attempts - 1) as u32);
            s.bus.publish(id, EventKind::Retry, |o| {
                o.str("reason", "worker_panic")
                    .u64("attempt", attempts as u64)
                    .f64("backoff_ms", delay);
            });
            s.queue
                .reenter(id, priority, attempts, Duration::from_secs_f64(delay / 1e3));
        }
        None => finalize(
            s,
            id,
            JobState::Failed,
            Some("worker panicked and the retry budget is exhausted".into()),
            0.0,
        ),
    }
}

fn run_one(s: &Arc<Shared>, entry: QueueEntry) {
    let id = entry.id;
    let (spec, cancel, deadline_ms, submitted, cancel_requested, queue_ms) = {
        let mut jobs = s.jobs.lock().unwrap_or_else(|e| e.into_inner());
        let Some(rec) = jobs.get_mut(&id) else { return };
        if rec.state.is_terminal() {
            return;
        }
        rec.state = JobState::Running;
        rec.attempts = entry.attempt + 1;
        rec.queue_ms = rec.submitted.elapsed().as_secs_f64() * 1e3 - rec.run_ms;
        (
            rec.spec.clone(),
            rec.cancel.clone(),
            rec.deadline_ms,
            rec.submitted,
            rec.cancel_requested,
            rec.queue_ms,
        )
    };
    {
        let mut qw = s.queue_waits.lock().unwrap_or_else(|e| e.into_inner());
        qw.push(queue_ms.max(0.0));
    }
    telemetry::histogram!("serve.queue_wait_ms", queue_ms.max(0.0) as u64);

    if cancel_requested {
        finalize(s, id, JobState::Cancelled, Some("cancelled".into()), 0.0);
        return;
    }

    let fault = s.config.fault;
    if let Some(plan) = fault {
        if plan.slows(id, entry.attempt) {
            std::thread::sleep(Duration::from_millis(plan.slow_ms));
        }
        if plan.panics(id, entry.attempt) {
            telemetry::counter!("serve.injected_panics");
            panic!(
                "injected service worker panic (job {id}, attempt {})",
                entry.attempt
            );
        }
    }

    // Deadline check before spending any routing work.
    let elapsed_ms = submitted.elapsed().as_secs_f64() * 1e3;
    let remaining_ms = deadline_ms.map(|d| d - elapsed_ms);
    if let Some(rem) = remaining_ms {
        if rem <= 0.0 {
            let e = SproutError::DeadlineExpired {
                deadline_ms: deadline_ms.unwrap_or(0.0),
                elapsed_ms,
            };
            finalize(s, id, JobState::Expired, Some(e.to_string()), 0.0);
            return;
        }
    }

    // Board + requests were validated at submit; failures here are
    // internal and terminal.
    let board = match spec.resolve_board() {
        Ok(b) => b,
        Err(e) => {
            finalize(s, id, JobState::Failed, Some(e.to_string()), 0.0);
            return;
        }
    };
    let requests = match spec.requests(&board) {
        Ok(r) => r,
        Err(e) => {
            finalize(s, id, JobState::Failed, Some(e.to_string()), 0.0);
            return;
        }
    };

    let mut router = s.config.router;
    if let Some(pitch) = spec.tile_pitch_mm {
        router.tile_pitch_mm = pitch;
    }
    // Graceful degradation: under queue pressure, prefer shipping a
    // partial result within a tight budget over queue collapse.
    let degraded = overloaded(s);
    if degraded {
        router.recovery.policy = RecoveryPolicy::BestSoFar;
        if router.recovery.budget.wall_clock_ms > s.config.degraded_wall_ms {
            router.recovery.budget.wall_clock_ms = s.config.degraded_wall_ms;
        }
        telemetry::counter!("serve.degraded_attempts");
    }

    let killed = fault.is_some_and(|p| p.kills(id, entry.attempt));
    // Wave completions go straight onto the event bus; the hook runs on
    // the supervisor thread after the wave's checkpoint save, so it is
    // off the rail-routing hot path.
    let wave_bus = Arc::clone(&s.bus);
    let on_wave: sprout_core::supervisor::WaveHook = Arc::new(move |p| {
        wave_bus.publish(id, EventKind::Progress, |o| {
            o.u64("wave", p.wave as u64)
                .u64("waves", p.waves as u64)
                .u64("rails_complete", p.rails_complete as u64)
                .u64("rails_total", p.rails_total as u64)
                .f64("elapsed_ms", p.elapsed_ms)
                .f64("solve_ms", p.solve_ms);
        });
    });
    let sup_config = SupervisorConfig {
        threads: s.config.supervisor_threads,
        deadline_ms: remaining_ms,
        max_retries: s.config.supervisor_retries,
        checkpoint: s
            .config
            .data_dir
            .as_ref()
            .map(|d| d.join(format!("ckpt-{id}"))),
        cancel: cancel.clone(),
        kill_after_wave: if killed { Some(0) } else { None },
        on_wave: Some(on_wave),
        ..SupervisorConfig::default()
    };

    let run_start = Instant::now();
    // Stage spans, residual points, retries and panics recorded during
    // this attempt flow onto the event bus with this job's id attached;
    // the recorder chains to whatever sink the host installed.
    let job_recorder = Arc::new(JobRecorder::new(
        Arc::clone(&s.bus),
        id,
        telemetry::current(),
    ));
    // A per-job profiler captures this attempt's thread timeline; its
    // recorder forwards every event to the job recorder so the event
    // bus sees exactly what it did before.
    let job_profiler = telemetry::prof::Profiler::with_capacity(8192);
    let contention_base = telemetry::prof::snapshot();
    let report = {
        let _telemetry = telemetry::RecorderScope::install(
            job_profiler.recorder(Some(job_recorder as Arc<dyn telemetry::Recorder>)),
        );
        Supervisor::new(&board, router, sup_config).run(&requests)
    };
    let run_ms = run_start.elapsed().as_secs_f64() * 1e3;
    telemetry::histogram!("serve.attempt_ms", run_ms as u64);

    let timeline = job_profiler.drain();
    if !timeline.is_empty() {
        // Lock stats are process-wide, so under concurrent jobs the
        // delta over-attributes shared-lock waits to each job — fine
        // for a forensic summary, stated here so nobody sums them.
        let contention = telemetry::prof::snapshot().delta_since(&contention_base);
        let diagnosis =
            telemetry::prof::diagnose(&timeline, &contention, s.config.supervisor_threads);
        let mut o = Obj::new();
        o.u64("job", id)
            .f64("attempt_ms", (run_ms * 1e3).round() / 1e3)
            .u64("slices", timeline.slice_count() as u64)
            .raw("diagnosis", &diagnosis.to_json());
        let mut profiles = s.profiles.lock().unwrap_or_else(|e| e.into_inner());
        // Latest attempt wins: retries overwrite the failed attempt.
        profiles.insert(id, o.finish());
    }

    if s.config.keep_reports {
        let label = format!("serve-job-{id}");
        let rr = RunReport::from_job(&label, &report);
        let mut reports = s.reports.lock().unwrap_or_else(|e| e.into_inner());
        reports.push(rr);
    }

    // Harvest attempt results into the record before classification.
    let rails_complete = report
        .rails
        .iter()
        .filter(|r| r.outcome.is_complete())
        .count();
    let solves: u64 = report.results().map(|r| r.timings.solves as u64).sum();
    let area: f64 = report.shapes().iter().map(|(_, _, sh)| sh.area_mm2()).sum();
    {
        let mut jobs = s.jobs.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(rec) = jobs.get_mut(&id) {
            rec.run_ms += run_ms;
            rec.rails_complete = rails_complete;
            rec.resumed += report.resumed;
            rec.solves += solves;
            rec.area_mm2 = area;
        }
    }

    if killed {
        // The "process died mid-job" simulation: the first wave's
        // checkpoint is on disk, nothing is finalized, no terminal
        // record is journaled. Only a restarted service finishes this
        // job — recover_journal re-admits it and the supervisor resumes
        // from the checkpoint.
        s.counters.killed.fetch_add(1, Ordering::Relaxed);
        telemetry::counter!("serve.killed");
        let mut jobs = s.jobs.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(rec) = jobs.get_mut(&id) {
            rec.killed = true;
        }
        return;
    }

    if report.is_complete() {
        finalize(s, id, JobState::Completed, None, run_ms);
        return;
    }

    // Classify the first failure.
    let cancel_requested = {
        let jobs = s.jobs.lock().unwrap_or_else(|e| e.into_inner());
        jobs.get(&id).is_some_and(|r| r.cancel_requested)
    };
    let mut first_error: Option<String> = None;
    let mut any_retryable = false;
    let mut all_cancelled = true;
    let mut any_deadline = false;
    for (_, e) in report.failures() {
        if first_error.is_none() {
            first_error = Some(e.to_string());
        }
        if is_retryable(e) {
            any_retryable = true;
        }
        if !matches!(e, SproutError::Cancelled) {
            all_cancelled = false;
        }
        if matches!(e, SproutError::DeadlineExpired { .. }) {
            any_deadline = true;
        }
    }

    if cancel_requested && all_cancelled {
        finalize(s, id, JobState::Cancelled, Some("cancelled".into()), run_ms);
        return;
    }

    let deadline_passed = deadline_ms.is_some_and(|d| submitted.elapsed().as_secs_f64() * 1e3 >= d);
    if any_deadline || deadline_passed {
        if rails_complete > 0 {
            finalize(s, id, JobState::BestSoFar, first_error, run_ms);
        } else {
            finalize(
                s,
                id,
                JobState::Expired,
                first_error.or_else(|| Some("deadline expired".into())),
                run_ms,
            );
        }
        return;
    }

    // Retry: the checkpoint is kept, so completed rails restore on the
    // next attempt instead of re-routing.
    let attempts = entry.attempt + 1;
    if any_retryable && attempts <= s.config.max_job_retries && !cancel_requested {
        let priority = {
            let mut jobs = s.jobs.lock().unwrap_or_else(|e| e.into_inner());
            match jobs.get_mut(&id) {
                Some(rec) if !rec.state.is_terminal() => {
                    rec.state = JobState::Queued;
                    Some(rec.priority)
                }
                _ => None,
            }
        };
        if let Some(priority) = priority {
            s.counters.retries.fetch_add(1, Ordering::Relaxed);
            telemetry::counter!("serve.retries");
            let delay = s.config.backoff.delay_ms(id, (attempts - 1) as u32);
            s.bus.publish(id, EventKind::Retry, |o| {
                o.str("reason", "attempt_failed")
                    .u64("attempt", attempts as u64)
                    .f64("backoff_ms", delay);
            });
            s.queue
                .reenter(id, priority, attempts, Duration::from_secs_f64(delay / 1e3));
            return;
        }
    }

    if rails_complete > 0 {
        finalize(s, id, JobState::BestSoFar, first_error, run_ms);
    } else {
        finalize(
            s,
            id,
            JobState::Failed,
            first_error.or_else(|| Some("no rail completed".into())),
            run_ms,
        );
    }
}

/// The single terminal transition. Updates the record, bumps exactly
/// one terminal counter, journals the terminal record with
/// `create_new` (a pre-existing record means a double finalize — the
/// violation counter records it), and drops the job's checkpoint.
fn finalize(s: &Arc<Shared>, id: u64, state: JobState, error: Option<String>, _run_ms: f64) {
    debug_assert!(state.is_terminal());
    let latency_ms = {
        let mut jobs = s.jobs.lock().unwrap_or_else(|e| e.into_inner());
        let Some(rec) = jobs.get_mut(&id) else { return };
        rec.terminal_transitions += 1;
        if rec.terminal_transitions > 1 {
            s.counters
                .terminal_violations
                .fetch_add(1, Ordering::Relaxed);
            telemetry::counter!("serve.terminal_violations");
            return;
        }
        rec.state = state;
        if rec.error.is_none() {
            rec.error = error;
        }
        rec.submitted.elapsed().as_secs_f64() * 1e3
    };

    let counter = match state {
        JobState::Completed => &s.counters.completed,
        JobState::BestSoFar => &s.counters.best_so_far,
        JobState::Failed => &s.counters.failed,
        JobState::Shed => &s.counters.shed,
        JobState::Expired => &s.counters.expired,
        JobState::Cancelled => &s.counters.cancelled,
        JobState::Queued | JobState::Running => return,
    };
    counter.fetch_add(1, Ordering::Relaxed);
    telemetry::point("job_terminal")
        .field("job", id)
        .field("state", state.name())
        .field("latency_ms", latency_ms)
        .emit();
    // Exactly one Terminal event per job: this runs only after the
    // terminal_transitions guard above admitted the first transition.
    let terminal_error = {
        let jobs = s.jobs.lock().unwrap_or_else(|e| e.into_inner());
        jobs.get(&id).and_then(|r| r.error.clone())
    };
    s.bus.publish(id, EventKind::Terminal, |o| {
        o.str("state", state.name()).f64("latency_ms", latency_ms);
        if let Some(e) = &terminal_error {
            o.str("error", e);
        }
    });
    {
        let mut lat = s.latencies.lock().unwrap_or_else(|e| e.into_inner());
        lat.push(latency_ms);
    }

    if let Some(dir) = &s.config.data_dir {
        let mut o = Obj::new();
        o.u64("id", id)
            .str("state", state.name())
            .f64("latency_ms", latency_ms);
        let body = o.finish();
        let path = dir.join(format!("done-{id}.json"));
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut f) => {
                use std::io::Write as _;
                let _ = f.write_all(body.as_bytes());
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                // A terminal record already exists for this job: the
                // exactly-once invariant broke across restarts.
                s.counters
                    .terminal_violations
                    .fetch_add(1, Ordering::Relaxed);
                telemetry::counter!("serve.terminal_violations");
            }
            Err(_) => {}
        }
        let _ = std::fs::remove_file(dir.join(format!("ckpt-{id}")));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use sprout_core::recovery::{RecoveryConfig, StageBudget};

    fn fast_router() -> RouterConfig {
        RouterConfig {
            tile_pitch_mm: 0.5,
            grow_iterations: 8,
            refine_iterations: 2,
            reheat: None,
            recovery: RecoveryConfig {
                policy: RecoveryPolicy::BestSoFar,
                budget: StageBudget::default(),
                fault: None,
            },
            ..RouterConfig::default()
        }
    }

    fn fast_config() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            router: fast_router(),
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn submit_route_complete() {
        let svc = RoutingService::start(fast_config()).expect("start");
        let id = svc.submit(JobSpec::two_rail(20.0)).expect("submit");
        assert!(svc.wait_idle(Duration::from_secs(120)));
        let snap = svc.status(id).expect("known job");
        assert_eq!(snap.state, JobState::Completed);
        assert_eq!(snap.rails_complete, 2);
        assert_eq!(snap.terminal_transitions, 1);
        svc.shutdown(true);
        assert_eq!(svc.metrics().completed, 1);
    }

    #[test]
    fn completed_jobs_expose_a_profile() {
        use sprout_telemetry::json::{parse, Json};
        let svc = RoutingService::start(fast_config()).expect("start");
        let id = svc.submit(JobSpec::two_rail(20.0)).expect("submit");
        assert!(svc.wait_idle(Duration::from_secs(120)));
        assert!(svc.profile(id + 100).is_none(), "unknown job: no profile");
        let body = svc.profile(id).expect("profile recorded");
        let root = parse(&body).expect("profile is JSON");
        assert_eq!(root.get("job").and_then(Json::as_u64), Some(id));
        let diag = root.get("diagnosis").expect("diagnosis attached");
        assert!(diag.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0) > 0.0);
        assert!(diag
            .get("critical_path_fraction")
            .and_then(Json::as_f64)
            .is_some());
        svc.shutdown(true);
    }

    #[test]
    fn invalid_specs_are_rejected_before_acceptance() {
        let svc = RoutingService::start(fast_config()).expect("start");
        let mut spec = JobSpec::two_rail(20.0);
        spec.rails[0].net = 99;
        match svc.submit(spec) {
            Err(SubmitError::Invalid(_)) => {}
            other => panic!("expected invalid, got {other:?}"),
        }
        assert_eq!(svc.metrics().accepted, 0);
        svc.shutdown(false);
    }

    #[test]
    fn saturation_rejects_with_retry_after() {
        let cfg = ServiceConfig {
            workers: 0, // nothing drains the queue
            queue_capacity: 2,
            router: fast_router(),
            ..ServiceConfig::default()
        };
        let svc = RoutingService::start(cfg).expect("start");
        svc.submit(JobSpec::two_rail(20.0)).expect("1");
        svc.submit(JobSpec::two_rail(20.0)).expect("2");
        match svc.submit(JobSpec::two_rail(20.0)) {
            Err(SubmitError::Saturated { retry_after_ms }) => {
                assert!(retry_after_ms > 0.0);
            }
            other => panic!("expected saturation, got {other:?}"),
        }
        assert_eq!(svc.metrics().rejected, 1);
        // A high-priority job sheds a queued normal one instead.
        let mut high = JobSpec::two_rail(20.0);
        high.priority = Priority::High;
        svc.submit(high).expect("high priority displaces");
        let m = svc.metrics();
        assert_eq!(m.shed, 1);
        svc.shutdown(false);
    }
}
