//! `sprout_served` — the routing-service daemon.
//!
//! Starts a [`RoutingService`] and serves the HTTP/1.1 JSON API until
//! interrupted (or until `--run-for-ms` elapses, for scripted smoke
//! tests).
//!
//! ```text
//! sprout_served [--addr 127.0.0.1:7171] [--workers N] [--queue-capacity N]
//!               [--data-dir DIR] [--deadline-ms MS] [--run-for-ms MS]
//! ```

use sprout_serve::http::HttpServer;
use sprout_serve::service::{RoutingService, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut addr = "127.0.0.1:7171".to_owned();
    let mut config = ServiceConfig::default();
    let mut run_for_ms: Option<u64> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = take(&args, &mut i, "--addr"),
            "--workers" => config.workers = parse(&take(&args, &mut i, "--workers"), "--workers"),
            "--queue-capacity" => {
                config.queue_capacity =
                    parse(&take(&args, &mut i, "--queue-capacity"), "--queue-capacity")
            }
            "--data-dir" => config.data_dir = Some(take(&args, &mut i, "--data-dir").into()),
            "--deadline-ms" => {
                config.default_deadline_ms = Some(parse(
                    &take(&args, &mut i, "--deadline-ms"),
                    "--deadline-ms",
                ))
            }
            "--run-for-ms" => {
                run_for_ms = Some(parse(&take(&args, &mut i, "--run-for-ms"), "--run-for-ms"))
            }
            "--help" | "-h" => {
                println!(
                    "sprout_served [--addr A] [--workers N] [--queue-capacity N] \
                     [--data-dir DIR] [--deadline-ms MS] [--run-for-ms MS]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let service = match RoutingService::start(config) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("sprout_served: {e}");
            std::process::exit(1);
        }
    };
    let mut server = match HttpServer::bind(&addr, Arc::clone(&service)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sprout_served: bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("sprout_served listening on http://{}", server.addr());

    match run_for_ms {
        Some(ms) => std::thread::sleep(Duration::from_millis(ms)),
        None => loop {
            // No signal handling without dependencies: park forever;
            // the process dies with the terminal.
            std::thread::park();
        },
    }

    server.stop();
    service.shutdown(true);
    let m = service.metrics();
    println!("sprout_served: drained; {}", m.to_json());
}

fn take(args: &[String], i: &mut usize, what: &str) -> String {
    *i += 1;
    args.get(*i).cloned().unwrap_or_else(|| {
        eprintln!("missing value for {what}");
        std::process::exit(2);
    })
}

fn parse<T: std::str::FromStr>(v: &str, what: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("bad value `{v}` for {what}");
        std::process::exit(2);
    })
}
