//! `sprout_served` — the routing-service daemon.
//!
//! Starts a [`RoutingService`] — or, with `--fleet N`, a
//! [`FleetCoordinator`] over N worker processes — and serves the same
//! HTTP/1.1 JSON API until interrupted (or until `--run-for-ms`
//! elapses, for scripted smoke tests). In fleet mode SIGTERM triggers
//! a graceful drain: no new leases, in-flight jobs finish or
//! checkpoint, queued work stays journaled for the next coordinator.
//!
//! ```text
//! sprout_served [--addr 127.0.0.1:7171] [--workers N] [--queue-capacity N]
//!               [--data-dir DIR] [--deadline-ms MS] [--run-for-ms MS]
//!               [--fleet N]
//! ```

use sprout_serve::fleet::{sigterm_flag, FleetConfig, FleetCoordinator};
use sprout_serve::http::HttpServer;
use sprout_serve::service::{RoutingService, ServiceConfig};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let mut addr = "127.0.0.1:7171".to_owned();
    let mut config = ServiceConfig::default();
    let mut run_for_ms: Option<u64> = None;
    let mut fleet_workers: Option<usize> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = take(&args, &mut i, "--addr"),
            "--workers" => config.workers = parse(&take(&args, &mut i, "--workers"), "--workers"),
            "--queue-capacity" => {
                config.queue_capacity =
                    parse(&take(&args, &mut i, "--queue-capacity"), "--queue-capacity")
            }
            "--data-dir" => config.data_dir = Some(take(&args, &mut i, "--data-dir").into()),
            "--deadline-ms" => {
                config.default_deadline_ms = Some(parse(
                    &take(&args, &mut i, "--deadline-ms"),
                    "--deadline-ms",
                ))
            }
            "--run-for-ms" => {
                run_for_ms = Some(parse(&take(&args, &mut i, "--run-for-ms"), "--run-for-ms"))
            }
            "--fleet" => fleet_workers = Some(parse(&take(&args, &mut i, "--fleet"), "--fleet")),
            "--help" | "-h" => {
                println!(
                    "sprout_served [--addr A] [--workers N] [--queue-capacity N] \
                     [--data-dir DIR] [--deadline-ms MS] [--run-for-ms MS] [--fleet N]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(workers) = fleet_workers {
        run_fleet(&addr, workers, &config, run_for_ms);
        return;
    }

    let service = match RoutingService::start(config) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("sprout_served: {e}");
            std::process::exit(1);
        }
    };
    let mut server = match HttpServer::bind(&addr, Arc::clone(&service)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sprout_served: bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("sprout_served listening on http://{}", server.addr());

    match run_for_ms {
        Some(ms) => std::thread::sleep(Duration::from_millis(ms)),
        None => loop {
            // No signal handling without dependencies: park forever;
            // the process dies with the terminal.
            std::thread::park();
        },
    }

    server.stop();
    service.shutdown(true);
    let m = service.metrics();
    println!("sprout_served: drained; {}", m.to_json());
}

/// Fleet-backed daemon: same HTTP API, jobs sharded across worker
/// processes, SIGTERM drains gracefully.
fn run_fleet(addr: &str, workers: usize, base: &ServiceConfig, run_for_ms: Option<u64>) {
    let config = FleetConfig {
        workers,
        queue_capacity: base.queue_capacity,
        data_dir: base.data_dir.clone(),
        default_deadline_ms: base.default_deadline_ms,
        worker_args: vec!["--router".into(), "fast".into()],
        ..FleetConfig::default()
    };
    let sigterm = sigterm_flag();
    let fleet = match FleetCoordinator::start(config) {
        Ok(f) => Arc::new(f),
        Err(e) => {
            eprintln!("sprout_served: fleet: {e}");
            std::process::exit(1);
        }
    };
    let mut server = match HttpServer::bind(addr, Arc::clone(&fleet)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sprout_served: bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "sprout_served listening on http://{} (fleet, {workers} workers)",
        server.addr()
    );

    let stop_at = run_for_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    loop {
        std::thread::sleep(Duration::from_millis(50));
        if sigterm.load(Ordering::SeqCst) {
            eprintln!("sprout_served: SIGTERM — draining fleet");
            break;
        }
        if stop_at.is_some_and(|t| Instant::now() >= t) {
            break;
        }
    }

    server.stop();
    fleet.drain(Duration::from_secs(60));
    println!("sprout_served: drained; {}", fleet.metrics().to_json());
}

fn take(args: &[String], i: &mut usize, what: &str) -> String {
    *i += 1;
    args.get(*i).cloned().unwrap_or_else(|| {
        eprintln!("missing value for {what}");
        std::process::exit(2);
    })
}

fn parse<T: std::str::FromStr>(v: &str, what: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("bad value `{v}` for {what}");
        std::process::exit(2);
    })
}
