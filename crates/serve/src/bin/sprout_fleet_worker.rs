//! `sprout_fleet_worker` — one fleet worker process.
//!
//! Spawned by the fleet coordinator with stdin/stdout piped; speaks the
//! newline-delimited JSON frame protocol. All logic lives in
//! [`sprout_serve::worker`] so the integration-test harness can build a
//! bit-identical worker binary in its own package.

fn main() {
    sprout_serve::worker::worker_main();
}
