//! `sprout_fleet` — fleet-mode smoke driver and demo CLI.
//!
//! Starts a [`FleetCoordinator`] over N worker processes, submits a
//! budget sweep of jobs, waits for every terminal state, drains
//! gracefully, and reports throughput, latency, and fault counters.
//! Exits nonzero if any accepted job was lost or any exactly-once
//! invariant broke — so the binary doubles as the CI `fleet-smoke`
//! check. SIGTERM triggers a graceful drain.
//!
//! ```text
//! sprout_fleet [--jobs N] [--workers N] [--queue-capacity N]
//!              [--deadline-ms MS] [--data-dir PATH]
//!              [--chaos-seed S] [--kill-rate F] [--stall-rate F]
//!              [--stall-ms N] [--blackout-rate F] [--blackout-ms N]
//!              [--heartbeat-ms N] [--heartbeat-timeout-ms N] [--quiet]
//! ```

use sprout_serve::backoff::BackoffConfig;
use sprout_serve::chaos::FleetFaultPlan;
use sprout_serve::fleet::{sigterm_flag, FleetConfig, FleetCoordinator};
use sprout_serve::job::{JobSpec, JobState};
use sprout_serve::service::SubmitError;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Saturation retries per job before giving up on it.
const SUBMIT_ATTEMPTS: u32 = 4;

fn main() {
    let mut jobs = 8usize;
    let mut config = FleetConfig {
        worker_args: vec!["--router".into(), "fast".into()],
        ..FleetConfig::default()
    };
    let mut deadline_ms: Option<f64> = None;
    let mut fault = FleetFaultPlan {
        seed: 0,
        kill_rate: 0.0,
        stall_rate: 0.0,
        stall_ms: 20,
        blackout_rate: 0.0,
        blackout_ms: 800,
    };
    let mut have_fault = false;
    let mut quiet = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => jobs = parse(&take(&args, &mut i, "--jobs"), "--jobs"),
            "--workers" => config.workers = parse(&take(&args, &mut i, "--workers"), "--workers"),
            "--queue-capacity" => {
                config.queue_capacity =
                    parse(&take(&args, &mut i, "--queue-capacity"), "--queue-capacity")
            }
            "--deadline-ms" => {
                deadline_ms = Some(parse(
                    &take(&args, &mut i, "--deadline-ms"),
                    "--deadline-ms",
                ))
            }
            "--data-dir" => config.data_dir = Some(take(&args, &mut i, "--data-dir").into()),
            "--chaos-seed" => {
                fault.seed = parse(&take(&args, &mut i, "--chaos-seed"), "--chaos-seed");
                have_fault = true;
            }
            "--kill-rate" => {
                fault.kill_rate = parse(&take(&args, &mut i, "--kill-rate"), "--kill-rate");
                have_fault = true;
            }
            "--stall-rate" => {
                fault.stall_rate = parse(&take(&args, &mut i, "--stall-rate"), "--stall-rate");
                have_fault = true;
            }
            "--stall-ms" => {
                fault.stall_ms = parse(&take(&args, &mut i, "--stall-ms"), "--stall-ms");
                have_fault = true;
            }
            "--blackout-rate" => {
                fault.blackout_rate =
                    parse(&take(&args, &mut i, "--blackout-rate"), "--blackout-rate");
                have_fault = true;
            }
            "--blackout-ms" => {
                fault.blackout_ms = parse(&take(&args, &mut i, "--blackout-ms"), "--blackout-ms");
                have_fault = true;
            }
            "--heartbeat-ms" => {
                config.heartbeat_ms =
                    parse(&take(&args, &mut i, "--heartbeat-ms"), "--heartbeat-ms")
            }
            "--heartbeat-timeout-ms" => {
                config.heartbeat_timeout_ms = parse(
                    &take(&args, &mut i, "--heartbeat-timeout-ms"),
                    "--heartbeat-timeout-ms",
                )
            }
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "sprout_fleet [--jobs N] [--workers N] [--queue-capacity N] \
                     [--deadline-ms MS] [--data-dir PATH] [--chaos-seed S] [--kill-rate F] \
                     [--stall-rate F] [--stall-ms N] [--blackout-rate F] [--blackout-ms N] \
                     [--heartbeat-ms N] [--heartbeat-timeout-ms N] [--quiet]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    config.default_deadline_ms = deadline_ms;
    if have_fault {
        config.fault = Some(fault);
    }

    // Use a scratch data dir when none was given: cross-process resume
    // needs shared checkpoints to be interesting at all.
    let scratch;
    if config.data_dir.is_none() {
        scratch = std::env::temp_dir().join(format!("sprout-fleet-{}", std::process::id()));
        config.data_dir = Some(scratch.clone());
    } else {
        scratch = std::path::PathBuf::new();
    }

    let sigterm = sigterm_flag();
    let fleet = match FleetCoordinator::start(config) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("sprout_fleet: {e}");
            std::process::exit(1);
        }
    };

    // Saturation rides the same seeded backoff schedule the coordinator
    // uses internally, never shorter than the retry-after hint.
    let submit_backoff = BackoffConfig::default();
    let start = Instant::now();
    let mut ids = Vec::new();
    for k in 0..jobs {
        let budget = 20.0 + (k % 3) as f64 * 2.0;
        let mut attempt = 0u32;
        let outcome = loop {
            match fleet.submit(JobSpec::two_rail(budget)) {
                Err(SubmitError::Saturated { retry_after_ms }) if attempt + 1 < SUBMIT_ATTEMPTS => {
                    let delay_ms = submit_backoff
                        .delay_ms(k as u64, attempt)
                        .max(retry_after_ms);
                    std::thread::sleep(Duration::from_secs_f64(delay_ms / 1e3));
                    attempt += 1;
                }
                other => break other,
            }
        };
        match outcome {
            Ok(id) => ids.push(id),
            Err(SubmitError::Saturated { .. }) => {
                eprintln!("sprout_fleet: job {k} rejected after {SUBMIT_ATTEMPTS} attempts")
            }
            Err(e) => {
                eprintln!("sprout_fleet: submit {k}: {e}");
                std::process::exit(1);
            }
        }
    }

    // Wait for idle, watching for SIGTERM → graceful drain.
    let deadline = Instant::now() + Duration::from_secs(600);
    loop {
        if fleet.wait_idle(Duration::from_millis(100)) {
            break;
        }
        if sigterm.load(Ordering::SeqCst) {
            eprintln!("sprout_fleet: SIGTERM — draining");
            fleet.drain(Duration::from_secs(60));
            std::process::exit(0);
        }
        if Instant::now() >= deadline {
            eprintln!("sprout_fleet: jobs did not settle within 600 s");
            std::process::exit(1);
        }
    }
    let drained = fleet.drain(Duration::from_secs(60));
    let wall_s = start.elapsed().as_secs_f64();

    let mut lost = 0usize;
    let mut resumed_jobs = 0usize;
    let mut by_state = [0usize; 6];
    for &id in &ids {
        match fleet.status(id) {
            Some(snap) => {
                if snap.resumed > 0 {
                    resumed_jobs += 1;
                }
                match snap.state {
                    JobState::Completed => by_state[0] += 1,
                    JobState::BestSoFar => by_state[1] += 1,
                    JobState::Failed => by_state[2] += 1,
                    JobState::Shed => by_state[3] += 1,
                    JobState::Expired => by_state[4] += 1,
                    JobState::Cancelled => by_state[5] += 1,
                    _ => lost += 1,
                }
            }
            None => lost += 1,
        }
    }
    let m = fleet.metrics();
    if !quiet {
        println!(
            "sprout_fleet: {} jobs across {} workers in {:.2} s ({:.2} boards/s) — \
             completed {} best_so_far {} failed {} shed {} expired {} cancelled {}",
            ids.len(),
            m.workers_spawned,
            wall_s,
            ids.len() as f64 / wall_s.max(1e-9),
            by_state[0],
            by_state[1],
            by_state[2],
            by_state[3],
            by_state[4],
            by_state[5],
        );
        println!(
            "sprout_fleet: p50 {:.1} ms p99 {:.1} ms — workers dead {} restarts {} \
             redispatches {} stale finalizes {} resumed jobs {}",
            m.latency_p50_ms,
            m.latency_p99_ms,
            m.workers_dead,
            m.worker_restarts,
            m.redispatches,
            m.stale_finalizes,
            resumed_jobs,
        );
    }
    drop(fleet);
    if !scratch.as_os_str().is_empty() {
        let _ = std::fs::remove_dir_all(&scratch);
    }
    if lost > 0 || m.terminal_violations > 0 || !drained {
        eprintln!(
            "sprout_fleet: INVARIANT BROKEN — {lost} lost job(s), {} double finalize(s), drained={drained}",
            m.terminal_violations
        );
        std::process::exit(1);
    }
}

fn take(args: &[String], i: &mut usize, what: &str) -> String {
    *i += 1;
    args.get(*i).cloned().unwrap_or_else(|| {
        eprintln!("missing value for {what}");
        std::process::exit(2);
    })
}

fn parse<T: std::str::FromStr>(v: &str, what: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("bad value `{v}` for {what}");
        std::process::exit(2);
    })
}
