//! `serve_batch` — batch client driving a [`RoutingService`] in
//! process.
//!
//! Submits a sweep of jobs (budget variants over a board preset),
//! waits for every terminal state, and reports throughput and latency.
//! Exits nonzero if any accepted job was lost (no terminal state) or
//! any terminal-state invariant broke — so the binary doubles as a
//! scriptable smoke check.
//!
//! ```text
//! serve_batch [--jobs N] [--workers N] [--queue-capacity N]
//!             [--deadline-ms MS] [--chaos-seed S] [--quiet]
//! ```

use sprout_core::recovery::{RecoveryConfig, RecoveryPolicy, StageBudget};
use sprout_core::router::RouterConfig;
use sprout_serve::backoff::BackoffConfig;
use sprout_serve::chaos::ServeFaultPlan;
use sprout_serve::job::{JobSpec, JobState};
use sprout_serve::service::{RoutingService, ServiceConfig, SubmitError};
use std::time::{Duration, Instant};

/// Saturation retries per job before giving up on it.
const SUBMIT_ATTEMPTS: u32 = 4;

/// Submits `spec`, riding out saturation with the same seeded backoff
/// schedule the service itself uses — deterministic per job index, and
/// never shorter than the service's own retry-after hint.
fn submit_with_backoff(
    service: &RoutingService,
    backoff: &BackoffConfig,
    k: usize,
    spec: JobSpec,
) -> Result<u64, SubmitError> {
    let mut attempt = 0u32;
    loop {
        match service.submit(spec.clone()) {
            Err(SubmitError::Saturated { retry_after_ms }) if attempt + 1 < SUBMIT_ATTEMPTS => {
                let delay_ms = backoff.delay_ms(k as u64, attempt).max(retry_after_ms);
                std::thread::sleep(Duration::from_secs_f64(delay_ms / 1e3));
                attempt += 1;
            }
            other => return other,
        }
    }
}

fn main() {
    let mut jobs = 8usize;
    let mut workers = 2usize;
    let mut queue_capacity = 64usize;
    let mut deadline_ms: Option<f64> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut quiet = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => jobs = parse(&take(&args, &mut i, "--jobs"), "--jobs"),
            "--workers" => workers = parse(&take(&args, &mut i, "--workers"), "--workers"),
            "--queue-capacity" => {
                queue_capacity = parse(&take(&args, &mut i, "--queue-capacity"), "--queue-capacity")
            }
            "--deadline-ms" => {
                deadline_ms = Some(parse(
                    &take(&args, &mut i, "--deadline-ms"),
                    "--deadline-ms",
                ))
            }
            "--chaos-seed" => {
                chaos_seed = Some(parse(&take(&args, &mut i, "--chaos-seed"), "--chaos-seed"))
            }
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "serve_batch [--jobs N] [--workers N] [--queue-capacity N] \
                     [--deadline-ms MS] [--chaos-seed S] [--quiet]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let router = RouterConfig {
        tile_pitch_mm: 0.5,
        grow_iterations: 8,
        refine_iterations: 2,
        reheat: None,
        recovery: RecoveryConfig {
            policy: RecoveryPolicy::BestSoFar,
            budget: StageBudget::default(),
            fault: None,
        },
        ..RouterConfig::default()
    };
    let config = ServiceConfig {
        workers,
        queue_capacity,
        router,
        default_deadline_ms: deadline_ms,
        fault: chaos_seed.map(|seed| ServeFaultPlan {
            seed,
            panic_rate: 0.3,
            kill_rate: 0.0,
            slow_rate: 0.2,
            slow_ms: 10,
        }),
        ..ServiceConfig::default()
    };

    let service = match RoutingService::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve_batch: {e}");
            std::process::exit(1);
        }
    };

    let submit_backoff = BackoffConfig::default();
    let start = Instant::now();
    let mut ids = Vec::new();
    for k in 0..jobs {
        // Budget sweep: distinct boards-worth of work per job, all
        // comfortably routable on the preset so any failure is the
        // chaos plan's doing rather than the budget's.
        let budget = 20.0 + (k % 3) as f64 * 2.0;
        match submit_with_backoff(&service, &submit_backoff, k, JobSpec::two_rail(budget)) {
            Ok(id) => ids.push(id),
            Err(SubmitError::Saturated { .. }) => {
                eprintln!("serve_batch: job {k} rejected after {SUBMIT_ATTEMPTS} attempts")
            }
            Err(e) => {
                eprintln!("serve_batch: submit {k}: {e}");
                std::process::exit(1);
            }
        }
    }

    if !service.wait_idle(Duration::from_secs(600)) {
        eprintln!("serve_batch: jobs did not settle within 600 s");
        std::process::exit(1);
    }
    service.shutdown(true);
    let wall_s = start.elapsed().as_secs_f64();

    let mut lost = 0usize;
    let mut by_state = [0usize; 6];
    for &id in &ids {
        match service.status(id).map(|s| s.state) {
            Some(JobState::Completed) => by_state[0] += 1,
            Some(JobState::BestSoFar) => by_state[1] += 1,
            Some(JobState::Failed) => by_state[2] += 1,
            Some(JobState::Shed) => by_state[3] += 1,
            Some(JobState::Expired) => by_state[4] += 1,
            Some(JobState::Cancelled) => by_state[5] += 1,
            _ => lost += 1,
        }
    }
    let m = service.metrics();
    let boards_per_s = ids.len() as f64 / wall_s.max(1e-9);
    if !quiet {
        println!(
            "serve_batch: {} jobs in {:.2} s ({:.2} boards/s) — \
             completed {} best_so_far {} failed {} shed {} expired {} cancelled {}",
            ids.len(),
            wall_s,
            boards_per_s,
            by_state[0],
            by_state[1],
            by_state[2],
            by_state[3],
            by_state[4],
            by_state[5],
        );
        println!(
            "serve_batch: p50 {:.1} ms p99 {:.1} ms retries {} panics contained {}",
            m.latency_p50_ms, m.latency_p99_ms, m.retries, m.worker_panics
        );
    }
    if lost > 0 || m.terminal_violations > 0 {
        eprintln!(
            "serve_batch: INVARIANT BROKEN — {lost} lost job(s), {} double finalize(s)",
            m.terminal_violations
        );
        std::process::exit(1);
    }
}

fn take(args: &[String], i: &mut usize, what: &str) -> String {
    *i += 1;
    args.get(*i).cloned().unwrap_or_else(|| {
        eprintln!("missing value for {what}");
        std::process::exit(2);
    })
}

fn parse<T: std::str::FromStr>(v: &str, what: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("bad value `{v}` for {what}");
        std::process::exit(2);
    })
}
