//! Retry backoff with exponential growth and deterministic jitter.
//!
//! The service retries failed jobs after a delay that grows
//! exponentially with the attempt number. Plain exponential backoff
//! synchronizes retry storms (every client that failed together retries
//! together), so each delay is jittered — but the jitter is *seeded*:
//! a pure function of `(seed, token, attempt)` through
//! [`sprout_rng::hash3`]. The same configuration replays the same
//! schedule bit for bit on any machine and any thread count, which is
//! what lets the chaos tests assert exact retry timing.
//!
//! The schedule is monotone by construction: attempt `n`'s delay is the
//! running maximum of the jittered envelope up to `n`, so a retry never
//! fires sooner than the previous one would have.

use sprout_rng::{hash3, u64_to_f64};

/// Backoff schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffConfig {
    /// First-retry delay (ms).
    pub base_ms: f64,
    /// Multiplier per attempt (values below 1 are treated as 1).
    pub factor: f64,
    /// Delay ceiling (ms); the schedule saturates here.
    pub max_ms: f64,
    /// Jitter fraction in `[0, 1]`: each delay is drawn uniformly from
    /// `[(1 - jitter) * envelope, envelope]`.
    pub jitter: f64,
    /// Seed for the deterministic jitter draws.
    pub seed: u64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base_ms: 50.0,
            factor: 2.0,
            max_ms: 5_000.0,
            jitter: 0.25,
            seed: 0xB0FF,
        }
    }
}

impl BackoffConfig {
    /// The delay before retry `attempt` (0-based) of the job identified
    /// by `token` (the service uses the job id).
    ///
    /// Pure function of `(self, token, attempt)`: bit-identical across
    /// processes, machines, and thread counts. Monotone non-decreasing
    /// in `attempt` and bounded by [`BackoffConfig::max_ms`].
    pub fn delay_ms(&self, token: u64, attempt: u32) -> f64 {
        let base = self.base_ms.max(0.0);
        let factor = self.factor.max(1.0);
        let jitter = self.jitter.clamp(0.0, 1.0);
        let mut best = 0.0f64;
        for a in 0..=attempt {
            let envelope = (base * factor.powi(a as i32)).min(self.max_ms);
            let u = u64_to_f64(hash3(self.seed, token, a as u64));
            let jittered = envelope * (1.0 - jitter * u);
            if jittered > best {
                best = jittered;
            }
        }
        best.min(self.max_ms)
    }

    /// The full schedule for one token, `attempts` entries long.
    pub fn schedule(&self, token: u64, attempts: u32) -> Vec<f64> {
        (0..attempts).map(|a| self.delay_ms(token, a)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_monotone_and_bounded() {
        let cfg = BackoffConfig::default();
        for token in 0..16 {
            let s = cfg.schedule(token, 20);
            for w in s.windows(2) {
                assert!(w[1] >= w[0], "monotone: {w:?}");
            }
            assert!(s.iter().all(|&d| d <= cfg.max_ms && d >= 0.0));
        }
    }

    #[test]
    fn jitter_separates_tokens() {
        let cfg = BackoffConfig::default();
        let a = cfg.schedule(1, 6);
        let b = cfg.schedule(2, 6);
        assert_ne!(a, b, "distinct tokens must desynchronize");
    }

    #[test]
    fn same_seed_replays_bit_identically() {
        let cfg = BackoffConfig::default();
        let a = cfg.schedule(7, 12);
        let b = cfg.schedule(7, 12);
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn degenerate_parameters_stay_sane() {
        let cfg = BackoffConfig {
            base_ms: -5.0,
            factor: 0.1,
            max_ms: 10.0,
            jitter: 7.0,
            seed: 1,
        };
        let s = cfg.schedule(0, 8);
        assert!(s.iter().all(|&d| (0.0..=10.0).contains(&d)));
        for w in s.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }
}
