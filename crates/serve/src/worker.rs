//! Fleet worker: one process, one job at a time, heartbeats always.
//!
//! [`run_worker`] is the whole worker: it announces itself with a
//! `hello` frame, starts a heartbeat thread, and then serves
//! [`CoordFrame::Lease`] frames from its input until EOF or a
//! [`CoordFrame::Drain`]. Each leased job runs under the supervisor
//! with the lease's checkpoint path, so a job re-dispatched from a
//! dead worker resumes from whatever waves the dead worker finished —
//! the checkpoint file in the coordinator's data directory is the
//! cross-process handoff.
//!
//! The worker *classifies* its outcome (completed / expired / failed +
//! retryable) in a [`DoneFrame`]; the coordinator owns the retry
//! decision. Heartbeats run on their own thread, so they keep flowing
//! while a long job routes — only an injected blackout, a SIGSTOP, or
//! real death silences them.
//!
//! Process-level faults ([`FleetFaultPlan`]) are drawn *inside* the
//! worker from `(seed, job, attempt)` carried by the lease, so a chaos
//! schedule replays identically whichever worker a job lands on. The
//! injected kill is `exit(9)` immediately after wave 0's checkpoint is
//! on disk — by construction the coordinator can always resume what it
//! re-dispatches.

use crate::chaos::FleetFaultPlan;
use crate::events::STAGE_SPANS;
use crate::job::JobSpec;
use crate::proto::{CoordFrame, DoneFrame, WorkerFrame};
use sprout_core::recovery::{RecoveryConfig, RecoveryPolicy, StageBudget};
use sprout_core::router::RouterConfig;
use sprout_core::supervisor::{is_retryable, Supervisor, SupervisorConfig, WaveProgress};
use sprout_core::SproutError;
use sprout_telemetry::{self as telemetry, Event, Recorder};
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Worker configuration, normally parsed from the command line by
/// [`worker_main`].
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Heartbeat period (ms).
    pub heartbeat_ms: u64,
    /// Router configuration for every job (pitch may be overridden per
    /// job spec).
    pub router: RouterConfig,
    /// Supervisor threads per job.
    pub supervisor_threads: usize,
    /// Supervisor-level retries per rail.
    pub supervisor_retries: usize,
    /// Process-level fault injection (testing only).
    pub fault: Option<FleetFaultPlan>,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            heartbeat_ms: 100,
            router: RouterConfig::default(),
            supervisor_threads: 1,
            supervisor_retries: 1,
            fault: None,
        }
    }
}

/// The router profile the chaos suites and smoke binaries use: coarse
/// pitch, few iterations, `BestSoFar` — fast enough to run dozens of
/// jobs per test, complete enough to exercise every wave path.
pub fn fast_router() -> RouterConfig {
    RouterConfig {
        tile_pitch_mm: 0.5,
        grow_iterations: 8,
        refine_iterations: 2,
        reheat: None,
        recovery: RecoveryConfig {
            policy: RecoveryPolicy::BestSoFar,
            budget: StageBudget::default(),
            fault: None,
        },
        ..RouterConfig::default()
    }
}

struct Outbound<W: Write> {
    out: Mutex<W>,
}

impl<W: Write> Outbound<W> {
    fn send(&self, frame: &WorkerFrame) {
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        // A closed pipe means the coordinator is gone; the read loop
        // will see EOF and exit — nothing useful to do with the error.
        let _ = writeln!(out, "{}", frame.to_json());
        let _ = out.flush();
    }
}

/// Telemetry adapter installed around each leased run: pipeline stage
/// span ends (`grow`, `refine`, … — [`STAGE_SPANS`]) go out as
/// enriched [`WorkerFrame::Progress`] frames so the coordinator can
/// republish them on its event bus, giving `--fleet N` the same
/// per-stage stream in-process jobs get from their `JobRecorder`.
/// Wave attribution comes from watching `wave`/`job` span starts.
struct StageRecorder<W: Write> {
    out: Arc<Outbound<W>>,
    job: u64,
    lease: u64,
    wave: AtomicU64,
    waves: AtomicU64,
    inner: Option<Arc<dyn Recorder>>,
}

fn field_u64(fields: &[(&'static str, telemetry::Value)], key: &str) -> Option<u64> {
    fields.iter().find_map(|(k, v)| {
        if *k != key {
            return None;
        }
        match v {
            telemetry::Value::U64(n) => Some(*n),
            telemetry::Value::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    })
}

impl<W: Write + Send> Recorder for StageRecorder<W> {
    fn record(&self, event: &Event) {
        match event {
            Event::SpanStart {
                name: "job",
                fields,
                ..
            } => {
                if let Some(w) = field_u64(fields, "waves") {
                    self.waves.store(w, Ordering::Relaxed);
                }
            }
            Event::SpanStart {
                name: "wave",
                fields,
                ..
            } => {
                if let Some(w) = field_u64(fields, "wave") {
                    self.wave.store(w, Ordering::Relaxed);
                }
            }
            Event::SpanEnd {
                name, elapsed_ns, ..
            } if STAGE_SPANS.contains(name) => {
                self.out.send(&WorkerFrame::Progress {
                    job: self.job,
                    lease: self.lease,
                    wave: self.wave.load(Ordering::Relaxed) as usize,
                    waves: self.waves.load(Ordering::Relaxed) as usize,
                    // Stage frames carry no rail count; the coordinator
                    // folds `rails_complete` in with `max`, so 0 is inert.
                    rails_complete: 0,
                    stage: (*name).to_owned(),
                    elapsed_ms: *elapsed_ns as f64 / 1e6,
                    solve_ms: 0.0,
                });
            }
            _ => {}
        }
        if let Some(inner) = &self.inner {
            inner.record(event);
        }
    }

    fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.flush();
        }
    }
}

/// Runs the worker protocol over the given streams until EOF or a
/// drain frame. Returns the number of jobs completed (all outcomes).
///
/// Input is normally the process's stdin and output its stdout; tests
/// drive it with in-memory pipes.
pub fn run_worker<R, W>(config: WorkerConfig, input: R, output: W) -> usize
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let out = Arc::new(Outbound {
        out: Mutex::new(output),
    });
    out.send(&WorkerFrame::Hello {
        pid: std::process::id(),
    });

    // Heartbeats flow on their own thread for the whole process
    // lifetime; `blackout` silences them without stopping the clock.
    let stop = Arc::new(AtomicBool::new(false));
    let blackout = Arc::new(AtomicBool::new(false));
    let beat = {
        let out = Arc::clone(&out);
        let stop = Arc::clone(&stop);
        let blackout = Arc::clone(&blackout);
        let period = Duration::from_millis(config.heartbeat_ms.max(1));
        let seq = AtomicU64::new(0);
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                if !blackout.load(Ordering::SeqCst) {
                    out.send(&WorkerFrame::Heartbeat {
                        seq: seq.fetch_add(1, Ordering::SeqCst),
                    });
                }
                std::thread::sleep(period);
            }
        })
    };

    let mut served = 0usize;
    for line in input.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match CoordFrame::parse(&line) {
            Ok(CoordFrame::Lease {
                job,
                lease,
                attempt,
                spec,
                deadline_ms,
                checkpoint,
            }) => {
                let done = run_lease(
                    &config,
                    &out,
                    &blackout,
                    job,
                    lease,
                    attempt,
                    &spec,
                    deadline_ms,
                    checkpoint.map(PathBuf::from),
                );
                out.send(&WorkerFrame::Done(done));
                served += 1;
            }
            Ok(CoordFrame::Drain) => break,
            // A frame this worker cannot parse is the coordinator's
            // bug, not a reason to die: skip it and keep heartbeating.
            Err(_) => continue,
        }
    }

    stop.store(true, Ordering::SeqCst);
    let _ = beat.join();
    served
}

#[allow(clippy::too_many_arguments)]
fn run_lease<W>(
    config: &WorkerConfig,
    out: &Arc<Outbound<W>>,
    blackout: &Arc<AtomicBool>,
    job: u64,
    lease: u64,
    attempt: usize,
    spec: &JobSpec,
    deadline_ms: Option<f64>,
    checkpoint: Option<PathBuf>,
) -> DoneFrame
where
    W: Write + Send + 'static,
{
    let mut done = DoneFrame {
        job,
        lease,
        state: "failed".into(),
        resumed: 0,
        rails_complete: 0,
        rails_total: spec.rails.len(),
        area_mm2: 0.0,
        solves: 0,
        run_ms: 0.0,
        error: None,
        retryable: false,
    };

    // Injected process faults, decided from (seed, job, attempt) so the
    // schedule is identical whichever worker the job lands on.
    let mut kill = false;
    if let Some(plan) = config.fault {
        if plan.stalls(job, attempt) {
            std::thread::sleep(Duration::from_millis(plan.stall_ms));
        }
        if plan.blackouts(job, attempt) {
            // The slow-then-revived worker: heartbeats stop long enough
            // for the lease to expire, but the job still finishes and
            // reports — the stale `done` the coordinator must ignore.
            blackout.store(true, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(plan.blackout_ms));
            blackout.store(false, Ordering::SeqCst);
        }
        kill = plan.kills(job, attempt);
    }

    let board = match spec.resolve_board() {
        Ok(b) => b,
        Err(e) => {
            done.error = Some(e.to_string());
            return done;
        }
    };
    let requests = match spec.requests(&board) {
        Ok(r) => r,
        Err(e) => {
            done.error = Some(e.to_string());
            return done;
        }
    };

    let mut router = config.router;
    if let Some(pitch) = spec.tile_pitch_mm {
        router.tile_pitch_mm = pitch;
    }

    let on_wave: sprout_core::supervisor::WaveHook = {
        let out = Arc::clone(out);
        Arc::new(move |p: WaveProgress| {
            out.send(&WorkerFrame::Progress {
                job,
                lease,
                wave: p.wave,
                waves: p.waves,
                rails_complete: p.rails_complete,
                stage: "wave".into(),
                elapsed_ms: p.elapsed_ms,
                solve_ms: p.solve_ms,
            });
            if kill && p.wave == 0 {
                // The deterministic `kill -9`: wave 0's checkpoint is
                // on disk (the hook fires after the save), the progress
                // frame above is flushed, and the process dies without
                // unwinding — exactly what a real SIGKILL leaves behind.
                std::process::exit(9);
            }
        })
    };

    let sup_config = SupervisorConfig {
        threads: config.supervisor_threads,
        deadline_ms,
        max_retries: config.supervisor_retries,
        checkpoint,
        on_wave: Some(on_wave),
        ..SupervisorConfig::default()
    };

    let start = Instant::now();
    // Stage spans flow out as enriched progress frames for the
    // coordinator's event bus; the scope chains to whatever recorder
    // was already current so nothing is hidden from existing sinks.
    let stage_recorder = Arc::new(StageRecorder {
        out: Arc::clone(out),
        job,
        lease,
        wave: AtomicU64::new(0),
        waves: AtomicU64::new(0),
        inner: telemetry::current(),
    });
    let report = {
        let _telemetry = telemetry::RecorderScope::install(stage_recorder);
        Supervisor::new(&board, router, sup_config).run(&requests)
    };
    done.run_ms = start.elapsed().as_secs_f64() * 1e3;
    done.resumed = report.resumed;
    done.rails_complete = report
        .rails
        .iter()
        .filter(|r| r.outcome.is_complete())
        .count();
    done.solves = report.results().map(|r| r.timings.solves as u64).sum();
    done.area_mm2 = report.shapes().iter().map(|(_, _, sh)| sh.area_mm2()).sum();

    if report.is_complete() {
        done.state = "completed".into();
        return done;
    }

    let mut any_deadline = false;
    for (_, e) in report.failures() {
        if done.error.is_none() {
            done.error = Some(e.to_string());
        }
        if is_retryable(e) {
            done.retryable = true;
        }
        if matches!(e, SproutError::DeadlineExpired { .. }) {
            any_deadline = true;
        }
    }
    done.state = if any_deadline { "expired" } else { "failed" }.into();
    done
}

/// The `sprout_fleet_worker` entry point: parses the worker command
/// line and serves leases over stdin/stdout. Shared as a library
/// function so the integration-test harness can build a bit-identical
/// worker binary in its own package.
pub fn worker_main() {
    let mut config = WorkerConfig::default();
    let mut fault = FleetFaultPlan::quiet(0);
    let mut have_fault = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--heartbeat-ms" => {
                config.heartbeat_ms =
                    parse(&take(&args, &mut i, "--heartbeat-ms"), "--heartbeat-ms")
            }
            "--router" => match take(&args, &mut i, "--router").as_str() {
                "fast" => config.router = fast_router(),
                "default" => config.router = RouterConfig::default(),
                other => {
                    eprintln!("unknown router profile `{other}` (expected fast|default)");
                    std::process::exit(2);
                }
            },
            "--supervisor-threads" => {
                config.supervisor_threads = parse(
                    &take(&args, &mut i, "--supervisor-threads"),
                    "--supervisor-threads",
                )
            }
            "--supervisor-retries" => {
                config.supervisor_retries = parse(
                    &take(&args, &mut i, "--supervisor-retries"),
                    "--supervisor-retries",
                )
            }
            "--chaos-seed" => {
                fault.seed = parse(&take(&args, &mut i, "--chaos-seed"), "--chaos-seed");
                have_fault = true;
            }
            "--kill-rate" => {
                fault.kill_rate = parse(&take(&args, &mut i, "--kill-rate"), "--kill-rate");
                have_fault = true;
            }
            "--stall-rate" => {
                fault.stall_rate = parse(&take(&args, &mut i, "--stall-rate"), "--stall-rate");
                have_fault = true;
            }
            "--stall-ms" => {
                fault.stall_ms = parse(&take(&args, &mut i, "--stall-ms"), "--stall-ms");
                have_fault = true;
            }
            "--blackout-rate" => {
                fault.blackout_rate =
                    parse(&take(&args, &mut i, "--blackout-rate"), "--blackout-rate");
                have_fault = true;
            }
            "--blackout-ms" => {
                fault.blackout_ms = parse(&take(&args, &mut i, "--blackout-ms"), "--blackout-ms");
                have_fault = true;
            }
            "--help" | "-h" => {
                println!(
                    "sprout_fleet_worker [--heartbeat-ms N] [--router fast|default] \
                     [--supervisor-threads N] [--supervisor-retries N] [--chaos-seed S] \
                     [--kill-rate F] [--stall-rate F] [--stall-ms N] \
                     [--blackout-rate F] [--blackout-ms N]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if have_fault {
        config.fault = Some(fault);
    }

    let stdin = std::io::stdin();
    run_worker(config, stdin.lock(), std::io::stdout());
}

fn take(args: &[String], i: &mut usize, what: &str) -> String {
    *i += 1;
    args.get(*i).cloned().unwrap_or_else(|| {
        eprintln!("missing value for {what}");
        std::process::exit(2);
    })
}

fn parse<T: std::str::FromStr>(v: &str, what: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("bad value `{v}` for {what}");
        std::process::exit(2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A Vec<u8> sink shared with the test thread.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn frames(buf: &SharedBuf) -> Vec<WorkerFrame> {
        let bytes = buf.0.lock().unwrap().clone();
        String::from_utf8(bytes)
            .unwrap()
            .lines()
            .map(|l| WorkerFrame::parse(l).expect("worker emits valid frames"))
            .collect()
    }

    #[test]
    fn worker_serves_a_lease_in_process() {
        let lease = CoordFrame::Lease {
            job: 1,
            lease: 100,
            attempt: 0,
            spec: JobSpec::two_rail(20.0),
            deadline_ms: None,
            checkpoint: None,
        };
        let input = format!("{}\n{}\n", lease.to_json(), CoordFrame::Drain.to_json());
        let out = SharedBuf::default();
        let config = WorkerConfig {
            router: fast_router(),
            ..WorkerConfig::default()
        };
        let served = run_worker(config, Cursor::new(input), out.clone());
        assert_eq!(served, 1);
        let fs = frames(&out);
        assert!(matches!(fs.first(), Some(WorkerFrame::Hello { .. })));
        let done = fs
            .iter()
            .find_map(|f| match f {
                WorkerFrame::Done(d) => Some(d.clone()),
                _ => None,
            })
            .expect("done frame");
        assert_eq!(done.job, 1);
        assert_eq!(done.lease, 100);
        assert_eq!(done.state, "completed");
        assert_eq!(done.rails_complete, 2);
        // Two rails on one layer = two waves = two wave-progress
        // frames; stage spans ride along as their own frames.
        let wave_frames: Vec<_> = fs
            .iter()
            .filter(|f| matches!(f, WorkerFrame::Progress { stage, .. } if stage == "wave"))
            .collect();
        assert_eq!(wave_frames.len(), 2);
        assert!(
            fs.iter()
                .any(|f| matches!(f, WorkerFrame::Progress { stage, .. } if stage == "grow")),
            "stage spans must be forwarded as progress frames"
        );
        let timed = fs.iter().any(|f| {
            matches!(f, WorkerFrame::Progress { stage, elapsed_ms, .. }
                if stage == "wave" && *elapsed_ms > 0.0)
        });
        assert!(timed, "wave frames must carry elapsed_ms");
    }

    #[test]
    fn worker_heartbeats_while_idle_and_skips_garbage() {
        // No lease at all: just garbage lines, then EOF.
        let input = "nonsense\n{\"type\":\"warp\"}\n";
        let out = SharedBuf::default();
        let config = WorkerConfig {
            heartbeat_ms: 5,
            router: fast_router(),
            ..WorkerConfig::default()
        };
        let served = run_worker(config, Cursor::new(input), out.clone());
        assert_eq!(served, 0);
        // The heartbeat thread gets at least the startup beat out.
        assert!(frames(&out)
            .iter()
            .any(|f| matches!(f, WorkerFrame::Heartbeat { .. })));
    }
}
