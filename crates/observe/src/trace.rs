//! Convergence-trace capture: a [`TraceSink`] recorder that keeps the
//! router's per-iteration points and the solvers' residual summaries,
//! tagged with the rail they belong to, for JSONL export.

use sprout_telemetry::{Event, Fields, Recorder, Value};
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Mutex;

/// Point names the sink captures. Everything else (metrics snapshots,
/// fault-injection points, …) passes through untouched.
const CAPTURED: [&str; 8] = [
    "grow_iter",
    "refine_iter",
    "reheat_iter",
    "route_final",
    "cg_solve",
    "bicgstab_solve",
    "cg_not_converged",
    "bicgstab_not_converged",
];

/// One captured convergence record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Point name (`grow_iter`, `cg_solve`, …).
    pub name: &'static str,
    /// Net id of the enclosing `route` span, when inside one.
    pub net: Option<u64>,
    /// Layer of the enclosing `route` span, when inside one.
    pub layer: Option<u64>,
    /// The point's fields, in emission order.
    pub fields: Fields,
}

impl TraceRecord {
    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// A field as `f64` (converting integer values), if present.
    pub fn field_f64(&self, key: &str) -> Option<f64> {
        match self.field(key)? {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    fn to_json_line(&self) -> String {
        let mut obj = sprout_telemetry::json::Obj::new();
        obj.str("event", self.name);
        if let Some(net) = self.net {
            obj.u64("net", net);
        }
        if let Some(layer) = self.layer {
            obj.u64("layer", layer);
        }
        for (k, v) in &self.fields {
            // Residual curves arrive as pre-rendered JSON arrays in a
            // string field; splice them in raw so consumers see a real
            // array, not a quoted blob.
            match v {
                Value::Str(s) if s.starts_with('[') && s.ends_with(']') => {
                    obj.raw(k, s);
                }
                _ => {
                    obj.value(k, v);
                }
            }
        }
        obj.finish()
    }
}

#[derive(Default)]
struct Inner {
    /// Rail context per live span id: the (net, layer) of the nearest
    /// enclosing `route` span, propagated at span start via the
    /// parent id (exact even when rails route on worker threads).
    context: HashMap<u64, Option<(u64, u64)>>,
    records: Vec<TraceRecord>,
}

/// A [`Recorder`] that captures convergence points for later export.
///
/// Install it directly, or fan it out alongside a live sink with
/// [`TeeSink`](sprout_telemetry::sinks::TeeSink). Thread-safe; capture
/// order is the arrival order of events at the sink.
#[derive(Default)]
pub struct TraceSink {
    inner: Mutex<Inner>,
}

impl TraceSink {
    /// An empty sink.
    pub fn new() -> TraceSink {
        TraceSink::default()
    }

    /// Number of captured records.
    pub fn len(&self) -> usize {
        self.lock().records.len()
    }

    /// `true` when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the captured records.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.lock().records.clone()
    }

    /// Discards all captured records (rail contexts are kept).
    pub fn clear(&self) {
        self.lock().records.clear();
    }

    /// Serializes the capture as JSONL, one record per line.
    pub fn to_jsonl(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for r in &inner.records {
            out.push_str(&r.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Streams the JSONL serialization into `w`.
    ///
    /// # Errors
    ///
    /// Any error from the underlying writer.
    pub fn write_jsonl<W: io::Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(self.to_jsonl().as_bytes())
    }

    /// Writes the JSONL capture to `path`, creating or truncating it.
    ///
    /// # Errors
    ///
    /// Any error from creating or writing the file.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut buf = io::BufWriter::new(file);
        self.write_jsonl(&mut buf)?;
        io::Write::flush(&mut buf)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

fn field_u64(fields: &Fields, key: &str) -> Option<u64> {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        })
}

impl Recorder for TraceSink {
    fn record(&self, event: &Event) {
        match event {
            Event::SpanStart {
                id,
                parent,
                name,
                fields,
                ..
            } => {
                let mut inner = self.lock();
                let ctx = if *name == "route" {
                    match (field_u64(fields, "net"), field_u64(fields, "layer")) {
                        (Some(net), Some(layer)) => Some((net, layer)),
                        _ => None,
                    }
                } else {
                    parent
                        .and_then(|p| inner.context.get(&p).copied())
                        .flatten()
                };
                inner.context.insert(*id, ctx);
            }
            Event::SpanEnd { id, .. } => {
                self.lock().context.remove(id);
            }
            Event::Point {
                name,
                parent,
                fields,
                ..
            } => {
                if !CAPTURED.contains(name) {
                    return;
                }
                let mut inner = self.lock();
                let ctx = parent
                    .and_then(|p| inner.context.get(&p).copied())
                    .flatten();
                inner.records.push(TraceRecord {
                    name,
                    net: ctx.map(|(n, _)| n),
                    layer: ctx.map(|(_, l)| l),
                    fields: fields.clone(),
                });
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprout_telemetry::{self as telemetry, RecorderScope};
    use std::sync::Arc;

    #[test]
    fn captures_only_convergence_points() {
        let sink = Arc::new(TraceSink::new());
        {
            let _scope = RecorderScope::install(sink.clone());
            telemetry::point("grow_iter").field("iter", 0u64).emit();
            telemetry::point("unrelated").field("x", 1u64).emit();
            telemetry::point("cg_solve")
                .field("iterations", 7u64)
                .emit();
        }
        let records = sink.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "grow_iter");
        assert_eq!(records[1].name, "cg_solve");
    }

    #[test]
    fn points_inherit_route_span_rail_context() {
        let sink = Arc::new(TraceSink::new());
        {
            let _scope = RecorderScope::install(sink.clone());
            let route = telemetry::span("route")
                .field("net", 3u64)
                .field("layer", 6u64)
                .enter();
            {
                // Nested stage span: context must flow through.
                let _grow = telemetry::span("grow").enter();
                telemetry::point("grow_iter").field("iter", 0u64).emit();
            }
            drop(route);
            telemetry::point("cg_solve")
                .field("iterations", 1u64)
                .emit();
        }
        let records = sink.records();
        assert_eq!(records[0].net, Some(3));
        assert_eq!(records[0].layer, Some(6));
        // Outside any route span: untagged.
        assert_eq!(records[1].net, None);
    }

    #[test]
    fn jsonl_lines_parse_and_splice_curves_as_arrays() {
        let sink = Arc::new(TraceSink::new());
        {
            let _scope = RecorderScope::install(sink.clone());
            telemetry::point("bicgstab_solve")
                .field("iterations", 4u64)
                .field("residual", 1e-9)
                .field("curve", "[1.0,0.5,0.1]".to_owned())
                .emit();
        }
        let jsonl = sink.to_jsonl();
        let line = jsonl.lines().next().unwrap();
        let parsed = telemetry::json::parse(line).unwrap();
        assert_eq!(
            parsed.get("event").and_then(|v| v.as_str()),
            Some("bicgstab_solve")
        );
        let curve = parsed.get("curve").and_then(|v| v.as_array()).unwrap();
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[0].as_f64(), Some(1.0));
    }

    #[test]
    fn clear_resets_capture() {
        let sink = Arc::new(TraceSink::new());
        {
            let _scope = RecorderScope::install(sink.clone());
            telemetry::point("route_final").field("net", 0u64).emit();
        }
        assert!(!sink.is_empty());
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.to_jsonl(), "");
    }
}
