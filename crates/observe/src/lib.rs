//! # sprout-observe
//!
//! Convergence and hotspot observability for the SPROUT pipeline, built
//! on the event stream of [`sprout_telemetry`].
//!
//! Two complementary views of a routing run:
//!
//! * **Convergence traces** ([`trace`]) — a [`TraceSink`] recorder
//!   captures the per-iteration points the router emits (`grow_iter`,
//!   `refine_iter`, `reheat_iter`, `route_final`) and the per-solve
//!   residual curves from `sprout-linalg` (`cg_solve`,
//!   `bicgstab_solve`), tags each with the rail (net, layer) of its
//!   enclosing `route` span, and exports the lot as JSONL for offline
//!   plotting of objective-vs-iteration and residual decay.
//!
//! * **Spatial maps** ([`heatmap`]) — rasterizes per-tile node current
//!   (Algorithm 3), node voltage, and IR-drop over the board's tile
//!   grid, exports CSV matrices and SVG overlays (via
//!   [`sprout_render::SvgScene::add_heatmap`]), and distills a top-k
//!   [`HotspotRecord`](sprout_core::HotspotRecord) report for
//!   [`RunReport`](sprout_core::RunReport) attachment.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use sprout_board::presets;
//! use sprout_core::router::{Router, RouterConfig};
//! use sprout_observe::TraceSink;
//! use sprout_telemetry::RecorderScope;
//!
//! # fn main() -> Result<(), sprout_core::SproutError> {
//! let sink = Arc::new(TraceSink::new());
//! let board = presets::two_rail();
//! let mut config = RouterConfig::default();
//! config.tile_pitch_mm = 0.8;
//! let router = Router::new(&board, config);
//! let (net, _) = board.power_nets().next().expect("preset has rails");
//! {
//!     let _scope = RecorderScope::install(sink.clone());
//!     router.route_net(net, presets::TWO_RAIL_ROUTE_LAYER, 30.0)?;
//! }
//! assert!(sink.len() > 0);
//! assert!(sink.to_jsonl().contains("\"event\":\"route_final\""));
//! # Ok(())
//! # }
//! ```

pub mod heatmap;
pub mod trace;

pub use heatmap::{build_heatmaps, heatmap_svg, hotspots, Heatmap, HeatmapSet};
pub use trace::{TraceRecord, TraceSink};
