//! Spatial observability: rasterized per-tile current, voltage, and
//! IR-drop maps over the routing tile grid (§II-D nodal analysis),
//! with CSV/SVG export and a top-k hotspot report.

use sprout_board::Board;
use sprout_core::current::{node_current, node_voltages, InjectionPair};
use sprout_core::{HotspotRecord, RoutingGraph, SproutError, Subgraph};
use sprout_geom::Point;
use sprout_render::SvgScene;
use std::io;
use std::path::Path;

/// A rasterized per-tile scalar field over the routing grid. Cells
/// outside the routed subgraph hold `NaN`.
#[derive(Debug, Clone, PartialEq)]
pub struct Heatmap {
    /// What the values measure (`current_a`, `voltage_sq`, `ir_drop_sq`).
    pub quantity: &'static str,
    /// Grid columns.
    pub nx: usize,
    /// Grid rows.
    pub ny: usize,
    /// Board coordinate of the grid's lower-left corner (mm).
    pub origin: Point,
    /// Cell width (mm).
    pub dx: f64,
    /// Cell height (mm).
    pub dy: f64,
    values: Vec<f64>,
}

impl Heatmap {
    /// The value at grid cell `(i, j)`; `NaN` outside the subgraph.
    ///
    /// # Panics
    ///
    /// If `i >= nx` or `j >= ny`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.nx && j < self.ny, "cell out of range");
        self.values[j * self.nx + i]
    }

    /// Row-major values (`j * nx + i`), `NaN` outside the subgraph.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// `(min, max)` over finite cells, or `None` when the map is empty.
    pub fn finite_range(&self) -> Option<(f64, f64)> {
        let mut range: Option<(f64, f64)> = None;
        for &v in &self.values {
            if v.is_finite() {
                let (lo, hi) = range.unwrap_or((v, v));
                range = Some((lo.min(v), hi.max(v)));
            }
        }
        range
    }

    /// Serializes the map as CSV: `#`-prefixed metadata lines carrying
    /// the grid geometry, then `ny` data rows (row `j = 0`, the
    /// southmost, first) of `nx` comma-separated values. Empty cells
    /// serialize as `NaN`.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# sprout-heatmap quantity={}", self.quantity);
        let _ = writeln!(
            out,
            "# nx={} ny={} origin_x_mm={} origin_y_mm={} dx_mm={} dy_mm={}",
            self.nx, self.ny, self.origin.x, self.origin.y, self.dx, self.dy
        );
        for j in 0..self.ny {
            for i in 0..self.nx {
                if i > 0 {
                    out.push(',');
                }
                let v = self.values[j * self.nx + i];
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("NaN");
                }
            }
            out.push('\n');
        }
        out
    }

    /// Writes the CSV serialization to `path`.
    ///
    /// # Errors
    ///
    /// Any error from creating or writing the file.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut buf = io::BufWriter::new(file);
        io::Write::write_all(&mut buf, self.to_csv().as_bytes())?;
        io::Write::flush(&mut buf)
    }

    /// Finite cells as `(cell min, cell max, normalized intensity)`
    /// tuples for [`SvgScene::add_heatmap`]. Intensities are min-max
    /// normalized over the map; a constant map renders at intensity 1.
    pub fn overlay_cells(&self) -> Vec<(Point, Point, f64)> {
        let Some((lo, hi)) = self.finite_range() else {
            return Vec::new();
        };
        let span = hi - lo;
        let mut cells = Vec::new();
        for j in 0..self.ny {
            for i in 0..self.nx {
                let v = self.values[j * self.nx + i];
                if !v.is_finite() {
                    continue;
                }
                let min = Point::new(
                    self.origin.x + i as f64 * self.dx,
                    self.origin.y + j as f64 * self.dy,
                );
                let max = Point::new(min.x + self.dx, min.y + self.dy);
                let t = if span > 0.0 { (v - lo) / span } else { 1.0 };
                cells.push((min, max, t));
            }
        }
        cells
    }
}

/// The three spatial views computed from one metric evaluation plus one
/// superposed voltage solve.
#[derive(Debug, Clone, PartialEq)]
pub struct HeatmapSet {
    /// Node-current metric per tile (Algorithm 3, amperes).
    pub current: Heatmap,
    /// Nodal potential relative to the grounded sink (A·squares;
    /// multiply by the layer sheet resistance for volts).
    pub voltage: Heatmap,
    /// Drop below the peak potential (A·squares).
    pub ir_drop: Heatmap,
}

/// Rasterizes current, voltage, and IR-drop maps for a routed subgraph.
///
/// The grid spans the full routing graph (its tile lattice), so CSV
/// dimensions match the tiling stage's `nx × ny` output; only subgraph
/// member cells hold finite values.
///
/// # Errors
///
/// Propagates metric-evaluation and voltage-solve errors
/// ([`SproutError::InvalidConfig`] on empty pairs,
/// [`SproutError::Linalg`] on a singular subgraph).
pub fn build_heatmaps(
    graph: &RoutingGraph,
    sub: &Subgraph,
    pairs: &[InjectionPair],
) -> Result<HeatmapSet, SproutError> {
    let metric = node_current(graph, sub, pairs)?;
    let volts = node_voltages(graph, sub, pairs)?;

    // Grid extent over the whole graph; cells are lattice-indexed.
    let mut i_range = (i64::MAX, i64::MIN);
    let mut j_range = (i64::MAX, i64::MIN);
    for n in graph.nodes() {
        i_range = (i_range.0.min(n.cell.0), i_range.1.max(n.cell.0));
        j_range = (j_range.0.min(n.cell.1), j_range.1.max(n.cell.1));
    }
    if graph.nodes().is_empty() {
        return Err(SproutError::InvalidConfig("empty routing graph"));
    }
    let nx = (i_range.1 - i_range.0 + 1) as usize;
    let ny = (j_range.1 - j_range.0 + 1) as usize;
    let frame = graph.frame();
    let origin = frame.corner(i_range.0, j_range.0);

    let blank = || Heatmap {
        quantity: "",
        nx,
        ny,
        origin,
        dx: frame.dx,
        dy: frame.dy,
        values: vec![f64::NAN; nx * ny],
    };
    let mut current = Heatmap {
        quantity: "current_a",
        ..blank()
    };
    let mut voltage = Heatmap {
        quantity: "voltage_sq",
        ..blank()
    };
    let mut ir_drop = Heatmap {
        quantity: "ir_drop_sq",
        ..blank()
    };

    let v_peak = sub
        .members()
        .iter()
        .map(|&m| volts[m.index()])
        .filter(|v| v.is_finite())
        .fold(f64::NEG_INFINITY, f64::max);

    for &m in sub.members() {
        let node = graph.node(m);
        let idx = (node.cell.1 - j_range.0) as usize * nx + (node.cell.0 - i_range.0) as usize;
        current.values[idx] = metric.of(m);
        let v = volts[m.index()];
        voltage.values[idx] = v;
        ir_drop.values[idx] = if v.is_finite() { v_peak - v } else { f64::NAN };
    }

    Ok(HeatmapSet {
        current,
        voltage,
        ir_drop,
    })
}

/// The `k` worst cells of a [`HeatmapSet`], ranked by IR drop (ties by
/// node current), as [`HotspotRecord`]s ready for
/// [`RunReport`](sprout_core::RunReport) attachment.
pub fn hotspots(set: &HeatmapSet, net: usize, layer: usize, k: usize) -> Vec<HotspotRecord> {
    let m = &set.ir_drop;
    let mut cells: Vec<(usize, usize)> = Vec::new();
    for j in 0..m.ny {
        for i in 0..m.nx {
            if m.get(i, j).is_finite() {
                cells.push((i, j));
            }
        }
    }
    cells.sort_by(|&(ia, ja), &(ib, jb)| {
        m.get(ib, jb)
            .total_cmp(&m.get(ia, ja))
            .then_with(|| set.current.get(ib, jb).total_cmp(&set.current.get(ia, ja)))
            .then_with(|| (ja, ia).cmp(&(jb, ib)))
    });
    cells
        .into_iter()
        .take(k)
        .map(|(i, j)| HotspotRecord {
            net,
            layer,
            cell_i: i as i64,
            cell_j: j as i64,
            x_mm: m.origin.x + (i as f64 + 0.5) * m.dx,
            y_mm: m.origin.y + (j as f64 + 0.5) * m.dy,
            current_a: set.current.get(i, j),
            voltage_sq: set.voltage.get(i, j),
            ir_drop_sq: m.get(i, j),
        })
        .collect()
}

/// Renders a heatmap as an SVG overlay on `layer` of `board` (colour
/// ramp per [`sprout_render::heat_color`]).
pub fn heatmap_svg(board: &Board, layer: usize, map: &Heatmap) -> String {
    let mut scene = SvgScene::new(board, layer);
    scene.add_heatmap(map.quantity, map.overlay_cells());
    scene.to_svg()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprout_board::presets;
    use sprout_core::router::{Router, RouterConfig};
    use sprout_core::RouteResult;

    fn route() -> (sprout_board::Board, RouteResult) {
        let board = presets::two_rail();
        let config = RouterConfig {
            tile_pitch_mm: 0.6,
            grow_iterations: 5,
            refine_iterations: 1,
            reheat: None,
            ..RouterConfig::default()
        };
        let router = Router::new(&board, config);
        let (net, _) = board.power_nets().next().unwrap();
        let result = router
            .route_net(net, presets::TWO_RAIL_ROUTE_LAYER, 25.0)
            .unwrap();
        (board, result)
    }

    #[test]
    fn maps_cover_grid_and_members_only() {
        let (_, r) = route();
        let set = build_heatmaps(&r.graph, &r.subgraph, &r.pairs).unwrap();
        assert!(set.current.nx > 1 && set.current.ny > 1);
        assert_eq!(set.current.nx, set.ir_drop.nx);
        assert_eq!(set.current.ny, set.voltage.ny);
        let finite = set
            .current
            .values()
            .iter()
            .filter(|v| v.is_finite())
            .count();
        assert_eq!(finite, r.subgraph.order());
        // Current metric is non-negative where defined.
        assert!(set
            .current
            .values()
            .iter()
            .filter(|v| v.is_finite())
            .all(|&v| v >= 0.0));
    }

    #[test]
    fn ir_drop_is_nonnegative_with_a_zero_minimum() {
        let (_, r) = route();
        let set = build_heatmaps(&r.graph, &r.subgraph, &r.pairs).unwrap();
        let (lo, hi) = set.ir_drop.finite_range().unwrap();
        assert!(lo.abs() < 1e-9, "peak-potential cell must have zero drop");
        assert!(hi > 0.0, "some cell must sit below the peak");
    }

    #[test]
    fn csv_dimensions_match_grid() {
        let (_, r) = route();
        let set = build_heatmaps(&r.graph, &r.subgraph, &r.pairs).unwrap();
        let csv = set.voltage.to_csv();
        let data: Vec<&str> = csv.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(data.len(), set.voltage.ny);
        for row in &data {
            assert_eq!(row.split(',').count(), set.voltage.nx);
        }
        assert!(csv.starts_with("# sprout-heatmap quantity=voltage_sq"));
    }

    #[test]
    fn hotspots_are_sorted_and_capped() {
        let (_, r) = route();
        let set = build_heatmaps(&r.graph, &r.subgraph, &r.pairs).unwrap();
        let spots = hotspots(&set, 0, presets::TWO_RAIL_ROUTE_LAYER, 5);
        assert_eq!(spots.len(), 5);
        for w in spots.windows(2) {
            assert!(w[0].ir_drop_sq >= w[1].ir_drop_sq);
        }
        // Hotspot coordinates land inside the board outline.
        let outline = route().0.outline();
        for s in &spots {
            assert!(s.x_mm >= outline.min().x && s.x_mm <= outline.max().x);
            assert!(s.y_mm >= outline.min().y && s.y_mm <= outline.max().y);
        }
    }

    #[test]
    fn svg_overlay_renders_member_cells() {
        let (board, r) = route();
        let set = build_heatmaps(&r.graph, &r.subgraph, &r.pairs).unwrap();
        let svg = heatmap_svg(&board, presets::TWO_RAIL_ROUTE_LAYER, &set.ir_drop);
        assert!(svg.contains("id=\"ir_drop_sq\""));
        // Background rect + one rect per member cell.
        assert_eq!(svg.matches("<rect").count(), 1 + r.subgraph.order());
    }
}
