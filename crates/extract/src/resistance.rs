//! DC resistance extraction (Tables II/III, "Normalized DC resistance").
//!
//! The BGA balls are shorted into one port (as the package substrate
//! does) through their via resistances; the reported value is the
//! resistance between the PMIC output and that port.

use crate::network::RailNetwork;
use crate::ExtractError;
use sprout_linalg::laplacian::GraphLaplacian;

/// A DC extraction result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcExtraction {
    /// Resistance of the copper shape plus the sink via tree (Ω).
    pub shape_ohm: f64,
    /// Series source-via resistance (Ω).
    pub source_via_ohm: f64,
    /// Total PMIC→BGA-port resistance (Ω).
    pub total_ohm: f64,
}

/// Extracts the DC resistance of a rail network.
///
/// # Errors
///
/// * [`ExtractError::Linalg`] — the network is electrically
///   disconnected.
pub fn dc_resistance(network: &RailNetwork) -> Result<DcExtraction, ExtractError> {
    let mut edges: Vec<(usize, usize, f64)> =
        Vec::with_capacity(network.mesh.len() + network.sink_vias.len());
    for b in network.mesh.iter().chain(&network.sink_vias) {
        if b.a != b.b {
            edges.push((b.a, b.b, 1.0 / b.resistance_ohm));
        }
    }
    let lap = GraphLaplacian::from_edges(network.node_count, &edges)?;
    let factor = lap.factor_grounded(network.reference())?;

    // Split the unit current equally across the source pads; the port
    // voltage is their average (the PMIC output copper ties them).
    let mut currents = vec![0.0f64; network.node_count];
    let share = 1.0 / network.sources.len() as f64;
    for &s in &network.sources {
        currents[s] += share;
    }
    currents[network.reference()] -= 1.0;
    let v = factor.solve_currents(&currents)?;
    let v_port: f64 =
        network.sources.iter().map(|&s| v[s]).sum::<f64>() / network.sources.len() as f64;

    let shape_ohm = v_port;
    let source_via_ohm = network.source_via.0;
    Ok(DcExtraction {
        shape_ohm,
        source_via_ohm,
        total_ohm: shape_ohm + source_via_ohm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Branch, RailNetwork};

    /// A hand-built ladder: source 0 — 1Ω — 1 — 1Ω — 2(sink) — via 0.5Ω
    /// — ref(3).
    fn ladder() -> RailNetwork {
        RailNetwork {
            node_count: 4,
            mesh: vec![
                Branch {
                    a: 0,
                    b: 1,
                    resistance_ohm: 1.0,
                    inductance_h: 1e-9,
                },
                Branch {
                    a: 1,
                    b: 2,
                    resistance_ohm: 1.0,
                    inductance_h: 1e-9,
                },
            ],
            sink_vias: vec![Branch {
                a: 2,
                b: 3,
                resistance_ohm: 0.5,
                inductance_h: 1e-10,
            }],
            decaps: vec![],
            sources: vec![0],
            sinks: vec![2],
            source_via: (0.25, 1e-10),
            sheet_resistance: 5e-4,
            inductance_per_sq: 1e-10,
        }
    }

    #[test]
    fn ladder_resistance_is_exact() {
        let dc = dc_resistance(&ladder()).unwrap();
        // 1 + 1 + 0.5 shape+via path, plus 0.25 source via.
        assert!((dc.shape_ohm - 2.5).abs() < 1e-9);
        assert!((dc.total_ohm - 2.75).abs() < 1e-9);
    }

    #[test]
    fn parallel_sinks_halve_the_via_tree() {
        let mut net = ladder();
        // Second sink at node 1 with its own via.
        net.sinks.push(1);
        net.sink_vias.push(Branch {
            a: 1,
            b: 3,
            resistance_ohm: 0.5,
            inductance_h: 1e-10,
        });
        let dc = dc_resistance(&net).unwrap();
        // Exact: R = 1 + (1 + 0.5) ∥ 0.5 = 1.375.
        assert!((dc.shape_ohm - 1.375).abs() < 1e-9, "{}", dc.shape_ohm);
    }

    #[test]
    fn real_route_resistance_in_range() {
        use sprout_board::presets;
        use sprout_core::router::{Router, RouterConfig};
        let board = presets::two_rail();
        let config = RouterConfig {
            tile_pitch_mm: 0.5,
            grow_iterations: 8,
            refine_iterations: 2,
            reheat: None,
            ..RouterConfig::default()
        };
        let router = Router::new(&board, config);
        let (net, _) = board.power_nets().next().unwrap();
        let route = router
            .route_net(net, presets::TWO_RAIL_ROUTE_LAYER, 25.0)
            .unwrap();
        let network = RailNetwork::build(&board, &route).unwrap();
        let dc = dc_resistance(&network).unwrap();
        // A ~17 mm rail a few mm wide in 35 µm copper: milliohms.
        assert!(
            dc.total_ohm > 5e-4 && dc.total_ohm < 5e-2,
            "{} Ω",
            dc.total_ohm
        );
    }

    #[test]
    fn disconnected_network_errors() {
        let mut net = ladder();
        net.mesh.clear(); // source never reaches the sink
        assert!(dc_resistance(&net).is_err());
    }
}
