//! # sprout-extract
//!
//! Parasitic extraction and PDN simulation for SPROUT layouts.
//!
//! The paper validates SPROUT by extracting each layout's DC resistance
//! and 25 MHz loop inductance with a commercial quasi-static extractor
//! (Tables II/III), and by simulating minimum load voltage and FinFET
//! propagation delay across an area sweep (Fig. 12). This crate rebuilds
//! that tool chain:
//!
//! * [`network`] — converts a routed result into an electrical rail
//!   network: the tile subgraph *is* the resistive/inductive mesh (edge
//!   resistance `R_sheet / w`, edge inductance `µ₀·h / w` in the
//!   plane-pair limit), with via branches at the BGA sinks and decap
//!   shunt branches to the return plane.
//! * [`resistance`] — DC resistance between the PMIC port and the
//!   (shorted) BGA ball group, via resistances included.
//! * [`ac`] — complex nodal analysis at any frequency; effective loop
//!   inductance `Im{Z}/ω` at the paper's 25 MHz.
//! * [`density`] — DC current-density and Joule-dissipation analysis
//!   (Table I's power-routing constraint).
//! * [`mna`] — a general transient circuit simulator (R, L, C, current
//!   and voltage sources; backward-Euler integration).
//! * [`pdn`] — assembles a rail PDN model (extracted R/L, decaps, load
//!   current ramp) and reports the minimum load voltage (Fig. 12c).
//! * [`delay`] — alpha-power-law FinFET delay/power model calibrated to
//!   the paper's quoted sensitivity (36 mV ↔ 7 %, Fig. 12d).
//! * [`thermal`] — first-order temperature-rise estimate (the Table I
//!   temperature constraint).
//! * [`explore`] — the Fig. 2 prototype-evaluate-compare loop as a
//!   library call.
//!
//! # Example
//!
//! ```
//! use sprout_board::presets;
//! use sprout_core::router::{Router, RouterConfig};
//! use sprout_extract::network::RailNetwork;
//! use sprout_extract::resistance::dc_resistance;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let board = presets::two_rail();
//! let mut config = RouterConfig::default();
//! config.tile_pitch_mm = 0.8; // coarse: fast doc example
//! let router = Router::new(&board, config);
//! let (net, _) = board.power_nets().next().expect("preset has rails");
//! let route = router.route_net(net, presets::TWO_RAIL_ROUTE_LAYER, 30.0)?;
//! let network = RailNetwork::build(&board, &route)?;
//! let dc = dc_resistance(&network)?;
//! assert!(dc.total_ohm > 0.0 && dc.total_ohm < 1.0);
//! # Ok(())
//! # }
//! ```

pub mod ac;
pub mod delay;
pub mod density;
pub mod explore;
pub mod mna;
pub mod network;
pub mod pdn;
pub mod resistance;
pub mod thermal;

use std::fmt;

/// Errors from extraction and simulation.
#[derive(Debug)]
pub enum ExtractError {
    /// The routed result has no source or no sink terminals.
    MissingTerminals(&'static str),
    /// A linear solve failed (disconnected network, solver breakdown).
    Linalg(sprout_linalg::LinalgError),
    /// The board/stackup query failed.
    Board(sprout_board::BoardError),
    /// Invalid simulation parameter.
    InvalidParameter(&'static str),
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::MissingTerminals(what) => write!(f, "missing terminals: {what}"),
            ExtractError::Linalg(e) => write!(f, "linear solve failed: {e}"),
            ExtractError::Board(e) => write!(f, "board query failed: {e}"),
            ExtractError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for ExtractError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExtractError::Linalg(e) => Some(e),
            ExtractError::Board(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sprout_linalg::LinalgError> for ExtractError {
    fn from(e: sprout_linalg::LinalgError) -> Self {
        ExtractError::Linalg(e)
    }
}

impl From<sprout_board::BoardError> for ExtractError {
    fn from(e: sprout_board::BoardError) -> Self {
        ExtractError::Board(e)
    }
}
