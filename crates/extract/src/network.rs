//! Rail network construction: routed subgraph → electrical mesh.
//!
//! The tile graph's induced subgraph is already a discretization of the
//! copper shape, so extraction does not re-mesh: each graph edge of
//! dimensionless weight `w` (squares⁻¹) becomes a branch of resistance
//! `R_sheet / w` and plane-pair inductance `µ₀·h / w`. Sinks tie to the
//! return-plane reference through their via impedance; decaps shunt the
//! nearest shape node to the reference through their C/ESR/ESL.

use crate::ExtractError;
use sprout_board::{Board, ElementRole};
use sprout_core::router::RouteResult;
use sprout_core::NodeId;

/// One mesh branch between two compact node indices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Branch {
    /// First node.
    pub a: usize,
    /// Second node.
    pub b: usize,
    /// Series resistance (Ω).
    pub resistance_ohm: f64,
    /// Series inductance (H).
    pub inductance_h: f64,
}

/// A decap shunt branch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecapTap {
    /// Shape node the capacitor lands on.
    pub node: usize,
    /// Capacitance (F).
    pub capacitance_f: f64,
    /// Series resistance (Ω).
    pub esr_ohm: f64,
    /// Series inductance (H).
    pub esl_h: f64,
}

/// The extracted electrical network of one routed rail.
///
/// Node indexing: `0 .. node_count-2` are shape tiles (compact order),
/// and [`RailNetwork::reference`] is the return-plane reference node.
#[derive(Debug, Clone)]
pub struct RailNetwork {
    /// Total node count including the reference.
    pub node_count: usize,
    /// Copper mesh branches (shape edges).
    pub mesh: Vec<Branch>,
    /// Sink via branches (shape node → reference).
    pub sink_vias: Vec<Branch>,
    /// Decap shunts.
    pub decaps: Vec<DecapTap>,
    /// Source (PMIC) node indices on the shape.
    pub sources: Vec<usize>,
    /// Sink (BGA) node indices on the shape.
    pub sinks: Vec<usize>,
    /// Series impedance of the source via (Ω, H) added to reported
    /// impedances.
    pub source_via: (f64, f64),
    /// Sheet resistance used (Ω/sq).
    pub sheet_resistance: f64,
    /// Plane-pair inductance used (H/sq).
    pub inductance_per_sq: f64,
}

impl RailNetwork {
    /// The reference (return plane) node index.
    pub fn reference(&self) -> usize {
        self.node_count - 1
    }

    /// Builds the network from a routed result.
    ///
    /// # Errors
    ///
    /// * [`ExtractError::MissingTerminals`] — no source or sink.
    /// * [`ExtractError::Board`] — stackup queries failed.
    pub fn build(board: &Board, route: &RouteResult) -> Result<Self, ExtractError> {
        let stackup = board.stackup();
        let sheet_resistance = stackup.sheet_resistance(route.layer)?;
        let inductance_per_sq = stackup.inductance_per_square(route.layer)?;
        let rules = board.rules();

        // Compact node indexing over the subgraph (sorted for
        // determinism, matching sprout-core's metric evaluation).
        let mut members: Vec<NodeId> = route.subgraph.members().to_vec();
        members.sort_unstable();
        let mut compact = vec![usize::MAX; route.graph.node_count()];
        for (k, &m) in members.iter().enumerate() {
            compact[m.index()] = k;
        }
        let n_shape = members.len();
        let reference = n_shape;

        let mesh: Vec<Branch> = route
            .subgraph
            .induced_edges(&route.graph)
            .map(|e| Branch {
                a: compact[e.a.index()],
                b: compact[e.b.index()],
                resistance_ohm: sheet_resistance / e.weight,
                inductance_h: inductance_per_sq / e.weight,
            })
            .collect();

        // Terminals.
        let mut sources = Vec::new();
        let mut sinks = Vec::new();
        let mut decap_nodes = Vec::new();
        for t in &route.terminals {
            let idx = compact[t.node.index()];
            debug_assert!(idx != usize::MAX, "terminals live in the subgraph");
            match t.role {
                ElementRole::Source => sources.push(idx),
                ElementRole::Sink => sinks.push(idx),
                ElementRole::DecapPad => decap_nodes.push((idx, t.node)),
                ElementRole::Obstacle => {}
            }
        }
        if sources.is_empty() {
            return Err(ExtractError::MissingTerminals("no source terminal"));
        }
        if sinks.is_empty() {
            return Err(ExtractError::MissingTerminals("no sink terminal"));
        }

        // Via branches. Sinks rise from the routing layer to the top
        // (component) layer; the source descends to the bottom (PMIC)
        // layer.
        let top = 0usize;
        let bottom = stackup.layer_count() - 1;
        let sink_len = stackup.via_length_mm(route.layer, top)?;
        let source_len = stackup
            .via_length_mm(route.layer, bottom)
            .unwrap_or(sink_len);
        let sink_via_r = rules.via_resistance_ohm(sink_len.max(0.05));
        let sink_via_l = rules.via_inductance_h(sink_len.max(0.05));
        let src_via_r = rules.via_resistance_ohm(source_len.max(0.05));
        let src_via_l = rules.via_inductance_h(source_len.max(0.05));
        let sink_vias: Vec<Branch> = sinks
            .iter()
            .map(|&s| Branch {
                a: s,
                b: reference,
                resistance_ohm: sink_via_r,
                inductance_h: sink_via_l,
            })
            .collect();
        // Source vias act in parallel when the PMIC output lands on
        // several pads.
        let k = sources.len() as f64;
        let source_via = (src_via_r / k, src_via_l / k);

        // Decaps: match each board decap on this net to the nearest
        // decap-pad terminal node.
        let mut decaps = Vec::new();
        for d in board.decaps_for(route.net) {
            let best = decap_nodes
                .iter()
                .min_by(|(_, a), (_, b)| {
                    let da = route.graph.node(*a).center().distance(d.location);
                    let db = route.graph.node(*b).center().distance(d.location);
                    da.total_cmp(&db)
                })
                .map(|&(idx, _)| idx);
            if let Some(node) = best {
                decaps.push(DecapTap {
                    node,
                    capacitance_f: d.capacitance_f,
                    esr_ohm: d.esr_ohm,
                    esl_h: d.esl_h,
                });
            }
        }

        Ok(RailNetwork {
            node_count: n_shape + 1,
            mesh,
            sink_vias,
            decaps,
            sources,
            sinks,
            source_via,
            sheet_resistance,
            inductance_per_sq,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprout_board::presets;
    use sprout_core::router::{Router, RouterConfig};

    fn fast_route() -> (sprout_board::Board, RouteResult) {
        let board = presets::two_rail();
        let config = RouterConfig {
            tile_pitch_mm: 0.5,
            grow_iterations: 8,
            refine_iterations: 2,
            reheat: None,
            ..RouterConfig::default()
        };
        let router = Router::new(&board, config);
        let (net, _) = board.power_nets().next().unwrap();
        let route = router
            .route_net(net, presets::TWO_RAIL_ROUTE_LAYER, 25.0)
            .unwrap();
        (board, route)
    }

    #[test]
    fn network_structure() {
        let (board, route) = fast_route();
        let net = RailNetwork::build(&board, &route).unwrap();
        assert_eq!(net.node_count, route.subgraph.order() + 1);
        assert_eq!(
            net.mesh.len(),
            route.subgraph.induced_edges(&route.graph).count()
        );
        assert_eq!(net.sources.len(), 1);
        assert_eq!(net.sinks.len(), 9);
        assert_eq!(net.sink_vias.len(), 9);
        // Two-rail preset has no decaps.
        assert!(net.decaps.is_empty());
    }

    #[test]
    fn branch_values_are_physical() {
        let (board, route) = fast_route();
        let net = RailNetwork::build(&board, &route).unwrap();
        for b in &net.mesh {
            assert!(b.resistance_ohm > 0.0 && b.resistance_ohm < 1.0);
            assert!(b.inductance_h > 0.0 && b.inductance_h < 1e-6);
            assert!(b.a < net.node_count && b.b < net.node_count);
        }
        // Full-contact square tiles: R = sheet resistance exactly.
        let r_min = net
            .mesh
            .iter()
            .map(|b| b.resistance_ohm)
            .fold(f64::INFINITY, f64::min);
        assert!((r_min - net.sheet_resistance).abs() / net.sheet_resistance < 0.05);
    }

    #[test]
    fn source_via_scales_with_pad_count() {
        let (board, route) = fast_route();
        let net = RailNetwork::build(&board, &route).unwrap();
        assert!(net.source_via.0 > 0.0);
        assert!(net.source_via.1 > 0.0);
        // A sink via reaches the top layer; the source via reaches the
        // bottom — on the 8-layer stack the routing layer (7) is closer
        // to the bottom.
        assert!(net.sink_vias[0].resistance_ohm > net.source_via.0);
    }
}
