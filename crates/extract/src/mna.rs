//! Transient circuit simulation by modified nodal analysis.
//!
//! A small general-purpose simulator — R, L, C, current sources with
//! waveforms, ideal voltage sources — integrating with backward Euler
//! (L-stable, so the slope discontinuities of ramped load currents do
//! not excite the artificial ringing the trapezoidal rule is known
//! for). It drives the minimum-load-voltage study of Fig. 12c.

use crate::ExtractError;
use sprout_linalg::dense::{DenseMatrix, LuFactors};

/// Node index; node 0 is ground.
pub type Node = usize;

/// Source waveform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// Zero until `t_start_s`, then ramps at `slew_per_s` up to `peak`,
    /// then holds (the load steps of §III-C).
    Ramp {
        /// Ramp start time (s).
        t_start_s: f64,
        /// Slew rate (A/s for current sources).
        slew_per_s: f64,
        /// Final value.
        peak: f64,
    },
}

impl Waveform {
    /// The waveform value at time `t`.
    pub fn at(&self, t: f64) -> f64 {
        match *self {
            Waveform::Dc(v) => v,
            Waveform::Ramp {
                t_start_s,
                slew_per_s,
                peak,
            } => {
                if t <= t_start_s {
                    0.0
                } else {
                    (slew_per_s * (t - t_start_s)).min(peak)
                }
            }
        }
    }
}

/// A circuit element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Element {
    /// Resistor between two nodes (Ω).
    Resistor(Node, Node, f64),
    /// Capacitor between two nodes (F), zero initial voltage.
    Capacitor(Node, Node, f64),
    /// Inductor between two nodes (H), zero initial current.
    Inductor(Node, Node, f64),
    /// Current source pushing `waveform` amperes from the first node to
    /// the second (i.e. it *draws* from the first node).
    CurrentSource(Node, Node, Waveform),
    /// Ideal voltage source holding the first node `volts` above the
    /// second.
    VoltageSource(Node, Node, f64),
}

/// A circuit under construction.
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_count: usize,
    elements: Vec<Element>,
}

impl Circuit {
    /// An empty circuit (ground pre-allocated as node 0).
    pub fn new() -> Self {
        Circuit {
            node_count: 1,
            elements: Vec::new(),
        }
    }

    /// Allocates a new node and returns its index.
    pub fn add_node(&mut self) -> Node {
        self.node_count += 1;
        self.node_count - 1
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Adds an element.
    ///
    /// # Errors
    ///
    /// Returns [`ExtractError::InvalidParameter`] for unknown nodes or
    /// non-positive R/L/C values.
    pub fn add(&mut self, element: Element) -> Result<(), ExtractError> {
        let (a, b) = match element {
            Element::Resistor(a, b, v)
            | Element::Capacitor(a, b, v)
            | Element::Inductor(a, b, v) => {
                if v <= 0.0 {
                    return Err(ExtractError::InvalidParameter(
                        "R/L/C values must be positive",
                    ));
                }
                (a, b)
            }
            Element::CurrentSource(a, b, _) | Element::VoltageSource(a, b, _) => (a, b),
        };
        if a >= self.node_count || b >= self.node_count || a == b {
            return Err(ExtractError::InvalidParameter(
                "element references an invalid node pair",
            ));
        }
        self.elements.push(element);
        Ok(())
    }
}

/// Result of a transient run.
#[derive(Debug, Clone)]
pub struct TransientResult {
    /// Sample times (s).
    pub times_s: Vec<f64>,
    /// Node voltages per sample (`voltages[k][node]`, ground included
    /// as 0).
    pub voltages: Vec<Vec<f64>>,
}

impl TransientResult {
    /// Minimum voltage seen at a node over the run.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range node.
    pub fn min_voltage(&self, node: Node) -> f64 {
        self.voltages
            .iter()
            .map(|v| v[node])
            .fold(f64::INFINITY, f64::min)
    }

    /// Voltage trace of one node.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range node.
    pub fn trace(&self, node: Node) -> Vec<f64> {
        self.voltages.iter().map(|v| v[node]).collect()
    }
}

/// Runs a transient simulation with fixed step `h_s` until `t_end_s`
/// (backward-Euler integration; the DC operating point is the first
/// step's solution with sources at `t = 0`).
///
/// # Errors
///
/// * [`ExtractError::InvalidParameter`] — non-positive step/horizon.
/// * [`ExtractError::Linalg`] — singular MNA matrix (floating nodes).
pub fn simulate(
    circuit: &Circuit,
    h_s: f64,
    t_end_s: f64,
) -> Result<TransientResult, ExtractError> {
    if h_s <= 0.0 || t_end_s <= h_s {
        return Err(ExtractError::InvalidParameter(
            "step and horizon must be positive with t_end > h",
        ));
    }
    let n = circuit.node_count; // node 0 = ground
    let n_vsrc = circuit
        .elements
        .iter()
        .filter(|e| matches!(e, Element::VoltageSource(..)))
        .count();
    let dim = (n - 1) + n_vsrc;

    // Assemble the constant MNA matrix (companion conductances).
    let mut g = DenseMatrix::<f64>::zeros(dim, dim);
    let idx = |node: Node| -> Option<usize> {
        if node == 0 {
            None
        } else {
            Some(node - 1)
        }
    };
    let stamp_g = |m: &mut DenseMatrix<f64>, a: Node, b: Node, y: f64| {
        if let Some(i) = idx(a) {
            m.add(i, i, y);
        }
        if let Some(j) = idx(b) {
            m.add(j, j, y);
        }
        if let (Some(i), Some(j)) = (idx(a), idx(b)) {
            m.add(i, j, -y);
            m.add(j, i, -y);
        }
    };
    let mut vsrc_row = n - 1;
    let mut vsrc_rows: Vec<usize> = Vec::new();
    for e in &circuit.elements {
        match *e {
            Element::Resistor(a, b, r) => stamp_g(&mut g, a, b, 1.0 / r),
            Element::Capacitor(a, b, c) => stamp_g(&mut g, a, b, c / h_s),
            Element::Inductor(a, b, l) => stamp_g(&mut g, a, b, h_s / l),
            Element::CurrentSource(..) => {}
            Element::VoltageSource(a, b, _) => {
                if let Some(i) = idx(a) {
                    g.add(i, vsrc_row, 1.0);
                    g.add(vsrc_row, i, 1.0);
                }
                if let Some(j) = idx(b) {
                    g.add(j, vsrc_row, -1.0);
                    g.add(vsrc_row, j, -1.0);
                }
                vsrc_rows.push(vsrc_row);
                vsrc_row += 1;
            }
        }
    }
    let lu = LuFactors::factor(&g)?;

    // DC operating point at t = 0: capacitors open, inductors shorted
    // (stamped as a very large conductance), sources at their t = 0
    // values. Without this, decoupling capacitors would start empty and
    // draw an unphysical inrush through the rail.
    let dc_voltages = {
        let mut g_dc = DenseMatrix::<f64>::zeros(dim, dim);
        let mut rhs = vec![0.0f64; dim];
        let mut vs = 0usize;
        const SHORT_S: f64 = 1e9;
        for e in &circuit.elements {
            match *e {
                Element::Resistor(a, b, r) => stamp_g(&mut g_dc, a, b, 1.0 / r),
                Element::Capacitor(..) => {}
                Element::Inductor(a, b, _) => stamp_g(&mut g_dc, a, b, SHORT_S),
                Element::CurrentSource(a, b, w) => {
                    let i = w.at(0.0);
                    if let Some(ia) = idx(a) {
                        rhs[ia] -= i;
                    }
                    if let Some(ib) = idx(b) {
                        rhs[ib] += i;
                    }
                }
                Element::VoltageSource(a, b, v) => {
                    let row = vsrc_rows[vs];
                    if let Some(i) = idx(a) {
                        g_dc.add(i, row, 1.0);
                        g_dc.add(row, i, 1.0);
                    }
                    if let Some(j) = idx(b) {
                        g_dc.add(j, row, -1.0);
                        g_dc.add(row, j, -1.0);
                    }
                    rhs[row] = v;
                    vs += 1;
                }
            }
        }
        // Ground any floating capacitor-only nodes so the DC matrix is
        // nonsingular (a tiny leak conductance).
        for i in 0..(n - 1) {
            g_dc.add(i, i, 1e-12);
        }
        let x = LuFactors::factor(&g_dc)?.solve(&rhs)?;
        let mut v = vec![0.0f64; n];
        v[1..n].copy_from_slice(&x[..(n - 1)]);
        v
    };

    // Element state: capacitor (v_prev, i_prev), inductor (v_prev, i_prev),
    // initialized from the DC operating point.
    let mut state: Vec<(f64, f64)> = circuit
        .elements
        .iter()
        .map(|e| match *e {
            Element::Capacitor(a, b, _) => (dc_voltages[a] - dc_voltages[b], 0.0),
            Element::Inductor(a, b, _) => {
                let v = dc_voltages[a] - dc_voltages[b];
                (0.0, v * 1e9)
            }
            _ => (0.0, 0.0),
        })
        .collect();
    let mut v_prev = vec![0.0f64; n];
    let mut times = Vec::new();
    let mut voltages = Vec::new();

    let steps = (t_end_s / h_s).ceil() as usize;
    for step in 0..=steps {
        let t = step as f64 * h_s;
        // RHS with companion sources.
        let mut rhs = vec![0.0f64; dim];
        let mut vs = 0usize;
        for (k, e) in circuit.elements.iter().enumerate() {
            match *e {
                Element::Resistor(..) => {}
                Element::Capacitor(a, b, c) => {
                    let (vp, _ip) = state[k];
                    let i_eq = (c / h_s) * vp;
                    if let Some(i) = idx(a) {
                        rhs[i] += i_eq;
                    }
                    if let Some(j) = idx(b) {
                        rhs[j] -= i_eq;
                    }
                }
                Element::Inductor(a, b, _) => {
                    let (_vp, ip) = state[k];
                    let i_eq = ip;
                    if let Some(i) = idx(a) {
                        rhs[i] -= i_eq;
                    }
                    if let Some(j) = idx(b) {
                        rhs[j] += i_eq;
                    }
                }
                Element::CurrentSource(a, b, w) => {
                    let i = w.at(t);
                    if let Some(ia) = idx(a) {
                        rhs[ia] -= i;
                    }
                    if let Some(ib) = idx(b) {
                        rhs[ib] += i;
                    }
                }
                Element::VoltageSource(_, _, v) => {
                    rhs[vsrc_rows[vs]] = v;
                    vs += 1;
                }
            }
        }
        let x = lu.solve(&rhs)?;
        let mut v_now = vec![0.0f64; n];
        v_now[1..n].copy_from_slice(&x[..(n - 1)]);
        // Update element states.
        for (k, e) in circuit.elements.iter().enumerate() {
            match *e {
                Element::Capacitor(a, b, c) => {
                    let v = v_now[a] - v_now[b];
                    let (vp, _ip) = state[k];
                    let i = (c / h_s) * (v - vp);
                    state[k] = (v, i);
                }
                Element::Inductor(a, b, l) => {
                    let v = v_now[a] - v_now[b];
                    let (_vp, ip) = state[k];
                    let i = ip + (h_s / l) * v;
                    state[k] = (v, i);
                }
                _ => {}
            }
        }
        v_prev = v_now.clone();
        times.push(t);
        voltages.push(v_now);
    }
    let _ = v_prev;
    Ok(TransientResult {
        times_s: times,
        voltages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waveforms() {
        let r = Waveform::Ramp {
            t_start_s: 1e-9,
            slew_per_s: 1e9,
            peak: 2.0,
        };
        assert_eq!(r.at(0.0), 0.0);
        assert_eq!(r.at(1e-9), 0.0);
        assert!((r.at(2e-9) - 1.0).abs() < 1e-12);
        assert_eq!(r.at(10e-9), 2.0);
        assert_eq!(Waveform::Dc(3.0).at(5.0), 3.0);
    }

    #[test]
    fn validation() {
        let mut c = Circuit::new();
        let n1 = c.add_node();
        assert!(c.add(Element::Resistor(0, n1, -1.0)).is_err());
        assert!(c.add(Element::Resistor(0, 5, 1.0)).is_err());
        assert!(c.add(Element::Resistor(n1, n1, 1.0)).is_err());
        assert!(c.add(Element::Resistor(0, n1, 1.0)).is_ok());
        assert!(simulate(&c, 0.0, 1.0).is_err());
    }

    #[test]
    fn resistive_divider_dc() {
        let mut c = Circuit::new();
        let top = c.add_node();
        let mid = c.add_node();
        c.add(Element::VoltageSource(top, 0, 2.0)).unwrap();
        c.add(Element::Resistor(top, mid, 1.0)).unwrap();
        c.add(Element::Resistor(mid, 0, 1.0)).unwrap();
        let out = simulate(&c, 1e-6, 1e-4).unwrap();
        let v = out.voltages.last().unwrap();
        assert!((v[top] - 2.0).abs() < 1e-9);
        assert!((v[mid] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rc_charging_matches_analytic() {
        // A 1 mA current step into R ∥ C: v(t) = I·R·(1 - e^{-t/RC}),
        // R = 1 kΩ, C = 1 µF, τ = 1 ms. (A fast ramp stands in for the
        // step; the DC operating point at t = 0 is v = 0.)
        let mut c = Circuit::new();
        let node = c.add_node();
        let t0 = 1e-5;
        c.add(Element::CurrentSource(
            0,
            node,
            Waveform::Ramp {
                t_start_s: t0,
                slew_per_s: 1e3, // reaches 1 mA in 1 µs « τ
                peak: 1e-3,
            },
        ))
        .unwrap();
        c.add(Element::Resistor(node, 0, 1e3)).unwrap();
        c.add(Element::Capacitor(node, 0, 1e-6)).unwrap();
        let out = simulate(&c, 2e-6, 4e-3).unwrap();
        for (&t, v) in out.times_s.iter().zip(&out.voltages) {
            if t < t0 + 2e-6 {
                assert!(v[node].abs() < 1e-6, "pre-step rest state");
                continue;
            }
            let expected = 1.0 - (-(t - t0) / 1e-3).exp();
            assert!(
                (v[node] - expected).abs() < 1.5e-2,
                "t={t}: {} vs {}",
                v[node],
                expected
            );
        }
    }

    #[test]
    fn rl_current_division_matches_analytic() {
        // A 1 A current step into R ∥ L: the inductor current rises as
        // 1 - e^{-tR/L} and the node voltage decays as R·e^{-tR/L}.
        // R = 1 Ω, L = 1 µH, τ = 1 µs.
        let mut c = Circuit::new();
        let node = c.add_node();
        let t0 = 1e-7;
        c.add(Element::CurrentSource(
            0,
            node,
            Waveform::Ramp {
                t_start_s: t0,
                slew_per_s: 1e9, // 1 ns rise « τ
                peak: 1.0,
            },
        ))
        .unwrap();
        c.add(Element::Resistor(node, 0, 1.0)).unwrap();
        c.add(Element::Inductor(node, 0, 1e-6)).unwrap();
        let out = simulate(&c, 2e-9, 6e-6).unwrap();
        for (&t, v) in out.times_s.iter().zip(&out.voltages) {
            if t < t0 + 5e-9 {
                continue; // skip the ramp edge itself
            }
            let expected = (-(t - t0) / 1e-6).exp();
            assert!(
                (v[node] - expected).abs() < 2e-2,
                "t={t}: {} vs {}",
                v[node],
                expected
            );
        }
    }

    #[test]
    fn current_ramp_causes_ir_droop() {
        // 1V supply behind 10 mΩ; a 5 A ramp load sags the node to 0.95 V.
        let mut c = Circuit::new();
        let supply = c.add_node();
        let load = c.add_node();
        c.add(Element::VoltageSource(supply, 0, 1.0)).unwrap();
        c.add(Element::Resistor(supply, load, 10e-3)).unwrap();
        c.add(Element::CurrentSource(
            load,
            0,
            Waveform::Ramp {
                t_start_s: 1e-9,
                slew_per_s: 5e9,
                peak: 5.0,
            },
        ))
        .unwrap();
        let out = simulate(&c, 1e-10, 20e-9).unwrap();
        let v_min = out.min_voltage(load);
        assert!((v_min - 0.95).abs() < 1e-6, "{v_min}");
    }

    #[test]
    fn inductive_spike_deepens_droop_without_decap() {
        let build = |with_decap: bool| -> f64 {
            let mut c = Circuit::new();
            let supply = c.add_node();
            let mid = c.add_node();
            let load = c.add_node();
            c.add(Element::VoltageSource(supply, 0, 1.0)).unwrap();
            c.add(Element::Resistor(supply, mid, 5e-3)).unwrap();
            c.add(Element::Inductor(mid, load, 2e-9)).unwrap();
            if with_decap {
                let tap = c.add_node();
                c.add(Element::Capacitor(tap, 0, 10e-6)).unwrap();
                c.add(Element::Resistor(load, tap, 3e-3)).unwrap();
            }
            c.add(Element::CurrentSource(
                load,
                0,
                Waveform::Ramp {
                    t_start_s: 5e-9,
                    slew_per_s: 4e9,
                    peak: 4.0,
                },
            ))
            .unwrap();
            simulate(&c, 5e-11, 60e-9).unwrap().min_voltage(load)
        };
        let bare = build(false);
        let decapped = build(true);
        assert!(
            decapped > bare,
            "decap must relieve the Ldi/dt droop: {decapped} vs {bare}"
        );
        // IR floor: 1 - 4 × 0.005 = 0.98; inductor dips below it.
        assert!(bare < 0.98);
    }
}
