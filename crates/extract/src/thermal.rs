//! First-order thermal estimate.
//!
//! Table I lists temperature among the constraints that set power
//! routing apart from signal routing. A full thermal solve needs the
//! finite-element machinery the paper cites \[24\]; an early-exploration
//! estimate does not: copper at PCB scale is laterally so conductive
//! that the hot spot is set by the *local* dissipation density against
//! the board's through-stack thermal resistance. This module combines
//! the per-branch Joule heating of [`crate::density`] with a
//! plate-to-ambient thermal resistance model to bound the temperature
//! rise per tile.

use crate::density::DensityReport;
use crate::network::RailNetwork;
use crate::ExtractError;

/// Board-level thermal parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    /// Effective board-to-ambient heat transfer coefficient
    /// (W/(m²·K)). FR-4 boards in still air run 10-20 W/m²K per face;
    /// the default 25 accounts for both faces.
    pub h_w_per_m2_k: f64,
    /// Ambient temperature (°C).
    pub ambient_c: f64,
    /// Area multiplier for lateral spreading beyond the shape footprint
    /// (ground planes and dielectric carry heat well past the copper
    /// outline; 3 is conservative for boards with solid planes).
    pub spreading_multiplier: f64,
    /// Copper thickness (µm) for the hot-spot healing-length estimate.
    pub copper_um: f64,
}

impl Default for ThermalModel {
    fn default() -> Self {
        ThermalModel {
            h_w_per_m2_k: 25.0,
            ambient_c: 25.0,
            spreading_multiplier: 3.0,
            copper_um: 35.0,
        }
    }
}

/// A thermal estimate for one routed rail.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalReport {
    /// Average temperature rise of the shape (K).
    pub average_rise_k: f64,
    /// Hot-spot temperature rise (K), from the densest branch's local
    /// dissipation.
    pub hotspot_rise_k: f64,
    /// Hot-spot absolute temperature (°C).
    pub hotspot_c: f64,
}

/// Thermal conductivity of copper (W/(m·K)).
const K_COPPER: f64 = 400.0;

/// Estimates the temperature rise of a routed shape from a density
/// report.
///
/// The average rise spreads the total dissipation over the shape area
/// times the model's spreading multiplier. The hot-spot excess smears
/// the worst branch's dissipation over the copper *thermal healing
/// length* `L = √(k_cu·t_cu / h)` — the lateral distance over which a
/// thin conductive sheet equilibrates a point source against a surface
/// transfer coefficient (~16 mm for 35 µm copper in still air, which
/// is why single hot tiles barely register at board level).
///
/// # Errors
///
/// Returns [`ExtractError::InvalidParameter`] for non-positive inputs.
pub fn thermal_estimate(
    network: &RailNetwork,
    density: &DensityReport,
    shape_area_mm2: f64,
    tile_pitch_mm: f64,
    model: ThermalModel,
) -> Result<ThermalReport, ExtractError> {
    if shape_area_mm2 <= 0.0
        || tile_pitch_mm <= 0.0
        || model.h_w_per_m2_k <= 0.0
        || model.spreading_multiplier < 1.0
        || model.copper_um <= 0.0
    {
        return Err(ExtractError::InvalidParameter(
            "thermal parameters must be positive (multiplier >= 1)",
        ));
    }
    let area_m2 = shape_area_mm2 * 1e-6 * model.spreading_multiplier;
    let average_rise_k = density.dissipation_w / (model.h_w_per_m2_k * area_m2);

    // Worst branch dissipation smeared over the healing disc.
    let mut worst_w = 0.0f64;
    for (k, b) in network.mesh.iter().enumerate() {
        let i = density.branch_current_a[k];
        let w = i * i * b.resistance_ohm;
        if w > worst_w {
            worst_w = w;
        }
    }
    let healing_m = (K_COPPER * model.copper_um * 1e-6 / model.h_w_per_m2_k).sqrt();
    let healing_area = std::f64::consts::PI * healing_m * healing_m;
    let hotspot_rise_k = average_rise_k + worst_w / (model.h_w_per_m2_k * healing_area);
    Ok(ThermalReport {
        average_rise_k,
        hotspot_rise_k,
        hotspot_c: model.ambient_c + hotspot_rise_k,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::current_density;
    use crate::network::{Branch, RailNetwork};

    fn chain() -> RailNetwork {
        RailNetwork {
            node_count: 3,
            mesh: vec![Branch {
                a: 0,
                b: 1,
                resistance_ohm: 0.01,
                inductance_h: 1e-9,
            }],
            sink_vias: vec![Branch {
                a: 1,
                b: 2,
                resistance_ohm: 0.001,
                inductance_h: 1e-10,
            }],
            decaps: vec![],
            sources: vec![0],
            sinks: vec![1],
            source_via: (0.001, 1e-10),
            sheet_resistance: 5e-4,
            inductance_per_sq: 1e-10,
        }
    }

    #[test]
    fn dissipation_sets_average_rise() {
        let net = chain();
        let report = current_density(&net, 2.0, 0.5, 100.0).unwrap();
        // 2 A through 10 mΩ: 40 mW.
        assert!((report.dissipation_w - 0.04).abs() < 1e-9);
        let t = thermal_estimate(&net, &report, 20.0, 0.5, ThermalModel::default()).unwrap();
        // 0.04 W over 20 mm² × 3 spreading at 25 W/m²K: ΔT ≈ 26.7 K.
        assert!((t.average_rise_k - 0.04 / (25.0 * 60e-6)).abs() < 1e-6);
        assert!(t.hotspot_rise_k >= t.average_rise_k);
        // The healing disc is large: the hot-spot excess is small.
        assert!(t.hotspot_rise_k < t.average_rise_k + 5.0);
        assert!((t.hotspot_c - (25.0 + t.hotspot_rise_k)).abs() < 1e-9);
    }

    #[test]
    fn bigger_shapes_run_cooler() {
        let net = chain();
        let report = current_density(&net, 2.0, 0.5, 100.0).unwrap();
        let small = thermal_estimate(&net, &report, 10.0, 0.5, ThermalModel::default()).unwrap();
        let large = thermal_estimate(&net, &report, 40.0, 0.5, ThermalModel::default()).unwrap();
        assert!(large.average_rise_k < small.average_rise_k);
    }

    #[test]
    fn validation() {
        let net = chain();
        let report = current_density(&net, 1.0, 0.5, 100.0).unwrap();
        assert!(thermal_estimate(&net, &report, 0.0, 0.5, ThermalModel::default()).is_err());
        let bad = ThermalModel {
            h_w_per_m2_k: 0.0,
            ..ThermalModel::default()
        };
        assert!(thermal_estimate(&net, &report, 10.0, 0.5, bad).is_err());
    }

    #[test]
    fn real_route_runs_cool() {
        use sprout_board::presets;
        use sprout_core::router::{Router, RouterConfig};
        let board = presets::two_rail();
        let config = RouterConfig {
            tile_pitch_mm: 0.5,
            grow_iterations: 8,
            refine_iterations: 2,
            reheat: None,
            ..RouterConfig::default()
        };
        let router = Router::new(&board, config);
        let (net_id, net) = board.power_nets().next().unwrap();
        let route = router
            .route_net(net_id, presets::TWO_RAIL_ROUTE_LAYER, 25.0)
            .unwrap();
        let network = RailNetwork::build(&board, &route).unwrap();
        let density = current_density(&network, net.current_a, 0.5, 1e6).unwrap();
        let t = thermal_estimate(
            &network,
            &density,
            route.shape.area_mm2(),
            0.5,
            ThermalModel::default(),
        )
        .unwrap();
        // A 3 A rail dissipating tens of mW over 25 mm²: tens of K at
        // most; a sane design stays below solder-degradation levels.
        assert!(t.hotspot_rise_k > 0.0 && t.hotspot_rise_k < 80.0, "{t:?}");
    }
}
