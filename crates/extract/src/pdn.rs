//! Rail PDN assembly and minimum-load-voltage simulation (Fig. 12c).
//!
//! The extracted rail (DC resistance + effective loop inductance) is
//! placed between an ideal supply and the load; the rail's decoupling
//! capacitors shunt the load node; the load draws a ramped current with
//! the net's slew rate. The minimum load voltage over the transient is
//! the figure the paper plots against metal area.

use crate::mna::{simulate, Circuit, Element, Waveform};
use crate::ExtractError;
use sprout_board::Decap;

/// Lumped rail model for transient simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct RailPdn {
    /// Supply voltage (V).
    pub supply_v: f64,
    /// Total rail resistance (Ω) — from
    /// [`crate::resistance::dc_resistance`].
    pub resistance_ohm: f64,
    /// Effective loop inductance (H) — from
    /// [`crate::ac::ac_impedance_25mhz`] on the decap-less network.
    pub inductance_h: f64,
    /// The rail's decoupling capacitors.
    pub decaps: Vec<Decap>,
    /// Peak load current (A).
    pub load_a: f64,
    /// Load current slew rate (A/s).
    pub slew_a_per_s: f64,
}

/// Result of a droop simulation.
#[derive(Debug, Clone)]
pub struct DroopResult {
    /// Minimum voltage at the load node (V).
    pub v_min: f64,
    /// Steady-state (IR-only) load voltage (V).
    pub v_steady: f64,
    /// Sample times (s).
    pub times_s: Vec<f64>,
    /// Load-node voltage trace (V).
    pub load_v: Vec<f64>,
}

impl RailPdn {
    /// Runs the transient and reports the minimum load voltage.
    ///
    /// The time step adapts to the load rise time (≥ 200 samples over
    /// the ramp) and the horizon covers the ramp plus settling.
    ///
    /// # Errors
    ///
    /// * [`ExtractError::InvalidParameter`] — non-positive parameters.
    /// * [`ExtractError::Linalg`] — singular MNA system.
    pub fn simulate_droop(&self) -> Result<DroopResult, ExtractError> {
        if self.supply_v <= 0.0
            || self.resistance_ohm <= 0.0
            || self.inductance_h <= 0.0
            || self.load_a <= 0.0
            || self.slew_a_per_s <= 0.0
        {
            return Err(ExtractError::InvalidParameter(
                "rail parameters must be positive",
            ));
        }
        let mut c = Circuit::new();
        let supply = c.add_node();
        let mid = c.add_node();
        let load = c.add_node();
        c.add(Element::VoltageSource(supply, 0, self.supply_v))?;
        c.add(Element::Resistor(supply, mid, self.resistance_ohm))?;
        c.add(Element::Inductor(mid, load, self.inductance_h))?;
        for d in &self.decaps {
            // C + ESR + ESL branch from the load node to ground.
            let tap = c.add_node();
            let tap2 = c.add_node();
            c.add(Element::Resistor(load, tap, d.esr_ohm))?;
            c.add(Element::Inductor(tap, tap2, d.esl_h))?;
            c.add(Element::Capacitor(tap2, 0, d.capacitance_f))?;
        }
        let rise_s = self.load_a / self.slew_a_per_s;
        let t_start = rise_s.max(1e-9); // settle one rise time first
        c.add(Element::CurrentSource(
            load,
            0,
            Waveform::Ramp {
                t_start_s: t_start,
                slew_per_s: self.slew_a_per_s,
                peak: self.load_a,
            },
        ))?;

        // Horizon: the ramp plus several L/R time constants (and decap
        // recharge), capped for tractability.
        let tau = self.inductance_h / self.resistance_ohm;
        let t_end = (t_start + rise_s + 10.0 * tau).max(t_start + 5.0 * rise_s);
        let h = (rise_s / 200.0).min(tau / 20.0).max(t_end / 200_000.0);
        let out = simulate(&c, h, t_end)?;
        let v_min = out.min_voltage(load);
        Ok(DroopResult {
            v_min,
            v_steady: self.supply_v - self.load_a * self.resistance_ohm,
            times_s: out.times_s.clone(),
            load_v: out.trace(load),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprout_board::NetId;
    use sprout_geom::Point;

    fn decap() -> Decap {
        Decap {
            net: NetId(0),
            layer: 9,
            location: Point::new(0.0, 0.0),
            capacitance_f: 10e-6,
            esr_ohm: 5e-3,
            esl_h: 0.4e-9,
        }
    }

    fn rail(decaps: usize) -> RailPdn {
        RailPdn {
            supply_v: 1.0,
            resistance_ohm: 12e-3,
            inductance_h: 150e-12,
            decaps: (0..decaps).map(|_| decap()).collect(),
            load_a: 4.0,
            slew_a_per_s: 3e9,
        }
    }

    #[test]
    fn droop_is_at_least_ir() {
        let out = rail(0).simulate_droop().unwrap();
        // Steady droop: 1 - 4 × 0.012 = 0.952.
        assert!((out.v_steady - 0.952).abs() < 1e-12);
        assert!(out.v_min <= out.v_steady + 1e-9);
        // The bare rail takes the full L·di/dt ≈ 0.45 V hit on top of
        // IR: v_min ≈ 0.50.
        assert!(out.v_min > 0.35 && out.v_min < 0.60, "droop: {}", out.v_min);
    }

    #[test]
    fn decaps_improve_v_min() {
        let bare = rail(0).simulate_droop().unwrap();
        let two = rail(2).simulate_droop().unwrap();
        let five = rail(5).simulate_droop().unwrap();
        assert!(two.v_min >= bare.v_min - 1e-9);
        assert!(five.v_min >= two.v_min - 1e-9);
    }

    #[test]
    fn lower_resistance_raises_v_min() {
        let base = rail(2);
        let mut better = base.clone();
        better.resistance_ohm = 6e-3;
        let v1 = base.simulate_droop().unwrap().v_min;
        let v2 = better.simulate_droop().unwrap().v_min;
        assert!(v2 > v1, "{v2} vs {v1}");
    }

    #[test]
    fn faster_slew_deepens_droop() {
        let base = rail(0);
        let mut fast = base.clone();
        fast.slew_a_per_s = 9e9;
        let v1 = base.simulate_droop().unwrap().v_min;
        let v2 = fast.simulate_droop().unwrap().v_min;
        assert!(v2 <= v1 + 1e-9, "{v2} vs {v1}");
    }

    #[test]
    fn parameter_validation() {
        let mut bad = rail(0);
        bad.load_a = 0.0;
        assert!(bad.simulate_droop().is_err());
        let mut bad2 = rail(0);
        bad2.inductance_h = -1.0;
        assert!(bad2.simulate_droop().is_err());
    }
}
