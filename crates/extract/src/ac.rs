//! AC impedance extraction (Tables II/III, "inductance @ 25 MHz").
//!
//! Complex nodal analysis of the rail network at a single frequency:
//! mesh branches are `R + jωL` series elements, sink vias likewise, and
//! decaps shunt their node to the return plane through
//! `ESR + jωESL + 1/(jωC)`. The reported effective loop inductance is
//! `Im{Z(jω)}/ω` — what a quasi-static extractor quotes at 25 MHz.

use crate::network::RailNetwork;
use crate::ExtractError;
use sprout_board::units::EXTRACTION_FREQUENCY_HZ;
use sprout_linalg::bicgstab::{solve_bicgstab, BiCgStabOptions};
use sprout_linalg::{Complex, Triplets};

/// An AC extraction result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcExtraction {
    /// Frequency (Hz).
    pub frequency_hz: f64,
    /// Complex port impedance (Ω).
    pub impedance: Complex,
    /// AC resistance `Re{Z}` (Ω).
    pub resistance_ohm: f64,
    /// Effective loop inductance `Im{Z}/ω` (H).
    pub inductance_h: f64,
}

/// Extracts the port impedance at the paper's 25 MHz.
///
/// # Errors
///
/// See [`ac_impedance`].
pub fn ac_impedance_25mhz(network: &RailNetwork) -> Result<AcExtraction, ExtractError> {
    ac_impedance(network, EXTRACTION_FREQUENCY_HZ)
}

/// Extracts the port impedance at `frequency_hz`.
///
/// # Errors
///
/// * [`ExtractError::InvalidParameter`] — non-positive frequency.
/// * [`ExtractError::Linalg`] — solver breakdown (disconnected network).
pub fn ac_impedance(
    network: &RailNetwork,
    frequency_hz: f64,
) -> Result<AcExtraction, ExtractError> {
    if frequency_hz <= 0.0 {
        return Err(ExtractError::InvalidParameter("frequency must be positive"));
    }
    let omega = std::f64::consts::TAU * frequency_hz;
    let n = network.node_count;
    let ground = network.reference();

    // Complex admittance Laplacian, grounded at the reference.
    let reduced = |i: usize| -> Option<usize> {
        use std::cmp::Ordering;
        match i.cmp(&ground) {
            Ordering::Less => Some(i),
            Ordering::Equal => None,
            Ordering::Greater => Some(i - 1),
        }
    };
    let mut t = Triplets::<Complex>::new(n - 1, n - 1);
    let mut stamp = |a: usize, b: usize, y: Complex| {
        let (ra, rb) = (reduced(a), reduced(b));
        if let Some(ia) = ra {
            t.push(ia, ia, y).expect("in bounds");
        }
        if let Some(ib) = rb {
            t.push(ib, ib, y).expect("in bounds");
        }
        if let (Some(ia), Some(ib)) = (ra, rb) {
            t.push(ia, ib, -y).expect("in bounds");
            t.push(ib, ia, -y).expect("in bounds");
        }
    };
    for b in network.mesh.iter().chain(&network.sink_vias) {
        let z = Complex::new(b.resistance_ohm, omega * b.inductance_h);
        stamp(b.a, b.b, z.recip());
    }
    for d in &network.decaps {
        let z = Complex::new(d.esr_ohm, omega * d.esl_h - 1.0 / (omega * d.capacitance_f));
        stamp(d.node, ground, z.recip());
    }

    // Inject 1 A into the source pads (split equally), return at ref.
    let mut rhs = vec![Complex::ZERO; n - 1];
    let share = Complex::from_real(1.0 / network.sources.len() as f64);
    for &s in &network.sources {
        if let Some(i) = reduced(s) {
            rhs[i] += share;
        }
    }
    let matrix = t.to_csr();
    let opts = BiCgStabOptions {
        tolerance: 1e-9,
        max_iterations: 20 * n + 500,
    };
    let sol = solve_bicgstab(&matrix, &rhs, opts)?;
    let v_port = network
        .sources
        .iter()
        .filter_map(|&s| reduced(s))
        .fold(Complex::ZERO, |acc, i| acc + sol.x[i])
        / network.sources.len() as f64;

    let z_src = Complex::new(network.source_via.0, omega * network.source_via.1);
    let z = v_port + z_src;
    Ok(AcExtraction {
        frequency_hz,
        impedance: z,
        resistance_ohm: z.re,
        inductance_h: z.im / omega,
    })
}

/// An impedance profile `Z(f)` over a frequency grid — the quantity
/// compared against the target impedance mask in the paper's Fig. 1
/// design flow ("if the impedance profile of the resulting layout does
/// not satisfy the target requirements, the layout is iteratively
/// adjusted").
#[derive(Debug, Clone)]
pub struct ImpedanceProfile {
    /// Frequency grid (Hz).
    pub frequencies_hz: Vec<f64>,
    /// `|Z|` at each frequency (Ω).
    pub magnitude_ohm: Vec<f64>,
    /// Full complex impedances.
    pub impedance: Vec<Complex>,
}

/// Sweeps the port impedance over a logarithmic frequency grid.
///
/// # Errors
///
/// * [`ExtractError::InvalidParameter`] — bad grid bounds.
/// * [`ExtractError::Linalg`] — solver breakdown at some point.
pub fn impedance_profile(
    network: &RailNetwork,
    f_start_hz: f64,
    f_stop_hz: f64,
    points: usize,
) -> Result<ImpedanceProfile, ExtractError> {
    if f_start_hz <= 0.0 || f_stop_hz <= f_start_hz || points < 2 {
        return Err(ExtractError::InvalidParameter(
            "need 0 < f_start < f_stop and at least two points",
        ));
    }
    let ratio = (f_stop_hz / f_start_hz).ln();
    let mut frequencies = Vec::with_capacity(points);
    let mut magnitude = Vec::with_capacity(points);
    let mut impedance = Vec::with_capacity(points);
    for k in 0..points {
        let f = f_start_hz * (ratio * k as f64 / (points - 1) as f64).exp();
        let z = ac_impedance(network, f)?;
        frequencies.push(f);
        magnitude.push(z.impedance.abs());
        impedance.push(z.impedance);
    }
    Ok(ImpedanceProfile {
        frequencies_hz: frequencies,
        magnitude_ohm: magnitude,
        impedance,
    })
}

impl ImpedanceProfile {
    /// Frequencies where `|Z|` exceeds a flat target-impedance mask
    /// (the early-exploration pass/fail question of Fig. 1/2).
    pub fn mask_violations(&self, target_ohm: f64) -> Vec<f64> {
        self.frequencies_hz
            .iter()
            .zip(&self.magnitude_ohm)
            .filter(|(_, &m)| m > target_ohm)
            .map(|(&f, _)| f)
            .collect()
    }

    /// The peak `|Z|` and its frequency.
    ///
    /// # Panics
    ///
    /// Panics on an empty profile (construction guarantees ≥ 2 points).
    pub fn peak(&self) -> (f64, f64) {
        let (idx, &mag) = self
            .magnitude_ohm
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("profile has points");
        (self.frequencies_hz[idx], mag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Branch, DecapTap, RailNetwork};

    /// Source 0 — (R=0.1, L=1nH) — 1(sink) — via (0.05Ω, 0.2nH) — ref 2.
    fn rl_chain() -> RailNetwork {
        RailNetwork {
            node_count: 3,
            mesh: vec![Branch {
                a: 0,
                b: 1,
                resistance_ohm: 0.1,
                inductance_h: 1e-9,
            }],
            sink_vias: vec![Branch {
                a: 1,
                b: 2,
                resistance_ohm: 0.05,
                inductance_h: 0.2e-9,
            }],
            decaps: vec![],
            sources: vec![0],
            sinks: vec![1],
            source_via: (0.02, 0.1e-9),
            sheet_resistance: 5e-4,
            inductance_per_sq: 1e-10,
        }
    }

    #[test]
    fn series_chain_is_exact() {
        let ac = ac_impedance(&rl_chain(), 25.0e6).unwrap();
        assert!((ac.resistance_ohm - 0.17).abs() < 1e-9);
        assert!((ac.inductance_h - 1.3e-9).abs() < 1e-15);
    }

    #[test]
    fn frequency_validation() {
        assert!(ac_impedance(&rl_chain(), 0.0).is_err());
        assert!(ac_impedance(&rl_chain(), -5.0).is_err());
    }

    #[test]
    fn decap_reduces_inductance_at_25mhz() {
        let mut net = rl_chain();
        let base = ac_impedance_25mhz(&net).unwrap();
        // A healthy 10 µF decap right at the sink node shunts the loop.
        net.decaps.push(DecapTap {
            node: 1,
            capacitance_f: 10e-6,
            esr_ohm: 3e-3,
            esl_h: 0.3e-9,
        });
        let with = ac_impedance_25mhz(&net).unwrap();
        assert!(
            with.inductance_h < base.inductance_h,
            "decap must lower L: {} vs {}",
            with.inductance_h,
            base.inductance_h
        );
    }

    #[test]
    fn real_route_inductance_in_range() {
        use sprout_board::presets;
        use sprout_core::router::{Router, RouterConfig};
        let board = presets::two_rail();
        let config = RouterConfig {
            tile_pitch_mm: 0.5,
            grow_iterations: 8,
            refine_iterations: 2,
            reheat: None,
            ..RouterConfig::default()
        };
        let router = Router::new(&board, config);
        let (net, _) = board.power_nets().next().unwrap();
        let route = router
            .route_net(net, presets::TWO_RAIL_ROUTE_LAYER, 25.0)
            .unwrap();
        let network = RailNetwork::build(&board, &route).unwrap();
        let ac = ac_impedance_25mhz(&network).unwrap();
        // The paper's rails sit at ~100-160 pH (normalized); a physical
        // plane-pair rail of this size lands between 10 pH and 10 nH.
        assert!(
            ac.inductance_h > 1e-11 && ac.inductance_h < 1e-8,
            "{} H",
            ac.inductance_h
        );
        assert!(ac.resistance_ohm > 0.0);
        // AC resistance at least the DC value (no skin effect modeled,
        // but vias and spreading match).
        let dc = crate::resistance::dc_resistance(&network).unwrap();
        assert!(ac.resistance_ohm > dc.total_ohm * 0.5);
    }

    #[test]
    fn inductance_scales_with_dielectric_height() {
        // Doubling every branch inductance doubles Im{Z}/ω.
        let net = rl_chain();
        let base = ac_impedance_25mhz(&net).unwrap();
        let mut thick = net.clone();
        for b in thick.mesh.iter_mut().chain(thick.sink_vias.iter_mut()) {
            b.inductance_h *= 2.0;
        }
        thick.source_via.1 *= 2.0;
        let double = ac_impedance_25mhz(&thick).unwrap();
        assert!((double.inductance_h / base.inductance_h - 2.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod profile_tests {
    use super::*;
    use crate::network::{Branch, DecapTap, RailNetwork};

    fn rail(with_decap: bool) -> RailNetwork {
        RailNetwork {
            node_count: 3,
            mesh: vec![Branch {
                a: 0,
                b: 1,
                resistance_ohm: 0.01,
                inductance_h: 0.5e-9,
            }],
            // A realistically inductive ball/package tie: the decap
            // bypasses this inductance in mid-band.
            sink_vias: vec![Branch {
                a: 1,
                b: 2,
                resistance_ohm: 0.002,
                inductance_h: 1.2e-9,
            }],
            decaps: if with_decap {
                vec![DecapTap {
                    node: 1,
                    capacitance_f: 1e-6,
                    esr_ohm: 5e-3,
                    esl_h: 0.5e-9,
                }]
            } else {
                vec![]
            },
            sources: vec![0],
            sinks: vec![1],
            source_via: (0.001, 0.05e-9),
            sheet_resistance: 5e-4,
            inductance_per_sq: 1e-10,
        }
    }

    #[test]
    fn profile_grid_and_monotone_inductive_rise() {
        let p = impedance_profile(&rail(false), 1e5, 1e8, 31).unwrap();
        assert_eq!(p.frequencies_hz.len(), 31);
        assert!((p.frequencies_hz[0] - 1e5).abs() < 1.0);
        assert!((p.frequencies_hz[30] - 1e8).abs() / 1e8 < 1e-9);
        // A pure RL rail: |Z| monotone non-decreasing in f.
        for w in p.magnitude_ohm.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        let (f_peak, _) = p.peak();
        assert!((f_peak - 1e8).abs() / 1e8 < 1e-9);
    }

    #[test]
    fn decap_carves_a_valley_in_the_profile() {
        let bare = impedance_profile(&rail(false), 1e5, 1e9, 61).unwrap();
        let decapped = impedance_profile(&rail(true), 1e5, 1e9, 61).unwrap();
        // Somewhere in mid-band the decap lowers |Z| substantially.
        let improvement = bare
            .magnitude_ohm
            .iter()
            .zip(&decapped.magnitude_ohm)
            .map(|(b, d)| b / d)
            .fold(0.0f64, f64::max);
        assert!(improvement > 1.5, "best improvement {improvement}");
    }

    #[test]
    fn mask_violation_detection() {
        let p = impedance_profile(&rail(false), 1e5, 1e8, 21).unwrap();
        // A generous mask passes everywhere; a tiny one fails at HF.
        assert!(p.mask_violations(1e3).is_empty());
        let tight = p.mask_violations(0.02);
        assert!(!tight.is_empty());
        // Violations are at the high end for an inductive rail.
        assert!(tight[0] > 1e5);
    }

    #[test]
    fn profile_validation() {
        let r = rail(false);
        assert!(impedance_profile(&r, 0.0, 1e8, 10).is_err());
        assert!(impedance_profile(&r, 1e8, 1e5, 10).is_err());
        assert!(impedance_profile(&r, 1e5, 1e8, 1).is_err());
    }
}
