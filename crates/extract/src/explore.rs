//! Design-space exploration — the paper's Fig. 2 loop as an API.
//!
//! "This process is repeated for different sets of system-level
//! parameters. The power, performance, and cost of each prototype is
//! evaluated and compared to other prototypes to determine the most
//! favorable system parameters." (Fig. 2 caption.) This module packages
//! that loop: give it a board, a router configuration, and a list of
//! per-rail area schedules; it synthesizes every prototype and returns
//! the full metric set per rail — the data behind Fig. 12 and Table IV
//! as a reusable library call.

use crate::ac::ac_impedance_25mhz;
use crate::delay::FinFetModel;
use crate::network::RailNetwork;
use crate::pdn::RailPdn;
use crate::resistance::dc_resistance;
use crate::ExtractError;
use sprout_board::{Board, NetId};
use sprout_core::router::{Router, RouterConfig};
use sprout_core::SproutError;
use sprout_telemetry as telemetry;

/// One prototype to synthesize: a label plus per-rail area budgets.
#[derive(Debug, Clone)]
pub struct PrototypeSpec {
    /// Display label (e.g. `"layout 3"`).
    pub label: String,
    /// `(net, layer, area budget mm²)` per rail, routed in order with
    /// earlier shapes blocking later nets (§II-G).
    pub rails: Vec<(NetId, usize, f64)>,
}

/// Extracted metrics of one rail of one prototype.
#[derive(Debug, Clone)]
pub struct RailMetrics {
    /// The rail.
    pub net: NetId,
    /// Realized metal area (mm²).
    pub area_mm2: f64,
    /// DC resistance (Ω).
    pub resistance_ohm: f64,
    /// Loop inductance at 25 MHz (H).
    pub inductance_h: f64,
    /// Minimum load voltage under the rail's load step (V).
    pub v_min: f64,
    /// Relative FinFET propagation delay at `v_min`.
    pub relative_delay: f64,
}

/// Evaluation of one prototype.
#[derive(Debug, Clone)]
pub struct PrototypeEvaluation {
    /// The prototype's label.
    pub label: String,
    /// Per-rail metrics, in routing order.
    pub rails: Vec<RailMetrics>,
}

/// Errors from exploration.
#[derive(Debug)]
pub enum ExploreError {
    /// A prototype failed to route.
    Routing {
        /// Prototype label.
        label: String,
        /// The router's error.
        source: SproutError,
    },
    /// Extraction failed on a routed prototype.
    Extraction {
        /// Prototype label.
        label: String,
        /// The extraction error.
        source: ExtractError,
    },
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::Routing { label, source } => {
                write!(f, "prototype `{label}` failed to route: {source}")
            }
            ExploreError::Extraction { label, source } => {
                write!(f, "prototype `{label}` failed to extract: {source}")
            }
        }
    }
}

impl std::error::Error for ExploreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExploreError::Routing { source, .. } => Some(source),
            ExploreError::Extraction { source, .. } => Some(source),
        }
    }
}

/// Synthesizes and evaluates every prototype (the Fig. 2 loop).
///
/// # Errors
///
/// Returns [`ExploreError`] naming the first prototype that fails.
///
/// # Example
///
/// ```
/// use sprout_board::presets;
/// use sprout_core::router::RouterConfig;
/// use sprout_extract::explore::{explore, PrototypeSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let board = presets::two_rail();
/// let (net, _) = board.power_nets().next().expect("rails");
/// let mut config = RouterConfig::default();
/// config.tile_pitch_mm = 0.8; // coarse: doc example
/// config.grow_iterations = 5;
/// config.refine_iterations = 0;
/// config.reheat = None;
/// let layer = presets::TWO_RAIL_ROUTE_LAYER;
/// let specs = vec![
///     PrototypeSpec { label: "small".into(), rails: vec![(net, layer, 22.0)] },
///     PrototypeSpec { label: "large".into(), rails: vec![(net, layer, 32.0)] },
/// ];
/// let evals = explore(&board, config, &specs)?;
/// assert_eq!(evals.len(), 2);
/// assert!(evals[1].rails[0].resistance_ohm <= evals[0].rails[0].resistance_ohm * 1.05);
/// # Ok(())
/// # }
/// ```
pub fn explore(
    board: &Board,
    config: RouterConfig,
    specs: &[PrototypeSpec],
) -> Result<Vec<PrototypeEvaluation>, ExploreError> {
    let router = Router::new(board, config);
    let finfet = FinFetModel::paper_32nm();
    let mut out = Vec::with_capacity(specs.len());
    for spec in specs {
        let mut proto_span = telemetry::span("prototype")
            .field("label", spec.label.clone())
            .field("rails", spec.rails.len())
            .enter();
        let routes = router
            .route_all(&spec.rails)
            .into_results()
            .map_err(|source| ExploreError::Routing {
                label: spec.label.clone(),
                source,
            })?;
        let mut rails = Vec::with_capacity(routes.len());
        for route in &routes {
            let metrics = (|| -> Result<RailMetrics, ExtractError> {
                let network = RailNetwork::build(board, route)?;
                let dc = dc_resistance(&network)?;
                let ac = ac_impedance_25mhz(&network)?;
                let net = board.net(route.net)?;
                let pdn = RailPdn {
                    supply_v: net.supply_v,
                    resistance_ohm: dc.total_ohm,
                    inductance_h: ac.inductance_h,
                    decaps: board.decaps_for(route.net).cloned().collect(),
                    load_a: net.current_a,
                    slew_a_per_s: net.slew_a_per_s,
                };
                let droop = pdn.simulate_droop()?;
                let v_for_delay = droop.v_min.max(finfet.vth_v + 0.05);
                Ok(RailMetrics {
                    net: route.net,
                    area_mm2: route.shape.area_mm2(),
                    resistance_ohm: dc.total_ohm,
                    inductance_h: ac.inductance_h,
                    v_min: droop.v_min,
                    relative_delay: finfet.relative_delay(v_for_delay),
                })
            })()
            .map_err(|source| ExploreError::Extraction {
                label: spec.label.clone(),
                source,
            })?;
            telemetry::point("rail_metrics")
                .field("net", metrics.net.0 as u64)
                .field("area_mm2", metrics.area_mm2)
                .field("resistance_ohm", metrics.resistance_ohm)
                .field("v_min", metrics.v_min)
                .emit();
            rails.push(metrics);
        }
        proto_span.record("routed", rails.len());
        out.push(PrototypeEvaluation {
            label: spec.label.clone(),
            rails,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprout_board::presets;

    fn config() -> RouterConfig {
        RouterConfig {
            tile_pitch_mm: 0.6,
            grow_iterations: 6,
            refine_iterations: 1,
            reheat: None,
            ..RouterConfig::default()
        }
    }

    #[test]
    fn sweep_produces_monotone_resistance() {
        let board = presets::two_rail();
        let (net, _) = board.power_nets().next().unwrap();
        let layer = presets::TWO_RAIL_ROUTE_LAYER;
        let specs: Vec<PrototypeSpec> = [20.0, 26.0, 32.0]
            .iter()
            .map(|&a| PrototypeSpec {
                label: format!("a={a}"),
                rails: vec![(net, layer, a)],
            })
            .collect();
        let evals = explore(&board, config(), &specs).unwrap();
        assert_eq!(evals.len(), 3);
        for w in evals.windows(2) {
            assert!(
                w[1].rails[0].resistance_ohm <= w[0].rails[0].resistance_ohm * 1.02,
                "Fig. 12a monotonicity"
            );
            assert!(w[1].rails[0].v_min >= w[0].rails[0].v_min - 1e-3);
        }
    }

    #[test]
    fn multi_rail_prototype_evaluates_all_rails() {
        let board = presets::two_rail();
        let nets: Vec<NetId> = board.power_nets().map(|(id, _)| id).collect();
        let layer = presets::TWO_RAIL_ROUTE_LAYER;
        let spec = PrototypeSpec {
            label: "both".into(),
            rails: vec![(nets[0], layer, 20.0), (nets[1], layer, 20.0)],
        };
        let evals = explore(&board, config(), &[spec]).unwrap();
        assert_eq!(evals[0].rails.len(), 2);
        for r in &evals[0].rails {
            assert!(r.resistance_ohm > 0.0);
            assert!(r.v_min > 0.5 && r.v_min < 1.0);
            assert!(r.relative_delay >= 1.0);
        }
    }

    #[test]
    fn routing_failures_carry_the_label() {
        let board = presets::two_rail();
        let (net, _) = board.power_nets().next().unwrap();
        let spec = PrototypeSpec {
            label: "impossible".into(),
            rails: vec![(net, presets::TWO_RAIL_ROUTE_LAYER, 0.1)],
        };
        match explore(&board, config(), &[spec]) {
            Err(ExploreError::Routing { label, .. }) => assert_eq!(label, "impossible"),
            other => panic!("expected routing error, got {other:?}"),
        }
    }
}

/// Result of a budget-balancing run.
#[derive(Debug, Clone)]
pub struct BalanceResult {
    /// The final per-rail budgets (mm²), same order as the input rails.
    pub budgets_mm2: Vec<f64>,
    /// The evaluation at the final allocation.
    pub evaluation: PrototypeEvaluation,
    /// Iterations performed.
    pub iterations: usize,
}

/// Splits a fixed total metal area across rails so that the minimum
/// load voltages equalize — the "most favorable system parameters"
/// question of Fig. 2 answered automatically.
///
/// Strategy: start from an equal (or caller-provided) split, evaluate,
/// and iteratively move a fraction of the area from the rail with the
/// most voltage margin to the rail with the least, re-synthesizing each
/// time. Stops when the worst-to-best V_min spread falls below `tol_v`
/// or after `max_iterations`.
///
/// # Errors
///
/// * [`ExploreError`] — the *initial* allocation failed to route or
///   extract. A later reallocation that makes a rail unroutable (the
///   donor falls below its seed area) is rolled back and the search
///   stops at the last feasible allocation.
pub fn balance_budgets(
    board: &Board,
    config: RouterConfig,
    rails: &[(NetId, usize)],
    total_area_mm2: f64,
    tol_v: f64,
    max_iterations: usize,
) -> Result<BalanceResult, ExploreError> {
    assert!(!rails.is_empty(), "need at least one rail");
    let mut balance_span = telemetry::span("balance")
        .field("rails", rails.len())
        .field("total_area_mm2", total_area_mm2)
        .enter();
    let n = rails.len();
    let mut budgets = vec![total_area_mm2 / n as f64; n];
    let spec_of = |budgets: &[f64], label: String| PrototypeSpec {
        label,
        rails: rails
            .iter()
            .zip(budgets)
            .map(|(&(net, layer), &b)| (net, layer, b))
            .collect(),
    };
    let mut evaluation =
        explore(board, config, &[spec_of(&budgets, "balance 0".into())])?.remove(0);
    let mut iterations = 0usize;
    while iterations < max_iterations {
        let (worst, best) = {
            let vmins: Vec<f64> = evaluation.rails.iter().map(|r| r.v_min).collect();
            let worst = vmins
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .expect("nonempty")
                .0;
            let best = vmins
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .expect("nonempty")
                .0;
            (worst, best)
        };
        let spread = evaluation.rails[best].v_min - evaluation.rails[worst].v_min;
        if spread <= tol_v || worst == best {
            break;
        }
        // Move 10 % of the donor's budget to the neediest rail.
        let delta = budgets[best] * 0.10;
        let mut trial = budgets.clone();
        trial[best] -= delta;
        trial[worst] += delta;
        iterations += 1;
        match explore(
            board,
            config,
            &[spec_of(&trial, format!("balance {iterations}"))],
        ) {
            Ok(mut evals) => {
                budgets = trial;
                evaluation = evals.remove(0);
            }
            Err(_) => {
                // The reallocation broke routability (donor below its
                // seed area); keep the previous allocation and stop.
                break;
            }
        }
    }
    balance_span.record("iterations", iterations);
    Ok(BalanceResult {
        budgets_mm2: budgets,
        evaluation,
        iterations,
    })
}

#[cfg(test)]
mod balance_tests {
    use super::*;
    use sprout_board::presets;

    #[test]
    fn balancing_narrows_the_vmin_spread() {
        let board = presets::two_rail();
        let rails: Vec<(NetId, usize)> = board
            .power_nets()
            .map(|(id, _)| (id, presets::TWO_RAIL_ROUTE_LAYER))
            .collect();
        let config = RouterConfig {
            tile_pitch_mm: 0.6,
            grow_iterations: 6,
            refine_iterations: 1,
            reheat: None,
            ..RouterConfig::default()
        };
        // Equal split baseline.
        let start = explore(
            &board,
            config,
            &[PrototypeSpec {
                label: "equal".into(),
                rails: rails.iter().map(|&(n, l)| (n, l, 22.0)).collect(),
            }],
        )
        .unwrap()
        .remove(0);
        let spread0 = {
            let v: Vec<f64> = start.rails.iter().map(|r| r.v_min).collect();
            v.iter().cloned().fold(f64::MIN, f64::max) - v.iter().cloned().fold(f64::MAX, f64::min)
        };
        let balanced = balance_budgets(&board, config, &rails, 44.0, 1e-4, 6).unwrap();
        let spread1 = {
            let v: Vec<f64> = balanced.evaluation.rails.iter().map(|r| r.v_min).collect();
            v.iter().cloned().fold(f64::MIN, f64::max) - v.iter().cloned().fold(f64::MAX, f64::min)
        };
        // Total area conserved.
        let total: f64 = balanced.budgets_mm2.iter().sum();
        assert!((total - 44.0).abs() < 1e-9);
        // The spread must not grow; usually it shrinks.
        assert!(spread1 <= spread0 + 1e-4, "{spread1} vs {spread0}");
    }

    #[test]
    fn single_rail_is_trivially_balanced() {
        let board = presets::two_rail();
        let (net, _) = board.power_nets().next().unwrap();
        let config = RouterConfig {
            tile_pitch_mm: 0.6,
            grow_iterations: 5,
            refine_iterations: 0,
            reheat: None,
            ..RouterConfig::default()
        };
        let out = balance_budgets(
            &board,
            config,
            &[(net, presets::TWO_RAIL_ROUTE_LAYER)],
            25.0,
            1e-3,
            5,
        )
        .unwrap();
        assert_eq!(out.iterations, 0);
        assert_eq!(out.budgets_mm2, vec![25.0]);
    }
}
