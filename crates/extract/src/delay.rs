//! FinFET delay and power model (Fig. 12d).
//!
//! The paper estimates the performance impact of supply droop with
//! "guidelines for a 32 nm FinFET technology \[35\]" and quotes the
//! sensitivity: a 36 mV increase in minimum voltage near 1 V yields a
//! 7 % propagation-delay reduction. The alpha-power law
//! `t_d ∝ V / (V - V_th)^α` reproduces exactly that sensitivity once α
//! is calibrated against the quoted numbers.

use crate::ExtractError;

/// Alpha-power-law FinFET timing/power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FinFetModel {
    /// Threshold voltage (V).
    pub vth_v: f64,
    /// Velocity-saturation exponent.
    pub alpha: f64,
    /// Delay prefactor (ps·V^(α-1)) setting the absolute scale.
    pub t0_ps: f64,
    /// Nominal supply (V) for relative figures.
    pub vnom_v: f64,
}

impl FinFetModel {
    /// The 32 nm FinFET model calibrated to the paper's §III-C
    /// sensitivity (+36 mV ⇒ −7 % delay at V_nom = 1 V), with a typical
    /// FinFET threshold of 0.40 V. The absolute prefactor anchors the
    /// nominal gate delay at 10 ps.
    pub fn paper_32nm() -> Self {
        let vth = 0.40;
        let vnom = 1.0;
        // Solve delay(vnom + 36 mV) / delay(vnom) = 0.93 exactly:
        // (v'/v) · ((vnom - vth)/(v' - vth))^α = 0.93.
        let v_up = vnom + 0.036;
        let alpha = (0.93f64 / (v_up / vnom)).ln() / ((vnom - vth) / (v_up - vth)).ln();
        // Anchor the nominal gate delay at 10 ps.
        let t0_ps = 10.0 / (vnom / (vnom - vth).powf(alpha));
        FinFetModel {
            vth_v: vth,
            alpha,
            t0_ps,
            vnom_v: vnom,
        }
    }

    /// Propagation delay (ps) at supply `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v <= vth` (the device does not switch).
    pub fn delay_ps(&self, v: f64) -> f64 {
        assert!(
            v > self.vth_v,
            "supply {v} V must exceed the threshold {} V",
            self.vth_v
        );
        self.t0_ps * v / (v - self.vth_v).powf(self.alpha)
    }

    /// Delay relative to the nominal supply.
    ///
    /// # Panics
    ///
    /// Panics if `v <= vth`.
    pub fn relative_delay(&self, v: f64) -> f64 {
        self.delay_ps(v) / self.delay_ps(self.vnom_v)
    }

    /// Dynamic power relative to nominal (`∝ V²` at fixed frequency).
    pub fn relative_dynamic_power(&self, v: f64) -> f64 {
        (v / self.vnom_v).powi(2)
    }

    /// Validates and builds a custom model.
    ///
    /// # Errors
    ///
    /// Returns [`ExtractError::InvalidParameter`] for non-physical
    /// values.
    pub fn new(vth_v: f64, alpha: f64, t0_ps: f64, vnom_v: f64) -> Result<Self, ExtractError> {
        if vth_v <= 0.0 || alpha <= 0.0 || t0_ps <= 0.0 || vnom_v <= vth_v {
            return Err(ExtractError::InvalidParameter(
                "FinFET model parameters must be positive with vnom > vth",
            ));
        }
        Ok(FinFetModel {
            vth_v,
            alpha,
            t0_ps,
            vnom_v,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_hits_the_paper_sensitivity() {
        let m = FinFetModel::paper_32nm();
        // +36 mV must give ≈ 7 % lower delay.
        let ratio = m.relative_delay(1.036);
        assert!(
            (ratio - 0.93).abs() < 0.002,
            "36 mV should buy 7 %: ratio {ratio}"
        );
    }

    #[test]
    fn nominal_delay_is_anchored() {
        let m = FinFetModel::paper_32nm();
        assert!((m.delay_ps(1.0) - 10.0).abs() < 1e-9);
        assert!((m.relative_delay(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delay_decreases_with_voltage() {
        let m = FinFetModel::paper_32nm();
        let mut prev = m.delay_ps(0.85);
        for k in 1..=10 {
            let v = 0.85 + 0.03 * k as f64;
            let d = m.delay_ps(v);
            assert!(d < prev, "delay must fall with supply at {v} V");
            prev = d;
        }
    }

    #[test]
    fn power_is_quadratic() {
        let m = FinFetModel::paper_32nm();
        assert!((m.relative_dynamic_power(1.0) - 1.0).abs() < 1e-12);
        assert!((m.relative_dynamic_power(0.964) - 0.964f64.powi(2)).abs() < 1e-12);
        // §III-C: a 36 mV reduction buys ≈ 7 % dynamic power.
        let saving = 1.0 - m.relative_dynamic_power(1.0 - 0.036);
        assert!((saving - 0.0707).abs() < 0.002, "{saving}");
    }

    #[test]
    fn construction_validates() {
        assert!(FinFetModel::new(0.4, 1.8, 10.0, 1.0).is_ok());
        assert!(FinFetModel::new(-0.1, 1.8, 10.0, 1.0).is_err());
        assert!(FinFetModel::new(0.4, 1.8, 10.0, 0.3).is_err());
        assert!(FinFetModel::new(0.4, -1.0, 10.0, 1.0).is_err());
    }

    #[test]
    #[should_panic(expected = "exceed the threshold")]
    fn subthreshold_panics() {
        let m = FinFetModel::paper_32nm();
        let _ = m.delay_ps(0.3);
    }
}
