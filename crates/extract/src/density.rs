//! Current-density analysis.
//!
//! Table I of the paper lists "current density, temperature, metal
//! resources" as the constraints that distinguish power routing from
//! signal routing. This module computes the per-branch current density
//! of a routed rail under its full DC load, flags violations of a
//! maximum line-density rule (A/mm of cross-section width, the standard
//! PCB copper limit form), and estimates the Joule heating of each tile
//! for a first-order hotspot check.

use crate::network::RailNetwork;
use crate::ExtractError;
use sprout_linalg::laplacian::GraphLaplacian;

/// Per-branch loading of a rail under full DC current.
#[derive(Debug, Clone)]
pub struct DensityReport {
    /// Per-mesh-branch current magnitude (A), aligned with
    /// [`RailNetwork::mesh`].
    pub branch_current_a: Vec<f64>,
    /// Per-mesh-branch line current density (A/mm of contact width).
    pub branch_density_a_per_mm: Vec<f64>,
    /// Peak line density (A/mm).
    pub max_density_a_per_mm: f64,
    /// Total resistive dissipation in the copper shape (W).
    pub dissipation_w: f64,
    /// Indices of branches exceeding the supplied limit.
    pub violations: Vec<usize>,
}

/// Computes the DC current distribution with `load_a` amperes drawn
/// uniformly by the sink balls, and checks every mesh branch against
/// `max_density_a_per_mm` (use the copper manufacturer's derating; a
/// common figure for 35 µm outer-layer copper is ~3-5 A/mm at 20 °C
/// rise).
///
/// The line density of a branch is its current divided by the contact
/// width it represents (recovered from the branch resistance and the
/// sheet resistance: `width/length = R_sheet / R_branch`, with the tile
/// pitch as the length scale — exact for the uniform tiling of
/// Algorithm 1).
///
/// # Errors
///
/// * [`ExtractError::InvalidParameter`] — non-positive inputs.
/// * [`ExtractError::Linalg`] — disconnected network.
pub fn current_density(
    network: &RailNetwork,
    load_a: f64,
    tile_pitch_mm: f64,
    max_density_a_per_mm: f64,
) -> Result<DensityReport, ExtractError> {
    if load_a <= 0.0 || tile_pitch_mm <= 0.0 || max_density_a_per_mm <= 0.0 {
        return Err(ExtractError::InvalidParameter(
            "load, pitch, and density limit must be positive",
        ));
    }
    let mut edges: Vec<(usize, usize, f64)> =
        Vec::with_capacity(network.mesh.len() + network.sink_vias.len());
    for b in network.mesh.iter().chain(&network.sink_vias) {
        edges.push((b.a, b.b, 1.0 / b.resistance_ohm));
    }
    let lap = GraphLaplacian::from_edges(network.node_count, &edges)?;
    let factor = lap.factor_grounded(network.reference())?;
    let mut currents = vec![0.0f64; network.node_count];
    let share = load_a / network.sources.len() as f64;
    for &s in &network.sources {
        currents[s] += share;
    }
    currents[network.reference()] -= load_a;
    let v = factor.solve_currents(&currents)?;

    let mut branch_current = Vec::with_capacity(network.mesh.len());
    let mut branch_density = Vec::with_capacity(network.mesh.len());
    let mut dissipation = 0.0;
    let mut max_density = 0.0f64;
    let mut violations = Vec::new();
    for (k, b) in network.mesh.iter().enumerate() {
        let i = (v[b.a] - v[b.b]) / b.resistance_ohm;
        let i_abs = i.abs();
        // Contact width from the branch conductance: w = g·R_sheet·pitch.
        let width_mm = (network.sheet_resistance / b.resistance_ohm) * tile_pitch_mm;
        let density = if width_mm > 0.0 {
            i_abs / width_mm
        } else {
            0.0
        };
        dissipation += i * i * b.resistance_ohm;
        if density > max_density {
            max_density = density;
        }
        if density > max_density_a_per_mm {
            violations.push(k);
        }
        branch_current.push(i_abs);
        branch_density.push(density);
    }
    Ok(DensityReport {
        branch_current_a: branch_current,
        branch_density_a_per_mm: branch_density,
        max_density_a_per_mm: max_density,
        dissipation_w: dissipation,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Branch, RailNetwork};

    /// Source 0 — two parallel 1 Ω branches — 1 (sink) — via — ref 2.
    fn parallel_pair() -> RailNetwork {
        RailNetwork {
            node_count: 3,
            mesh: vec![
                Branch {
                    a: 0,
                    b: 1,
                    resistance_ohm: 1.0,
                    inductance_h: 1e-9,
                },
                Branch {
                    a: 0,
                    b: 1,
                    resistance_ohm: 1.0,
                    inductance_h: 1e-9,
                },
            ],
            sink_vias: vec![Branch {
                a: 1,
                b: 2,
                resistance_ohm: 0.1,
                inductance_h: 1e-10,
            }],
            decaps: vec![],
            sources: vec![0],
            sinks: vec![1],
            source_via: (0.05, 1e-10),
            sheet_resistance: 0.5,
            inductance_per_sq: 1e-10,
        }
    }

    #[test]
    fn parallel_branches_split_current() {
        let report = current_density(&parallel_pair(), 2.0, 1.0, 100.0).unwrap();
        assert_eq!(report.branch_current_a.len(), 2);
        assert!((report.branch_current_a[0] - 1.0).abs() < 1e-9);
        assert!((report.branch_current_a[1] - 1.0).abs() < 1e-9);
        // Dissipation: 2 branches × I²R = 2 × 1 W.
        assert!((report.dissipation_w - 2.0).abs() < 1e-9);
        assert!(report.violations.is_empty());
    }

    #[test]
    fn density_uses_branch_width() {
        // R_branch = 1 Ω, R_sheet = 0.5 Ω/sq, pitch 1 mm → width 0.5 mm.
        // 1 A through 0.5 mm → 2 A/mm.
        let report = current_density(&parallel_pair(), 2.0, 1.0, 100.0).unwrap();
        assert!((report.branch_density_a_per_mm[0] - 2.0).abs() < 1e-9);
        assert!((report.max_density_a_per_mm - 2.0).abs() < 1e-9);
    }

    #[test]
    fn violations_flagged_against_limit() {
        let report = current_density(&parallel_pair(), 2.0, 1.0, 1.5).unwrap();
        assert_eq!(report.violations, vec![0, 1]);
    }

    #[test]
    fn input_validation() {
        let net = parallel_pair();
        assert!(current_density(&net, 0.0, 1.0, 5.0).is_err());
        assert!(current_density(&net, 1.0, -1.0, 5.0).is_err());
        assert!(current_density(&net, 1.0, 1.0, 0.0).is_err());
    }

    #[test]
    fn real_route_density_is_physical() {
        use sprout_board::presets;
        use sprout_core::router::{Router, RouterConfig};
        let board = presets::two_rail();
        let config = RouterConfig {
            tile_pitch_mm: 0.5,
            grow_iterations: 8,
            refine_iterations: 2,
            reheat: None,
            ..RouterConfig::default()
        };
        let router = Router::new(&board, config);
        let (net_id, net) = board.power_nets().next().unwrap();
        let route = router
            .route_net(net_id, presets::TWO_RAIL_ROUTE_LAYER, 25.0)
            .unwrap();
        let network = RailNetwork::build(&board, &route).unwrap();
        let report = current_density(&network, net.current_a, 0.5, 1e6).unwrap();
        // A 3 A rail a few mm wide: peak line density a few A/mm.
        assert!(
            report.max_density_a_per_mm > 0.1 && report.max_density_a_per_mm < 100.0,
            "{}",
            report.max_density_a_per_mm
        );
        // Dissipation consistent with I²·R_shape.
        use crate::resistance::dc_resistance;
        let dc = dc_resistance(&network).unwrap();
        let upper = net.current_a * net.current_a * dc.shape_ohm;
        assert!(report.dissipation_w <= upper * 1.01);
        assert!(report.dissipation_w > upper * 0.1);
    }
}
