//! # sprout-baseline
//!
//! A regular-geometry "manual" router standing in for the human expert
//! layouts the paper compares against (Tables II/III).
//!
//! The paper observes that "regular geometries are utilized primarily in
//! the manual layout whereas the automatically generated layout exhibits
//! greater diversity in the shape of the geometries" (§III-A). This
//! router reproduces that style deterministically: a rectangular pour
//! over the BGA ball group plus a straight or L-shaped trunk back to the
//! PMIC output, sized to the same metal-area budget the SPROUT run gets.
//! The result is packaged as a [`sprout_core::RouteResult`] so the same
//! extraction pipeline measures both layouts — the apples-to-apples
//! discipline the paper's comparison relies on.

use sprout_board::{Board, ElementRole, NetId};
use sprout_core::current::{injection_pairs, node_current, PairPolicy};
use sprout_core::graph::{NodeId, Subgraph};
use sprout_core::router::{RouteResult, StageTimings};
use sprout_core::space::SpaceSpec;
use sprout_core::tile::{identify_terminals, space_to_graph, TileOptions};
use sprout_core::SproutError;
use sprout_geom::{Point, Polygon, Rect};

/// Configuration for the manual-style router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManualConfig {
    /// Tile pitch used to discretize the shape for extraction (match
    /// the SPROUT run's pitch for a fair comparison).
    pub tile_pitch_mm: f64,
    /// Pair policy used when evaluating the objective.
    pub pair_policy: PairPolicy,
}

impl Default for ManualConfig {
    fn default() -> Self {
        ManualConfig {
            tile_pitch_mm: 0.4,
            pair_policy: PairPolicy::SourceToSinks,
        }
    }
}

/// The manual-style router.
#[derive(Debug, Clone)]
pub struct ManualRouter<'b> {
    board: &'b Board,
    config: ManualConfig,
}

impl<'b> ManualRouter<'b> {
    /// Creates a manual router over `board`.
    pub fn new(board: &'b Board, config: ManualConfig) -> Self {
        ManualRouter { board, config }
    }

    /// Routes `net` on `layer` with regular geometries under the area
    /// budget (mm²).
    ///
    /// # Errors
    ///
    /// * [`SproutError::InvalidConfig`] — non-positive budget/pitch.
    /// * [`SproutError::NoTerminals`] / [`SproutError::DisjointSpace`] —
    ///   the same failure modes as the SPROUT router.
    pub fn route_net(
        &self,
        net: NetId,
        layer: usize,
        area_budget_mm2: f64,
    ) -> Result<RouteResult, SproutError> {
        self.route_net_with(net, layer, area_budget_mm2, &[])
    }

    /// Routes with extra blockers (previously routed nets).
    ///
    /// # Errors
    ///
    /// See [`ManualRouter::route_net`].
    pub fn route_net_with(
        &self,
        net: NetId,
        layer: usize,
        area_budget_mm2: f64,
        extra_blockers: &[Polygon],
    ) -> Result<RouteResult, SproutError> {
        if area_budget_mm2 <= 0.0 || self.config.tile_pitch_mm <= 0.0 {
            return Err(SproutError::InvalidConfig(
                "budget and pitch must be positive",
            ));
        }
        let spec = SpaceSpec::build(self.board, net, layer, extra_blockers)?;
        let graph = space_to_graph(&spec, TileOptions::square(self.config.tile_pitch_mm))?;
        let terminals = identify_terminals(&graph, &spec, net)?;
        let terminal_nodes: Vec<NodeId> = terminals.iter().map(|t| t.node).collect();
        if !graph.connects(&terminal_nodes) {
            return Err(SproutError::DisjointSpace { net, layer });
        }

        // Geometry skeleton: the source point and the sink-group box.
        let sources: Vec<Point> = terminals
            .iter()
            .filter(|t| t.role == ElementRole::Source)
            .map(|t| graph.node(t.node).center())
            .collect();
        let sinks: Vec<Point> = terminals
            .iter()
            .filter(|t| t.role != ElementRole::Source)
            .map(|t| graph.node(t.node).center())
            .collect();
        if sources.is_empty() || sinks.is_empty() {
            return Err(SproutError::InvalidConfig(
                "manual routing needs a source and sinks",
            ));
        }
        let source = sources[0];
        let sink_box = bounding_box(&sinks, self.config.tile_pitch_mm);

        // Scan a ladder of trunk widths and keep the best (widest
        // connected corridor that still fits the budget). A plain
        // bisection would mis-handle dense BGA fields, where *thin*
        // corridors disconnect (via keep-outs sever them) while wide
        // ones blow the budget — feasibility is not monotone in width.
        let outline = self.board.outline();
        let w_max =
            (outline.width().min(outline.height()) / 2.0).max(self.config.tile_pitch_mm * 2.0);
        let steps = 24usize;
        let mut best: Option<Subgraph> = None;
        for k in 0..steps {
            let w = self.config.tile_pitch_mm
                + (w_max - self.config.tile_pitch_mm) * k as f64 / (steps - 1) as f64;
            if let Some(sub) =
                self.try_width(&graph, &terminals, source, sink_box, w, area_budget_mm2)
            {
                if best.as_ref().is_none_or(|b| sub.area_mm2() > b.area_mm2()) {
                    best = Some(sub);
                }
            }
        }
        let mut sub = match best {
            Some(s) => s,
            None => {
                // Fall back to the thinnest corridors.
                self.try_width(
                    &graph,
                    &terminals,
                    source,
                    sink_box,
                    self.config.tile_pitch_mm,
                    area_budget_mm2,
                )
                .ok_or(SproutError::AreaBudgetTooSmall {
                    budget_mm2: area_budget_mm2,
                    seed_mm2: 0.0,
                })?
            }
        };

        // Trunk widths quantize in whole tile rows, which can leave a
        // sizeable chunk of the budget unused. A human pours the leftover
        // copper along the existing shape: dilate uniformly, preferring
        // tiles that keep the outline straight (2+ member neighbours).
        loop {
            let cell = graph.frame().dx * graph.frame().dy;
            let mut boundary: Vec<(usize, NodeId)> = sub
                .boundary(&graph)
                .into_iter()
                .map(|c| {
                    let member_neighbors = graph
                        .neighbors(c)
                        .iter()
                        .filter(|(n, _)| sub.contains(*n))
                        .count();
                    (member_neighbors, c)
                })
                .collect();
            boundary.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
            let mut added = 0usize;
            for &(_, c) in &boundary {
                if sub.area_mm2() + cell > area_budget_mm2 {
                    break;
                }
                sub.insert(&graph, c);
                added += 1;
            }
            if added == 0 || sub.area_mm2() + cell > area_budget_mm2 {
                break;
            }
        }

        let rail_current = self.board.net(net)?.current_a.max(1e-3);
        let pairs = injection_pairs(&terminals, self.config.pair_policy, rail_current);
        let nc = node_current(&graph, &sub, &pairs)?;
        let final_resistance_sq = nc.resistance_sq();
        let shape = sprout_core::backconv::back_convert(&graph, &sub);
        Ok(RouteResult {
            net,
            layer,
            shape,
            graph,
            subgraph: sub,
            terminals,
            pairs,
            resistance_history_sq: vec![final_resistance_sq],
            final_resistance_sq,
            timings: StageTimings::default(),
            diagnostics: sprout_core::recovery::RouteDiagnostics::default(),
        })
    }

    /// Builds the subgraph covered by a straight-or-L corridor of width
    /// `w` plus the sink pour, returning `None` when the terminals do
    /// not connect (e.g. a blockage cuts the corridor) or when no shape
    /// variant fits the budget.
    fn try_width(
        &self,
        graph: &sprout_core::RoutingGraph,
        terminals: &[sprout_core::tile::Terminal],
        source: Point,
        sink_box: Rect,
        w: f64,
        budget: f64,
    ) -> Option<Subgraph> {
        let variants = corridor_variants(source, sink_box, w);
        let terminal_nodes: Vec<NodeId> = terminals.iter().map(|t| t.node).collect();
        for rects in variants {
            let mut sub = Subgraph::new(graph);
            for t in terminals {
                sub.insert(graph, t.node);
                for &c in &t.covered {
                    sub.insert(graph, c);
                }
            }
            for (idx, node) in graph.nodes().iter().enumerate() {
                let c = node.center();
                if rects.iter().any(|r| r.contains_point(c)) {
                    sub.insert(graph, NodeId(idx as u32));
                }
            }
            if sub.area_mm2() <= budget && sub.connects(graph, &terminal_nodes) {
                return Some(sub);
            }
        }
        None
    }
}

fn bounding_box(points: &[Point], pad: f64) -> Rect {
    let mut min = points[0];
    let mut max = points[0];
    for &p in points {
        min = min.min(p);
        max = max.max(p);
    }
    Rect::new(min - Point::new(pad, pad), max + Point::new(pad, pad))
        .expect("padded box is non-degenerate")
}

/// The candidate regular shapes: sink pour + straight trunk, then the
/// two L-bend trunks.
fn corridor_variants(source: Point, sink_box: Rect, w: f64) -> Vec<Vec<Rect>> {
    let target = sink_box.center();
    let half = w / 2.0;
    let hband = |x0: f64, x1: f64, y: f64| {
        Rect::from_corners(
            Point::new(x0.min(x1) - half, y - half),
            Point::new(x0.max(x1) + half, y + half),
        )
        .ok()
    };
    let vband = |y0: f64, y1: f64, x: f64| {
        Rect::from_corners(
            Point::new(x - half, y0.min(y1) - half),
            Point::new(x + half, y0.max(y1) + half),
        )
        .ok()
    };
    let mut out = Vec::new();
    // Straight (dog-leg along the dominant axis then snap): horizontal
    // trunk at the source's y, then a vertical jog at the target's x.
    if let (Some(h), Some(v)) = (
        hband(source.x, target.x, source.y),
        vband(source.y, target.y, target.x),
    ) {
        out.push(vec![sink_box, h, v]);
    }
    // Vertical first, then horizontal.
    if let (Some(v), Some(h)) = (
        vband(source.y, target.y, source.x),
        hband(source.x, target.x, target.y),
    ) {
        out.push(vec![sink_box, v, h]);
    }
    // Diagonal-ish fallback: one wide horizontal band at the average y.
    let mid_y = 0.5 * (source.y + target.y);
    if let Some(h) = hband(source.x, target.x, mid_y) {
        if let (Some(v1), Some(v2)) = (
            vband(source.y, mid_y, source.x),
            vband(mid_y, target.y, target.x),
        ) {
            out.push(vec![sink_box, h, v1, v2]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprout_board::presets;
    use sprout_core::drc::check_route;

    fn config() -> ManualConfig {
        ManualConfig {
            tile_pitch_mm: 0.5,
            ..ManualConfig::default()
        }
    }

    #[test]
    fn manual_route_connects_and_fits_budget() {
        let board = presets::two_rail();
        let router = ManualRouter::new(&board, config());
        let (vdd1, _) = board.power_nets().next().unwrap();
        let result = router
            .route_net(vdd1, presets::TWO_RAIL_ROUTE_LAYER, 20.0)
            .unwrap();
        assert!(result.shape.area_mm2() <= 20.0);
        assert!(result.shape.area_mm2() > 5.0, "{}", result.shape.area_mm2());
        let nodes: Vec<NodeId> = result.terminals.iter().map(|t| t.node).collect();
        assert!(result.subgraph.connects(&result.graph, &nodes));
    }

    #[test]
    fn manual_route_is_drc_clean() {
        let board = presets::two_rail();
        let router = ManualRouter::new(&board, config());
        let (vdd1, _) = board.power_nets().next().unwrap();
        let result = router
            .route_net(vdd1, presets::TWO_RAIL_ROUTE_LAYER, 20.0)
            .unwrap();
        let v = check_route(
            &board,
            vdd1,
            presets::TWO_RAIL_ROUTE_LAYER,
            &result.shape,
            &[],
        )
        .unwrap();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn manual_shape_is_regular() {
        // Manual layouts use few, large rectangles: far fewer vertices
        // than a SPROUT shape of the same area.
        let board = presets::two_rail();
        let router = ManualRouter::new(&board, config());
        let (vdd1, _) = board.power_nets().next().unwrap();
        let result = router
            .route_net(vdd1, presets::TWO_RAIL_ROUTE_LAYER, 20.0)
            .unwrap();
        // Blocker polygons (run-merged rows + fragments) should compress
        // well for rectangle-based shapes.
        let blockers = result.shape.blocker_polygons().len();
        assert!(
            blockers < result.subgraph.order() / 2,
            "{blockers} polygons for {} tiles",
            result.subgraph.order()
        );
    }

    #[test]
    fn budget_validation() {
        let board = presets::two_rail();
        let router = ManualRouter::new(&board, config());
        let (vdd1, _) = board.power_nets().next().unwrap();
        assert!(router
            .route_net(vdd1, presets::TWO_RAIL_ROUTE_LAYER, -1.0)
            .is_err());
    }

    #[test]
    fn objective_reported() {
        let board = presets::two_rail();
        let router = ManualRouter::new(&board, config());
        let (vdd1, _) = board.power_nets().next().unwrap();
        let result = router
            .route_net(vdd1, presets::TWO_RAIL_ROUTE_LAYER, 22.0)
            .unwrap();
        assert!(result.final_resistance_sq > 0.0);
        assert!(result.final_resistance_sq.is_finite());
    }
}
