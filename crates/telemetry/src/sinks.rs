//! Recorder implementations: no-op, stderr pretty-printer, JSONL
//! writer, a fan-out tee, and an in-memory collector for tests.

use std::io::Write;
use std::sync::{Arc, Mutex};

use crate::json::Obj;
use crate::{Event, Recorder};

/// Discards every event. Useful for measuring instrumentation overhead
/// with the dispatch path exercised but no I/O.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record(&self, _event: &Event) {}
}

/// Verbosity of one event, for [`StderrSink`]'s level filter.
/// Ordered from most to least severe, so `level_of(e) <= threshold`
/// means "print".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Something broke: worker panics.
    Error,
    /// Degraded but recovering: retries, fallbacks, budget overruns.
    Warn,
    /// Pipeline shape: shallow spans (job/wave level).
    Info,
    /// Everything else: deep spans and routine points.
    Debug,
}

impl Level {
    /// Parses `error`/`warn`/`info`/`debug` (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// Classifies an event for the level filter. Spans carry no explicit
/// level, so the classification is by shape: panics are errors, the
/// recovery/fallback points are warnings, shallow spans (depth ≤ 1 —
/// jobs and waves) are info, and everything else is debug.
pub fn level_of(event: &Event) -> Level {
    match event {
        Event::Point { name, .. } => match *name {
            "worker_panic" => Level::Error,
            "retry"
            | "budget_overrun"
            | "solver_fallback"
            | "ladder_fallback"
            | "cg_not_converged"
            | "bicgstab_not_converged"
            | "edges_sanitized" => Level::Warn,
            _ => Level::Debug,
        },
        Event::SpanStart { depth, .. } | Event::SpanEnd { depth, .. } => {
            if *depth <= 1 {
                Level::Info
            } else {
                Level::Debug
            }
        }
    }
}

/// The process-wide threshold from `SPROUT_LOG` (parsed once);
/// unset or unparseable means [`Level::Debug`] — print everything,
/// preserving historical behavior.
fn env_level() -> Level {
    static ENV_LEVEL: std::sync::OnceLock<Level> = std::sync::OnceLock::new();
    *ENV_LEVEL.get_or_init(|| {
        std::env::var("SPROUT_LOG")
            .ok()
            .and_then(|s| Level::parse(&s))
            .unwrap_or(Level::Debug)
    })
}

/// Pretty-prints events to stderr as a depth-indented tree:
///
/// ```text
/// ▶ route net=vdd1 layer=0
///   ▶ grow
///   ◀ grow 12.4ms solves=31
///   · solver_fallback rung=cg
/// ◀ route 48.1ms
/// ```
///
/// Events are filtered by [`Level`]: an explicit threshold from
/// [`with_level`](StderrSink::with_level), or else the `SPROUT_LOG`
/// environment variable (`error`/`warn`/`info`/`debug`, default
/// `debug` = print everything).
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrSink {
    level: Option<Level>,
}

impl StderrSink {
    /// A sink whose threshold comes from `SPROUT_LOG`.
    pub fn new() -> StderrSink {
        StderrSink { level: None }
    }

    /// A sink with a fixed threshold, ignoring the environment.
    pub fn with_level(level: Level) -> StderrSink {
        StderrSink { level: Some(level) }
    }

    fn should_log(&self, event: &Event) -> bool {
        level_of(event) <= self.level.unwrap_or_else(env_level)
    }

    fn render(event: &Event) -> String {
        let mut line = String::new();
        let (marker, depth) = match event {
            Event::SpanStart { depth, .. } => ("\u{25b6}", *depth),
            Event::SpanEnd { depth, .. } => ("\u{25c0}", *depth),
            Event::Point { depth, .. } => ("\u{b7}", *depth),
        };
        for _ in 0..depth {
            line.push_str("  ");
        }
        line.push_str(marker);
        line.push(' ');
        line.push_str(event.name());
        if let Event::SpanEnd { elapsed_ns, .. } = event {
            line.push_str(&format!(" {:.1}ms", *elapsed_ns as f64 / 1e6));
        }
        for (k, v) in event.fields() {
            line.push_str(&format!(" {k}={v}"));
        }
        line
    }
}

impl Recorder for StderrSink {
    fn record(&self, event: &Event) {
        if self.should_log(event) {
            eprintln!("{}", Self::render(event));
        }
    }
}

/// Writes one JSON object per event, one per line, to any
/// `Write + Send` target (a file, stderr, an in-memory buffer).
///
/// Schema per line:
/// `{"ev":"span_start"|"span_end"|"point","name":...,"id":...,
///   "parent":...,"depth":...,"elapsed_ns":...,<fields...>}`
/// Field keys are emitted at the top level, so `jq '.rail'` works
/// directly.
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps `writer`; each event becomes one line.
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink {
            writer: Mutex::new(writer),
        }
    }

    /// Consumes the sink and returns the writer (flushing first).
    pub fn into_inner(self) -> W {
        let mut w = self.writer.into_inner().unwrap_or_else(|e| e.into_inner());
        let _ = w.flush();
        w
    }
}

/// Renders one event as a single JSONL line (no trailing newline).
pub fn event_to_json(event: &Event) -> String {
    let mut o = Obj::new();
    match event {
        Event::SpanStart {
            id,
            parent,
            name,
            depth,
            fields,
        } => {
            o.str("ev", "span_start")
                .str("name", name)
                .u64("id", *id)
                .u64("depth", *depth as u64);
            if let Some(p) = parent {
                o.u64("parent", *p);
            }
            for (k, v) in fields {
                o.value(k, v);
            }
        }
        Event::SpanEnd {
            id,
            name,
            depth,
            elapsed_ns,
            fields,
        } => {
            o.str("ev", "span_end")
                .str("name", name)
                .u64("id", *id)
                .u64("depth", *depth as u64)
                .u64("elapsed_ns", *elapsed_ns);
            for (k, v) in fields {
                o.value(k, v);
            }
        }
        Event::Point {
            name,
            parent,
            depth,
            fields,
        } => {
            o.str("ev", "point")
                .str("name", name)
                .u64("depth", *depth as u64);
            if let Some(p) = parent {
                o.u64("parent", *p);
            }
            for (k, v) in fields {
                o.value(k, v);
            }
        }
    }
    o.finish()
}

impl<W: Write + Send> Recorder for JsonlSink<W> {
    fn record(&self, event: &Event) {
        let line = event_to_json(event);
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let _ = w.flush();
    }
}

/// Forwards every event to each of a fixed set of recorders, in order.
///
/// Lets one scope feed multiple consumers at once — e.g. `--trace`
/// streaming to stderr while a `TraceSink` captures convergence
/// records for JSONL export.
pub struct TeeSink {
    sinks: Vec<Arc<dyn Recorder>>,
}

impl TeeSink {
    /// Wraps `sinks`; events are forwarded in the given order.
    pub fn new(sinks: Vec<Arc<dyn Recorder>>) -> TeeSink {
        TeeSink { sinks }
    }
}

impl Recorder for TeeSink {
    fn record(&self, event: &Event) {
        for s in &self.sinks {
            s.record(event);
        }
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

/// Collects every event in memory, in arrival order. The test sink:
/// assert on [`events`](MemorySink::events) after the scope closes.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Creates an empty collector.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Copies out everything recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Names of recorded events, in order.
    pub fn names(&self) -> Vec<&'static str> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|e| e.name())
            .collect()
    }

    /// Removes and returns everything recorded so far.
    pub fn drain(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect()
    }
}

impl Recorder for MemorySink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fields, Value};

    fn sample_start() -> Event {
        Event::SpanStart {
            id: 9,
            parent: Some(4),
            name: "grow",
            depth: 2,
            fields: vec![
                ("rail", Value::Str("vdd1".into())),
                ("layer", Value::U64(0)),
            ],
        }
    }

    #[test]
    fn jsonl_lines_are_flat_objects() {
        let line = event_to_json(&sample_start());
        assert_eq!(
            line,
            r#"{"ev":"span_start","name":"grow","id":9,"depth":2,"parent":4,"rail":"vdd1","layer":0}"#
        );
        let end = Event::SpanEnd {
            id: 9,
            name: "grow",
            depth: 2,
            elapsed_ns: 1_500_000,
            fields: vec![("solves", Value::U64(7))],
        };
        assert_eq!(
            event_to_json(&end),
            r#"{"ev":"span_end","name":"grow","id":9,"depth":2,"elapsed_ns":1500000,"solves":7}"#
        );
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let sink = JsonlSink::new(Vec::new());
        sink.record(&sample_start());
        sink.record(&Event::Point {
            name: "retry",
            parent: None,
            depth: 0,
            fields: Fields::new(),
        });
        let out = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with(r#"{"ev":"span_start""#));
        assert!(lines[1].starts_with(r#"{"ev":"point","name":"retry""#));
    }

    #[test]
    fn stderr_rendering_indents_by_depth() {
        let line = StderrSink::render(&sample_start());
        assert_eq!(line, "    \u{25b6} grow rail=vdd1 layer=0");
        let end = Event::SpanEnd {
            id: 9,
            name: "grow",
            depth: 1,
            elapsed_ns: 2_000_000,
            fields: Fields::new(),
        };
        assert_eq!(StderrSink::render(&end), "  \u{25c0} grow 2.0ms");
    }

    #[test]
    fn level_parsing_and_ordering() {
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse(" info "), Some(Level::Info));
        assert_eq!(Level::parse("verbose"), None);
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn events_classify_by_shape() {
        let point = |name: &'static str| Event::Point {
            name,
            parent: None,
            depth: 3,
            fields: Fields::new(),
        };
        assert_eq!(level_of(&point("worker_panic")), Level::Error);
        assert_eq!(level_of(&point("retry")), Level::Warn);
        assert_eq!(level_of(&point("ladder_fallback")), Level::Warn);
        assert_eq!(level_of(&point("grow_iter")), Level::Debug);
        // Shallow spans are info, deep spans debug.
        assert_eq!(level_of(&sample_start()), Level::Debug);
        let shallow = Event::SpanStart {
            id: 1,
            parent: None,
            name: "job",
            depth: 0,
            fields: Fields::new(),
        };
        assert_eq!(level_of(&shallow), Level::Info);
    }

    #[test]
    fn stderr_sink_filters_below_threshold() {
        let warn_only = StderrSink::with_level(Level::Warn);
        let retry = Event::Point {
            name: "retry",
            parent: None,
            depth: 2,
            fields: Fields::new(),
        };
        assert!(warn_only.should_log(&retry));
        assert!(!warn_only.should_log(&sample_start()));
        // Default (no env override in tests): print everything.
        assert!(StderrSink::with_level(Level::Debug).should_log(&sample_start()));
    }

    #[test]
    fn tee_sink_fans_out_to_every_branch() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let tee = TeeSink::new(vec![a.clone() as Arc<dyn Recorder>, b.clone()]);
        tee.record(&sample_start());
        tee.flush();
        assert_eq!(a.names(), ["grow"]);
        assert_eq!(b.names(), ["grow"]);
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let sink = MemorySink::new();
        sink.record(&sample_start());
        sink.record(&Event::Point {
            name: "p",
            parent: None,
            depth: 0,
            fields: Fields::new(),
        });
        assert_eq!(sink.names(), ["grow", "p"]);
        assert_eq!(sink.drain().len(), 2);
        assert!(sink.events().is_empty());
    }
}
