//! Prometheus text exposition (version 0.0.4), hand-rolled.
//!
//! The serve layer negotiates `GET /metrics` between the original JSON
//! body and this format; everything here is dependency-free string
//! assembly plus a small lint used by CI to prove the output actually
//! parses as exposition text.
//!
//! Only the subset the workspace emits is supported: `counter` and
//! `gauge` samples plus summary-style quantile lines derived from the
//! log2 [`Histogram`](crate::metrics::Histogram) buckets. Labels are
//! restricted to the `quantile` label summaries need.

use crate::metrics::{Histogram, Registry};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Maps an internal metric name (`serve.stage.grow_ms`) onto a valid
/// Prometheus metric name (`serve_stage_grow_ms`): `[a-zA-Z_:]` first,
/// `[a-zA-Z0-9_:]` after, everything else folded to `_`.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Formats a sample value: integers stay integral, floats keep their
/// shortest round-trip form, non-finite values become `NaN`/`+Inf`
/// (both valid exposition values).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_owned()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Incremental builder for one exposition document.
///
/// Family names are first-write-wins: appending a second metric that
/// sanitizes to an already-emitted name is a silent no-op. That keeps
/// the document scrapeable when hand-curated summaries and the
/// auto-exported [`Registry`] overlap on a name (exposition forbids
/// duplicate families).
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
    seen: HashSet<String>,
}

impl PromText {
    /// An empty document.
    pub fn new() -> PromText {
        PromText::default()
    }

    /// Claims `name` (and any derived sample suffixes); returns false
    /// if a family with that name was already emitted.
    fn claim(&mut self, name: &str, suffixes: &[&str]) -> bool {
        if self.seen.contains(name)
            || suffixes
                .iter()
                .any(|s| self.seen.contains(&format!("{name}{s}")))
        {
            return false;
        }
        self.seen.insert(name.to_owned());
        for s in suffixes {
            self.seen.insert(format!("{name}{s}"));
        }
        true
    }

    /// Appends a `counter` sample with its `# HELP`/`# TYPE` header.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) -> &mut PromText {
        let name = sanitize(name);
        if !self.claim(&name, &[]) {
            return self;
        }
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} counter");
        let _ = writeln!(self.out, "{name} {value}");
        self
    }

    /// Appends a `gauge` sample with its `# HELP`/`# TYPE` header.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) -> &mut PromText {
        let name = sanitize(name);
        if !self.claim(&name, &[]) {
            return self;
        }
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} gauge");
        let _ = writeln!(self.out, "{name} {}", fmt_value(value));
        self
    }

    /// Appends a `summary` family: one `{quantile="q"}` line per entry
    /// plus the conventional `_count` and `_sum` samples.
    pub fn summary(
        &mut self,
        name: &str,
        help: &str,
        quantiles: &[(f64, f64)],
        count: u64,
        sum: f64,
    ) -> &mut PromText {
        let name = sanitize(name);
        if !self.claim(&name, &["_count", "_sum"]) {
            return self;
        }
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} summary");
        for &(q, v) in quantiles {
            let _ = writeln!(
                self.out,
                "{name}{{quantile=\"{}\"}} {}",
                fmt_value(q),
                fmt_value(v)
            );
        }
        let _ = writeln!(self.out, "{name}_count {count}");
        let _ = writeln!(self.out, "{name}_sum {}", fmt_value(sum));
        self
    }

    /// Appends a summary derived from a log2 histogram: p50/p90/p99
    /// quantiles via [`Histogram::percentile`], plus count and sum.
    pub fn histogram_summary(&mut self, name: &str, help: &str, h: &Histogram) -> &mut PromText {
        let qs = [
            (0.5, h.percentile(50.0)),
            (0.9, h.percentile(90.0)),
            (0.99, h.percentile(99.0)),
        ];
        self.summary(name, help, &qs, h.count(), h.sum() as f64)
    }

    /// Appends every metric registered in `registry`, names prefixed
    /// with `prefix` (counters as counters, gauges as gauges,
    /// histograms as quantile summaries).
    pub fn registry(&mut self, prefix: &str, registry: &Registry) -> &mut PromText {
        let snap = registry.snapshot();
        for (name, value) in &snap.counters {
            self.counter(
                &format!("{prefix}{name}"),
                "workspace counter (sprout-telemetry registry)",
                *value,
            );
        }
        for (name, value) in &snap.gauges {
            self.gauge(
                &format!("{prefix}{name}"),
                "workspace gauge (sprout-telemetry registry)",
                *value as f64,
            );
        }
        registry.visit_histograms(|name, h| {
            self.histogram_summary(
                &format!("{prefix}{name}"),
                "workspace histogram (sprout-telemetry registry)",
                h,
            );
        });
        self
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Validates `text` as Prometheus exposition format: every line is a
/// comment (`# HELP` / `# TYPE` with a known type), blank, or a sample
/// `name{labels} value` with a well-formed name, balanced quoted
/// labels, and a parseable value. Each family may be `# TYPE`-declared
/// at most once — Prometheus aborts the whole scrape on duplicates.
/// Returns the first offending line.
pub fn lint(text: &str) -> Result<(), String> {
    let mut declared = HashSet::new();
    for (no, line) in text.lines().enumerate() {
        let err = |why: &str| Err(format!("line {}: {why}: {line:?}", no + 1));
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(t) = rest.strip_prefix("TYPE ") {
                let mut parts = t.split_whitespace();
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !valid_name(name) {
                    return err("bad metric name in TYPE comment");
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return err("unknown metric type");
                }
                if !declared.insert(name.to_owned()) {
                    return err("duplicate TYPE declaration for metric family");
                }
            }
            // HELP and free comments are unconstrained.
            continue;
        }
        // Sample line: name[{labels}] value [timestamp]
        let (name_labels, tail) = match line.split_once(|c: char| c.is_ascii_whitespace()) {
            Some(parts) => parts,
            None => return err("sample line has no value"),
        };
        let name = match name_labels.split_once('{') {
            Some((n, labels)) => {
                let Some(labels) = labels.strip_suffix('}') else {
                    return err("unterminated label set");
                };
                if labels.chars().filter(|&c| c == '"').count() % 2 != 0 {
                    return err("unbalanced quotes in labels");
                }
                n
            }
            None => name_labels,
        };
        if !valid_name(name) {
            return err("bad metric name");
        }
        let value = tail.split_whitespace().next().unwrap_or("");
        let ok = value.parse::<f64>().is_ok() || matches!(value, "+Inf" | "-Inf" | "NaN");
        if !ok {
            return err("unparseable sample value");
        }
    }
    Ok(())
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_folds_invalid_chars() {
        assert_eq!(sanitize("serve.stage.grow_ms"), "serve_stage_grow_ms");
        assert_eq!(sanitize("9lives"), "_lives");
        assert_eq!(sanitize(""), "_");
    }

    #[test]
    fn builder_output_passes_the_lint() {
        let mut p = PromText::new();
        p.counter("jobs_total", "accepted jobs", 7)
            .gauge("queue_depth", "queued jobs", 3.0)
            .summary(
                "latency_ms",
                "end-to-end latency",
                &[(0.5, 12.0), (0.99, 80.5)],
                42,
                512.25,
            );
        let h = Histogram::default();
        h.observe(3);
        h.observe(900);
        p.histogram_summary("queue.wait_ms", "queue wait", &h);
        let text = p.finish();
        lint(&text).expect("builder output must lint clean");
        assert!(text.contains("# TYPE jobs_total counter"));
        assert!(text.contains("latency_ms{quantile=\"0.5\"} 12"));
        assert!(text.contains("queue_wait_ms_count 2"));
    }

    #[test]
    fn lint_rejects_malformed_lines() {
        assert!(lint("9bad 1").is_err());
        assert!(lint("name{open 1").is_err());
        assert!(lint("name notanumber").is_err());
        assert!(lint("# TYPE ok flavor").is_err());
        assert!(lint("# HELP anything goes here\nok_name 4.5\n").is_ok());
        assert!(lint("x{quantile=\"0.5\"} +Inf").is_ok());
        assert!(lint("# TYPE x counter\nx 1\n# TYPE x counter\nx 2\n").is_err());
    }

    #[test]
    fn duplicate_families_are_skipped_first_write_wins() {
        let mut p = PromText::new();
        p.summary("wait_ms", "curated", &[(0.5, 7.0)], 1, 7.0);
        let h = Histogram::default();
        h.observe(1);
        p.histogram_summary("wait.ms", "registry shadow", &h) // sanitizes to wait_ms
            .counter("wait_ms_count", "would collide with summary suffix", 9)
            .counter("jobs_total", "kept", 2)
            .counter("jobs_total", "dropped", 5);
        let text = p.finish();
        lint(&text).expect("deduped output must lint clean");
        assert_eq!(text.matches("# TYPE wait_ms summary").count(), 1);
        assert!(text.contains("wait_ms{quantile=\"0.5\"} 7"));
        assert!(!text.contains("registry shadow"));
        assert!(!text.contains("would collide"));
        assert!(text.contains("jobs_total 2"));
        assert!(!text.contains("jobs_total 5"));
    }

    #[test]
    fn registry_rendering_lints_clean() {
        let r = Registry::new();
        r.counter("a.count").add(3);
        r.gauge("b.level").set(-2);
        r.histogram("c.ms").observe(17);
        let mut p = PromText::new();
        p.registry("sprout_", &r);
        let text = p.finish();
        lint(&text).expect("registry output must lint clean");
        assert!(text.contains("sprout_a_count 3"));
        assert!(text.contains("sprout_b_level -2"));
        assert!(text.contains("sprout_c_ms{quantile=\"0.99\"}"));
    }
}
