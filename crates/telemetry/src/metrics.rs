//! Lock-free typed metrics: counters, gauges, and log2 histograms.
//!
//! Metrics are always on — unlike spans they do not check for an
//! active recorder, because a relaxed atomic increment is cheaper than
//! the check would make worthwhile. Handles are registered once in a
//! global registry and cached at the call site by the [`counter!`],
//! [`gauge!`], and [`histogram!`] macros, so the hot path is a single
//! `fetch_add`.
//!
//! Snapshots ([`Registry::snapshot`]) are taken by run reports and
//! bench binaries; [`Registry::reset`] zeroes everything between
//! repetitions so per-run deltas are exact.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing count (solver fallbacks, boolean-op
/// calls, degenerate pieces dropped, …).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins signed level (active workers, queue depth, …).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta`.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of log2 buckets: values 0, 1, 2, 4, … 2^62, +∞.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket log2 histogram of `u64` samples (CG iteration
/// counts, span durations in µs, …). Bucket `i` holds samples whose
/// highest set bit is `i-1` (bucket 0 holds zeros), i.e. bucket
/// boundaries are powers of two.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a sample: 0 for 0, else `64 - leading_zeros`.
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&self, v: u64) {
        let idx = bucket_index(v).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wraps only past u64::MAX total).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Estimates the `p`-th percentile (0–100) from the log2 buckets.
    ///
    /// Returns the upper bound of the bucket containing the rank
    /// (clamped by the exact observed maximum), so the estimate is
    /// conservative: never below the true percentile, and at most one
    /// power of two above it. Returns 0.0 when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 100.0);
        // Rank of the percentile sample, 1-based (nearest-rank method).
        let rank = ((p / 100.0 * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets().iter().enumerate() {
            seen += b;
            if seen >= rank {
                // Bucket 0 holds zeros; bucket i holds [2^(i-1), 2^i - 1].
                let upper = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return upper.min(self.max()) as f64;
            }
        }
        self.max() as f64
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter name → value.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge name → level.
    pub gauges: BTreeMap<&'static str, i64>,
    /// Histogram name → (count, sum, max).
    pub histograms: BTreeMap<&'static str, (u64, u64, u64)>,
}

impl Snapshot {
    /// Counter value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Counter-wise difference against an earlier snapshot (saturating
    /// at zero), for per-run deltas without resetting.
    pub fn counter_delta(&self, earlier: &Snapshot, name: &str) -> u64 {
        self.counter(name).saturating_sub(earlier.counter(name))
    }
}

/// Holds named metric handles. Registration locks; reads and updates
/// do not.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl Registry {
    /// Creates an empty registry (tests; production uses [`global`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns the counter named `name`, creating it on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name).or_default().clone()
    }

    /// Returns the gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name).or_default().clone()
    }

    /// Returns the histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name).or_default().clone()
    }

    /// Visits every registered histogram with its live handle — the
    /// full-bucket view [`Snapshot`] deliberately flattens away, needed
    /// by quantile renderers such as [`crate::prom`].
    pub fn visit_histograms(&self, mut f: impl FnMut(&'static str, &Histogram)) {
        let map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        for (&name, h) in map.iter() {
            f(name, h);
        }
    }

    /// Copies every metric's current value.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(&k, v)| (k, v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(&k, v)| (k, v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(&k, v)| (k, (v.count(), v.sum(), v.max())))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Zeroes every registered metric (handles stay valid).
    pub fn reset(&self) {
        for c in self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            c.reset();
        }
        for g in self
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            g.reset();
        }
        for h in self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            h.reset();
        }
    }
}

/// The process-wide registry used by the instrumentation macros.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Increments (or adds to) a named global counter. The handle is
/// looked up once and cached at the call site.
///
/// ```
/// use sprout_telemetry::counter;
/// counter!("solver.fallbacks");
/// counter!("geom.pieces_dropped", 3);
/// ```
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        $crate::counter!($name, 1)
    }};
    ($name:literal, $n:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Counter>> =
            ::std::sync::OnceLock::new();
        HANDLE
            .get_or_init(|| $crate::metrics::global().counter($name))
            .add($n);
    }};
}

/// Sets a named global gauge.
///
/// ```
/// use sprout_telemetry::gauge;
/// gauge!("supervisor.workers", 4);
/// ```
#[macro_export]
macro_rules! gauge {
    ($name:literal, $v:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Gauge>> =
            ::std::sync::OnceLock::new();
        HANDLE
            .get_or_init(|| $crate::metrics::global().gauge($name))
            .set($v);
    }};
}

/// Records a sample in a named global histogram.
///
/// ```
/// use sprout_telemetry::histogram;
/// histogram!("cg.iterations", 17);
/// ```
#[macro_export]
macro_rules! histogram {
    ($name:literal, $v:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Histogram>> =
            ::std::sync::OnceLock::new();
        HANDLE
            .get_or_init(|| $crate::metrics::global().histogram($name))
            .observe($v);
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        let reg = Registry::new();
        let c = reg.counter("x");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(reg.counter("x").get(), 5, "same handle by name");
        reg.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_sets_and_adjusts() {
        let reg = Registry::new();
        let g = reg.gauge("level");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);

        let h = Histogram::default();
        for v in [0, 1, 3, 4, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 108);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 21.6).abs() < 1e-12);
        let b = h.buckets();
        assert_eq!(b[0], 1); // 0
        assert_eq!(b[1], 1); // 1
        assert_eq!(b[2], 1); // 3
        assert_eq!(b[3], 1); // 4
        assert_eq!(b[7], 1); // 100 (64..128)
    }

    #[test]
    fn percentile_on_empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.percentile(50.0), 0.0);
        assert_eq!(h.percentile(0.0), 0.0);
        assert_eq!(h.percentile(100.0), 0.0);
    }

    #[test]
    fn percentile_of_uniform_sample_is_bucket_upper_bound() {
        let h = Histogram::default();
        // 100 samples of 10 → every percentile lands in bucket 4
        // ([8, 15]), clamped by the exact max of 10.
        for _ in 0..100 {
            h.observe(10);
        }
        assert_eq!(h.percentile(1.0), 10.0);
        assert_eq!(h.percentile(50.0), 10.0);
        assert_eq!(h.percentile(99.0), 10.0);
    }

    #[test]
    fn percentile_separates_modes_across_buckets() {
        let h = Histogram::default();
        // 90 small samples (bucket 3: [4,7]) and 10 large (bucket 10:
        // [512,1023]). p50 must report the small mode, p99 the large.
        for _ in 0..90 {
            h.observe(5);
        }
        for _ in 0..10 {
            h.observe(600);
        }
        let p50 = h.percentile(50.0);
        assert!((4.0..=7.0).contains(&p50), "p50 {p50}");
        let p99 = h.percentile(99.0);
        assert!((512.0..=1023.0).contains(&p99), "p99 {p99}");
        // Tail percentile never exceeds the exact observed max.
        assert_eq!(h.percentile(100.0), 600.0);
    }

    #[test]
    fn percentile_is_conservative_never_below_true_value() {
        let h = Histogram::default();
        let samples: Vec<u64> = (1..=64).collect();
        for &s in &samples {
            h.observe(s);
        }
        for p in [10.0, 25.0, 50.0, 75.0, 90.0] {
            let rank = ((p / 100.0 * samples.len() as f64).ceil() as usize).max(1);
            let truth = samples[rank - 1] as f64;
            let est = h.percentile(p);
            assert!(est >= truth, "p{p}: est {est} < truth {truth}");
            assert!(est <= truth * 2.0, "p{p}: est {est} > 2x truth {truth}");
        }
    }

    #[test]
    fn percentile_handles_zeros_and_out_of_range_p() {
        let h = Histogram::default();
        h.observe(0);
        h.observe(0);
        h.observe(8);
        assert_eq!(h.percentile(50.0), 0.0, "majority of samples are zero");
        assert_eq!(h.percentile(-5.0), 0.0, "p clamps to 0");
        assert_eq!(h.percentile(250.0), 8.0, "p clamps to 100");
    }

    #[test]
    fn snapshot_and_delta() {
        let reg = Registry::new();
        reg.counter("a").add(2);
        let before = reg.snapshot();
        reg.counter("a").add(3);
        reg.gauge("g").set(-1);
        reg.histogram("h").observe(9);
        let after = reg.snapshot();
        assert_eq!(after.counter("a"), 5);
        assert_eq!(after.counter_delta(&before, "a"), 3);
        assert_eq!(after.counter_delta(&before, "missing"), 0);
        assert_eq!(after.gauges.get("g"), Some(&-1));
        assert_eq!(after.histograms.get("h"), Some(&(1, 9, 9)));
    }

    #[test]
    fn macros_hit_the_global_registry() {
        crate::counter!("test.macro.counter", 2);
        crate::gauge!("test.macro.gauge", 11);
        crate::histogram!("test.macro.hist", 5);
        let snap = global().snapshot();
        assert!(snap.counter("test.macro.counter") >= 2);
        assert_eq!(snap.gauges.get("test.macro.gauge"), Some(&11));
        assert!(snap.histograms.get("test.macro.hist").unwrap().0 >= 1);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let reg = Registry::new();
        let c = reg.counter("contended");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
