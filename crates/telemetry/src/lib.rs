//! # sprout-telemetry
//!
//! Zero-dependency structured observability for the SPROUT workspace:
//! hierarchical spans with monotonic timing, typed lock-free metrics,
//! a bounded event ring buffer, and pluggable sinks.
//!
//! The routing pipeline (available space → tiling → seed → SmartGrow →
//! SmartRefine → reheat → back conversion, §II of the paper) is a long
//! chain of numerical stages whose cost and quality the paper accounts
//! per stage (Table III, Fig. 12, §II-H). This crate is the measurement
//! substrate for that accounting: every stage, solver-ladder climb,
//! boolean-op call, supervisor wave, and checkpoint write can report
//! itself without printing, without allocating when nobody listens, and
//! without pulling a single external crate into the workspace.
//!
//! ## Model
//!
//! * [`Event`] — what instrumented code emits: span start/end pairs,
//!   instant [`Event::Point`]s, each carrying typed key/value
//!   [`Fields`].
//! * [`Recorder`] — where events go. The default is *nobody*: with no
//!   recorder installed, [`span`] and [`point`] skip field collection
//!   entirely and cost a thread-local read.
//! * Sinks — [`sinks::StderrSink`] (pretty tree for humans),
//!   [`sinks::JsonlSink`] (one JSON object per line for machines),
//!   [`sinks::MemorySink`] (test inspection), [`ring::RingSink`]
//!   (bounded in-process buffer, lossless until the cap).
//! * [`metrics`] — always-on lock-free counters/gauges/histograms,
//!   aggregated globally and snapshotted into run reports.
//!
//! ## Installation
//!
//! Recorders install two ways, mirroring the scope discipline of the
//! router's fault and cancel scopes:
//!
//! * [`RecorderScope::install`] — thread-local, innermost-wins; the
//!   right tool for tests and single-threaded runs.
//! * [`set_global`] — process-wide fallback used when no scope is
//!   active; the right tool for bench binaries. Code that spawns worker
//!   threads (the supervisor) captures [`current`] and re-installs it
//!   inside each worker so spans keep flowing.
//!
//! ## Example
//!
//! ```
//! use sprout_telemetry::{self as telemetry, sinks::MemorySink, Event, RecorderScope};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MemorySink::new());
//! {
//!     let _scope = RecorderScope::install(sink.clone());
//!     let mut outer = telemetry::span("grow").field("rail", 1u64).enter();
//!     {
//!         let _inner = telemetry::span("solve").enter();
//!     }
//!     outer.record("solves", 42u64);
//! }
//! let events = sink.events();
//! assert_eq!(events.len(), 4); // two starts, two ends
//! match &events[1] {
//!     Event::SpanStart { name, depth, .. } => {
//!         assert_eq!(*name, "solve");
//!         assert_eq!(*depth, 1); // nested under `grow`
//!     }
//!     other => panic!("expected inner start, got {other:?}"),
//! }
//! ```

pub mod json;
pub mod metrics;
pub mod prof;
pub mod prom;
pub mod ring;
pub mod sinks;

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// A typed field value attached to spans and points.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, ids, sizes).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (times, areas, residuals).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Text (labels, reasons).
    Str(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v:.3}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => f.write_str(v),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Ordered key/value pairs attached to an event.
pub type Fields = Vec<(&'static str, Value)>;

/// One telemetry event.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Event {
    /// A span opened.
    SpanStart {
        /// Process-unique span id.
        id: u64,
        /// Enclosing span on the same thread, if any.
        parent: Option<u64>,
        /// Span name (a pipeline stage, a job phase, …).
        name: &'static str,
        /// Nesting depth at open (0 = root).
        depth: usize,
        /// Entry fields.
        fields: Fields,
    },
    /// A span closed.
    SpanEnd {
        /// Id from the matching [`Event::SpanStart`].
        id: u64,
        /// Span name, repeated so sinks need not join.
        name: &'static str,
        /// Nesting depth at close (matches the start's depth).
        depth: usize,
        /// Monotonic wall time between start and end (ns).
        elapsed_ns: u64,
        /// Exit fields recorded via [`SpanGuard::record`].
        fields: Fields,
    },
    /// An instant event (a retry, a fallback, a checkpoint written).
    Point {
        /// Event name.
        name: &'static str,
        /// Enclosing span on the same thread, if any.
        parent: Option<u64>,
        /// Nesting depth (0 = outside all spans).
        depth: usize,
        /// Payload.
        fields: Fields,
    },
}

impl Event {
    /// The event's name.
    pub fn name(&self) -> &'static str {
        match self {
            Event::SpanStart { name, .. }
            | Event::SpanEnd { name, .. }
            | Event::Point { name, .. } => name,
        }
    }

    /// The event's fields.
    pub fn fields(&self) -> &Fields {
        match self {
            Event::SpanStart { fields, .. }
            | Event::SpanEnd { fields, .. }
            | Event::Point { fields, .. } => fields,
        }
    }

    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields()
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }
}

/// Where events go. Implementations must be cheap and non-blocking —
/// they are called from routing hot paths (though only between stages
/// and solves, never inside inner numeric loops).
pub trait Recorder: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &Event);
    /// Flushes buffered output (JSONL writers). Default: no-op.
    fn flush(&self) {}
}

static GLOBAL_ACTIVE: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

fn global_slot() -> &'static RwLock<Option<Arc<dyn Recorder>>> {
    static SLOT: std::sync::OnceLock<RwLock<Option<Arc<dyn Recorder>>>> =
        std::sync::OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

thread_local! {
    static SCOPED: RefCell<Vec<Arc<dyn Recorder>>> = const { RefCell::new(Vec::new()) };
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Installs (or with `None`, removes) the process-wide fallback
/// recorder. Scoped recorders take precedence on their threads.
pub fn set_global(recorder: Option<Arc<dyn Recorder>>) {
    let mut slot = global_slot().write().unwrap_or_else(|e| e.into_inner());
    GLOBAL_ACTIVE.store(recorder.is_some(), Ordering::Release);
    *slot = recorder;
}

/// The recorder active on this thread: the innermost
/// [`RecorderScope`], else the global one, else `None`.
pub fn current() -> Option<Arc<dyn Recorder>> {
    let scoped = SCOPED.with(|s| s.borrow().last().cloned());
    if scoped.is_some() {
        return scoped;
    }
    if !GLOBAL_ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    global_slot()
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

/// `true` when any recorder would receive events from this thread.
pub fn active() -> bool {
    SCOPED.with(|s| !s.borrow().is_empty()) || GLOBAL_ACTIVE.load(Ordering::Acquire)
}

/// Installs a recorder on the current thread for the guard's lifetime.
/// Scopes nest; the innermost wins. Worker-spawning code (the routing
/// supervisor) captures [`current`] before spawning and re-installs it
/// in each worker so spans keep flowing across thread boundaries.
pub struct RecorderScope(());

impl RecorderScope {
    /// Installs `recorder`; deactivates when the guard drops.
    pub fn install(recorder: Arc<dyn Recorder>) -> RecorderScope {
        SCOPED.with(|s| s.borrow_mut().push(recorder));
        RecorderScope(())
    }
}

impl Drop for RecorderScope {
    fn drop(&mut self) {
        SCOPED.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Builder for a span. Created by [`span`]; call
/// [`field`](SpanBuilder::field) to attach entry fields and
/// [`enter`](SpanBuilder::enter) to start timing.
#[must_use = "a span only starts when .enter() is called"]
pub struct SpanBuilder {
    name: &'static str,
    recorder: Option<Arc<dyn Recorder>>,
    fields: Fields,
}

impl SpanBuilder {
    /// Attaches an entry field (skipped entirely when no recorder is
    /// active).
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        if self.recorder.is_some() {
            self.fields.push((key, value.into()));
        }
        self
    }

    /// Starts the span: emits [`Event::SpanStart`] and returns a guard
    /// that emits [`Event::SpanEnd`] with monotonic elapsed time when
    /// dropped.
    #[must_use = "bind the guard — dropping it immediately closes the span"]
    pub fn enter(self) -> SpanGuard {
        let Some(recorder) = self.recorder else {
            return SpanGuard { active: None };
        };
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let (parent, depth) = SPAN_STACK.with(|s| {
            let s = s.borrow();
            (s.last().copied(), s.len())
        });
        recorder.record(&Event::SpanStart {
            id,
            parent,
            name: self.name,
            depth,
            fields: self.fields,
        });
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        SpanGuard {
            active: Some(ActiveSpan {
                id,
                name: self.name,
                depth,
                recorder,
                start: Instant::now(),
                exit_fields: Vec::new(),
            }),
        }
    }
}

struct ActiveSpan {
    id: u64,
    name: &'static str,
    depth: usize,
    recorder: Arc<dyn Recorder>,
    start: Instant,
    exit_fields: Fields,
}

/// An open span. Dropping it (including during unwinding) closes the
/// span and emits the end event with its monotonic duration.
#[must_use = "bind the guard — dropping it immediately closes the span"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Attaches an exit field, reported on the span's end event.
    pub fn record(&mut self, key: &'static str, value: impl Into<Value>) {
        if let Some(a) = &mut self.active {
            a.exit_fields.push((key, value.into()));
        }
    }

    /// `true` when a recorder is listening (lets callers skip expensive
    /// field computation).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        // Pop this span; tolerate out-of-order drops by removing the
        // matching id wherever it sits (never panics during unwind).
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if s.last() == Some(&a.id) {
                s.pop();
            } else if let Some(pos) = s.iter().rposition(|&x| x == a.id) {
                s.remove(pos);
            }
        });
        a.recorder.record(&Event::SpanEnd {
            id: a.id,
            name: a.name,
            depth: a.depth,
            elapsed_ns: a.start.elapsed().as_nanos() as u64,
            fields: a.exit_fields,
        });
    }
}

/// Opens a span builder. With no recorder active this is a thread-local
/// read and the returned guard does nothing.
pub fn span(name: &'static str) -> SpanBuilder {
    SpanBuilder {
        name,
        recorder: current(),
        fields: Vec::new(),
    }
}

/// Builder for an instant event. Created by [`point`]; call
/// [`emit`](PointBuilder::emit) to send it.
#[must_use = "a point is only recorded when .emit() is called"]
pub struct PointBuilder {
    name: &'static str,
    recorder: Option<Arc<dyn Recorder>>,
    fields: Fields,
}

impl PointBuilder {
    /// Attaches a field (skipped when no recorder is active).
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        if self.recorder.is_some() {
            self.fields.push((key, value.into()));
        }
        self
    }

    /// Emits the event to the active recorder, tagged with the current
    /// span context.
    pub fn emit(self) {
        let Some(recorder) = self.recorder else {
            return;
        };
        let (parent, depth) = SPAN_STACK.with(|s| {
            let s = s.borrow();
            (s.last().copied(), s.len())
        });
        recorder.record(&Event::Point {
            name: self.name,
            parent,
            depth,
            fields: self.fields,
        });
    }
}

/// Opens an instant-event builder (a retry, a solver fallback, a
/// checkpoint written). Free when no recorder is active.
pub fn point(name: &'static str) -> PointBuilder {
    PointBuilder {
        name,
        recorder: current(),
        fields: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::sinks::MemorySink;
    use super::*;

    #[test]
    fn no_recorder_means_no_events_and_inert_guards() {
        assert!(current().is_none() || GLOBAL_ACTIVE.load(Ordering::Acquire));
        let mut g = span("idle").field("k", 1u64).enter();
        assert!(!g.is_recording());
        g.record("x", 2u64);
        point("nothing").field("y", 3u64).emit();
        drop(g);
        // Span stack stays empty: the inert guard never pushed.
        SPAN_STACK.with(|s| assert!(s.borrow().is_empty()));
    }

    #[test]
    fn spans_nest_and_carry_fields() {
        let sink = Arc::new(MemorySink::new());
        {
            let _scope = RecorderScope::install(sink.clone());
            let mut outer = span("outer").field("rail", 7u64).enter();
            point("mid").field("why", "because").emit();
            {
                let _inner = span("inner").enter();
            }
            outer.record("solves", 3u64);
        }
        let events = sink.events();
        assert_eq!(events.len(), 5);
        let (outer_id, outer_depth) = match &events[0] {
            Event::SpanStart {
                id,
                name: "outer",
                depth,
                parent: None,
                fields,
            } => {
                assert_eq!(fields[0], ("rail", Value::U64(7)));
                (*id, *depth)
            }
            other => panic!("bad first event {other:?}"),
        };
        assert_eq!(outer_depth, 0);
        match &events[1] {
            Event::Point {
                name: "mid",
                parent,
                depth,
                ..
            } => {
                assert_eq!(*parent, Some(outer_id));
                assert_eq!(*depth, 1);
            }
            other => panic!("bad point {other:?}"),
        }
        match &events[2] {
            Event::SpanStart {
                name: "inner",
                parent,
                depth,
                ..
            } => {
                assert_eq!(*parent, Some(outer_id));
                assert_eq!(*depth, 1);
            }
            other => panic!("bad inner start {other:?}"),
        }
        match &events[4] {
            Event::SpanEnd {
                id,
                name: "outer",
                fields,
                ..
            } => {
                assert_eq!(*id, outer_id);
                assert_eq!(fields[0], ("solves", Value::U64(3)));
            }
            other => panic!("bad outer end {other:?}"),
        }
    }

    #[test]
    fn scoped_recorder_wins_over_global_and_pops_cleanly() {
        let global = Arc::new(MemorySink::new());
        let scoped = Arc::new(MemorySink::new());
        set_global(Some(global.clone()));
        {
            let _scope = RecorderScope::install(scoped.clone());
            let _g = span("scoped-only").enter();
        }
        {
            let _g = span("global-only").enter();
        }
        set_global(None);
        assert!(scoped.events().iter().all(|e| e.name() == "scoped-only"));
        assert!(global.events().iter().any(|e| e.name() == "global-only"));
        assert!(global.events().iter().all(|e| e.name() != "scoped-only"));
    }

    #[test]
    fn elapsed_is_monotonic_and_positive() {
        let sink = Arc::new(MemorySink::new());
        {
            let _scope = RecorderScope::install(sink.clone());
            let _g = span("timed").enter();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let events = sink.events();
        match &events[1] {
            Event::SpanEnd { elapsed_ns, .. } => assert!(*elapsed_ns >= 1_000_000),
            other => panic!("expected end, got {other:?}"),
        }
    }

    #[test]
    fn value_conversions_and_lookup() {
        let sink = Arc::new(MemorySink::new());
        {
            let _scope = RecorderScope::install(sink.clone());
            point("p")
                .field("u", 1usize)
                .field("i", -2i64)
                .field("f", 0.5f64)
                .field("b", true)
                .field("s", "text")
                .emit();
        }
        let events = sink.events();
        let e = &events[0];
        assert_eq!(e.field("u"), Some(&Value::U64(1)));
        assert_eq!(e.field("i"), Some(&Value::I64(-2)));
        assert_eq!(e.field("f"), Some(&Value::F64(0.5)));
        assert_eq!(e.field("b"), Some(&Value::Bool(true)));
        assert_eq!(e.field("s"), Some(&Value::Str("text".into())));
        assert_eq!(e.field("missing"), None);
    }
}
