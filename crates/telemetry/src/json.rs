//! Minimal hand-rolled JSON emission and parsing.
//!
//! The workspace is dependency-free by design, so sinks and run
//! reports build their JSON with this module instead of serde. Output
//! is always a single line per object — the JSONL contract. The
//! [`parse`] half exists so tools (the perf-baseline gate, report
//! post-processing) can read those artifacts back without serde.

use std::fmt::Write as _;

use crate::Value;

/// Escapes `s` into `out` as JSON string contents (no surrounding
/// quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Formats an `f64` as a JSON number. JSON has no NaN/Infinity, so
/// non-finite values map to `null`.
pub fn fmt_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Incremental single-line JSON object builder.
///
/// ```
/// use sprout_telemetry::json::Obj;
/// let mut o = Obj::new();
/// o.str("name", "grow").u64("rail", 1);
/// assert_eq!(o.finish(), r#"{"name":"grow","rail":1}"#);
/// ```
#[derive(Debug)]
pub struct Obj {
    buf: String,
    any: bool,
}

impl Default for Obj {
    fn default() -> Self {
        Self::new()
    }
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Obj {
        Obj {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, key: &str) -> &mut String {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
        &mut self.buf
    }

    /// Adds a string member.
    pub fn str(&mut self, key: &str, v: &str) -> &mut Obj {
        let buf = self.key(key);
        buf.push('"');
        escape_into(buf, v);
        buf.push('"');
        self
    }

    /// Adds an unsigned-integer member.
    pub fn u64(&mut self, key: &str, v: u64) -> &mut Obj {
        let buf = self.key(key);
        let _ = write!(buf, "{v}");
        self
    }

    /// Adds a signed-integer member.
    pub fn i64(&mut self, key: &str, v: i64) -> &mut Obj {
        let buf = self.key(key);
        let _ = write!(buf, "{v}");
        self
    }

    /// Adds a float member (`null` when non-finite).
    pub fn f64(&mut self, key: &str, v: f64) -> &mut Obj {
        let buf = self.key(key);
        fmt_f64(buf, v);
        self
    }

    /// Adds a boolean member.
    pub fn bool(&mut self, key: &str, v: bool) -> &mut Obj {
        let buf = self.key(key);
        buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a pre-rendered JSON value verbatim (nested object/array).
    pub fn raw(&mut self, key: &str, v: &str) -> &mut Obj {
        let buf = self.key(key);
        buf.push_str(v);
        self
    }

    /// Adds a typed telemetry [`Value`].
    pub fn value(&mut self, key: &str, v: &Value) -> &mut Obj {
        match v {
            Value::U64(x) => self.u64(key, *x),
            Value::I64(x) => self.i64(key, *x),
            Value::F64(x) => self.f64(key, *x),
            Value::Bool(x) => self.bool(key, *x),
            Value::Str(x) => self.str(key, x),
        }
    }

    /// Closes the object and returns the rendered line (no trailing
    /// newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Renders an iterator of pre-rendered JSON values as an array.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

/// Renders an iterator of plain strings as a JSON array of strings.
pub fn str_array<'a, I: IntoIterator<Item = &'a str>>(items: I) -> String {
    array(items.into_iter().map(|s| {
        let mut buf = String::from("\"");
        escape_into(&mut buf, s);
        buf.push('"');
        buf
    }))
}

/// A parsed JSON value.
///
/// Numbers are kept as `f64`; integral values round-trip exactly up to
/// 2^53, which covers every count and millisecond figure the pipeline
/// emits.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key, or `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object members.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parses a complete JSON document. Trailing content is an error.
///
/// ```
/// use sprout_telemetry::json::parse;
/// let v = parse(r#"{"a":[1,2],"b":"x"}"#).unwrap();
/// assert_eq!(v.get("b").and_then(|b| b.as_str()), Some("x"));
/// ```
///
/// # Errors
///
/// Returns a human-readable description with a byte offset on
/// malformed input.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the longest escape-free ASCII/UTF-8 run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                out.push_str(run);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("unterminated escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| {
                                    format!("truncated \\u escape at byte {}", self.pos)
                                })?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("unknown escape at byte {}", self.pos - 1)),
                    }
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_controls_and_quotes() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut o = Obj::new();
        o.f64("nan", f64::NAN)
            .f64("inf", f64::INFINITY)
            .f64("ok", 1.5);
        assert_eq!(o.finish(), r#"{"nan":null,"inf":null,"ok":1.5}"#);
    }

    #[test]
    fn builder_chains_all_types() {
        let mut o = Obj::new();
        o.str("s", "x")
            .u64("u", 2)
            .i64("i", -3)
            .bool("b", false)
            .raw("arr", &str_array(["a", "b"]));
        assert_eq!(
            o.finish(),
            r#"{"s":"x","u":2,"i":-3,"b":false,"arr":["a","b"]}"#
        );
    }

    #[test]
    fn typed_values_render() {
        let mut o = Obj::new();
        o.value("v", &Value::Str("q\"q".into()));
        assert_eq!(o.finish(), r#"{"v":"q\"q"}"#);
    }

    #[test]
    fn parse_round_trips_builder_output() {
        let mut o = Obj::new();
        o.str("name", "grow \"fast\"\n")
            .u64("solves", 42)
            .f64("ms", 1.25)
            .bool("ok", true)
            .raw("curve", &array(["1", "0.5", "0.01"].map(String::from)));
        let v = parse(&o.finish()).unwrap();
        assert_eq!(
            v.get("name").and_then(Json::as_str),
            Some("grow \"fast\"\n")
        );
        assert_eq!(v.get("solves").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("ms").and_then(Json::as_f64), Some(1.25));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        let curve = v.get("curve").and_then(Json::as_array).unwrap();
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[2].as_f64(), Some(0.01));
    }

    #[test]
    fn parse_handles_nesting_whitespace_and_literals() {
        let v = parse(" { \"a\" : [ 1 , { \"b\" : null } , -2.5e1 ] , \"t\" : false } ").unwrap();
        let a = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].get("b"), Some(&Json::Null));
        assert_eq!(a[2].as_f64(), Some(-25.0));
        assert_eq!(v.get("t"), Some(&Json::Bool(false)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse(r#"{"a":1} extra"#).is_err());
        assert!(parse(r#"["unterminated"#).is_err());
        assert!(parse("01a").is_err());
    }

    #[test]
    fn parse_decodes_escapes() {
        let v = parse(r#""a\"b\\c\ndA\t€""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA\t\u{20ac}"));
        let u = parse("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(u.as_str(), Some("A\u{e9}"));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
    }
}
