//! Minimal hand-rolled JSON emission.
//!
//! The workspace is dependency-free by design, so sinks and run
//! reports build their JSON with this module instead of serde. Output
//! is always a single line per object — the JSONL contract.

use std::fmt::Write as _;

use crate::Value;

/// Escapes `s` into `out` as JSON string contents (no surrounding
/// quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Formats an `f64` as a JSON number. JSON has no NaN/Infinity, so
/// non-finite values map to `null`.
pub fn fmt_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Incremental single-line JSON object builder.
///
/// ```
/// use sprout_telemetry::json::Obj;
/// let mut o = Obj::new();
/// o.str("name", "grow").u64("rail", 1);
/// assert_eq!(o.finish(), r#"{"name":"grow","rail":1}"#);
/// ```
#[derive(Debug)]
pub struct Obj {
    buf: String,
    any: bool,
}

impl Default for Obj {
    fn default() -> Self {
        Self::new()
    }
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Obj {
        Obj {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, key: &str) -> &mut String {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
        &mut self.buf
    }

    /// Adds a string member.
    pub fn str(&mut self, key: &str, v: &str) -> &mut Obj {
        let buf = self.key(key);
        buf.push('"');
        escape_into(buf, v);
        buf.push('"');
        self
    }

    /// Adds an unsigned-integer member.
    pub fn u64(&mut self, key: &str, v: u64) -> &mut Obj {
        let buf = self.key(key);
        let _ = write!(buf, "{v}");
        self
    }

    /// Adds a signed-integer member.
    pub fn i64(&mut self, key: &str, v: i64) -> &mut Obj {
        let buf = self.key(key);
        let _ = write!(buf, "{v}");
        self
    }

    /// Adds a float member (`null` when non-finite).
    pub fn f64(&mut self, key: &str, v: f64) -> &mut Obj {
        let buf = self.key(key);
        fmt_f64(buf, v);
        self
    }

    /// Adds a boolean member.
    pub fn bool(&mut self, key: &str, v: bool) -> &mut Obj {
        let buf = self.key(key);
        buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a pre-rendered JSON value verbatim (nested object/array).
    pub fn raw(&mut self, key: &str, v: &str) -> &mut Obj {
        let buf = self.key(key);
        buf.push_str(v);
        self
    }

    /// Adds a typed telemetry [`Value`].
    pub fn value(&mut self, key: &str, v: &Value) -> &mut Obj {
        match v {
            Value::U64(x) => self.u64(key, *x),
            Value::I64(x) => self.i64(key, *x),
            Value::F64(x) => self.f64(key, *x),
            Value::Bool(x) => self.bool(key, *x),
            Value::Str(x) => self.str(key, x),
        }
    }

    /// Closes the object and returns the rendered line (no trailing
    /// newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Renders an iterator of pre-rendered JSON values as an array.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

/// Renders an iterator of plain strings as a JSON array of strings.
pub fn str_array<'a, I: IntoIterator<Item = &'a str>>(items: I) -> String {
    array(items.into_iter().map(|s| {
        let mut buf = String::from("\"");
        escape_into(&mut buf, s);
        buf.push('"');
        buf
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_controls_and_quotes() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut o = Obj::new();
        o.f64("nan", f64::NAN)
            .f64("inf", f64::INFINITY)
            .f64("ok", 1.5);
        assert_eq!(o.finish(), r#"{"nan":null,"inf":null,"ok":1.5}"#);
    }

    #[test]
    fn builder_chains_all_types() {
        let mut o = Obj::new();
        o.str("s", "x")
            .u64("u", 2)
            .i64("i", -3)
            .bool("b", false)
            .raw("arr", &str_array(["a", "b"]));
        assert_eq!(
            o.finish(),
            r#"{"s":"x","u":2,"i":-3,"b":false,"arr":["a","b"]}"#
        );
    }

    #[test]
    fn typed_values_render() {
        let mut o = Obj::new();
        o.value("v", &Value::Str("q\"q".into()));
        assert_eq!(o.finish(), r#"{"v":"q\"q"}"#);
    }
}
