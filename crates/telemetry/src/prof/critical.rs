//! Critical-path analysis over the supervisor wave DAG and the
//! machine-readable [`ScalingDiagnosis`].
//!
//! The supervisor executes rails in dependency *waves*: every rail in
//! wave `w` may run in parallel, but wave `w+1` cannot start before
//! wave `w` finishes. The longest rail of each wave is therefore on
//! the critical path no matter how many threads exist, and
//!
//! ```text
//! wall = critical_path + overhead
//! ```
//!
//! holds by construction (`overhead` is everything the wave structure
//! does not force: scheduling, result handoff, allocator pressure,
//! lock waits, telemetry). [`diagnose`] computes the decomposition for
//! one profiled run; [`explain_gap`] subtracts two diagnoses — e.g.
//! 1 thread vs 4 — and names where the extra wall time went, which is
//! exactly the question behind the stacked workload's negative scaling
//! in `BENCH_supervisor.json`.

use super::chrome::exclusive_by_name;
use super::contention::{ContentionSnapshot, LockRecord};
use super::timeline::{SliceKind, Timeline};
use crate::json::{self, Obj};

/// Milliseconds from nanoseconds, rounded to 1 µs for stable JSON.
fn ms(ns: u64) -> f64 {
    (ns as f64 / 1e3).round() / 1e3
}

fn delta_ms(cur: u64, base: u64) -> f64 {
    (cur as f64 - base as f64) / 1e6
}

/// One wave's cost on the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaveCost {
    /// Wave index (from the rail spans' `wave` field).
    pub wave: u64,
    /// Longest rail in the wave — its critical-path contribution.
    pub longest_ns: u64,
    /// Sum of all rail durations in the wave (parallelizable work).
    pub sum_ns: u64,
    /// Rails in the wave.
    pub rails: u64,
}

/// The wall/critical/work/overhead decomposition of one profiled run.
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    /// End-to-end duration (the `job` span, or the timeline extent).
    pub wall_ns: u64,
    /// Σ per-wave longest rail — the serialized lower bound.
    pub critical_ns: u64,
    /// Σ all rail durations — total parallelizable work.
    pub work_ns: u64,
    /// `wall - critical`: time the wave structure did not force.
    pub overhead_ns: u64,
    /// Per-wave breakdown, ordered by wave index.
    pub waves: Vec<WaveCost>,
}

impl CriticalPath {
    /// `critical / wall` — near 1.0 means threads cannot help.
    pub fn critical_fraction(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.critical_ns as f64 / self.wall_ns as f64
        }
    }
}

/// Computes the wave-DAG critical path of a drained timeline.
///
/// Wall time is the longest `job` span (falling back to the timeline
/// extent when no job span survived eviction). Rails are grouped by
/// their captured `wave` field across all threads. A timeline with no
/// rail spans is treated as fully serialized: `critical = wall`.
pub fn critical_path(t: &Timeline) -> CriticalPath {
    let mut wall_ns = 0u64;
    let mut waves: Vec<WaveCost> = Vec::new();
    for th in &t.threads {
        for s in &th.slices {
            if s.kind != SliceKind::Span {
                continue;
            }
            if s.name == "job" {
                wall_ns = wall_ns.max(s.dur_ns);
            } else if s.name == "rail" {
                let wave = s.wave.unwrap_or(0);
                let entry = match waves.iter_mut().find(|w| w.wave == wave) {
                    Some(w) => w,
                    None => {
                        waves.push(WaveCost {
                            wave,
                            longest_ns: 0,
                            sum_ns: 0,
                            rails: 0,
                        });
                        waves.last_mut().expect("just pushed")
                    }
                };
                entry.longest_ns = entry.longest_ns.max(s.dur_ns);
                entry.sum_ns += s.dur_ns;
                entry.rails += 1;
            }
        }
    }
    waves.sort_by_key(|w| w.wave);
    if wall_ns == 0 {
        let (lo, hi) = t.extent_ns();
        wall_ns = hi.saturating_sub(lo);
    }
    let critical_ns = if waves.is_empty() {
        wall_ns
    } else {
        waves.iter().map(|w| w.longest_ns).sum::<u64>().min(wall_ns)
    };
    CriticalPath {
        wall_ns,
        critical_ns,
        work_ns: waves.iter().map(|w| w.sum_ns).sum(),
        overhead_ns: wall_ns.saturating_sub(critical_ns),
        waves,
    }
}

/// One span name's exclusive cost in the stage leaderboard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageCost {
    /// Span name (`tile`, `grow`, `refine`, ...).
    pub name: &'static str,
    /// Completed spans with this name.
    pub count: u64,
    /// Exclusive time summed over those spans.
    pub excl_ns: u64,
    /// Exclusive allocations attributed to the name.
    pub allocs: u64,
    /// Exclusive allocation bytes attributed to the name.
    pub alloc_bytes: u64,
}

/// Machine-readable verdict on where a run's wall time went: the
/// critical-path decomposition plus contended-lock, stage-self-time,
/// and allocation-hotspot leaderboards.
#[derive(Debug, Clone, Default)]
pub struct ScalingDiagnosis {
    /// Worker thread count the run used.
    pub threads: usize,
    /// End-to-end wall time.
    pub wall_ns: u64,
    /// Serialized lower bound from the wave DAG.
    pub critical_ns: u64,
    /// Total parallelizable rail work.
    pub work_ns: u64,
    /// `wall - critical`.
    pub overhead_ns: u64,
    /// Nanoseconds blocked across all profiled locks (run delta).
    pub lock_wait_ns: u64,
    /// Worst locks by blocked time (at most 5).
    pub top_locks: Vec<LockRecord>,
    /// Hottest span names by exclusive time (at most 8).
    pub stages: Vec<StageCost>,
    /// Worst span names by exclusive allocation bytes (at most 5).
    pub alloc_hotspots: Vec<StageCost>,
    /// Total allocations attributed across the timeline.
    pub total_allocs: u64,
    /// Total allocation bytes attributed across the timeline.
    pub total_alloc_bytes: u64,
    /// Slices lost to ring eviction or drain races.
    pub slices_dropped: u64,
}

impl ScalingDiagnosis {
    /// `critical / wall`.
    pub fn critical_fraction(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.critical_ns as f64 / self.wall_ns as f64
        }
    }

    /// Renders the diagnosis as a self-contained JSON object.
    pub fn to_json(&self) -> String {
        let mut o = Obj::new();
        o.u64("threads", self.threads as u64)
            .f64("wall_ms", ms(self.wall_ns))
            .f64("critical_path_ms", ms(self.critical_ns))
            .f64("parallel_work_ms", ms(self.work_ns))
            .f64("overhead_ms", ms(self.overhead_ns))
            .f64(
                "critical_path_fraction",
                (self.critical_fraction() * 1e4).round() / 1e4,
            )
            .f64("lock_wait_ms", ms(self.lock_wait_ns));
        let locks: Vec<String> = self
            .top_locks
            .iter()
            .map(|l| {
                let mut lo = Obj::new();
                lo.str("name", l.name)
                    .u64("acquires", l.acquires)
                    .u64("contended", l.contended)
                    .f64("wait_ms", ms(l.wait_ns));
                lo.finish()
            })
            .collect();
        o.raw("top_locks", &json::array(locks));
        let stage_obj = |s: &StageCost| {
            let mut so = Obj::new();
            so.str("name", s.name)
                .u64("count", s.count)
                .f64("exclusive_ms", ms(s.excl_ns))
                .u64("allocs", s.allocs)
                .u64("alloc_bytes", s.alloc_bytes);
            so.finish()
        };
        o.raw("stages", &json::array(self.stages.iter().map(stage_obj)));
        o.raw(
            "alloc_hotspots",
            &json::array(self.alloc_hotspots.iter().map(stage_obj)),
        );
        o.u64("total_allocs", self.total_allocs)
            .u64("total_alloc_bytes", self.total_alloc_bytes)
            .u64("slices_dropped", self.slices_dropped);
        o.finish()
    }

    /// Renders a short human summary (one block, indented lines).
    pub fn render(&self) -> String {
        let mut out = format!(
            "diagnosis @{} thread(s): wall {:.2} ms = critical path {:.2} ms ({:.0}%) + overhead {:.2} ms; rail work {:.2} ms",
            self.threads,
            ms(self.wall_ns),
            ms(self.critical_ns),
            self.critical_fraction() * 100.0,
            ms(self.overhead_ns),
            ms(self.work_ns),
        );
        if !self.top_locks.is_empty() {
            out.push_str("\n  contended locks:");
            for l in &self.top_locks {
                out.push_str(&format!(
                    " {} {:.2} ms ({}/{} contended);",
                    l.name,
                    l.wait_ms(),
                    l.contended,
                    l.acquires
                ));
            }
        }
        if !self.stages.is_empty() {
            out.push_str("\n  hottest stages (exclusive):");
            for s in &self.stages {
                out.push_str(&format!(
                    " {} {:.2} ms x{};",
                    s.name,
                    ms(s.excl_ns),
                    s.count
                ));
            }
        }
        if self.total_allocs > 0 {
            out.push_str("\n  alloc hotspots:");
            for s in &self.alloc_hotspots {
                out.push_str(&format!(
                    " {} {} allocs / {} B;",
                    s.name, s.allocs, s.alloc_bytes
                ));
            }
        } else {
            out.push_str(
                "\n  alloc attribution: shim not linked (build with --features prof-alloc)",
            );
        }
        if self.slices_dropped > 0 {
            out.push_str(&format!("\n  slices dropped: {}", self.slices_dropped));
        }
        out
    }
}

/// Diagnoses one profiled run: critical-path decomposition of
/// `timeline`, the worst locks from `contention` (a run *delta*, not a
/// process-lifetime snapshot), and the stage/allocation leaderboards.
pub fn diagnose(
    timeline: &Timeline,
    contention: &ContentionSnapshot,
    threads: usize,
) -> ScalingDiagnosis {
    let cp = critical_path(timeline);
    let agg = exclusive_by_name(timeline);
    let costs: Vec<StageCost> = agg
        .iter()
        .map(|(name, a)| StageCost {
            name,
            count: a.count,
            excl_ns: a.excl_ns,
            allocs: a.allocs,
            alloc_bytes: a.alloc_bytes,
        })
        .collect();
    let mut stages: Vec<StageCost> = costs.iter().filter(|s| s.excl_ns > 0).copied().collect();
    stages.sort_by(|a, b| b.excl_ns.cmp(&a.excl_ns).then(a.name.cmp(b.name)));
    stages.truncate(8);
    let mut alloc_hotspots: Vec<StageCost> = costs
        .iter()
        .filter(|s| s.alloc_bytes > 0)
        .copied()
        .collect();
    alloc_hotspots.sort_by(|a, b| b.alloc_bytes.cmp(&a.alloc_bytes).then(a.name.cmp(b.name)));
    alloc_hotspots.truncate(5);
    ScalingDiagnosis {
        threads,
        wall_ns: cp.wall_ns,
        critical_ns: cp.critical_ns,
        work_ns: cp.work_ns,
        overhead_ns: cp.overhead_ns,
        lock_wait_ns: contention.total_wait_ns(),
        top_locks: contention.top_by_wait(5),
        stages,
        alloc_hotspots,
        total_allocs: costs.iter().map(|s| s.allocs).sum(),
        total_alloc_bytes: costs.iter().map(|s| s.alloc_bytes).sum(),
        slices_dropped: timeline.dropped(),
    }
}

/// Explains the wall-time gap between two diagnoses of the *same*
/// workload (e.g. 1 thread vs 4). Because `wall = critical + overhead`
/// holds for each run, the gap decomposes exactly:
/// `Δwall = Δcritical (serialized path) + Δoverhead`, with lock-wait
/// and allocation-churn deltas reported as attributions inside the
/// overhead term.
pub fn explain_gap(base: &ScalingDiagnosis, cur: &ScalingDiagnosis) -> String {
    let gap = delta_ms(cur.wall_ns, base.wall_ns);
    let mut out = format!(
        "scaling gap {}t -> {}t: {:+.2} ms wall ({:.2} -> {:.2})\n  serialized critical path: {:+.2} ms ({:.2} -> {:.2})\n  overhead (scheduling/handoff/alloc): {:+.2} ms ({:.2} -> {:.2})",
        base.threads,
        cur.threads,
        gap,
        ms(base.wall_ns),
        ms(cur.wall_ns),
        delta_ms(cur.critical_ns, base.critical_ns),
        ms(base.critical_ns),
        ms(cur.critical_ns),
        delta_ms(cur.overhead_ns, base.overhead_ns),
        ms(base.overhead_ns),
        ms(cur.overhead_ns),
    );
    out.push_str(&format!(
        "\n  lock wait: {:+.2} ms",
        delta_ms(cur.lock_wait_ns, base.lock_wait_ns)
    ));
    for l in &cur.top_locks {
        let b = base
            .top_locks
            .iter()
            .find(|x| x.name == l.name)
            .map_or(0, |x| x.wait_ns);
        out.push_str(&format!(" [{} {:+.2} ms]", l.name, delta_ms(l.wait_ns, b)));
    }
    if base.total_allocs > 0 || cur.total_allocs > 0 {
        out.push_str(&format!(
            "\n  alloc churn: {:+} allocs / {:+} bytes",
            cur.total_allocs as i64 - base.total_allocs as i64,
            cur.total_alloc_bytes as i64 - base.total_alloc_bytes as i64,
        ));
    }
    out
}

/// The gap between two diagnoses as a JSON object, for persistence
/// next to the bench rows (`BENCH_supervisor.json`).
pub fn gap_json(base: &ScalingDiagnosis, cur: &ScalingDiagnosis) -> String {
    let mut o = Obj::new();
    o.u64("threads_base", base.threads as u64)
        .u64("threads_cur", cur.threads as u64)
        .f64("wall_delta_ms", round3(delta_ms(cur.wall_ns, base.wall_ns)))
        .f64(
            "critical_delta_ms",
            round3(delta_ms(cur.critical_ns, base.critical_ns)),
        )
        .f64(
            "overhead_delta_ms",
            round3(delta_ms(cur.overhead_ns, base.overhead_ns)),
        )
        .f64(
            "lock_wait_delta_ms",
            round3(delta_ms(cur.lock_wait_ns, base.lock_wait_ns)),
        )
        .i64(
            "alloc_delta",
            cur.total_allocs as i64 - base.total_allocs as i64,
        )
        .i64(
            "alloc_bytes_delta",
            cur.total_alloc_bytes as i64 - base.total_alloc_bytes as i64,
        );
    o.finish()
}

fn round3(v: f64) -> f64 {
    (v * 1e3).round() / 1e3
}

#[cfg(test)]
mod tests {
    use super::super::timeline::{Slice, SliceKind, ThreadTimeline};
    use super::*;
    use crate::json::{parse, Json};

    fn rail(start: u64, dur: u64, wave: u64) -> Slice {
        Slice {
            name: "rail",
            kind: SliceKind::Span,
            start_ns: start,
            dur_ns: dur,
            depth: 2,
            wave: Some(wave),
            net: Some(wave + 1),
            allocs: 10,
            alloc_bytes: 1000,
        }
    }

    fn job(dur: u64) -> Slice {
        Slice {
            name: "job",
            kind: SliceKind::Span,
            start_ns: 0,
            dur_ns: dur,
            depth: 0,
            wave: None,
            net: None,
            allocs: 0,
            alloc_bytes: 0,
        }
    }

    fn two_wave_timeline() -> Timeline {
        // job 0..1000; wave 0 rails 300+400 on two threads, wave 1
        // rail 200. Critical = 400 + 200 = 600.
        Timeline {
            threads: vec![
                ThreadTimeline {
                    tid: 1,
                    name: "main".into(),
                    slices: vec![rail(0, 300, 0), rail(500, 200, 1), job(1000)],
                    dropped: 0,
                },
                ThreadTimeline {
                    tid: 2,
                    name: String::new(),
                    slices: vec![rail(0, 400, 0)],
                    dropped: 3,
                },
            ],
        }
    }

    #[test]
    fn critical_path_sums_longest_rail_per_wave() {
        let cp = critical_path(&two_wave_timeline());
        assert_eq!(cp.wall_ns, 1000);
        assert_eq!(cp.critical_ns, 600);
        assert_eq!(cp.work_ns, 900);
        assert_eq!(cp.overhead_ns, 400);
        assert_eq!(cp.waves.len(), 2);
        assert_eq!(cp.waves[0].longest_ns, 400);
        assert_eq!(cp.waves[0].rails, 2);
        assert_eq!(cp.waves[1].longest_ns, 200);
        assert!((cp.critical_fraction() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn timeline_without_rails_is_fully_serialized() {
        let t = Timeline {
            threads: vec![ThreadTimeline {
                tid: 1,
                name: String::new(),
                slices: vec![job(500)],
                dropped: 0,
            }],
        };
        let cp = critical_path(&t);
        assert_eq!(cp.critical_ns, cp.wall_ns);
        assert_eq!(cp.overhead_ns, 0);
    }

    #[test]
    fn diagnose_builds_leaderboards_and_json() {
        let mut contention = ContentionSnapshot::default();
        contention.locks.push(LockRecord {
            name: "supervisor.result_handoff",
            acquires: 9,
            contended: 4,
            wait_ns: 2_000_000,
        });
        let d = diagnose(&two_wave_timeline(), &contention, 4);
        assert_eq!(d.threads, 4);
        assert_eq!(d.lock_wait_ns, 2_000_000);
        assert_eq!(d.top_locks.len(), 1);
        assert_eq!(d.slices_dropped, 3);
        assert_eq!(d.total_allocs, 30);
        assert!(d.stages.iter().any(|s| s.name == "rail"));
        assert!(d.alloc_hotspots.iter().any(|s| s.name == "rail"));

        let j = parse(&d.to_json()).expect("diagnosis json parses");
        assert_eq!(j.get("threads").and_then(Json::as_u64), Some(4));
        assert_eq!(j.get("wall_ms").and_then(Json::as_f64), Some(0.001));
        assert_eq!(
            j.get("critical_path_fraction").and_then(Json::as_f64),
            Some(0.6)
        );
        assert_eq!(j.get("lock_wait_ms").and_then(Json::as_f64), Some(2.0));
        let locks = j.get("top_locks").and_then(Json::as_array).expect("locks");
        assert_eq!(
            locks[0].get("name").and_then(Json::as_str),
            Some("supervisor.result_handoff")
        );
        assert!(d.render().contains("critical path"));
    }

    #[test]
    fn explain_gap_decomposes_wall_delta_exactly() {
        let base = ScalingDiagnosis {
            threads: 1,
            wall_ns: 28_100_000,
            critical_ns: 20_000_000,
            overhead_ns: 8_100_000,
            ..ScalingDiagnosis::default()
        };
        let cur = ScalingDiagnosis {
            threads: 4,
            wall_ns: 43_200_000,
            critical_ns: 21_000_000,
            overhead_ns: 22_200_000,
            lock_wait_ns: 9_000_000,
            ..ScalingDiagnosis::default()
        };
        let text = explain_gap(&base, &cur);
        assert!(text.contains("+15.10 ms wall"), "{text}");
        assert!(text.contains("+1.00 ms"), "{text}");
        assert!(text.contains("+14.10 ms"), "{text}");
        assert!(text.contains("lock wait: +9.00 ms"), "{text}");

        let g = parse(&gap_json(&base, &cur)).expect("gap json parses");
        let wall = g.get("wall_delta_ms").and_then(Json::as_f64).unwrap();
        let crit = g.get("critical_delta_ms").and_then(Json::as_f64).unwrap();
        let over = g.get("overhead_delta_ms").and_then(Json::as_f64).unwrap();
        assert!((wall - (crit + over)).abs() < 1e-6, "exact decomposition");
    }
}
