//! Wait/contention accounting: instrumented mutexes and handoff probes.
//!
//! Every [`LockStats`] lives in a process-wide named registry so a
//! diagnosis pass can snapshot all of them at once ([`snapshot`]) and
//! subtract two snapshots to get a per-run delta
//! ([`ContentionSnapshot::delta_since`]). Three counters per name:
//! acquisitions, *contended* acquisitions, and nanoseconds blocked.
//!
//! * [`ProfMutex`] wraps [`std::sync::Mutex`]: the uncontended path is
//!   one relaxed counter bump plus a `try_lock` (one CAS — same cost
//!   class as the always-on metrics), and only a contended acquisition
//!   pays two clock reads to time the blocking `lock`.
//! * [`LockStats::time`] is the probe for handoff points that are not
//!   mutexes — e.g. the supervisor's wave-result channel send — where
//!   "blocked" means "the closure took longer than the contended
//!   threshold".

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, TryLockError};
use std::time::Instant;

/// A [`LockStats::time`] call above this is counted as contended.
const PROBE_CONTENDED_NS: u64 = 1_000;

/// Named contention counters (lock-free atomics).
#[derive(Debug)]
pub struct LockStats {
    name: &'static str,
    acquires: AtomicU64,
    contended: AtomicU64,
    wait_ns: AtomicU64,
}

impl LockStats {
    fn new(name: &'static str) -> LockStats {
        LockStats {
            name,
            acquires: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            wait_ns: AtomicU64::new(0),
        }
    }

    /// The registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Counts one acquisition attempt.
    pub fn note_acquire(&self) {
        self.acquires.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one contended acquisition that blocked for `wait_ns`.
    pub fn note_contended(&self, wait_ns: u64) {
        self.contended.fetch_add(1, Ordering::Relaxed);
        self.wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
    }

    /// Times `f` as a handoff: always counted as an acquisition with
    /// its duration added to the wait total, counted contended when it
    /// exceeds the probe threshold (1 µs).
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        self.acquires.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();
        let r = f();
        let ns = t0.elapsed().as_nanos() as u64;
        if ns > PROBE_CONTENDED_NS {
            self.contended.fetch_add(1, Ordering::Relaxed);
        }
        self.wait_ns.fetch_add(ns, Ordering::Relaxed);
        r
    }

    fn record(&self) -> LockRecord {
        LockRecord {
            name: self.name,
            acquires: self.acquires.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
            wait_ns: self.wait_ns.load(Ordering::Relaxed),
        }
    }
}

fn registry() -> &'static Mutex<BTreeMap<&'static str, Arc<LockStats>>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, Arc<LockStats>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// The process-wide [`LockStats`] for `name`, created on first use.
/// Call once and keep the `Arc` — the lookup takes the registry lock.
pub fn lock_stats(name: &'static str) -> Arc<LockStats> {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    Arc::clone(
        reg.entry(name)
            .or_insert_with(|| Arc::new(LockStats::new(name))),
    )
}

/// One name's counters at a snapshot instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockRecord {
    /// Registry name.
    pub name: &'static str,
    /// Acquisition attempts.
    pub acquires: u64,
    /// Acquisitions that blocked (or probes over threshold).
    pub contended: u64,
    /// Total nanoseconds blocked.
    pub wait_ns: u64,
}

impl LockRecord {
    /// Wait in milliseconds.
    pub fn wait_ms(&self) -> f64 {
        self.wait_ns as f64 / 1e6
    }
}

/// Every registered lock's counters at one instant.
#[derive(Debug, Clone, Default)]
pub struct ContentionSnapshot {
    /// Per-name records, sorted by name.
    pub locks: Vec<LockRecord>,
}

/// Snapshots every registered [`LockStats`].
pub fn snapshot() -> ContentionSnapshot {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    ContentionSnapshot {
        locks: reg.values().map(|s| s.record()).collect(),
    }
}

impl ContentionSnapshot {
    /// The per-name difference `self - earlier` (counters are
    /// monotone), dropping names with an all-zero delta.
    pub fn delta_since(&self, earlier: &ContentionSnapshot) -> ContentionSnapshot {
        let base: BTreeMap<&'static str, &LockRecord> =
            earlier.locks.iter().map(|r| (r.name, r)).collect();
        ContentionSnapshot {
            locks: self
                .locks
                .iter()
                .filter_map(|r| {
                    let b = base.get(r.name);
                    let d = LockRecord {
                        name: r.name,
                        acquires: r.acquires - b.map_or(0, |b| b.acquires),
                        contended: r.contended - b.map_or(0, |b| b.contended),
                        wait_ns: r.wait_ns - b.map_or(0, |b| b.wait_ns),
                    };
                    (d.acquires > 0 || d.contended > 0 || d.wait_ns > 0).then_some(d)
                })
                .collect(),
        }
    }

    /// Total blocked nanoseconds across all locks.
    pub fn total_wait_ns(&self) -> u64 {
        self.locks.iter().map(|r| r.wait_ns).sum()
    }

    /// The `k` worst locks by blocked time (descending), zero-wait
    /// entries omitted.
    pub fn top_by_wait(&self, k: usize) -> Vec<LockRecord> {
        let mut locks: Vec<LockRecord> = self
            .locks
            .iter()
            .filter(|r| r.wait_ns > 0)
            .copied()
            .collect();
        locks.sort_by(|a, b| b.wait_ns.cmp(&a.wait_ns).then(a.name.cmp(b.name)));
        locks.truncate(k);
        locks
    }
}

/// A mutex that accounts its contention under a registry name.
///
/// `lock` tries an uncontended fast path first; only when that fails
/// does it time the blocking acquisition. The guard is the plain
/// [`MutexGuard`], so a [`std::sync::Condvar`] can wait on it
/// unchanged (condvar re-acquisitions after a wakeup are not counted).
/// Poisoning is swallowed (`into_inner`), matching the workspace-wide
/// idiom.
#[derive(Debug)]
pub struct ProfMutex<T> {
    stats: Arc<LockStats>,
    inner: Mutex<T>,
}

impl<T> ProfMutex<T> {
    /// A mutex accounted under `name` in the process registry. Several
    /// instances may share a name (their counters aggregate).
    pub fn new(name: &'static str, value: T) -> ProfMutex<T> {
        ProfMutex {
            stats: lock_stats(name),
            inner: Mutex::new(value),
        }
    }

    /// Acquires the lock, accounting contention.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.stats.note_acquire();
        match self.inner.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                let t0 = Instant::now();
                let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                self.stats.note_contended(t0.elapsed().as_nanos() as u64);
                g
            }
        }
    }

    /// This mutex's counters.
    pub fn stats(&self) -> &Arc<LockStats> {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn uncontended_locks_count_acquires_only() {
        let m = ProfMutex::new("test.uncontended", 0u32);
        for _ in 0..5 {
            *m.lock() += 1;
        }
        let r = m.stats().record();
        assert_eq!(r.acquires, 5);
        assert_eq!(r.contended, 0);
        assert_eq!(r.wait_ns, 0);
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn contended_locks_time_the_block() {
        let m = Arc::new(ProfMutex::new("test.contended", ()));
        let m2 = Arc::clone(&m);
        let guard = m.lock();
        let waiter = std::thread::spawn(move || {
            let _g = m2.lock();
        });
        std::thread::sleep(Duration::from_millis(10));
        drop(guard);
        waiter.join().expect("waiter");
        let r = m.stats().record();
        assert!(r.acquires >= 2);
        assert!(r.contended >= 1, "the waiter blocked");
        assert!(r.wait_ns >= 5_000_000, "blocked ~10 ms, got {}", r.wait_ns);
    }

    #[test]
    fn probe_times_handoffs_and_snapshots_delta() {
        let before = snapshot();
        let stats = lock_stats("test.handoff");
        let v = stats.time(|| {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        let delta = snapshot().delta_since(&before);
        let r = delta
            .locks
            .iter()
            .find(|r| r.name == "test.handoff")
            .expect("probe in delta");
        assert_eq!(r.acquires, 1);
        assert_eq!(r.contended, 1, "2 ms is over the 1 µs threshold");
        assert!(r.wait_ns >= 1_000_000);
        assert!(delta.total_wait_ns() >= r.wait_ns);
        assert_eq!(delta.top_by_wait(1)[0].name, delta.top_by_wait(9)[0].name);
    }
}
