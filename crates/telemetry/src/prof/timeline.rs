//! Thread-timeline capture: per-thread rings of begin/end slices fed
//! by the existing span stream.
//!
//! A [`Profiler`] hands out a [`Recorder`] (via
//! [`Profiler::recorder`]) that observes `SpanStart`/`SpanEnd`/`Point`
//! events and completes them into [`Slice`]s — `{name, start, dur,
//! depth, wave/net attribution, exclusive alloc count/bytes}` — in a
//! bounded ring owned by the emitting thread. Slices are keyed by the
//! *existing* span names (`route`, `tile`, `grow`, `rail`, `wave`, …),
//! so instrumented code needs no changes to become profilable.
//!
//! Rings are single-writer and never block: the owner thread pushes
//! with a `try_lock` (uncontended — one CAS), and the only possible
//! contender is a concurrent [`Profiler::drain`], in which case the
//! push is dropped and counted instead of waiting. Long-running spans
//! are pushed at their *end*, so drop-oldest eviction under pressure
//! sheds fine-grained inner slices first and keeps the job/wave/rail
//! skeleton intact.

use super::alloc;
use crate::{Event, Recorder, Value};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, TryLockError};
use std::time::Instant;

/// Default per-thread ring capacity, in slices. A supervisor bench job
/// emits a few hundred slices per thread; the default leaves two
/// orders of magnitude of headroom before eviction starts.
pub const DEFAULT_SLICE_CAPACITY: usize = 65_536;

/// What a slice represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceKind {
    /// A completed span (`dur_ns` is its inclusive duration).
    Span,
    /// An instant point event (`dur_ns` is 0).
    Instant,
}

/// One completed timeline entry on one thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slice {
    /// Span or point name (the existing telemetry names).
    pub name: &'static str,
    /// Span vs instant point.
    pub kind: SliceKind,
    /// Start, nanoseconds since the profiler's epoch.
    pub start_ns: u64,
    /// Inclusive duration (0 for instants).
    pub dur_ns: u64,
    /// Span nesting depth at open.
    pub depth: u16,
    /// `wave` field captured at span start, when present (supervisor
    /// rail/wave spans carry it — the critical-path key).
    pub wave: Option<u64>,
    /// `net` field captured at span start, when present.
    pub net: Option<u64>,
    /// Allocations attributed exclusively to this slice (child spans'
    /// allocations are subtracted). Zero unless the counting-allocator
    /// shim is linked in (see [`super::alloc`]).
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

impl Slice {
    /// End, nanoseconds since the profiler's epoch.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

#[derive(Debug)]
struct RingBuf {
    buf: Vec<Slice>,
    cap: usize,
    /// Index of the oldest slice once the buffer is full.
    head: usize,
    overwritten: u64,
}

/// Single-writer bounded slice ring. `push` never blocks (see module
/// docs); `take` drains in chronological order.
#[derive(Debug)]
struct Ring {
    slots: Mutex<RingBuf>,
    contended_drops: AtomicU64,
}

impl Ring {
    fn new(cap: usize) -> Ring {
        Ring {
            slots: Mutex::new(RingBuf {
                buf: Vec::new(),
                cap: cap.max(1),
                head: 0,
                overwritten: 0,
            }),
            contended_drops: AtomicU64::new(0),
        }
    }

    fn push(&self, s: Slice) {
        let mut b = match self.slots.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                // A drain is in flight on another thread: drop rather
                // than stall the routing hot path.
                self.contended_drops.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        if b.buf.len() < b.cap {
            b.buf.push(s);
        } else {
            let head = b.head;
            b.buf[head] = s;
            b.head = (head + 1) % b.cap;
            b.overwritten += 1;
        }
    }

    fn take(&self) -> (Vec<Slice>, u64) {
        let mut b = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        let head = b.head;
        let mut out = std::mem::take(&mut b.buf);
        let n = out.len();
        out.rotate_left(head.min(n));
        b.head = 0;
        let dropped = b.overwritten + self.contended_drops.swap(0, Ordering::Relaxed);
        b.overwritten = 0;
        (out, dropped)
    }
}

#[derive(Debug)]
struct ThreadRing {
    tid: u64,
    name: String,
    slices: Ring,
}

/// An open span being tracked on its owning thread.
struct Frame {
    span_id: u64,
    start_ns: u64,
    wave: Option<u64>,
    net: Option<u64>,
    allocs0: u64,
    bytes0: u64,
    child_allocs: u64,
    child_bytes: u64,
}

struct ThreadState {
    prof_id: u64,
    ring: Arc<ThreadRing>,
    stack: Vec<Frame>,
}

thread_local! {
    /// Per-thread capture state, keyed by profiler id so concurrent
    /// independent profilers (e.g. one per service job) never mix.
    /// Capped: stale entries for finished profilers age out.
    static STATES: RefCell<Vec<ThreadState>> = const { RefCell::new(Vec::new()) };
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static NEXT_PROF_ID: AtomicU64 = AtomicU64::new(1);
const MAX_THREAD_STATES: usize = 8;

#[derive(Debug)]
struct Inner {
    id: u64,
    epoch: Instant,
    armed: AtomicBool,
    cap: usize,
    threads: Mutex<Vec<Arc<ThreadRing>>>,
}

/// Owns the capture session: epoch, armed flag, and the registry of
/// per-thread rings. Cheap to clone (an `Arc` handle).
#[derive(Debug, Clone)]
pub struct Profiler {
    inner: Arc<Inner>,
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new()
    }
}

impl Profiler {
    /// An armed profiler with [`DEFAULT_SLICE_CAPACITY`] per thread.
    pub fn new() -> Profiler {
        Profiler::with_capacity(DEFAULT_SLICE_CAPACITY)
    }

    /// An armed profiler whose per-thread rings hold at most `cap`
    /// slices (clamped to at least 1).
    pub fn with_capacity(cap: usize) -> Profiler {
        Profiler {
            inner: Arc::new(Inner {
                id: NEXT_PROF_ID.fetch_add(1, Ordering::Relaxed),
                epoch: Instant::now(),
                armed: AtomicBool::new(true),
                cap: cap.max(1),
                threads: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Arms or disarms capture. Disarmed, the recorder's observation
    /// path is one relaxed atomic load — the overhead the
    /// `telemetry_overhead` bin gates under 2 %.
    pub fn set_armed(&self, on: bool) {
        self.inner.armed.store(on, Ordering::Relaxed);
    }

    /// `true` when slices are being captured.
    pub fn is_armed(&self) -> bool {
        self.inner.armed.load(Ordering::Relaxed)
    }

    /// Nanoseconds since this profiler's epoch.
    pub fn elapsed_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    /// A [`Recorder`] capturing into this profiler and forwarding every
    /// event to `downstream` (pass [`crate::current`]'s result to keep
    /// previously-installed sinks live). Install it with
    /// [`crate::RecorderScope::install`] or [`crate::set_global`];
    /// worker-spawning code that re-installs [`crate::current`] keeps
    /// the capture flowing across threads.
    pub fn recorder(&self, downstream: Option<Arc<dyn Recorder>>) -> Arc<ProfRecorder> {
        Arc::new(ProfRecorder {
            inner: Arc::clone(&self.inner),
            downstream,
        })
    }

    /// Collects and clears every thread's slices. Open spans are not
    /// included (a slice exists only once its span ends); threads keep
    /// their rings and continue capturing into the emptied buffers.
    pub fn drain(&self) -> Timeline {
        let rings: Vec<Arc<ThreadRing>> = {
            let t = self.inner.threads.lock().unwrap_or_else(|e| e.into_inner());
            t.clone()
        };
        let mut threads: Vec<ThreadTimeline> = rings
            .iter()
            .filter_map(|r| {
                let (slices, dropped) = r.slices.take();
                if slices.is_empty() && dropped == 0 {
                    return None;
                }
                Some(ThreadTimeline {
                    tid: r.tid,
                    name: r.name.clone(),
                    slices,
                    dropped,
                })
            })
            .collect();
        threads.sort_by_key(|t| t.tid);
        Timeline { threads }
    }
}

/// One thread's drained slices, in completion order.
#[derive(Debug, Clone)]
pub struct ThreadTimeline {
    /// Process-unique profiler thread id (stable per OS thread).
    pub tid: u64,
    /// The OS thread's name at registration ("" when unnamed).
    pub name: String,
    /// Completed slices, ordered by span *end* time.
    pub slices: Vec<Slice>,
    /// Slices lost to ring eviction or drain contention.
    pub dropped: u64,
}

impl ThreadTimeline {
    /// Display label: the thread name, else `thread-<tid>`.
    pub fn label(&self) -> String {
        if self.name.is_empty() {
            format!("thread-{}", self.tid)
        } else {
            self.name.clone()
        }
    }
}

/// A drained capture: every participating thread's slices, on one
/// shared clock (nanoseconds since the profiler epoch).
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Per-thread timelines, ordered by tid.
    pub threads: Vec<ThreadTimeline>,
}

impl Timeline {
    /// `true` when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    /// Total slices across all threads.
    pub fn slice_count(&self) -> usize {
        self.threads.iter().map(|t| t.slices.len()).sum()
    }

    /// Total slices lost to eviction or drain contention.
    pub fn dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }

    /// `(earliest start, latest end)` across all slices, or `(0, 0)`
    /// when empty.
    pub fn extent_ns(&self) -> (u64, u64) {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for t in &self.threads {
            for s in &t.slices {
                lo = lo.min(s.start_ns);
                hi = hi.max(s.end_ns());
            }
        }
        if lo == u64::MAX {
            (0, 0)
        } else {
            (lo, hi)
        }
    }
}

/// The capturing [`Recorder`] returned by [`Profiler::recorder`].
pub struct ProfRecorder {
    inner: Arc<Inner>,
    downstream: Option<Arc<dyn Recorder>>,
}

impl std::fmt::Debug for ProfRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfRecorder")
            .field("profiler", &self.inner.id)
            .field("chained", &self.downstream.is_some())
            .finish()
    }
}

impl Recorder for ProfRecorder {
    fn record(&self, event: &Event) {
        if self.inner.armed.load(Ordering::Relaxed) {
            observe(&self.inner, event);
        }
        if let Some(d) = &self.downstream {
            d.record(event);
        }
    }

    fn flush(&self) {
        if let Some(d) = &self.downstream {
            d.flush();
        }
    }
}

fn field_u64(fields: &[(&'static str, Value)], key: &str) -> Option<u64> {
    fields.iter().find(|(k, _)| *k == key).and_then(|(_, v)| {
        if let Value::U64(n) = v {
            Some(*n)
        } else {
            None
        }
    })
}

fn clamp_depth(depth: usize) -> u16 {
    depth.min(u16::MAX as usize) as u16
}

/// Runs `f` with this thread's state for `inner`'s profiler,
/// registering a fresh ring on first contact.
fn with_state(inner: &Arc<Inner>, f: impl FnOnce(&mut ThreadState)) {
    STATES.with(|states| {
        let mut states = states.borrow_mut();
        if let Some(st) = states.iter_mut().find(|st| st.prof_id == inner.id) {
            f(st);
            return;
        }
        let tid = TID.with(|t| *t);
        let name = std::thread::current().name().unwrap_or("").to_owned();
        let ring = Arc::new(ThreadRing {
            tid,
            name,
            slices: Ring::new(inner.cap),
        });
        {
            let mut threads = inner.threads.lock().unwrap_or_else(|e| e.into_inner());
            threads.push(Arc::clone(&ring));
        }
        if states.len() >= MAX_THREAD_STATES {
            // Age out the entry registered longest ago; its profiler is
            // almost certainly finished.
            states.remove(0);
        }
        states.push(ThreadState {
            prof_id: inner.id,
            ring,
            stack: Vec::new(),
        });
        f(states.last_mut().expect("just pushed"));
    });
}

fn observe(inner: &Arc<Inner>, event: &Event) {
    match event {
        Event::SpanStart { id, fields, .. } => {
            let now = inner.epoch.elapsed().as_nanos() as u64;
            let (a0, b0) = alloc::thread_totals();
            with_state(inner, |st| {
                st.stack.push(Frame {
                    span_id: *id,
                    start_ns: now,
                    wave: field_u64(fields, "wave"),
                    net: field_u64(fields, "net"),
                    allocs0: a0,
                    bytes0: b0,
                    child_allocs: 0,
                    child_bytes: 0,
                });
            });
        }
        Event::SpanEnd {
            id, name, depth, ..
        } => {
            let now = inner.epoch.elapsed().as_nanos() as u64;
            let (a1, b1) = alloc::thread_totals();
            with_state(inner, |st| {
                // A span that started before this thread armed has no
                // frame: skip it rather than fabricate a start time.
                let Some(pos) = st.stack.iter().rposition(|f| f.span_id == *id) else {
                    return;
                };
                let frame = st.stack.remove(pos);
                let incl_allocs = a1.saturating_sub(frame.allocs0);
                let incl_bytes = b1.saturating_sub(frame.bytes0);
                if let Some(parent) = st.stack.last_mut() {
                    parent.child_allocs += incl_allocs;
                    parent.child_bytes += incl_bytes;
                }
                st.ring.slices.push(Slice {
                    name,
                    kind: SliceKind::Span,
                    start_ns: frame.start_ns,
                    dur_ns: now.saturating_sub(frame.start_ns),
                    depth: clamp_depth(*depth),
                    wave: frame.wave,
                    net: frame.net,
                    allocs: incl_allocs.saturating_sub(frame.child_allocs),
                    alloc_bytes: incl_bytes.saturating_sub(frame.child_bytes),
                });
            });
        }
        Event::Point {
            name,
            depth,
            fields,
            ..
        } => {
            let now = inner.epoch.elapsed().as_nanos() as u64;
            with_state(inner, |st| {
                st.ring.slices.push(Slice {
                    name,
                    kind: SliceKind::Instant,
                    start_ns: now,
                    dur_ns: 0,
                    depth: clamp_depth(*depth),
                    wave: field_u64(fields, "wave"),
                    net: field_u64(fields, "net"),
                    allocs: 0,
                    alloc_bytes: 0,
                });
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{self as telemetry, RecorderScope};

    #[test]
    fn captures_nested_spans_points_and_attribution() {
        let prof = Profiler::new();
        {
            let _scope = RecorderScope::install(prof.recorder(None));
            let _outer = telemetry::span("rail")
                .field("net", 3u64)
                .field("wave", 1u64)
                .enter();
            telemetry::point("retry").emit();
            {
                let _inner = telemetry::span("grow").enter();
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let t = prof.drain();
        assert_eq!(t.threads.len(), 1);
        let slices = &t.threads[0].slices;
        // Completion order: point, inner span, outer span.
        assert_eq!(slices.len(), 3);
        assert_eq!(slices[0].name, "retry");
        assert_eq!(slices[0].kind, SliceKind::Instant);
        assert_eq!(slices[1].name, "grow");
        assert_eq!(slices[1].depth, 1);
        assert!(slices[1].dur_ns >= 1_000_000);
        let outer = &slices[2];
        assert_eq!(outer.name, "rail");
        assert_eq!(outer.depth, 0);
        assert_eq!(outer.wave, Some(1));
        assert_eq!(outer.net, Some(3));
        // Nesting: outer contains inner on the shared clock.
        assert!(outer.start_ns <= slices[1].start_ns);
        assert!(outer.end_ns() >= slices[1].end_ns());
        // A second drain is empty.
        assert!(prof.drain().is_empty());
    }

    #[test]
    fn disarmed_profiler_records_nothing_but_forwards() {
        let prof = Profiler::new();
        prof.set_armed(false);
        let downstream = Arc::new(crate::sinks::MemorySink::new());
        {
            let _scope = RecorderScope::install(prof.recorder(Some(downstream.clone())));
            let _g = telemetry::span("tile").enter();
        }
        assert!(prof.drain().is_empty());
        assert_eq!(downstream.names(), ["tile", "tile"]);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let prof = Profiler::with_capacity(4);
        {
            let _scope = RecorderScope::install(prof.recorder(None));
            for _ in 0..10 {
                telemetry::point("grow_iter").emit();
            }
        }
        let t = prof.drain();
        assert_eq!(t.slice_count(), 4);
        assert_eq!(t.dropped(), 6);
        // Chronological order is preserved across the wrap.
        let s = &t.threads[0].slices;
        assert!(s.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
    }

    #[test]
    fn worker_threads_register_separate_rings() {
        let prof = Profiler::new();
        let recorder = prof.recorder(None);
        {
            let _scope = RecorderScope::install(recorder.clone());
            let _job = telemetry::span("job").enter();
            std::thread::scope(|scope| {
                for i in 0..2u64 {
                    let recorder = recorder.clone();
                    scope.spawn(move || {
                        let _scope = RecorderScope::install(recorder);
                        let _g = telemetry::span("rail").field("wave", i).enter();
                    });
                }
            });
        }
        let t = prof.drain();
        assert_eq!(t.threads.len(), 3);
        let rails: Vec<&Slice> = t
            .threads
            .iter()
            .flat_map(|th| th.slices.iter())
            .filter(|s| s.name == "rail")
            .collect();
        assert_eq!(rails.len(), 2);
        assert!(rails.iter().any(|s| s.wave == Some(0)));
        assert!(rails.iter().any(|s| s.wave == Some(1)));
    }

    #[test]
    fn concurrent_profilers_do_not_mix() {
        let a = Profiler::new();
        let b = Profiler::new();
        {
            // b chains under a: both observe, each into its own rings.
            let _sa = RecorderScope::install(b.recorder(Some(a.recorder(None))));
            let _g = telemetry::span("space").enter();
        }
        assert_eq!(a.drain().slice_count(), 1);
        assert_eq!(b.drain().slice_count(), 1);
    }
}
