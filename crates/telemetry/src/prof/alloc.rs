//! Thread-local counting-allocator shim.
//!
//! [`CountingAlloc`] wraps the system allocator and bumps two
//! const-initialized thread-local counters — allocation count and bytes
//! requested — on every `alloc`/`alloc_zeroed`/`realloc`. The timeline
//! capture ([`super::timeline`]) snapshots [`thread_totals`] at span
//! start/end and attributes the delta (minus child spans') to the
//! slice, so allocator churn lands on the span that caused it without
//! the allocator ever knowing about spans (no reentrancy hazard).
//!
//! The shim is *feature-gated at link time* by whichever binary crate
//! opts in (`sprout-bench` exposes `prof-alloc` and installs it as the
//! `#[global_allocator]`). Without it, [`thread_totals`] stays `(0,
//! 0)` and every attribution reads zero — [`tracking_active`] lets
//! consumers report that honestly. Bytes count what was *requested*
//! over time (a churn measure), not live heap size: `realloc` adds the
//! new size and `dealloc` subtracts nothing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    // Const-initialized so first touch never allocates (which would
    // recurse into the shim); `try_with` tolerates TLS teardown.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn note(bytes: u64) {
    let _ = ALLOCS.try_with(|c| c.set(c.get().wrapping_add(1)));
    let _ = BYTES.try_with(|c| c.set(c.get().wrapping_add(bytes)));
}

/// `(allocation count, bytes requested)` on this thread since it
/// started — monotone counters, `(0, 0)` when the shim is not linked
/// in as the global allocator.
pub fn thread_totals() -> (u64, u64) {
    (
        ALLOCS.try_with(Cell::get).unwrap_or(0),
        BYTES.try_with(Cell::get).unwrap_or(0),
    )
}

/// `true` when the shim is evidently installed (this thread has
/// counted at least one allocation). Used to distinguish "no
/// allocations in this span" from "no shim linked in".
pub fn tracking_active() -> bool {
    thread_totals().0 > 0
}

/// System-allocator wrapper counting per-thread allocation churn.
/// Install in a *binary* crate (never a library others link) with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: sprout_telemetry::prof::alloc::CountingAlloc =
///     sprout_telemetry::prof::alloc::CountingAlloc;
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

// SAFETY: defers entirely to `System` for allocation correctness; the
// bookkeeping touches only const-initialized thread-locals and never
// allocates.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note(layout.size() as u64);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note(layout.size() as u64);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note(new_size as u64);
        System.realloc(ptr, layout, new_size)
    }
}

// Exercise the real shim in this crate's own test binary: unit tests
// below (and the timeline tests) then observe genuine attribution.
#[cfg(test)]
#[global_allocator]
static TEST_ALLOC: CountingAlloc = CountingAlloc;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_are_monotone_and_count_real_allocations() {
        let (a0, b0) = thread_totals();
        let v: Vec<u8> = Vec::with_capacity(4096);
        let (a1, b1) = thread_totals();
        assert!(a1 > a0, "allocation count must advance");
        assert!(b1 >= b0 + 4096, "bytes must include the 4 KiB buffer");
        drop(v);
        // Dealloc subtracts nothing: churn counters are monotone.
        let (a2, b2) = thread_totals();
        assert!(a2 >= a1 && b2 >= b1);
        assert!(tracking_active());
    }

    #[test]
    fn spans_attribute_exclusive_allocations() {
        use crate::prof::timeline::Profiler;
        use crate::{self as telemetry, RecorderScope};

        let prof = Profiler::new();
        {
            let _scope = RecorderScope::install(prof.recorder(None));
            let _outer = telemetry::span("refine").enter();
            let _big: Vec<u8> = Vec::with_capacity(1 << 16);
            {
                let _inner = telemetry::span("grow").enter();
                let _small: Vec<u8> = Vec::with_capacity(1 << 12);
            }
        }
        let t = prof.drain();
        let slice = |name: &str| {
            t.threads[0]
                .slices
                .iter()
                .find(|s| s.name == name)
                .expect("slice present")
                .clone()
        };
        let grow = slice("grow");
        let refine = slice("refine");
        assert!(grow.alloc_bytes >= 1 << 12);
        assert!(refine.alloc_bytes >= 1 << 16);
        // Exclusive: the inner span's 4 KiB is not double-counted in
        // the outer slice (which would need >= 2^16 + 2^12 plus the
        // inner span's own bookkeeping).
        assert!(
            refine.alloc_bytes < (1 << 16) + (1 << 12),
            "outer slice must exclude child allocations (got {})",
            refine.alloc_bytes
        );
    }
}
