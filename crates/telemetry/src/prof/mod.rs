//! Performance forensics: thread timelines, contention accounting,
//! allocation attribution, and critical-path analysis.
//!
//! The span/counter layer answers *how long* each pipeline stage took;
//! this module family answers *why* — which thread ran what and when,
//! which locks were waited on, which spans allocated, and how much of a
//! multi-threaded supervisor run was genuinely serialized. It exists to
//! diagnose the two scaling problems the ROADMAP names: the `tile`
//! stage dominating every benchmark, and the stacked workload getting
//! *slower* with threads (negative scaling in BENCH_supervisor.json).
//!
//! ## Pieces
//!
//! * [`timeline`] — a [`Profiler`] whose [`Recorder`] hook turns the
//!   existing span stream into per-thread rings of begin/end slices.
//!   Capture is non-blocking: each ring has a single writer (its owner
//!   thread) and a push never waits — the only possible contention is
//!   against a concurrent [`Profiler::drain`], and such pushes are
//!   dropped and counted rather than blocking the routing hot path.
//! * [`chrome`] — exports a drained [`Timeline`] as Chrome trace-event
//!   JSON (loadable in `chrome://tracing` / Perfetto) and as
//!   collapsed-stack text for flamegraph tooling.
//! * [`contention`] — [`ProfMutex`] (a mutex that counts acquisitions,
//!   contended acquisitions, and nanoseconds blocked) plus named
//!   [`LockStats`] probes for handoff points that are not mutexes
//!   (the supervisor's wave result channel).
//! * [`alloc`] — a counting [`std::alloc::GlobalAlloc`] shim
//!   attributing allocation count/bytes to the active span. Installed
//!   only behind the consumer's feature gate (`sprout-bench`'s
//!   `prof-alloc`); without it every attribution reads zero.
//! * [`critical`] — critical-path analysis over the supervisor wave
//!   DAG and the machine-readable [`ScalingDiagnosis`] attached to the
//!   `supervisor --scaling-gate` output.
//!
//! ## Overhead discipline
//!
//! A disarmed profiler ([`Profiler::set_armed`]`(false)`) reduces
//! [`Recorder::record`] to one relaxed atomic load plus the downstream
//! forward — the `telemetry_overhead` smoke bin gates that path under
//! the same <2 % budget as the no-op recorder.
//!
//! [`Recorder`]: crate::Recorder
//! [`Recorder::record`]: crate::Recorder::record
//! [`Profiler`]: timeline::Profiler
//! [`Profiler::drain`]: timeline::Profiler::drain
//! [`Profiler::set_armed`]: timeline::Profiler::set_armed
//! [`Timeline`]: timeline::Timeline
//! [`ProfMutex`]: contention::ProfMutex
//! [`LockStats`]: contention::LockStats
//! [`ScalingDiagnosis`]: critical::ScalingDiagnosis

pub mod alloc;
pub mod chrome;
pub mod contention;
pub mod critical;
pub mod timeline;

pub use chrome::{chrome_trace, collapsed_stacks, exclusive_by_name, NameAgg};
pub use contention::{lock_stats, snapshot, ContentionSnapshot, LockRecord, LockStats, ProfMutex};
pub use critical::{critical_path, diagnose, explain_gap, CriticalPath, ScalingDiagnosis};
pub use timeline::{Profiler, Slice, SliceKind, ThreadTimeline, Timeline};
