//! Timeline exporters: Chrome trace-event JSON and collapsed stacks.
//!
//! [`chrome_trace`] renders a drained [`Timeline`] in the Chrome
//! trace-event format (`{"traceEvents": [...]}`, complete `"X"` events
//! with microsecond `ts`/`dur`, instant `"i"` events for points, and
//! `"M"` thread-name metadata) — load the file in `chrome://tracing`
//! or [Perfetto](https://ui.perfetto.dev).
//!
//! [`collapsed_stacks`] renders the same timeline as folded-stack text
//! (`thread;span;span <exclusive-ns>` per line), the input format of
//! flamegraph tooling. Stacks are reconstructed per thread from slice
//! containment — a parent span strictly contains its children on the
//! shared clock — so no per-slice stack storage is paid at capture
//! time.

use super::timeline::{SliceKind, ThreadTimeline, Timeline};
use crate::json::{self, Obj};
use std::collections::BTreeMap;

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

/// Renders `t` as Chrome trace-event JSON (one self-contained object).
pub fn chrome_trace(t: &Timeline) -> String {
    let mut events: Vec<String> = Vec::new();
    for th in &t.threads {
        let mut meta = Obj::new();
        let mut args = Obj::new();
        args.str("name", &th.label());
        meta.str("name", "thread_name")
            .str("ph", "M")
            .u64("pid", 1)
            .u64("tid", th.tid)
            .raw("args", &args.finish());
        events.push(meta.finish());
        for s in &th.slices {
            let mut o = Obj::new();
            o.str("name", s.name);
            match s.kind {
                SliceKind::Span => {
                    o.str("ph", "X")
                        .f64("ts", us(s.start_ns))
                        .f64("dur", us(s.dur_ns));
                }
                SliceKind::Instant => {
                    o.str("ph", "i").f64("ts", us(s.start_ns)).str("s", "t");
                }
            }
            o.u64("pid", 1).u64("tid", th.tid);
            if s.wave.is_some() || s.net.is_some() || s.allocs > 0 {
                let mut a = Obj::new();
                if let Some(w) = s.wave {
                    a.u64("wave", w);
                }
                if let Some(n) = s.net {
                    a.u64("net", n);
                }
                if s.allocs > 0 {
                    a.u64("allocs", s.allocs).u64("alloc_bytes", s.alloc_bytes);
                }
                o.raw("args", &a.finish());
            }
            events.push(o.finish());
        }
    }
    let mut top = Obj::new();
    top.raw("traceEvents", &json::array(events))
        .str("displayTimeUnit", "ms");
    top.finish()
}

/// An open span during stack reconstruction.
struct OpenSpan {
    name: &'static str,
    end_ns: u64,
    dur_ns: u64,
    child_ns: u64,
    path: String,
}

/// Walks `th`'s span slices in stack order, calling `on_close(name,
/// path, inclusive_ns, exclusive_ns)` as each span is popped.
fn walk(th: &ThreadTimeline, mut on_close: impl FnMut(&'static str, &str, u64, u64)) {
    let mut spans: Vec<&super::timeline::Slice> = th
        .slices
        .iter()
        .filter(|s| s.kind == SliceKind::Span)
        .collect();
    // Parents sort before children: earlier start first, and on a
    // shared start the longer (containing) span first.
    spans.sort_by(|a, b| {
        a.start_ns
            .cmp(&b.start_ns)
            .then(b.end_ns().cmp(&a.end_ns()))
    });
    let label = th.label();
    let mut stack: Vec<OpenSpan> = Vec::new();
    let close = |stack: &mut Vec<OpenSpan>,
                 on_close: &mut dyn FnMut(&'static str, &str, u64, u64)| {
        let top = stack.pop().expect("close on non-empty stack");
        let excl = top.dur_ns.saturating_sub(top.child_ns);
        on_close(top.name, &top.path, top.dur_ns, excl);
        if let Some(parent) = stack.last_mut() {
            parent.child_ns += top.dur_ns;
        }
    };
    for s in spans {
        while stack.last().is_some_and(|t| t.end_ns <= s.start_ns) {
            close(&mut stack, &mut on_close);
        }
        let path = match stack.last() {
            Some(parent) => format!("{};{}", parent.path, s.name),
            None => format!("{label};{}", s.name),
        };
        stack.push(OpenSpan {
            name: s.name,
            end_ns: s.end_ns(),
            dur_ns: s.dur_ns,
            child_ns: 0,
            path,
        });
    }
    while !stack.is_empty() {
        close(&mut stack, &mut on_close);
    }
}

/// Renders `t` as collapsed-stack text: one `thread;a;b <ns>` line per
/// distinct stack, values in *exclusive* nanoseconds, lines sorted for
/// determinism. Feed directly to flamegraph tooling.
pub fn collapsed_stacks(t: &Timeline) -> String {
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for th in &t.threads {
        walk(th, |_name, path, _incl, excl| {
            *folded.entry(path.to_owned()).or_insert(0) += excl;
        });
    }
    let mut out = String::new();
    for (path, ns) in folded {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

/// Per-name aggregate over a timeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NameAgg {
    /// Completed spans (or points) with this name.
    pub count: u64,
    /// Exclusive time (inclusive minus children), summed.
    pub excl_ns: u64,
    /// Exclusive allocation count, summed.
    pub allocs: u64,
    /// Exclusive allocation bytes, summed.
    pub alloc_bytes: u64,
}

/// Aggregates `t` by span/point name: exclusive time from stack
/// reconstruction, allocation churn from the slices' captured
/// exclusive counters. The self-time leaderboard behind
/// [`super::critical::ScalingDiagnosis`].
pub fn exclusive_by_name(t: &Timeline) -> BTreeMap<&'static str, NameAgg> {
    let mut by_name: BTreeMap<&'static str, NameAgg> = BTreeMap::new();
    for th in &t.threads {
        walk(th, |name, _path, _incl, excl| {
            let e = by_name.entry(name).or_default();
            e.count += 1;
            e.excl_ns += excl;
        });
        for s in &th.slices {
            let e = by_name.entry(s.name).or_default();
            if s.kind == SliceKind::Instant {
                e.count += 1;
            }
            e.allocs += s.allocs;
            e.alloc_bytes += s.alloc_bytes;
        }
    }
    by_name
}

#[cfg(test)]
mod tests {
    use super::super::timeline::{Slice, SliceKind};
    use super::*;
    use crate::json::{parse, Json};

    fn span(name: &'static str, start: u64, dur: u64, depth: u16) -> Slice {
        Slice {
            name,
            kind: SliceKind::Span,
            start_ns: start,
            dur_ns: dur,
            depth,
            wave: None,
            net: None,
            allocs: 0,
            alloc_bytes: 0,
        }
    }

    fn timeline() -> Timeline {
        // main: route[0..1000] { tile[100..400], grow[400..900] }, plus
        // an instant point inside grow.
        let mut point = span("grow_iter", 500, 0, 2);
        point.kind = SliceKind::Instant;
        Timeline {
            threads: vec![ThreadTimeline {
                tid: 1,
                name: "main".into(),
                // Completion order, as capture produces.
                slices: vec![
                    span("tile", 100, 300, 1),
                    point,
                    span("grow", 400, 500, 1),
                    span("route", 0, 1000, 0),
                ],
                dropped: 0,
            }],
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_complete_events() {
        let out = chrome_trace(&timeline());
        let root = parse(&out).expect("trace parses");
        let events = root
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        // 1 metadata + 4 slices.
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("M"));
        let tile = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("tile"))
            .expect("tile event");
        assert_eq!(tile.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(tile.get("ts").and_then(Json::as_f64), Some(0.1));
        assert_eq!(tile.get("dur").and_then(Json::as_f64), Some(0.3));
        let iter = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("grow_iter"))
            .expect("instant event");
        assert_eq!(iter.get("ph").and_then(Json::as_str), Some("i"));
    }

    #[test]
    fn collapsed_stacks_report_exclusive_time_per_path() {
        let out = collapsed_stacks(&timeline());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines,
            vec![
                "main;route 200",
                "main;route;grow 500",
                "main;route;tile 300",
            ]
        );
    }

    #[test]
    fn exclusive_by_name_subtracts_children_and_counts_points() {
        let agg = exclusive_by_name(&timeline());
        assert_eq!(agg["route"].excl_ns, 200);
        assert_eq!(agg["tile"].excl_ns, 300);
        assert_eq!(agg["grow"].excl_ns, 500);
        assert_eq!(agg["grow_iter"].count, 1);
        assert_eq!(agg["grow_iter"].excl_ns, 0);
    }

    #[test]
    fn sibling_spans_do_not_nest() {
        // a[0..100], b[100..200] — b starts exactly when a ends.
        let t = Timeline {
            threads: vec![ThreadTimeline {
                tid: 1,
                name: String::new(),
                slices: vec![span("a", 0, 100, 0), span("b", 100, 100, 0)],
                dropped: 0,
            }],
        };
        let out = collapsed_stacks(&t);
        assert_eq!(out, "thread-1;a 100\nthread-1;b 100\n");
    }
}
