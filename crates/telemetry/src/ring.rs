//! Bounded in-process event buffer.
//!
//! [`RingSink`] keeps the most recent events up to a fixed capacity —
//! lossless until the cap, then oldest-first eviction with an explicit
//! drop counter so consumers can tell truncation from a quiet run.
//! Useful as a flight recorder: attach it for a whole job, then dump
//! the tail only when something goes wrong.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::{Event, Recorder};

/// A bounded FIFO of recent [`Event`]s.
#[derive(Debug)]
pub struct RingSink {
    inner: Mutex<Ring>,
    capacity: usize,
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<Event>,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            inner: Mutex::new(Ring {
                events: VecDeque::new(),
                dropped: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events evicted so far (0 means the buffer is still
    /// lossless).
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).dropped
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .events
            .len()
    }

    /// `true` when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies out the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Removes and returns the retained events, oldest first, and
    /// zeroes the drop counter.
    pub fn drain(&self) -> Vec<Event> {
        let mut ring = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        ring.dropped = 0;
        ring.events.drain(..).collect()
    }
}

impl Recorder for RingSink {
    fn record(&self, event: &Event) {
        let mut ring = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fields;

    fn pt(name: &'static str) -> Event {
        Event::Point {
            name,
            parent: None,
            depth: 0,
            fields: Fields::new(),
        }
    }

    #[test]
    fn lossless_under_capacity() {
        let ring = RingSink::new(4);
        ring.record(&pt("a"));
        ring.record(&pt("b"));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(
            ring.events().iter().map(|e| e.name()).collect::<Vec<_>>(),
            ["a", "b"]
        );
    }

    #[test]
    fn evicts_oldest_and_counts_drops() {
        let ring = RingSink::new(2);
        for name in ["a", "b", "c", "d"] {
            ring.record(&pt(name));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(
            ring.events().iter().map(|e| e.name()).collect::<Vec<_>>(),
            ["c", "d"]
        );
    }

    #[test]
    fn drain_empties_and_resets() {
        let ring = RingSink::new(1);
        ring.record(&pt("a"));
        ring.record(&pt("b"));
        let drained = ring.drain();
        assert_eq!(drained.len(), 1);
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = RingSink::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.record(&pt("only"));
        assert_eq!(ring.len(), 1);
    }
}
