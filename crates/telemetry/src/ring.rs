//! Bounded in-process event buffer.
//!
//! [`RingSink`] keeps the most recent events up to a fixed capacity —
//! lossless until the cap, then oldest-first eviction with an explicit
//! drop counter so consumers can tell truncation from a quiet run.
//! Useful as a flight recorder: attach it for a whole job, then dump
//! the tail only when something goes wrong.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::{Event, Recorder};

/// A bounded FIFO of recent [`Event`]s.
#[derive(Debug)]
pub struct RingSink {
    inner: Mutex<Ring>,
    capacity: usize,
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<Event>,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            inner: Mutex::new(Ring {
                events: VecDeque::new(),
                dropped: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events evicted so far (0 means the buffer is still
    /// lossless).
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).dropped
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .events
            .len()
    }

    /// `true` when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies out the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Removes and returns the retained events, oldest first, and
    /// zeroes the drop counter.
    pub fn drain(&self) -> Vec<Event> {
        let mut ring = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        ring.dropped = 0;
        ring.events.drain(..).collect()
    }
}

impl Recorder for RingSink {
    fn record(&self, event: &Event) {
        let mut ring = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fields;

    fn pt(name: &'static str) -> Event {
        Event::Point {
            name,
            parent: None,
            depth: 0,
            fields: Fields::new(),
        }
    }

    #[test]
    fn lossless_under_capacity() {
        let ring = RingSink::new(4);
        ring.record(&pt("a"));
        ring.record(&pt("b"));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(
            ring.events().iter().map(|e| e.name()).collect::<Vec<_>>(),
            ["a", "b"]
        );
    }

    #[test]
    fn evicts_oldest_and_counts_drops() {
        let ring = RingSink::new(2);
        for name in ["a", "b", "c", "d"] {
            ring.record(&pt(name));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(
            ring.events().iter().map(|e| e.name()).collect::<Vec<_>>(),
            ["c", "d"]
        );
    }

    #[test]
    fn drain_empties_and_resets() {
        let ring = RingSink::new(1);
        ring.record(&pt("a"));
        ring.record(&pt("b"));
        let drained = ring.drain();
        assert_eq!(drained.len(), 1);
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = RingSink::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.record(&pt("only"));
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn fill_to_exact_capacity_is_still_lossless() {
        let ring = RingSink::new(3);
        for name in ["a", "b", "c"] {
            ring.record(&pt(name));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 0, "hitting capacity exactly drops nothing");
        // One more event tips it over.
        ring.record(&pt("d"));
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 1);
        assert_eq!(
            ring.events().iter().map(|e| e.name()).collect::<Vec<_>>(),
            ["b", "c", "d"]
        );
    }

    #[test]
    fn wrap_many_times_keeps_newest_window_and_total_drop_count() {
        let ring = RingSink::new(4);
        let names: Vec<String> = (0..25).map(|i| format!("e{i}")).collect();
        let leaked: Vec<&'static str> = names
            .iter()
            .map(|s| Box::leak(s.clone().into_boxed_str()) as &'static str)
            .collect();
        for &name in &leaked {
            ring.record(&pt(name));
        }
        // 25 events through a 4-slot ring → 21 evictions, newest 4 kept
        // in arrival order.
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 21);
        assert_eq!(
            ring.events().iter().map(|e| e.name()).collect::<Vec<_>>(),
            ["e21", "e22", "e23", "e24"]
        );
    }

    #[test]
    fn refill_after_drain_wraps_independently() {
        let ring = RingSink::new(2);
        for name in ["a", "b", "c"] {
            ring.record(&pt(name));
        }
        assert_eq!(ring.dropped(), 1);
        ring.drain();
        // After drain the ring restarts lossless from empty.
        ring.record(&pt("x"));
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.len(), 1);
        ring.record(&pt("y"));
        ring.record(&pt("z"));
        assert_eq!(ring.dropped(), 1, "second wrap counts from zero");
        assert_eq!(
            ring.events().iter().map(|e| e.name()).collect::<Vec<_>>(),
            ["y", "z"]
        );
    }

    #[test]
    fn events_is_non_destructive_while_wrapping() {
        let ring = RingSink::new(2);
        ring.record(&pt("a"));
        ring.record(&pt("b"));
        let first = ring.events();
        let second = ring.events();
        assert_eq!(first.len(), 2);
        assert_eq!(second.len(), 2, "peeking does not consume");
        ring.record(&pt("c"));
        assert_eq!(ring.dropped(), 1, "peeking does not reset drop counter");
    }
}
