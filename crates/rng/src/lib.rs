//! # sprout-rng
//!
//! A minimal, dependency-free deterministic PRNG for the SPROUT
//! workspace. The offline crate set has no `rand`, so the seeded board
//! generators ([`sprout_board::presets::random_board`]), the annealing
//! refiner, the property-test harnesses, and the fault-injection plans
//! all draw from this generator instead.
//!
//! The core generator is xoshiro256** (Blackman & Vigna), seeded through
//! SplitMix64 — the standard construction for expanding a 64-bit seed
//! into a full 256-bit state. Streams are stable across platforms and
//! releases: a fixed seed reproduces the same board, the same annealing
//! trajectory, and the same fault plan forever, which the regression
//! suites rely on.
//!
//! # Example
//!
//! ```
//! use sprout_rng::SproutRng;
//! let mut rng = SproutRng::seed_from_u64(42);
//! let x = rng.f64_range(0.5, 5.0);
//! assert!((0.5..5.0).contains(&x));
//! let i = rng.usize_below(10);
//! assert!(i < 10);
//! // Determinism: the same seed yields the same stream.
//! let mut other = SproutRng::seed_from_u64(42);
//! assert_eq!(other.f64_range(0.5, 5.0), x);
//! ```

/// SplitMix64 step: the recommended seeder for xoshiro-family state.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a `(seed, site, counter)` triple to one u64 — used by the
/// fault-injection harness to make every injection site independently
/// deterministic without threading RNG state through the pipeline.
#[inline]
pub fn hash3(seed: u64, site: u64, counter: u64) -> u64 {
    let mut s = seed ^ site.rotate_left(24) ^ counter.rotate_left(48);
    let a = splitmix64(&mut s);
    splitmix64(&mut s) ^ a.rotate_left(17)
}

/// Maps a u64 to a uniform f64 in `[0, 1)` using the top 53 bits.
#[inline]
pub fn u64_to_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// xoshiro256** generator with a SplitMix64 seeding path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SproutRng {
    s: [u64; 4],
}

impl SproutRng {
    /// Seeds the generator from a single 64-bit value.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SproutRng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        u64_to_f64(self.next_u64())
    }

    /// Uniform f64 in `[lo, hi)`. Panics in debug builds if `hi < lo`.
    #[inline]
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo, "empty range {lo}..{hi}");
        lo + (hi - lo) * self.f64()
    }

    /// Uniform usize in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn usize_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "usize_below(0)");
        // Multiply-shift rejection-free mapping (Lemire, biased < 2^-64
        // for the small ranges used here).
        let x = self.next_u64() as u128;
        ((x * n as u128) >> 64) as usize
    }

    /// Uniform usize in `[lo, hi)`.
    #[inline]
    pub fn usize_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(hi > lo, "empty range {lo}..{hi}");
        lo + self.usize_below(hi - lo)
    }

    /// Uniform i64 in `[lo, hi)`.
    #[inline]
    pub fn i64_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(hi > lo, "empty range {lo}..{hi}");
        lo + self.usize_below((hi - lo) as usize) as i64
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Derives an independent child generator (for per-case streams).
    pub fn fork(&mut self) -> Self {
        SproutRng::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SproutRng::seed_from_u64(7);
        let mut b = SproutRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SproutRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SproutRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SproutRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.f64_range(-3.0, 5.5);
            assert!((-3.0..5.5).contains(&x));
            let i = rng.usize_range(4, 9);
            assert!((4..9).contains(&i));
            let j = rng.i64_range(-5, 12);
            assert!((-5..12).contains(&j));
        }
    }

    #[test]
    fn usize_below_covers_range() {
        let mut rng = SproutRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.usize_below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn hash3_is_site_sensitive() {
        assert_ne!(hash3(1, 2, 3), hash3(1, 2, 4));
        assert_ne!(hash3(1, 2, 3), hash3(1, 3, 3));
        assert_ne!(hash3(1, 2, 3), hash3(2, 2, 3));
        assert_eq!(hash3(9, 9, 9), hash3(9, 9, 9));
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = SproutRng::seed_from_u64(11);
        let mut mean = 0.0;
        let n = 50_000;
        for _ in 0..n {
            mean += rng.f64();
        }
        mean /= n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
