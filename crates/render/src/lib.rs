//! # sprout-render
//!
//! SVG rendering of boards and synthesized power-network layouts —
//! the visual outputs of Figs. 8-11 of the paper.
//!
//! No external dependencies: SVG is plain text. The [`dxf`] module
//! additionally exports routed copper as R12 DXF polylines so any PCB
//! tool can import the prototype as a guide layer.
//!
//! # Example
//!
//! ```
//! use sprout_board::presets;
//! use sprout_render::SvgScene;
//!
//! let board = presets::two_rail();
//! let svg = SvgScene::new(&board, presets::TWO_RAIL_ROUTE_LAYER).to_svg();
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.contains("</svg>"));
//! ```

pub mod dxf;

use sprout_board::{Board, ElementRole};
use sprout_core::backconv::RoutedShape;
use sprout_core::{RoutingGraph, Subgraph};
use sprout_geom::{Point, Polygon};
use std::fmt::Write as _;

/// Net colour palette (cycled).
const NET_COLORS: [&str; 8] = [
    "#d95f02", "#1b9e77", "#7570b3", "#e7298a", "#66a61e", "#e6ab02", "#a6761d", "#666666",
];

/// A renderable scene: one board layer plus any number of overlays.
#[derive(Debug, Clone)]
pub struct SvgScene<'b> {
    board: &'b Board,
    layer: usize,
    overlays: Vec<Overlay>,
    scale: f64,
}

#[derive(Debug, Clone)]
enum Overlay {
    Shape {
        label: String,
        color: String,
        contours: Vec<Vec<Point>>,
        fragments: Vec<Polygon>,
    },
    Tiles {
        color: String,
        cells: Vec<(Point, Point)>,
    },
    Heatmap {
        label: String,
        // (cell min, cell max, normalized intensity in [0, 1])
        cells: Vec<(Point, Point, f64)>,
    },
}

/// Maps a normalized intensity in `[0, 1]` onto a cold-to-hot colour
/// ramp (deep blue → cyan → yellow → red), the conventional palette of
/// IR-drop plots. Out-of-range and non-finite values clamp.
pub fn heat_color(t: f64) -> String {
    let t = if t.is_finite() {
        t.clamp(0.0, 1.0)
    } else {
        0.0
    };
    // Piecewise-linear ramp over 4 anchor colours.
    let anchors: [(f64, (u8, u8, u8)); 4] = [
        (0.0, (24, 48, 140)),  // deep blue
        (0.35, (0, 176, 200)), // cyan
        (0.7, (250, 210, 60)), // yellow
        (1.0, (205, 30, 30)),  // red
    ];
    let mut lo = anchors[0];
    let mut hi = anchors[anchors.len() - 1];
    for w in anchors.windows(2) {
        if t >= w[0].0 && t <= w[1].0 {
            lo = w[0];
            hi = w[1];
            break;
        }
    }
    let span = (hi.0 - lo.0).max(1e-12);
    let f = (t - lo.0) / span;
    let lerp = |a: u8, b: u8| -> u8 { (a as f64 + (b as f64 - a as f64) * f).round() as u8 };
    format!(
        "#{:02x}{:02x}{:02x}",
        lerp(lo.1 .0, hi.1 .0),
        lerp(lo.1 .1, hi.1 .1),
        lerp(lo.1 .2, hi.1 .2)
    )
}

impl<'b> SvgScene<'b> {
    /// A scene showing `layer` of `board`.
    pub fn new(board: &'b Board, layer: usize) -> Self {
        SvgScene {
            board,
            layer,
            overlays: Vec::new(),
            scale: 30.0,
        }
    }

    /// Pixels per millimetre (default 30).
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Adds a routed shape overlay with an automatic palette colour.
    pub fn add_route(&mut self, label: impl Into<String>, shape: &RoutedShape) -> &mut Self {
        let color = NET_COLORS[self.overlays.len() % NET_COLORS.len()].to_owned();
        self.add_route_colored(label, shape, color)
    }

    /// Adds a routed shape overlay with an explicit colour.
    pub fn add_route_colored(
        &mut self,
        label: impl Into<String>,
        shape: &RoutedShape,
        color: impl Into<String>,
    ) -> &mut Self {
        self.overlays.push(Overlay::Shape {
            label: label.into(),
            color: color.into(),
            contours: shape.contours.iter().map(|c| c.points.clone()).collect(),
            fragments: shape.fragments.clone(),
        });
        self
    }

    /// Adds a subgraph snapshot (intermediate optimizer state, Fig. 8).
    pub fn add_subgraph(
        &mut self,
        graph: &RoutingGraph,
        sub: &Subgraph,
        color: impl Into<String>,
    ) -> &mut Self {
        let cells = sub
            .members()
            .iter()
            .map(|&m| {
                let r = graph.node(m).rect;
                (r.min(), r.max())
            })
            .collect();
        self.overlays.push(Overlay::Tiles {
            color: color.into(),
            cells,
        });
        self
    }

    /// Adds a spatial heatmap overlay: per-cell rectangles coloured by
    /// a cold-to-hot ramp over the normalized intensity (third tuple
    /// element, expected in `[0, 1]`; non-finite cells are skipped).
    pub fn add_heatmap(
        &mut self,
        label: impl Into<String>,
        cells: Vec<(Point, Point, f64)>,
    ) -> &mut Self {
        self.overlays.push(Overlay::Heatmap {
            label: label.into(),
            cells,
        });
        self
    }

    /// Renders the scene to an SVG string.
    pub fn to_svg(&self) -> String {
        let outline = self.board.outline();
        let s = self.scale;
        let width = outline.width() * s;
        let height = outline.height() * s;
        // SVG y grows downward; flip so board +y is up.
        let tx =
            |p: Point| -> (f64, f64) { ((p.x - outline.min().x) * s, (outline.max().y - p.y) * s) };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" \
             viewBox=\"0 0 {width:.0} {height:.0}\">"
        );
        let _ = writeln!(
            out,
            "<rect x=\"0\" y=\"0\" width=\"{width:.0}\" height=\"{height:.0}\" fill=\"#f8f6f0\" stroke=\"#333\"/>"
        );

        // Board elements on the layer.
        for e in self.board.elements_on_layer(self.layer) {
            let (fill, stroke) = match (e.role, e.net) {
                (ElementRole::Obstacle, None) => ("#bbbbbb", "#555555"),
                (ElementRole::Obstacle, Some(_)) => ("#444444", "#000000"),
                (ElementRole::Source, _) => ("#c62828", "#7f0000"),
                (ElementRole::Sink, _) => ("#1565c0", "#0d2f61"),
                (ElementRole::DecapPad, _) => ("#6a1b9a", "#38006b"),
            };
            let _ = writeln!(
                out,
                "<polygon points=\"{}\" fill=\"{}\" stroke=\"{}\" stroke-width=\"0.5\"/>",
                points_attr(e.shape.vertices(), &tx),
                fill,
                stroke
            );
        }

        // Overlays.
        for ov in &self.overlays {
            match ov {
                Overlay::Shape {
                    label,
                    color,
                    contours,
                    fragments,
                } => {
                    let _ = writeln!(out, "<g id=\"{}\">", xml_escape(label));
                    // Even-odd path over all contour loops (holes work).
                    if !contours.is_empty() {
                        let mut d = String::new();
                        for ring in contours {
                            if ring.is_empty() {
                                continue;
                            }
                            let (x0, y0) = tx(ring[0]);
                            let _ = write!(d, "M{x0:.2},{y0:.2} ");
                            for &p in &ring[1..] {
                                let (x, y) = tx(p);
                                let _ = write!(d, "L{x:.2},{y:.2} ");
                            }
                            let _ = write!(d, "Z ");
                        }
                        let _ = writeln!(
                            out,
                            "<path d=\"{}\" fill=\"{}\" fill-opacity=\"0.55\" fill-rule=\"evenodd\" stroke=\"{}\" stroke-width=\"0.8\"/>",
                            d.trim_end(),
                            color,
                            color
                        );
                    }
                    for f in fragments {
                        let _ = writeln!(
                            out,
                            "<polygon points=\"{}\" fill=\"{}\" fill-opacity=\"0.55\" stroke=\"none\"/>",
                            points_attr(f.vertices(), &tx),
                            color
                        );
                    }
                    let _ = writeln!(out, "</g>");
                }
                Overlay::Tiles { color, cells } => {
                    let _ = writeln!(out, "<g>");
                    for &(min, max) in cells {
                        let (x0, y1) = tx(min);
                        let (x1, y0) = tx(max);
                        let _ = writeln!(
                            out,
                            "<rect x=\"{:.2}\" y=\"{:.2}\" width=\"{:.2}\" height=\"{:.2}\" fill=\"{}\" fill-opacity=\"0.4\"/>",
                            x0,
                            y0,
                            x1 - x0,
                            y1 - y0,
                            color
                        );
                    }
                    let _ = writeln!(out, "</g>");
                }
                Overlay::Heatmap { label, cells } => {
                    let _ = writeln!(out, "<g id=\"{}\">", xml_escape(label));
                    for &(min, max, t) in cells {
                        if !t.is_finite() {
                            continue;
                        }
                        let (x0, y1) = tx(min);
                        let (x1, y0) = tx(max);
                        let _ = writeln!(
                            out,
                            "<rect x=\"{:.2}\" y=\"{:.2}\" width=\"{:.2}\" height=\"{:.2}\" fill=\"{}\" fill-opacity=\"0.65\"/>",
                            x0,
                            y0,
                            x1 - x0,
                            y1 - y0,
                            heat_color(t)
                        );
                    }
                    let _ = writeln!(out, "</g>");
                }
            }
        }
        out.push_str("</svg>\n");
        out
    }
}

fn points_attr(vertices: &[Point], tx: &impl Fn(Point) -> (f64, f64)) -> String {
    let mut s = String::new();
    for &v in vertices {
        let (x, y) = tx(v);
        let _ = write!(s, "{x:.2},{y:.2} ");
    }
    s.trim_end().to_owned()
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprout_board::presets;
    use sprout_core::router::{Router, RouterConfig};

    #[test]
    fn board_scene_renders() {
        let board = presets::two_rail();
        let svg = SvgScene::new(&board, presets::TWO_RAIL_ROUTE_LAYER).to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        // All 27 layer elements drawn: 2 × 10 rail terminals, 6
        // ground vias, 1 blockage.
        assert_eq!(svg.matches("<polygon").count(), 27);
    }

    #[test]
    fn route_overlay_renders() {
        let board = presets::two_rail();
        let config = RouterConfig {
            tile_pitch_mm: 0.6,
            grow_iterations: 5,
            refine_iterations: 1,
            reheat: None,
            ..RouterConfig::default()
        };
        let router = Router::new(&board, config);
        let (net, _) = board.power_nets().next().unwrap();
        let route = router
            .route_net(net, presets::TWO_RAIL_ROUTE_LAYER, 25.0)
            .unwrap();
        let mut scene = SvgScene::new(&board, presets::TWO_RAIL_ROUTE_LAYER);
        scene.add_route("VDD1", &route.shape);
        let svg = scene.to_svg();
        assert!(svg.contains("id=\"VDD1\""));
        assert!(svg.contains("fill-rule=\"evenodd\""));
    }

    #[test]
    fn subgraph_overlay_renders_tiles() {
        let board = presets::two_rail();
        let config = RouterConfig {
            tile_pitch_mm: 0.6,
            grow_iterations: 5,
            refine_iterations: 1,
            reheat: None,
            ..RouterConfig::default()
        };
        let router = Router::new(&board, config);
        let (net, _) = board.power_nets().next().unwrap();
        let route = router
            .route_net(net, presets::TWO_RAIL_ROUTE_LAYER, 25.0)
            .unwrap();
        let mut scene = SvgScene::new(&board, presets::TWO_RAIL_ROUTE_LAYER);
        scene.add_subgraph(&route.graph, &route.subgraph, "#ff0000");
        let svg = scene.to_svg();
        assert!(svg.matches("<rect").count() > route.subgraph.order() / 2);
    }

    #[test]
    fn heatmap_overlay_renders_colored_cells() {
        let board = presets::two_rail();
        let mut scene = SvgScene::new(&board, presets::TWO_RAIL_ROUTE_LAYER);
        let cells = vec![
            (Point::new(1.0, 1.0), Point::new(2.0, 2.0), 0.0),
            (Point::new(2.0, 1.0), Point::new(3.0, 2.0), 1.0),
            (Point::new(3.0, 1.0), Point::new(4.0, 2.0), f64::NAN),
        ];
        scene.add_heatmap("ir_drop", cells);
        let svg = scene.to_svg();
        assert!(svg.contains("id=\"ir_drop\""));
        // NaN cell is skipped: background rect + 2 heatmap rects.
        assert_eq!(svg.matches("<rect").count(), 3);
        assert!(svg.contains(&heat_color(0.0)));
        assert!(svg.contains(&heat_color(1.0)));
    }

    #[test]
    fn heat_color_ramp_endpoints_and_clamping() {
        assert_eq!(heat_color(0.0), "#18308c");
        assert_eq!(heat_color(1.0), "#cd1e1e");
        assert_eq!(heat_color(-5.0), heat_color(0.0));
        assert_eq!(heat_color(7.0), heat_color(1.0));
        assert_eq!(heat_color(f64::NAN), heat_color(0.0));
        // Interior values are distinct from both endpoints.
        let mid = heat_color(0.5);
        assert_ne!(mid, heat_color(0.0));
        assert_ne!(mid, heat_color(1.0));
    }

    #[test]
    fn label_is_escaped() {
        let board = presets::two_rail();
        let config = RouterConfig {
            tile_pitch_mm: 0.8,
            grow_iterations: 3,
            refine_iterations: 0,
            reheat: None,
            ..RouterConfig::default()
        };
        let router = Router::new(&board, config);
        let (net, _) = board.power_nets().next().unwrap();
        let route = router
            .route_net(net, presets::TWO_RAIL_ROUTE_LAYER, 25.0)
            .unwrap();
        let mut scene = SvgScene::new(&board, presets::TWO_RAIL_ROUTE_LAYER);
        scene.add_route("a<b&\"c\"", &route.shape);
        let svg = scene.to_svg();
        assert!(svg.contains("a&lt;b&amp;&quot;c&quot;"));
    }
}
