//! Minimal DXF (R12 ASCII) export of routed layouts.
//!
//! The paper's Fig. 2 flow hands the prototype to an impedance
//! extractor and ultimately "may guide the final layout". A DXF of the
//! synthesized copper lets any PCB tool (KiCad, Altium, Allegro) import
//! the prototype as a drawing layer. R12 POLYLINE entities are the
//! lowest common denominator every importer understands.

use sprout_core::backconv::RoutedShape;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A DXF document under construction.
#[derive(Debug, Clone, Default)]
pub struct DxfDocument {
    entities: String,
    layers: Vec<String>,
}

impl DxfDocument {
    /// An empty document.
    pub fn new() -> Self {
        DxfDocument::default()
    }

    /// Adds a routed shape on a named DXF layer (contours, including
    /// hole loops, plus fragment polygons — importers apply even-odd
    /// semantics per closed polyline).
    pub fn add_shape(&mut self, layer: &str, shape: &RoutedShape) -> &mut Self {
        if !self.layers.iter().any(|l| l == layer) {
            self.layers.push(layer.to_owned());
        }
        for contour in &shape.contours {
            let pts: Vec<(f64, f64)> = contour.points.iter().map(|p| (p.x, p.y)).collect();
            self.push_polyline(layer, &pts);
        }
        for fragment in &shape.fragments {
            let pts: Vec<(f64, f64)> = fragment.vertices().iter().map(|p| (p.x, p.y)).collect();
            self.push_polyline(layer, &pts);
        }
        self
    }

    fn push_polyline(&mut self, layer: &str, points: &[(f64, f64)]) {
        if points.len() < 2 {
            return;
        }
        let e = &mut self.entities;
        let _ = writeln!(e, "0\nPOLYLINE\n8\n{layer}\n66\n1\n70\n1");
        for &(x, y) in points {
            let _ = writeln!(e, "0\nVERTEX\n8\n{layer}\n10\n{x:.6}\n20\n{y:.6}");
        }
        let _ = writeln!(e, "0\nSEQEND");
    }

    /// Serializes the document (R12 ASCII: TABLES with the layer list,
    /// then ENTITIES).
    pub fn to_dxf(&self) -> String {
        let mut out = String::new();
        // Layer table.
        out.push_str("0\nSECTION\n2\nTABLES\n0\nTABLE\n2\nLAYER\n70\n");
        let _ = writeln!(out, "{}", self.layers.len());
        for layer in &self.layers {
            let _ = writeln!(out, "0\nLAYER\n2\n{layer}\n70\n0\n62\n7\n6\nCONTINUOUS");
        }
        out.push_str("0\nENDTAB\n0\nENDSEC\n");
        // Entities.
        out.push_str("0\nSECTION\n2\nENTITIES\n");
        out.push_str(&self.entities);
        out.push_str("0\nENDSEC\n0\nEOF\n");
        out
    }

    /// Streams the serialized document into `w`, propagating I/O errors
    /// instead of panicking (write failures on handoff files are real:
    /// full disks, revoked permissions, dead network mounts).
    ///
    /// # Errors
    ///
    /// Any error from the underlying writer.
    pub fn emit<W: io::Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(self.to_dxf().as_bytes())
    }

    /// Writes the document to `path`, creating or truncating the file.
    ///
    /// # Errors
    ///
    /// Any error from creating or writing the file.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut buf = io::BufWriter::new(file);
        self.emit(&mut buf)?;
        io::Write::flush(&mut buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprout_board::presets;
    use sprout_core::router::{Router, RouterConfig};

    fn routed() -> RoutedShape {
        let board = presets::two_rail();
        let config = RouterConfig {
            tile_pitch_mm: 0.6,
            grow_iterations: 5,
            refine_iterations: 1,
            reheat: None,
            ..RouterConfig::default()
        };
        let router = Router::new(&board, config);
        let (net, _) = board.power_nets().next().unwrap();
        router
            .route_net(net, presets::TWO_RAIL_ROUTE_LAYER, 25.0)
            .unwrap()
            .shape
    }

    #[test]
    fn dxf_structure_is_well_formed() {
        let shape = routed();
        let mut doc = DxfDocument::new();
        doc.add_shape("VDD1_L7", &shape);
        let dxf = doc.to_dxf();
        assert!(dxf.starts_with("0\nSECTION\n2\nTABLES"));
        assert!(dxf.ends_with("0\nEOF\n"));
        assert!(dxf.contains("2\nVDD1_L7"));
        // Every POLYLINE is closed (70/1) and terminated.
        let polylines = dxf.matches("0\nPOLYLINE").count();
        let seqends = dxf.matches("0\nSEQEND").count();
        assert!(polylines > 0);
        assert_eq!(polylines, seqends);
        // Vertex count matches the shape's vertex count.
        let vertices = dxf.matches("0\nVERTEX").count();
        assert_eq!(vertices, shape.vertex_count());
    }

    #[test]
    fn multiple_layers_registered_once() {
        let shape = routed();
        let mut doc = DxfDocument::new();
        doc.add_shape("A", &shape)
            .add_shape("A", &shape)
            .add_shape("B", &shape);
        let dxf = doc.to_dxf();
        assert_eq!(dxf.matches("0\nLAYER\n2\nA").count(), 1);
        assert_eq!(dxf.matches("0\nLAYER\n2\nB").count(), 1);
    }

    #[test]
    fn emit_streams_same_bytes_as_to_dxf() {
        let shape = routed();
        let mut doc = DxfDocument::new();
        doc.add_shape("VDD1_L7", &shape);
        let mut buf = Vec::new();
        doc.emit(&mut buf).unwrap();
        assert_eq!(buf, doc.to_dxf().into_bytes());
    }

    #[test]
    fn write_to_propagates_io_error_for_bad_path() {
        let doc = DxfDocument::new();
        let err = doc.write_to("/nonexistent-dir-xyzzy/out.dxf");
        assert!(err.is_err());
    }

    #[test]
    fn empty_document_is_valid() {
        let dxf = DxfDocument::new().to_dxf();
        assert!(dxf.contains("ENTITIES"));
        assert!(dxf.ends_with("0\nEOF\n"));
    }
}
