//! Persistent tiling sessions — the `tile` stage analogue of the
//! incremental [`NodalSession`](crate::session::NodalSession).
//!
//! [`space_to_graph`](crate::tile::space_to_graph) rebuilds the whole
//! cell lattice from scratch on every call, which made the tiling stage
//! the dominant cost of every benchmark once the solver went
//! incremental. A [`TilingSession`] is constructed once per
//! `(board, layer, pitch)` from a [`SpaceSpec`] and then:
//!
//! * hands out [`RoutingGraph`]s without re-clipping anything
//!   (*reuse*),
//! * absorbs blocker deltas — claimed copper added between waves, a
//!   removed keep-out — by re-clipping only the cells whose rects
//!   intersect the changed geometry (*incremental re-tiling*, the
//!   [`TilingSession::note_blocker_added`] /
//!   [`TilingSession::note_blocker_removed`] mirror of the solver's
//!   `note_insert`/`note_remove`),
//! * keeps all scratch (convex clip buffers, cross-section interval
//!   sets, per-blocker convex decompositions) alive across rebuilds so
//!   the steady state allocates nothing, and
//! * splits the initial clip into row bands tiled in parallel. Every
//!   cell is a pure function of its blocker list, so the produced
//!   graphs are bit-identical at any thread count.
//!
//! Blockers are matched against an updated [`SpaceSpec`] by longest
//! common prefix: the spec's blocker list is append-mostly (stable
//! buffered foreign-net geometry followed by monotonically growing
//! claimed copper), so retries and later waves reduce to a handful of
//! appended polygons. Cells find their blockers through a uniform
//! lattice raster of blocker bounds (one `Vec<u32>` of ascending
//! blocker slots per cell) instead of a per-cell spatial-index query.

use crate::graph::{GraphEdge, NodeId, RoutingGraph, TileNode};
use crate::space::SpaceSpec;
use crate::tile::TileOptions;
use crate::SproutError;
use sprout_geom::clip::HalfPlane;
use sprout_geom::stitch::GridFrame;
use sprout_geom::triangulate::convex_parts;
use sprout_geom::{ConvexClipper, IntervalSet, Point, Polygon, PolygonSet, Rect};
use sprout_telemetry as telemetry;

/// Tiling engine selection, mirroring
/// [`SolverEngine`](crate::session::SolverEngine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TileMode {
    /// Persistent sessions: graphs are reused and patched
    /// incrementally across retries, rails, and sweep points.
    #[default]
    Session,
    /// Re-tile from scratch on every call (reference behaviour; the
    /// session and scratch engines share one clip kernel, so their
    /// graphs are bit-identical).
    Scratch,
}

/// Tiling configuration carried by
/// [`RouterConfig`](crate::router::RouterConfig), mirroring
/// [`SolverConfig`](crate::session::SolverConfig).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileConfig {
    /// Engine selection.
    pub mode: TileMode,
    /// Threads for the initial parallel clip of row bands; `0` uses
    /// the machine parallelism. Every cell is a pure function of its
    /// blocker list, so any value yields bit-identical graphs.
    pub threads: usize,
}

impl Default for TileConfig {
    fn default() -> Self {
        TileConfig {
            mode: TileMode::Session,
            threads: 0,
        }
    }
}

/// Counters describing how a session served its graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TileSessionStats {
    /// Full lattice builds (construction and universe changes).
    pub rebuilds: u64,
    /// Updates served by re-clipping only the delta-touched cells.
    pub incremental_updates: u64,
    /// Updates where the blocker set was unchanged (pure reuse).
    pub reuse_hits: u64,
    /// Cells re-clipped across all incremental updates.
    pub cells_reclipped: u64,
}

/// How [`TilingSession::update_to`] served a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileOutcome {
    /// The lattice was rebuilt from scratch.
    Rebuilt,
    /// Only delta-touched cells were re-clipped.
    Patched,
    /// The blocker set was unchanged; nothing was recomputed.
    Reused,
}

/// One blocker polygon with its cached convex decomposition. Slots are
/// tombstoned rather than reused so live slot order always equals
/// insertion order — exactly the order a fresh [`SpaceSpec`] would
/// present the same blockers in.
#[derive(Debug, Clone)]
struct BlockerSlot {
    poly: Polygon,
    /// Convex parts with their bounds: big blockers (claimed copper from
    /// earlier rails) raster onto many cells, but each cell only has to
    /// subtract the parts whose bounds actually reach it.
    parts: Vec<(Polygon, Rect)>,
    bounds: Rect,
    alive: bool,
}

fn convex_parts_with_bounds(poly: &Polygon) -> Vec<(Polygon, Rect)> {
    convex_parts(poly)
        .into_iter()
        .map(|part| {
            let bounds = part.bounds();
            (part, bounds)
        })
        .collect()
}

/// Clip result of one lattice cell.
#[derive(Debug, Clone)]
enum CellState {
    /// Degenerate geometry (sliver row/column outside the universe).
    Void,
    /// No blocker touches the cell: the full (outline-clipped) rect.
    Full,
    /// Clipped against blockers; a node iff `area` clears the sliver
    /// threshold.
    Cut { area: f64, pieces: PolygonSet },
}

/// Reusable cross-section buffers for the edge pass.
#[derive(Debug, Clone, Default)]
struct EdgeScratch {
    a: IntervalSet,
    b: IntervalSet,
    overlap: IntervalSet,
    crossings: Vec<f64>,
}

/// A persistent tiling of one `(SpaceSpec, TileOptions)` pair.
#[derive(Debug, Clone)]
pub struct TilingSession {
    opts: TileOptions,
    frame: GridFrame,
    universe: Rect,
    nx: usize,
    ny: usize,
    min_area: f64,
    threads: usize,
    blockers: Vec<BlockerSlot>,
    /// Live slots in spec order (ascending by construction).
    order: Vec<u32>,
    /// Per cell: blocker slots whose bounds raster onto the cell,
    /// ascending.
    cell_blockers: Vec<Vec<u32>>,
    cells: Vec<CellState>,
    /// Contact width between `(i-1, j)` and `(i, j)`; `0` when either
    /// cell has no node.
    west_width: Vec<f64>,
    /// Contact width between `(i, j-1)` and `(i, j)`.
    south_width: Vec<f64>,
    clipper: ConvexClipper,
    xs: EdgeScratch,
    dirty: Vec<u32>,
    dirty_mark: Vec<bool>,
    stats: TileSessionStats,
}

impl TilingSession {
    /// Builds the session (and its initial lattice) from a spec.
    ///
    /// # Errors
    ///
    /// Returns [`SproutError::InvalidConfig`] for non-positive pitches
    /// or a sliver threshold outside `[0, 1)`.
    pub fn new(spec: &SpaceSpec, opts: TileOptions, threads: usize) -> Result<Self, SproutError> {
        if opts.dx <= 0.0 || opts.dy <= 0.0 {
            return Err(SproutError::InvalidConfig("tile pitch must be positive"));
        }
        if !(0.0..1.0).contains(&opts.min_cell_fraction) {
            return Err(SproutError::InvalidConfig(
                "min_cell_fraction must be in [0, 1)",
            ));
        }
        let u = spec.design_space;
        let nx = (u.width() / opts.dx).ceil() as usize;
        let ny = (u.height() / opts.dy).ceil() as usize;
        let mut session = TilingSession {
            opts,
            frame: GridFrame {
                origin: u.min(),
                dx: opts.dx,
                dy: opts.dy,
            },
            universe: u,
            nx,
            ny,
            min_area: opts.min_cell_fraction * opts.dx * opts.dy,
            threads,
            blockers: Vec::new(),
            order: Vec::new(),
            cell_blockers: vec![Vec::new(); nx * ny],
            cells: vec![CellState::Void; nx * ny],
            west_width: vec![0.0; nx * ny],
            south_width: vec![0.0; nx * ny],
            clipper: ConvexClipper::new(),
            xs: EdgeScratch::default(),
            dirty: Vec::new(),
            dirty_mark: vec![false; nx * ny],
            stats: TileSessionStats::default(),
        };
        session.rebuild_from(spec);
        Ok(session)
    }

    /// Brings the session in sync with `spec`, re-clipping as little as
    /// possible: nothing when the blocker set is unchanged, only the
    /// delta-touched cells when blockers were appended/removed, the
    /// whole lattice when the design space itself changed.
    pub fn update_to(&mut self, spec: &SpaceSpec) -> TileOutcome {
        if spec.design_space != self.universe {
            self.universe = spec.design_space;
            self.frame.origin = self.universe.min();
            self.nx = (self.universe.width() / self.opts.dx).ceil() as usize;
            self.ny = (self.universe.height() / self.opts.dy).ceil() as usize;
            let n = self.nx * self.ny;
            self.cell_blockers = vec![Vec::new(); n];
            self.cells = vec![CellState::Void; n];
            self.west_width = vec![0.0; n];
            self.south_width = vec![0.0; n];
            self.dirty_mark = vec![false; n];
            self.dirty.clear();
            self.rebuild_from(spec);
            return TileOutcome::Rebuilt;
        }
        // Longest common prefix of the live blockers and the spec's.
        let mut common = 0;
        while common < self.order.len()
            && common < spec.blockers.len()
            && self.blockers[self.order[common] as usize].poly == spec.blockers[common]
        {
            common += 1;
        }
        if common == self.order.len() && common == spec.blockers.len() {
            self.stats.reuse_hits += 1;
            telemetry::counter!("tile.reuse_hits");
            return TileOutcome::Reused;
        }
        let mut span = telemetry::span("tile.incremental")
            .field("removed", (self.order.len() - common) as u64)
            .field("added", (spec.blockers.len() - common) as u64)
            .enter();
        for pos in (common..self.order.len()).rev() {
            self.note_blocker_removed(pos);
        }
        for poly in &spec.blockers[common..] {
            self.note_blocker_added(poly.clone());
        }
        let reclipped = self.flush();
        span.record("cells_reclipped", reclipped);
        self.stats.incremental_updates += 1;
        telemetry::counter!("tile.reuse_hits");
        TileOutcome::Patched
    }

    /// Registers one appended blocker polygon; affected cells are
    /// re-clipped lazily at the next [`TilingSession::graph`] call (or
    /// explicitly via `update_to`).
    pub fn note_blocker_added(&mut self, poly: Polygon) {
        let slot = self.blockers.len() as u32;
        let bounds = poly.bounds();
        let parts = convex_parts_with_bounds(&poly);
        self.blockers.push(BlockerSlot {
            poly,
            parts,
            bounds,
            alive: true,
        });
        self.order.push(slot);
        let (i0, i1, j0, j1) = self.raster_range(&bounds);
        for j in j0..=j1 {
            for i in i0..=i1 {
                let idx = j * self.nx + i;
                self.cell_blockers[idx].push(slot);
                if let Some(rect) = self.cell_rect(i, j) {
                    if bounds.intersects(&rect) {
                        self.mark_dirty(idx);
                    }
                }
            }
        }
    }

    /// Removes the blocker at `pos` in live (spec) order; affected
    /// cells are re-clipped lazily, mirroring `note_blocker_added`.
    ///
    /// # Panics
    ///
    /// Panics when `pos` is out of range of the live blocker list.
    pub fn note_blocker_removed(&mut self, pos: usize) {
        let slot = self.order.remove(pos);
        self.blockers[slot as usize].alive = false;
        let bounds = self.blockers[slot as usize].bounds;
        let (i0, i1, j0, j1) = self.raster_range(&bounds);
        for j in j0..=j1 {
            for i in i0..=i1 {
                let idx = j * self.nx + i;
                self.cell_blockers[idx].retain(|&s| s != slot);
                if let Some(rect) = self.cell_rect(i, j) {
                    if bounds.intersects(&rect) {
                        self.mark_dirty(idx);
                    }
                }
            }
        }
    }

    /// The number of live blockers the lattice is clipped against.
    pub fn blocker_count(&self) -> usize {
        self.order.len()
    }

    /// Session counters.
    pub fn stats(&self) -> TileSessionStats {
        self.stats
    }

    /// Assembles the current lattice into a [`RoutingGraph`], flushing
    /// any pending blocker deltas first.
    pub fn graph(&mut self) -> RoutingGraph {
        if !self.dirty.is_empty() {
            let mut span = telemetry::span("tile.incremental").enter();
            let reclipped = self.flush();
            span.record("cells_reclipped", reclipped);
        }
        let mut nodes: Vec<TileNode> = Vec::new();
        let mut cell_node: Vec<Option<u32>> = vec![None; self.nx * self.ny];
        for j in 0..self.ny {
            for i in 0..self.nx {
                let idx = j * self.nx + i;
                let (area, pieces) = match &self.cells[idx] {
                    CellState::Void => continue,
                    CellState::Full => {
                        let rect = self.cell_rect(i, j).expect("full cell has a rect");
                        (rect.area(), None)
                    }
                    CellState::Cut { area, pieces } => {
                        if *area < self.min_area {
                            continue;
                        }
                        (*area, Some(pieces.clone()))
                    }
                };
                let rect = self.cell_rect(i, j).expect("node cell has a rect");
                cell_node[idx] = Some(nodes.len() as u32);
                nodes.push(TileNode {
                    cell: (i as i64, j as i64),
                    rect,
                    area_mm2: area,
                    pieces,
                });
            }
        }
        let mut edges: Vec<GraphEdge> = Vec::new();
        for j in 0..self.ny {
            for i in 0..self.nx {
                let idx = j * self.nx + i;
                let Some(here) = cell_node[idx] else { continue };
                if i > 0 {
                    if let Some(west) = cell_node[idx - 1] {
                        let width = self.west_width[idx];
                        if width > 1e-9 {
                            edges.push(GraphEdge {
                                a: NodeId(west),
                                b: NodeId(here),
                                weight: width / self.opts.dx,
                            });
                        }
                    }
                }
                if j > 0 {
                    if let Some(south) = cell_node[idx - self.nx] {
                        let width = self.south_width[idx];
                        if width > 1e-9 {
                            edges.push(GraphEdge {
                                a: NodeId(south),
                                b: NodeId(here),
                                weight: width / self.opts.dy,
                            });
                        }
                    }
                }
            }
        }
        RoutingGraph::assemble(self.frame, nodes, edges)
    }

    /// Full rebuild: reload blockers from the spec and clip every cell.
    fn rebuild_from(&mut self, spec: &SpaceSpec) {
        self.blockers.clear();
        self.order.clear();
        for list in &mut self.cell_blockers {
            list.clear();
        }
        for (slot, poly) in spec.blockers.iter().enumerate() {
            let bounds = poly.bounds();
            self.blockers.push(BlockerSlot {
                poly: poly.clone(),
                parts: convex_parts_with_bounds(poly),
                bounds,
                alive: true,
            });
            self.order.push(slot as u32);
            let (i0, i1, j0, j1) = self.raster_range(&bounds);
            for j in j0..=j1 {
                for i in i0..=i1 {
                    self.cell_blockers[j * self.nx + i].push(slot as u32);
                }
            }
        }
        for idx in self.dirty.drain(..) {
            self.dirty_mark[idx as usize] = false;
        }
        self.build_all();
        self.stats.rebuilds += 1;
    }

    /// Clips every cell and computes every contact width, in parallel
    /// row bands. Bit-identical at any thread count: each cell is a
    /// pure function of its blocker list, and each band writes a
    /// disjoint slice.
    fn build_all(&mut self) {
        let threads = effective_threads(self.threads).min(self.ny.max(1));
        let geo = CellGeometry {
            universe: self.universe,
            origin: self.frame.origin,
            dx: self.opts.dx,
            dy: self.opts.dy,
            nx: self.nx,
            min_area: self.min_area,
        };
        let blockers = &self.blockers;
        let cell_blockers = &self.cell_blockers;

        let mut cells_span = telemetry::span("tile.cells").enter();
        let band_rows = self.ny.div_ceil(threads).max(1);
        if threads <= 1 || self.ny <= 1 {
            let mut clipper = std::mem::take(&mut self.clipper);
            clip_band(
                &geo,
                0,
                &mut self.cells,
                blockers,
                cell_blockers,
                &mut clipper,
            );
            self.clipper = clipper;
        } else {
            std::thread::scope(|scope| {
                for (band, chunk) in self.cells.chunks_mut(band_rows * geo.nx).enumerate() {
                    scope.spawn(move || {
                        let mut clipper = ConvexClipper::new();
                        clip_band(
                            &geo,
                            band * band_rows,
                            chunk,
                            blockers,
                            cell_blockers,
                            &mut clipper,
                        );
                    });
                }
            });
        }
        let node_count = (0..self.nx * self.ny)
            .filter(|&idx| has_node(&self.cells[idx], self.min_area))
            .count();
        cells_span.record("nodes", node_count as u64);
        drop(cells_span);

        let mut edges_span = telemetry::span("tile.edges").enter();
        let cells = &self.cells;
        if threads <= 1 || self.ny <= 1 {
            let mut xs = std::mem::take(&mut self.xs);
            width_band(
                &geo,
                0,
                &mut self.west_width,
                &mut self.south_width,
                cells,
                &mut xs,
            );
            self.xs = xs;
        } else {
            std::thread::scope(|scope| {
                let west_bands = self.west_width.chunks_mut(band_rows * geo.nx);
                let south_bands = self.south_width.chunks_mut(band_rows * geo.nx);
                for (band, (wchunk, schunk)) in west_bands.zip(south_bands).enumerate() {
                    scope.spawn(move || {
                        let mut xs = EdgeScratch::default();
                        width_band(&geo, band * band_rows, wchunk, schunk, cells, &mut xs);
                    });
                }
            });
        }
        let edge_count = self
            .west_width
            .iter()
            .chain(self.south_width.iter())
            .filter(|&&w| w > 1e-9)
            .count();
        edges_span.record("edges", edge_count as u64);
    }

    /// Re-clips the dirty cells and patches the touched contact widths.
    /// Returns the number of cells re-clipped.
    fn flush(&mut self) -> u64 {
        let geo = self.geometry();
        let reclipped = self.dirty.len() as u64;
        let mut clipper = std::mem::take(&mut self.clipper);
        for k in 0..self.dirty.len() {
            let idx = self.dirty[k] as usize;
            self.cells[idx] = clip_cell(
                &geo,
                idx % self.nx,
                idx / self.nx,
                &self.cell_blockers[idx],
                &self.blockers,
                &mut clipper,
            );
        }
        self.clipper = clipper;
        // A re-clipped cell can change its node-ness and its contact
        // geometry, so all four of its widths must be refreshed — the
        // east/north ones live on the neighbouring cells.
        let mut xs = std::mem::take(&mut self.xs);
        for k in 0..self.dirty.len() {
            let idx = self.dirty[k] as usize;
            let (i, j) = (idx % self.nx, idx / self.nx);
            self.west_width[idx] = edge_width_west(&geo, i, j, &self.cells, &mut xs);
            self.south_width[idx] = edge_width_south(&geo, i, j, &self.cells, &mut xs);
            if i + 1 < self.nx {
                self.west_width[idx + 1] = edge_width_west(&geo, i + 1, j, &self.cells, &mut xs);
            }
            if j + 1 < self.ny {
                self.south_width[idx + self.nx] =
                    edge_width_south(&geo, i, j + 1, &self.cells, &mut xs);
            }
        }
        self.xs = xs;
        self.stats.cells_reclipped += reclipped;
        for idx in self.dirty.drain(..) {
            self.dirty_mark[idx as usize] = false;
        }
        reclipped
    }

    fn geometry(&self) -> CellGeometry {
        CellGeometry {
            universe: self.universe,
            origin: self.frame.origin,
            dx: self.opts.dx,
            dy: self.opts.dy,
            nx: self.nx,
            min_area: self.min_area,
        }
    }

    fn cell_rect(&self, i: usize, j: usize) -> Option<Rect> {
        self.geometry().cell_rect(i, j)
    }

    fn mark_dirty(&mut self, idx: usize) {
        if !self.dirty_mark[idx] {
            self.dirty_mark[idx] = true;
            self.dirty.push(idx as u32);
        }
    }

    /// Lattice index range covered by `bounds`, padded by one cell so
    /// the exact per-cell intersection filter is the only arbiter.
    fn raster_range(&self, bounds: &Rect) -> (usize, usize, usize, usize) {
        let clamp = |v: f64, hi: usize| -> usize {
            if hi == 0 {
                return 0;
            }
            (v.floor().max(0.0) as usize).min(hi - 1)
        };
        let ox = self.frame.origin.x;
        let oy = self.frame.origin.y;
        let i0 = clamp((bounds.min().x - ox) / self.opts.dx - 1.0, self.nx);
        let i1 = clamp((bounds.max().x - ox) / self.opts.dx + 1.0, self.nx);
        let j0 = clamp((bounds.min().y - oy) / self.opts.dy - 1.0, self.ny);
        let j1 = clamp((bounds.max().y - oy) / self.opts.dy + 1.0, self.ny);
        (i0, i1, j0, j1)
    }
}

/// The lattice geometry shared by the clip and edge kernels.
#[derive(Debug, Clone, Copy)]
struct CellGeometry {
    universe: Rect,
    origin: Point,
    dx: f64,
    dy: f64,
    nx: usize,
    min_area: f64,
}

impl CellGeometry {
    /// The outline-clipped rect of cell `(i, j)`; `None` for degenerate
    /// sliver rows/columns.
    fn cell_rect(&self, i: usize, j: usize) -> Option<Rect> {
        let x0 = self.origin.x + i as f64 * self.dx;
        let y0 = self.origin.y + j as f64 * self.dy;
        let x1 = (x0 + self.dx).min(self.universe.max().x);
        let y1 = (y0 + self.dy).min(self.universe.max().y);
        if x1 - x0 < 1e-12 || y1 - y0 < 1e-12 {
            return None;
        }
        Some(Rect::new(Point::new(x0, y0), Point::new(x1, y1)).expect("positive cell extent"))
    }
}

fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

fn has_node(state: &CellState, min_area: f64) -> bool {
    match state {
        CellState::Void => false,
        CellState::Full => true,
        CellState::Cut { area, .. } => *area >= min_area,
    }
}

/// Clips one cell against its (ascending-slot) blocker list.
fn clip_cell(
    geo: &CellGeometry,
    i: usize,
    j: usize,
    slots: &[u32],
    blockers: &[BlockerSlot],
    clipper: &mut ConvexClipper,
) -> CellState {
    let Some(rect) = geo.cell_rect(i, j) else {
        return CellState::Void;
    };
    let mut touched = false;
    for &slot in slots {
        let b = &blockers[slot as usize];
        if !b.alive || !b.bounds.intersects(&rect) {
            continue;
        }
        for (part, part_bounds) in &b.parts {
            if !part_bounds.intersects(&rect) {
                continue;
            }
            // Claimed copper is run-merged full-cell rects on this very
            // lattice, so one part covering the whole cell is the common
            // case on later rails — the cell vanishes without any wedge
            // subtraction.
            if part_bounds.contains_rect(&rect) && convex_covers_rect(part, &rect) {
                return CellState::Cut {
                    area: 0.0,
                    pieces: PolygonSet::new(),
                };
            }
            if !touched {
                let (lo, hi) = (rect.min(), rect.max());
                clipper.reset_ring(&[lo, Point::new(hi.x, lo.y), hi, Point::new(lo.x, hi.y)]);
                touched = true;
            }
            clipper.subtract_bounded(part, part_bounds);
        }
        if touched && clipper.is_empty() {
            break;
        }
    }
    if !touched {
        return CellState::Full;
    }
    let pieces = clipper.finish();
    let area = pieces.area();
    CellState::Cut { area, pieces }
}

/// `true` when the convex `part` fully covers `rect`: every rect corner
/// lies inside every edge half-plane of the (counter-clockwise) part.
fn convex_covers_rect(part: &Polygon, rect: &Rect) -> bool {
    let vs = part.vertices();
    let n = vs.len();
    let corners = [
        rect.min(),
        Point::new(rect.max().x, rect.min().y),
        rect.max(),
        Point::new(rect.min().x, rect.max().y),
    ];
    (0..n).all(|i| {
        let hp = HalfPlane::left_of_edge(vs[i], vs[(i + 1) % n]);
        corners.iter().all(|&c| hp.contains(c))
    })
}

/// Clips a contiguous band of cells starting at row `j0`.
fn clip_band(
    geo: &CellGeometry,
    j0: usize,
    out: &mut [CellState],
    blockers: &[BlockerSlot],
    cell_blockers: &[Vec<u32>],
    clipper: &mut ConvexClipper,
) {
    let base = j0 * geo.nx;
    for (k, cell) in out.iter_mut().enumerate() {
        let idx = base + k;
        *cell = clip_cell(
            geo,
            idx % geo.nx,
            idx / geo.nx,
            &cell_blockers[idx],
            blockers,
            clipper,
        );
    }
}

/// Cross-section of a cell at the vertical line `x`, into `out`.
fn cell_cross_x(
    geo: &CellGeometry,
    i: usize,
    j: usize,
    state: &CellState,
    x: f64,
    xs_crossings: &mut Vec<f64>,
    out: &mut IntervalSet,
) {
    match state {
        CellState::Void => out.clear(),
        CellState::Full => {
            out.clear();
            let rect = geo.cell_rect(i, j).expect("full cell has a rect");
            if x >= rect.min().x && x <= rect.max().x {
                out.insert(rect.min().y, rect.max().y);
            }
        }
        CellState::Cut { pieces, .. } => pieces.cross_section_x_into(x, xs_crossings, out),
    }
}

/// Cross-section of a cell at the horizontal line `y`, into `out`.
fn cell_cross_y(
    geo: &CellGeometry,
    i: usize,
    j: usize,
    state: &CellState,
    y: f64,
    xs_crossings: &mut Vec<f64>,
    out: &mut IntervalSet,
) {
    match state {
        CellState::Void => out.clear(),
        CellState::Full => {
            out.clear();
            let rect = geo.cell_rect(i, j).expect("full cell has a rect");
            if y >= rect.min().y && y <= rect.max().y {
                out.insert(rect.min().x, rect.max().x);
            }
        }
        CellState::Cut { pieces, .. } => pieces.cross_section_y_into(y, xs_crossings, out),
    }
}

/// Contact width between `(i-1, j)` and `(i, j)`; `0` when either cell
/// has no node. The contact is measured by intersecting cross-sections
/// taken a hair inside each tile, which sidesteps collinear-boundary
/// degeneracies.
fn edge_width_west(
    geo: &CellGeometry,
    i: usize,
    j: usize,
    cells: &[CellState],
    xs: &mut EdgeScratch,
) -> f64 {
    if i == 0 {
        return 0.0;
    }
    let idx = j * geo.nx + i;
    let (a, b) = (&cells[idx - 1], &cells[idx]);
    if !has_node(a, geo.min_area) || !has_node(b, geo.min_area) {
        return 0.0;
    }
    let delta = 1e-4 * geo.dx.min(geo.dy);
    let x_shared = geo.origin.x + i as f64 * geo.dx;
    cell_cross_x(
        geo,
        i - 1,
        j,
        a,
        x_shared - delta,
        &mut xs.crossings,
        &mut xs.a,
    );
    cell_cross_x(geo, i, j, b, x_shared + delta, &mut xs.crossings, &mut xs.b);
    xs.a.intersect_into(&xs.b, &mut xs.overlap);
    xs.overlap.total_length()
}

/// Contact width between `(i, j-1)` and `(i, j)`.
fn edge_width_south(
    geo: &CellGeometry,
    i: usize,
    j: usize,
    cells: &[CellState],
    xs: &mut EdgeScratch,
) -> f64 {
    if j == 0 {
        return 0.0;
    }
    let idx = j * geo.nx + i;
    let (a, b) = (&cells[idx - geo.nx], &cells[idx]);
    if !has_node(a, geo.min_area) || !has_node(b, geo.min_area) {
        return 0.0;
    }
    let delta = 1e-4 * geo.dx.min(geo.dy);
    let y_shared = geo.origin.y + j as f64 * geo.dy;
    cell_cross_y(
        geo,
        i,
        j - 1,
        a,
        y_shared - delta,
        &mut xs.crossings,
        &mut xs.a,
    );
    cell_cross_y(geo, i, j, b, y_shared + delta, &mut xs.crossings, &mut xs.b);
    xs.a.intersect_into(&xs.b, &mut xs.overlap);
    xs.overlap.total_length()
}

/// Computes contact widths for a contiguous band of cells starting at
/// row `j0` (both width arrays, same band).
fn width_band(
    geo: &CellGeometry,
    j0: usize,
    west: &mut [f64],
    south: &mut [f64],
    cells: &[CellState],
    xs: &mut EdgeScratch,
) {
    let base = j0 * geo.nx;
    for k in 0..west.len() {
        let idx = base + k;
        let (i, j) = (idx % geo.nx, idx / geo.nx);
        west[k] = edge_width_west(geo, i, j, cells, xs);
        south[k] = edge_width_south(geo, i, j, cells, xs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::space_to_graph;
    use sprout_board::presets;

    fn graphs_bit_equal(a: &RoutingGraph, b: &RoutingGraph) -> bool {
        a.node_count() == b.node_count()
            && a.edge_count() == b.edge_count()
            && a.nodes().iter().zip(b.nodes()).all(|(x, y)| {
                x.cell == y.cell
                    && x.area_mm2.to_bits() == y.area_mm2.to_bits()
                    && x.pieces.is_some() == y.pieces.is_some()
            })
            && a.edges()
                .iter()
                .zip(b.edges())
                .all(|(x, y)| x.a == y.a && x.b == y.b && x.weight.to_bits() == y.weight.to_bits())
    }

    fn spec_with(extras: &[Polygon]) -> (SpaceSpec, sprout_board::NetId) {
        let board = presets::two_rail();
        let (vdd1, _) = board.power_nets().next().unwrap();
        let spec = SpaceSpec::build(&board, vdd1, presets::TWO_RAIL_ROUTE_LAYER, extras).unwrap();
        (spec, vdd1)
    }

    #[test]
    fn session_matches_scratch_on_first_build() {
        let (spec, _) = spec_with(&[]);
        let opts = TileOptions::square(0.4);
        let mut session = TilingSession::new(&spec, opts, 1).unwrap();
        let scratch = space_to_graph(&spec, opts).unwrap();
        assert!(graphs_bit_equal(&session.graph(), &scratch));
        assert_eq!(session.stats().rebuilds, 1);
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        let (spec, _) = spec_with(&[]);
        let opts = TileOptions::square(0.4);
        let g1 = TilingSession::new(&spec, opts, 1).unwrap().graph();
        for threads in [2, 3, 8] {
            let g = TilingSession::new(&spec, opts, threads).unwrap().graph();
            assert!(graphs_bit_equal(&g1, &g), "threads {threads}");
        }
    }

    #[test]
    fn incremental_add_then_remove_matches_scratch() {
        let opts = TileOptions::square(0.4);
        let (base, _) = spec_with(&[]);
        let mut session = TilingSession::new(&base, opts, 1).unwrap();
        let _ = session.graph();

        let claim = Polygon::rectangle(Point::new(5.0, 4.0), Point::new(8.0, 6.5)).unwrap();
        let (grown, _) = spec_with(std::slice::from_ref(&claim));
        assert_eq!(session.update_to(&grown), TileOutcome::Patched);
        assert!(graphs_bit_equal(
            &session.graph(),
            &space_to_graph(&grown, opts).unwrap()
        ));

        // Remove the claim again: back to the base graph, still patched.
        assert_eq!(session.update_to(&base), TileOutcome::Patched);
        assert!(graphs_bit_equal(
            &session.graph(),
            &space_to_graph(&base, opts).unwrap()
        ));
        assert_eq!(session.stats().rebuilds, 1);
        assert_eq!(session.stats().incremental_updates, 2);
    }

    #[test]
    fn unchanged_spec_is_a_reuse_hit() {
        let (spec, _) = spec_with(&[]);
        let opts = TileOptions::square(0.4);
        let mut session = TilingSession::new(&spec, opts, 1).unwrap();
        assert_eq!(session.update_to(&spec), TileOutcome::Reused);
        assert_eq!(session.stats().reuse_hits, 1);
    }

    #[test]
    fn note_blockers_flush_lazily_through_graph() {
        let (spec, _) = spec_with(&[]);
        let opts = TileOptions::square(0.4);
        let mut session = TilingSession::new(&spec, opts, 1).unwrap();
        let before = session.graph().node_count();
        let wall = Polygon::rectangle(Point::new(2.0, 2.0), Point::new(6.0, 6.0)).unwrap();
        session.note_blocker_added(wall);
        let after = session.graph().node_count();
        assert!(after < before, "{after} vs {before}");
        session.note_blocker_removed(session.blocker_count() - 1);
        assert_eq!(session.graph().node_count(), before);
    }

    #[test]
    fn config_validates() {
        let (spec, _) = spec_with(&[]);
        assert!(TilingSession::new(
            &spec,
            TileOptions {
                dx: -1.0,
                dy: 0.4,
                min_cell_fraction: 0.05
            },
            1
        )
        .is_err());
        assert!(TilingSession::new(
            &spec,
            TileOptions {
                dx: 0.4,
                dy: 0.4,
                min_cell_fraction: 1.0
            },
            1
        )
        .is_err());
    }
}
