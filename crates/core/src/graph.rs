//! The routing graph Γ_n and subgraph Γ_n^s (§II-B, §II-C).

use sprout_geom::stitch::GridFrame;
use sprout_geom::{IntervalSet, Point, PolygonSet, Rect};
use std::collections::HashMap;

/// Identifier of a node (tile) in a [`RoutingGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A tile node: one cell of the available space (Algorithm 1).
#[derive(Debug, Clone)]
pub struct TileNode {
    /// Lattice cell `(i, j)` of the tile.
    pub cell: (i64, i64),
    /// The rectangular extent of the cell, clipped to the design space.
    pub rect: Rect,
    /// Tile area (mm²) — the rect area for full cells, the clipped area
    /// for irregular boundary cells (Fig. 7).
    pub area_mm2: f64,
    /// Clipped geometry for irregular cells; `None` when the tile covers
    /// its whole `rect`.
    pub pieces: Option<PolygonSet>,
}

impl TileNode {
    /// The tile centre (centroid of the clipped geometry for irregular
    /// cells).
    pub fn center(&self) -> Point {
        match &self.pieces {
            None => self.rect.center(),
            Some(set) => {
                // Area-weighted centroid of the pieces.
                let mut acc = Point::ORIGIN;
                let mut total = 0.0;
                for p in set.iter() {
                    let a = p.area();
                    acc = acc + p.centroid() * a;
                    total += a;
                }
                if total > 0.0 {
                    acc / total
                } else {
                    self.rect.center()
                }
            }
        }
    }

    /// Vertical cross-section of the tile at `x` (interval set of `y`).
    pub fn cross_section_x(&self, x: f64) -> IntervalSet {
        match &self.pieces {
            None => {
                if x >= self.rect.min().x && x <= self.rect.max().x {
                    IntervalSet::from_interval(self.rect.min().y, self.rect.max().y)
                } else {
                    IntervalSet::new()
                }
            }
            Some(set) => set.cross_section_x(x),
        }
    }

    /// Horizontal cross-section of the tile at `y` (interval set of `x`).
    pub fn cross_section_y(&self, y: f64) -> IntervalSet {
        match &self.pieces {
            None => {
                if y >= self.rect.min().y && y <= self.rect.max().y {
                    IntervalSet::from_interval(self.rect.min().x, self.rect.max().x)
                } else {
                    IntervalSet::new()
                }
            }
            Some(set) => set.cross_section_y(y),
        }
    }

    /// `true` if the tile contains the point.
    pub fn contains_point(&self, p: Point) -> bool {
        match &self.pieces {
            None => self.rect.contains_point(p),
            Some(set) => set.contains_point(p),
        }
    }
}

/// A weighted edge between adjacent tiles. The weight is the
/// *dimensionless conductance* `contact_width / centre_distance` (Fig. 6:
/// conductance proportional to the contact width); multiply by the layer
/// sheet conductance to get siemens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphEdge {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Dimensionless conductance weight.
    pub weight: f64,
}

/// The equivalent graph Γ_n of the available space (§II-B).
#[derive(Debug, Clone)]
pub struct RoutingGraph {
    frame: GridFrame,
    nodes: Vec<TileNode>,
    edges: Vec<GraphEdge>,
    adj: Vec<Vec<(NodeId, u32)>>,
    cell_lookup: HashMap<(i64, i64), NodeId>,
}

impl RoutingGraph {
    /// Assembles a graph from parts (used by the tiling stage).
    pub(crate) fn assemble(frame: GridFrame, nodes: Vec<TileNode>, edges: Vec<GraphEdge>) -> Self {
        let mut adj: Vec<Vec<(NodeId, u32)>> = vec![Vec::new(); nodes.len()];
        for (k, e) in edges.iter().enumerate() {
            adj[e.a.index()].push((e.b, k as u32));
            adj[e.b.index()].push((e.a, k as u32));
        }
        let cell_lookup = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.cell, NodeId(i as u32)))
            .collect();
        RoutingGraph {
            frame,
            nodes,
            edges,
            adj,
            cell_lookup,
        }
    }

    /// The lattice frame (origin and pitch).
    pub fn frame(&self) -> GridFrame {
        self.frame
    }

    /// Number of nodes `|V_n|`.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges `|E_n|`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All nodes.
    pub fn nodes(&self) -> &[TileNode] {
        &self.nodes
    }

    /// A node by id.
    ///
    /// # Panics
    ///
    /// Panics for an id from a different graph.
    pub fn node(&self, id: NodeId) -> &TileNode {
        &self.nodes[id.index()]
    }

    /// All edges.
    pub fn edges(&self) -> &[GraphEdge] {
        &self.edges
    }

    /// An edge by index.
    pub fn edge(&self, idx: u32) -> &GraphEdge {
        &self.edges[idx as usize]
    }

    /// Neighbors of a node with the connecting edge index.
    pub fn neighbors(&self, id: NodeId) -> &[(NodeId, u32)] {
        &self.adj[id.index()]
    }

    /// The node occupying lattice cell `(i, j)`, if any.
    pub fn node_at_cell(&self, cell: (i64, i64)) -> Option<NodeId> {
        self.cell_lookup.get(&cell).copied()
    }

    /// The node whose tile contains `p`, or the nearest node within a
    /// search radius of `max_rings` lattice rings.
    pub fn node_near(&self, p: Point, max_rings: i64) -> Option<NodeId> {
        let i = ((p.x - self.frame.origin.x) / self.frame.dx).floor() as i64;
        let j = ((p.y - self.frame.origin.y) / self.frame.dy).floor() as i64;
        if let Some(id) = self.node_at_cell((i, j)) {
            return Some(id);
        }
        let mut best: Option<(f64, NodeId)> = None;
        for ring in 1..=max_rings {
            for di in -ring..=ring {
                for dj in -ring..=ring {
                    if di.abs() != ring && dj.abs() != ring {
                        continue;
                    }
                    if let Some(id) = self.node_at_cell((i + di, j + dj)) {
                        let d = self.node(id).center().distance(p);
                        if best.is_none_or(|(bd, _)| d < bd) {
                            best = Some((d, id));
                        }
                    }
                }
            }
            if best.is_some() {
                break; // nearest in lattice rings is good enough
            }
        }
        best.map(|(_, id)| id)
    }

    /// Total available area (mm²) — the area of `A_n`.
    pub fn total_area_mm2(&self) -> f64 {
        self.nodes.iter().map(|n| n.area_mm2).sum()
    }

    /// `true` if `targets` are all in one connected component of the
    /// graph.
    pub fn connects(&self, targets: &[NodeId]) -> bool {
        let (first, rest) = match targets.split_first() {
            Some(x) => x,
            None => return true,
        };
        if rest.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[first.index()] = true;
        queue.push_back(*first);
        while let Some(u) = queue.pop_front() {
            for &(v, _) in self.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
        targets.iter().all(|t| seen[t.index()])
    }
}

/// A subgraph Γ_n^s ⊆ Γ_n under construction (§II-C through §II-F).
#[derive(Debug, Clone)]
pub struct Subgraph {
    in_set: Vec<bool>,
    members: Vec<NodeId>,
    area_mm2: f64,
}

impl Subgraph {
    /// An empty subgraph of `graph`.
    pub fn new(graph: &RoutingGraph) -> Self {
        Subgraph {
            in_set: vec![false; graph.node_count()],
            members: Vec::new(),
            area_mm2: 0.0,
        }
    }

    /// Number of member nodes (the order `|V_n^s|`).
    pub fn order(&self) -> usize {
        self.members.len()
    }

    /// Member area (mm²) — the `A(Γ_n^s)` of Eq. 5.
    pub fn area_mm2(&self) -> f64 {
        self.area_mm2
    }

    /// Member nodes (unordered).
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// `true` if `id` is a member.
    pub fn contains(&self, id: NodeId) -> bool {
        self.in_set[id.index()]
    }

    /// Inserts a node (no-op if present).
    pub fn insert(&mut self, graph: &RoutingGraph, id: NodeId) {
        if !self.in_set[id.index()] {
            self.in_set[id.index()] = true;
            self.members.push(id);
            self.area_mm2 += graph.node(id).area_mm2;
        }
    }

    /// Removes a node (no-op if absent).
    pub fn remove(&mut self, graph: &RoutingGraph, id: NodeId) {
        if self.in_set[id.index()] {
            self.in_set[id.index()] = false;
            let pos = self
                .members
                .iter()
                .position(|&m| m == id)
                .expect("member list consistent with bitmap");
            self.members.swap_remove(pos);
            self.area_mm2 -= graph.node(id).area_mm2;
        }
    }

    /// The boundary set `C`: nodes of Γ_n adjacent to, but not in, the
    /// subgraph (§II-D).
    pub fn boundary(&self, graph: &RoutingGraph) -> Vec<NodeId> {
        let mut seen = vec![false; graph.node_count()];
        let mut out = Vec::new();
        for &m in &self.members {
            for &(v, _) in graph.neighbors(m) {
                if !self.in_set[v.index()] && !seen[v.index()] {
                    seen[v.index()] = true;
                    out.push(v);
                }
            }
        }
        out
    }

    /// Edges of Γ_n with both endpoints in the subgraph (the induced
    /// subgraph's edges).
    pub fn induced_edges<'g>(
        &'g self,
        graph: &'g RoutingGraph,
    ) -> impl Iterator<Item = &'g GraphEdge> + 'g {
        graph
            .edges()
            .iter()
            .filter(move |e| self.in_set[e.a.index()] && self.in_set[e.b.index()])
    }

    /// `true` if all `targets` are members connected to each other
    /// through member nodes.
    pub fn connects(&self, graph: &RoutingGraph, targets: &[NodeId]) -> bool {
        let (first, rest) = match targets.split_first() {
            Some(x) => x,
            None => return true,
        };
        if !self.contains(*first) {
            return false;
        }
        if rest.is_empty() {
            return true;
        }
        let mut seen = vec![false; graph.node_count()];
        let mut queue = std::collections::VecDeque::new();
        seen[first.index()] = true;
        queue.push_back(*first);
        while let Some(u) = queue.pop_front() {
            for &(v, _) in graph.neighbors(u) {
                if self.in_set[v.index()] && !seen[v.index()] {
                    seen[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
        targets.iter().all(|t| seen[t.index()])
    }

    /// `true` if removing `id` leaves the subgraph a *single* connected
    /// component containing all `targets`.
    ///
    /// Checking full connectivity (not just target-to-target paths)
    /// matters for the refinement and erosion stages: a removal that
    /// orphans a non-terminal blob would leave the subgraph's grounded
    /// Laplacian singular at the next metric evaluation.
    pub fn connected_without(
        &mut self,
        graph: &RoutingGraph,
        id: NodeId,
        targets: &[NodeId],
    ) -> bool {
        if !self.contains(id) {
            return self.connects(graph, targets);
        }
        self.remove(graph, id);
        let ok = match targets.iter().find(|t| self.contains(**t)) {
            None => self.order() == 0,
            Some(&anchor) => {
                let mut seen = vec![false; graph.node_count()];
                let mut queue = std::collections::VecDeque::new();
                let mut reached = 1usize;
                seen[anchor.index()] = true;
                queue.push_back(anchor);
                while let Some(u) = queue.pop_front() {
                    for &(v, _) in graph.neighbors(u) {
                        if self.contains(v) && !seen[v.index()] {
                            seen[v.index()] = true;
                            reached += 1;
                            queue.push_back(v);
                        }
                    }
                }
                reached == self.order() && targets.iter().all(|t| seen[t.index()])
            }
        };
        self.insert(graph, id);
        ok
    }
}

/// Reusable workspace for fast removal-connectivity checks.
///
/// [`Subgraph::connected_without`] answers "does removing this node keep
/// the subgraph connected?" with a full BFS over the subgraph per
/// candidate — the dominant non-solver cost of the refinement and
/// erosion sweeps, which test hundreds of candidates per round. This
/// check reaches the same verdict *locally*: when the subgraph is
/// connected (which every router path maintains — seeds are connected,
/// growth adds boundary nodes, and removals are gated on this very
/// check), removing `id` keeps it connected **iff** the member-neighbors
/// of `id` stay mutually reachable with `id` masked out. A BFS from one
/// neighbor stops as soon as the others are seen, touching tens of nodes
/// instead of the whole subgraph.
///
/// The visit marks are epoch-stamped so repeated checks inside one sweep
/// allocate nothing.
#[derive(Debug, Default)]
pub struct RemovalCheck {
    stamp: Vec<u32>,
    epoch: u32,
    queue: Vec<NodeId>,
    nbrs: Vec<NodeId>,
}

impl RemovalCheck {
    /// An empty workspace (sized lazily on first use).
    pub fn new() -> Self {
        RemovalCheck::default()
    }

    /// Verdict of [`Subgraph::connected_without`] for removing `id`,
    /// computed without mutating `sub`.
    ///
    /// Exact under the precondition that `sub` is connected (see the
    /// type docs). The "disconnects" direction needs no precondition:
    /// if the local search cannot rejoin the neighbors, the removal
    /// provably splits the subgraph.
    pub fn keeps_connected(
        &mut self,
        graph: &RoutingGraph,
        sub: &Subgraph,
        id: NodeId,
        targets: &[NodeId],
    ) -> bool {
        if !sub.contains(id) {
            return sub.connects(graph, targets);
        }
        debug_assert!(
            {
                let mut probe = RemovalCheck::new();
                sub.order() <= 1
                    || probe.component_size(graph, sub, sub.members()[0], None) == sub.order()
            },
            "RemovalCheck requires a connected subgraph"
        );
        let contains_after = |n: NodeId| n != id && sub.contains(n);
        let Some(&anchor) = targets.iter().find(|&&t| contains_after(t)) else {
            // No target survives the removal: `connected_without` only
            // accepts this when the remainder is empty.
            return sub.order() == 1;
        };
        if targets.iter().any(|&t| !contains_after(t)) {
            return false;
        }
        self.nbrs.clear();
        self.nbrs.extend(
            graph
                .neighbors(id)
                .iter()
                .map(|&(v, _)| v)
                .filter(|&v| sub.contains(v)),
        );
        if self.nbrs.is_empty() {
            // `id` is an isolated member (precondition violated unless
            // it is the whole subgraph): fall back to the exact check.
            return self.component_size(graph, sub, anchor, Some(id)) == sub.order() - 1;
        }
        // Local early-exit BFS in `sub ∖ {id}` from one neighbor of
        // `id`: connected iff every other neighbor is reached.
        self.begin(graph.node_count());
        let epoch = self.epoch;
        self.stamp[id.index()] = epoch; // mask the removed node
        let start = self.nbrs[0];
        self.stamp[start.index()] = epoch;
        let goal = self.nbrs.len();
        let mut found = 1usize;
        self.queue.clear();
        self.queue.push(start);
        let mut head = 0usize;
        while head < self.queue.len() && found < goal {
            let u = self.queue[head];
            head += 1;
            for &(v, _) in graph.neighbors(u) {
                if sub.contains(v) && self.stamp[v.index()] != epoch {
                    self.stamp[v.index()] = epoch;
                    if self.nbrs.contains(&v) {
                        found += 1;
                    }
                    self.queue.push(v);
                }
            }
        }
        found == goal
    }

    /// Size of `anchor`'s connected component within `sub`, optionally
    /// masking out one node (exact fallback and debug probe).
    fn component_size(
        &mut self,
        graph: &RoutingGraph,
        sub: &Subgraph,
        anchor: NodeId,
        without: Option<NodeId>,
    ) -> usize {
        self.begin(graph.node_count());
        let epoch = self.epoch;
        if let Some(w) = without {
            self.stamp[w.index()] = epoch;
        }
        self.stamp[anchor.index()] = epoch;
        self.queue.clear();
        self.queue.push(anchor);
        let mut head = 0usize;
        let mut reached = 1usize;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            for &(v, _) in graph.neighbors(u) {
                if sub.contains(v) && self.stamp[v.index()] != epoch {
                    self.stamp[v.index()] = epoch;
                    reached += 1;
                    self.queue.push(v);
                }
            }
        }
        reached
    }

    /// Starts a new epoch, (re)sizing the stamp buffer for `n` nodes.
    fn begin(&mut self, n: usize) {
        if self.stamp.len() != n {
            self.stamp = vec![0; n];
            self.epoch = 0;
        }
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3×3 full grid graph with unit cells.
    fn grid3() -> RoutingGraph {
        let frame = GridFrame {
            origin: Point::ORIGIN,
            dx: 1.0,
            dy: 1.0,
        };
        let mut nodes = Vec::new();
        for j in 0..3i64 {
            for i in 0..3i64 {
                nodes.push(TileNode {
                    cell: (i, j),
                    rect: Rect::new(
                        Point::new(i as f64, j as f64),
                        Point::new(i as f64 + 1.0, j as f64 + 1.0),
                    )
                    .unwrap(),
                    area_mm2: 1.0,
                    pieces: None,
                });
            }
        }
        let id = |i: i64, j: i64| NodeId((j * 3 + i) as u32);
        let mut edges = Vec::new();
        for j in 0..3i64 {
            for i in 0..3i64 {
                if i + 1 < 3 {
                    edges.push(GraphEdge {
                        a: id(i, j),
                        b: id(i + 1, j),
                        weight: 1.0,
                    });
                }
                if j + 1 < 3 {
                    edges.push(GraphEdge {
                        a: id(i, j),
                        b: id(i, j + 1),
                        weight: 1.0,
                    });
                }
            }
        }
        RoutingGraph::assemble(frame, nodes, edges)
    }

    #[test]
    fn graph_structure() {
        let g = grid3();
        assert_eq!(g.node_count(), 9);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.neighbors(NodeId(4)).len(), 4); // centre
        assert_eq!(g.neighbors(NodeId(0)).len(), 2); // corner
        assert!((g.total_area_mm2() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn cell_and_point_lookup() {
        let g = grid3();
        assert_eq!(g.node_at_cell((1, 1)), Some(NodeId(4)));
        assert_eq!(g.node_at_cell((5, 5)), None);
        assert_eq!(g.node_near(Point::new(1.5, 1.5), 2), Some(NodeId(4)));
        // Outside the grid but within the ring search.
        assert!(g.node_near(Point::new(3.5, 1.5), 2).is_some());
        assert_eq!(g.node_near(Point::new(30.0, 30.0), 2), None);
    }

    #[test]
    fn graph_connectivity() {
        let g = grid3();
        assert!(g.connects(&[NodeId(0), NodeId(8)]));
        assert!(g.connects(&[NodeId(3)]));
        assert!(g.connects(&[]));
    }

    #[test]
    fn subgraph_insert_remove() {
        let g = grid3();
        let mut s = Subgraph::new(&g);
        s.insert(&g, NodeId(0));
        s.insert(&g, NodeId(1));
        s.insert(&g, NodeId(1)); // idempotent
        assert_eq!(s.order(), 2);
        assert!((s.area_mm2() - 2.0).abs() < 1e-12);
        s.remove(&g, NodeId(0));
        assert_eq!(s.order(), 1);
        assert!(!s.contains(NodeId(0)));
        s.remove(&g, NodeId(0)); // idempotent
        assert_eq!(s.order(), 1);
    }

    #[test]
    fn subgraph_boundary() {
        let g = grid3();
        let mut s = Subgraph::new(&g);
        s.insert(&g, NodeId(4)); // centre
        let mut b = s.boundary(&g);
        b.sort();
        assert_eq!(b, vec![NodeId(1), NodeId(3), NodeId(5), NodeId(7)]);
    }

    #[test]
    fn subgraph_induced_edges() {
        let g = grid3();
        let mut s = Subgraph::new(&g);
        for id in [0u32, 1, 2] {
            s.insert(&g, NodeId(id)); // bottom row
        }
        assert_eq!(s.induced_edges(&g).count(), 2);
    }

    #[test]
    fn subgraph_connectivity_and_articulation() {
        let g = grid3();
        let mut s = Subgraph::new(&g);
        // An L: 0-1-2 + 2-5.
        for id in [0u32, 1, 2, 5] {
            s.insert(&g, NodeId(id));
        }
        let targets = [NodeId(0), NodeId(5)];
        assert!(s.connects(&g, &targets));
        // Node 1 is an articulation point between 0 and 5.
        assert!(!s.connected_without(&g, NodeId(1), &targets));
        // Node 2 is too.
        assert!(!s.connected_without(&g, NodeId(2), &targets));
        // Add the alternative path 0-3-4-5: node 1 stops being critical.
        s.insert(&g, NodeId(3));
        s.insert(&g, NodeId(4));
        assert!(s.connected_without(&g, NodeId(1), &targets));
    }

    #[test]
    fn removal_check_matches_connected_without() {
        let g = grid3();
        // Sweep every connected subgraph shape we can easily build, every
        // removal candidate, and several target sets: the fast local
        // check must agree with the exact one everywhere.
        let shapes: [&[u32]; 4] = [
            &[0, 1, 2, 5],                // L
            &[0, 1, 2, 3, 4, 5],          // two rows
            &[0, 1, 2, 3, 4, 5, 6, 7, 8], // full grid
            &[4],                         // single node
        ];
        let target_sets: [&[u32]; 3] = [&[0, 5], &[0], &[4]];
        let mut check = RemovalCheck::new();
        for shape in shapes {
            let mut s = Subgraph::new(&g);
            for &id in shape {
                s.insert(&g, NodeId(id));
            }
            for cand in 0..9u32 {
                for ts in target_sets {
                    let targets: Vec<NodeId> = ts.iter().map(|&t| NodeId(t)).collect();
                    let fast = check.keeps_connected(&g, &s, NodeId(cand), &targets);
                    let exact = s.connected_without(&g, NodeId(cand), &targets);
                    assert_eq!(
                        fast, exact,
                        "shape {shape:?} candidate {cand} targets {ts:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn irregular_tile_cross_sections() {
        use sprout_geom::Polygon;
        let tri = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ])
        .unwrap();
        let node = TileNode {
            cell: (0, 0),
            rect: Rect::new(Point::ORIGIN, Point::new(1.0, 1.0)).unwrap(),
            area_mm2: 0.5,
            pieces: Some(PolygonSet::from_polygon(tri)),
        };
        let cs = node.cross_section_x(0.25);
        assert!((cs.total_length() - 0.75).abs() < 1e-9);
        assert!(node.contains_point(Point::new(0.2, 0.2)));
        assert!(!node.contains_point(Point::new(0.9, 0.9)));
        // The centroid of the triangle, not the rect centre.
        assert!(node
            .center()
            .approx_eq(Point::new(1.0 / 3.0, 1.0 / 3.0), 1e-9));
    }
}
