//! The node-current metric (Algorithm 3, §II-D).
//!
//! Current is injected into terminal pairs with magnitudes proportional
//! to the expected rail currents; nodal analysis `V = L⁻¹E` on the
//! grounded subgraph Laplacian yields edge currents, and each node's
//! metric is the sum of the currents in its incident edges. Nodes with a
//! high metric mark current crowding — where SmartGrow adds metal — and
//! nodes with a low metric mark quiescent zones — where SmartRefine
//! reclaims metal.

use crate::graph::{NodeId, RoutingGraph, Subgraph};
use crate::recovery::{self, SolverEvent};
use crate::tile::Terminal;
use crate::SproutError;
use sprout_board::ElementRole;
use sprout_linalg::fallback::FallbackOptions;
use sprout_linalg::laplacian::{GraphLaplacian, GroundedFactor};
use sprout_linalg::LinalgError;
use sprout_telemetry as telemetry;

/// How terminal pairs are enumerated for current injection.
///
/// The paper's Algorithm 3 uses all 2-subsets `[Θ]²`, while its §II-D
/// text assigns large currents to PMIC↔BGA pairs and small ones to
/// BGA↔BGA pairs. With pair-current weighting the BGA↔BGA terms
/// contribute little, so the default enumerates only source→sink pairs —
/// one solve per sink instead of `O(k²)` — and `AllPairs` remains
/// available for fidelity experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PairPolicy {
    /// Source terminals paired with every sink/decap terminal (default).
    #[default]
    SourceToSinks,
    /// Every unordered terminal pair, as written in Algorithm 3.
    AllPairs,
}

/// A current injection between two subgraph nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectionPair {
    /// Node where `+current_a` enters.
    pub source: NodeId,
    /// Node where the current leaves.
    pub sink: NodeId,
    /// Injected current (A).
    pub current_a: f64,
}

/// Fraction of a sink's current share assigned to a decap pad (decaps
/// carry transient, not DC, current).
const DECAP_WEIGHT: f64 = 0.25;
/// Fraction of a sink's share assigned to sink↔sink pairs under
/// [`PairPolicy::AllPairs`].
const SINK_SINK_WEIGHT: f64 = 0.1;

/// Enumerates injection pairs for a terminal set carrying `rail_current_a`.
///
/// Sinks share the rail current equally; decap pads get
/// `DECAP_WEIGHT` (25 %) of a sink share.
pub fn injection_pairs(
    terminals: &[Terminal],
    policy: PairPolicy,
    rail_current_a: f64,
) -> Vec<InjectionPair> {
    let sources: Vec<&Terminal> = terminals
        .iter()
        .filter(|t| t.role == ElementRole::Source)
        .collect();
    let loads: Vec<&Terminal> = terminals
        .iter()
        .filter(|t| t.role != ElementRole::Source)
        .collect();
    let n_sinks = loads
        .iter()
        .filter(|t| t.role == ElementRole::Sink)
        .count()
        .max(1);
    let share = rail_current_a / n_sinks as f64;
    let mut pairs = Vec::new();
    for s in &sources {
        for l in &loads {
            if s.node == l.node {
                continue;
            }
            let i = if l.role == ElementRole::DecapPad {
                share * DECAP_WEIGHT
            } else {
                share
            };
            pairs.push(InjectionPair {
                source: s.node,
                sink: l.node,
                current_a: i / sources.len() as f64,
            });
        }
    }
    if policy == PairPolicy::AllPairs {
        for (a_idx, a) in loads.iter().enumerate() {
            for b in &loads[a_idx + 1..] {
                if a.node == b.node {
                    continue;
                }
                pairs.push(InjectionPair {
                    source: a.node,
                    sink: b.node,
                    current_a: share * SINK_SINK_WEIGHT,
                });
            }
        }
    }
    pairs
}

/// Result of one node-current evaluation.
#[derive(Debug, Clone)]
pub struct NodeCurrents {
    /// Per-node current metric, indexed by `NodeId::index()` (zero for
    /// nodes outside the subgraph).
    current: Vec<f64>,
    /// Current-weighted mean effective resistance between the injection
    /// pairs, in *squares* (multiply by the layer sheet resistance for
    /// ohms). This is the objective `R(Γ_n^s, Θ_n)` of Eq. 5.
    resistance_sq: f64,
    /// Number of linear solves performed (telemetry for §II-H).
    solves: usize,
}

impl NodeCurrents {
    /// Assembles a result from raw parts (the incremental nodal session
    /// produces the same fields through a different solve path).
    pub(crate) fn from_parts(current: Vec<f64>, resistance_sq: f64, solves: usize) -> Self {
        NodeCurrents {
            current,
            resistance_sq,
            solves,
        }
    }

    /// The metric for a node (zero outside the subgraph).
    pub fn of(&self, id: NodeId) -> f64 {
        self.current[id.index()]
    }

    /// Current-weighted mean effective resistance in squares.
    pub fn resistance_sq(&self) -> f64 {
        self.resistance_sq
    }

    /// Linear solves performed.
    pub fn solves(&self) -> usize {
        self.solves
    }

    /// The largest per-node metric — the current-crowding hotspot that
    /// SmartGrow targets (amperes).
    pub fn max_current_a(&self) -> f64 {
        self.current.iter().fold(0.0f64, |m, &v| m.max(v))
    }
}

/// Validates an injection-pair list against a subgraph (shared by the
/// scratch and incremental metric evaluators).
pub(crate) fn validate_pairs(sub: &Subgraph, pairs: &[InjectionPair]) -> Result<(), SproutError> {
    if pairs.is_empty() {
        return Err(SproutError::InvalidConfig("no injection pairs"));
    }
    for p in pairs {
        if !sub.contains(p.source) || !sub.contains(p.sink) {
            return Err(SproutError::InvalidConfig(
                "injection pair endpoint outside the subgraph",
            ));
        }
    }
    Ok(())
}

/// A subgraph's nodal system, assembled and factored from scratch: the
/// shared preamble of [`node_current`] and [`node_voltages`].
pub(crate) struct NodalSystem {
    /// Sorted member list; position = compact index.
    pub members: Vec<NodeId>,
    /// `compact[NodeId::index()]` → compact index (`usize::MAX` outside).
    pub compact: Vec<usize>,
    /// Induced edges in graph-edge order, compact endpoints, sanitized.
    pub edges: Vec<(usize, usize, f64)>,
    /// Resilient grounded factor (grounded at the first pair's sink).
    pub factor: GroundedFactor,
}

/// Builds the compacted, sanitized, grounded-and-factored nodal system
/// for a subgraph. With `with_fault_hooks` the (test-only) fault
/// injection points fire and sanitize/fallback degradations are recorded
/// as solver events + telemetry — exactly the [`node_current`] pipeline
/// behavior; without it the assembly is silent ([`node_voltages`] is a
/// read-only observer and must not re-report degradations).
pub(crate) fn assemble_system(
    graph: &RoutingGraph,
    sub: &Subgraph,
    pairs: &[InjectionPair],
    with_fault_hooks: bool,
) -> Result<NodalSystem, SproutError> {
    // Compact index: sorted member list for determinism.
    let mut members: Vec<NodeId> = sub.members().to_vec();
    members.sort_unstable();
    let mut compact = vec![usize::MAX; graph.node_count()];
    for (k, &m) in members.iter().enumerate() {
        compact[m.index()] = k;
    }

    let mut edges: Vec<(usize, usize, f64)> = sub
        .induced_edges(graph)
        .map(|e| (compact[e.a.index()], compact[e.b.index()], e.weight))
        .collect();
    if with_fault_hooks {
        // Fault-injection hooks: no-ops unless a FaultScope is active.
        recovery::fault_corrupt_conductances(&mut edges);
        if recovery::fault_solver_failure() {
            return Err(SproutError::Linalg(LinalgError::NotConverged {
                iterations: 0,
                residual: f64::INFINITY,
            }));
        }
    }
    let mut lap = GraphLaplacian::from_edges(members.len(), &edges)?;
    let dropped = lap.sanitize_conductances();
    if dropped > 0 {
        if with_fault_hooks {
            recovery::note_event(SolverEvent::Sanitized(dropped));
            telemetry::counter!("solver.edges_sanitized", dropped as u64);
            telemetry::point("edges_sanitized")
                .field("count", dropped)
                .emit();
        }
        edges.retain(|&(_, _, g)| g.is_finite() && g > 0.0);
    }
    let ground = compact[pairs[0].sink.index()];
    let factor = lap.factor_grounded_resilient(ground, FallbackOptions::default())?;
    if with_fault_hooks {
        if let Some(report) = factor.fallback_report() {
            if report.degraded() {
                recovery::note_event(SolverEvent::Fallback(report.rung));
                telemetry::counter!("solver.fallbacks");
                telemetry::point("solver_fallback")
                    .field("rung", format!("{:?}", report.rung))
                    .field("attempts", report.factor_attempts)
                    .emit();
            }
        }
    }
    Ok(NodalSystem {
        members,
        compact,
        edges,
        factor,
    })
}

/// The Algorithm-3 metric loop against an already-factored system: one
/// solve per pair, edge-current accumulation, and the current-weighted
/// resistance. Shared by [`node_current`] and the incremental session's
/// resilient-ladder fallback so both report identical numbers and
/// telemetry.
pub(crate) fn metric_from_factor(
    graph: &RoutingGraph,
    members: &[NodeId],
    compact: &[usize],
    edges: &[(usize, usize, f64)],
    factor: &GroundedFactor,
    pairs: &[InjectionPair],
) -> Result<NodeCurrents, SproutError> {
    let mut node_metric = vec![0.0f64; graph.node_count()];
    let mut resistance_weighted = 0.0f64;
    let mut weight_total = 0.0f64;
    let mut solves = 0usize;
    let mut currents = vec![0.0f64; members.len()];
    for p in pairs {
        currents.fill(0.0);
        currents[compact[p.source.index()]] += p.current_a;
        currents[compact[p.sink.index()]] -= p.current_a;
        let v = factor.solve_currents(&currents)?;
        solves += 1;
        for (a, b, w) in edges {
            let i_edge = w * (v[*a] - v[*b]);
            node_metric[members[*a].index()] += i_edge.abs();
            node_metric[members[*b].index()] += i_edge.abs();
        }
        let drop = v[compact[p.source.index()]] - v[compact[p.sink.index()]];
        resistance_weighted += drop; // = R_eff · i_pair
        weight_total += p.current_a;
    }
    let resistance_sq = if weight_total > 0.0 {
        resistance_weighted / weight_total
    } else {
        0.0
    };

    telemetry::counter!("metric.evaluations");
    telemetry::histogram!("metric.solves_per_eval", solves as u64);

    Ok(NodeCurrents {
        current: node_metric,
        resistance_sq,
        solves,
    })
}

/// Evaluates the node-current metric on a subgraph (Algorithm 3).
///
/// # Errors
///
/// * [`SproutError::InvalidConfig`] — empty pair list or a pair endpoint
///   outside the subgraph.
/// * [`SproutError::Linalg`] — the subgraph is electrically disconnected
///   (singular grounded Laplacian).
pub fn node_current(
    graph: &RoutingGraph,
    sub: &Subgraph,
    pairs: &[InjectionPair],
) -> Result<NodeCurrents, SproutError> {
    validate_pairs(sub, pairs)?;
    let NodalSystem {
        members,
        compact,
        edges,
        factor,
    } = assemble_system(graph, sub, pairs, true)?;
    metric_from_factor(graph, &members, &compact, &edges, &factor, pairs)
}

/// Solves the superposed nodal voltages for an injection set: all pair
/// currents are injected at once and `V = L⁻¹E` is evaluated with one
/// solve, grounded at the first pair's sink (the same ground
/// [`node_current`] uses).
///
/// Returns a per-node vector indexed by `NodeId::index()`; nodes
/// outside the subgraph hold `NaN`. Voltages are in ampere-squares —
/// multiply by the layer sheet resistance for volts. The spatial
/// IR-drop map is `max(V) - V(node)` over the members.
///
/// # Errors
///
/// Same conditions as [`node_current`].
pub fn node_voltages(
    graph: &RoutingGraph,
    sub: &Subgraph,
    pairs: &[InjectionPair],
) -> Result<Vec<f64>, SproutError> {
    validate_pairs(sub, pairs)?;
    let NodalSystem {
        members,
        compact,
        factor,
        ..
    } = assemble_system(graph, sub, pairs, false)?;
    let mut currents = vec![0.0f64; members.len()];
    for p in pairs {
        currents[compact[p.source.index()]] += p.current_a;
        currents[compact[p.sink.index()]] -= p.current_a;
    }
    let v = factor.solve_currents(&currents)?;
    let mut out = vec![f64::NAN; graph.node_count()];
    for (k, &m) in members.iter().enumerate() {
        out[m.index()] = v[k];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::{seed_subgraph, SeedOptions};
    use crate::space::SpaceSpec;
    use crate::tile::{identify_terminals, space_to_graph, TileOptions};
    use sprout_board::presets;

    fn setup() -> (RoutingGraph, Subgraph, Vec<Terminal>) {
        let board = presets::two_rail();
        let (vdd1, _) = board.power_nets().next().unwrap();
        let spec = SpaceSpec::build(&board, vdd1, presets::TWO_RAIL_ROUTE_LAYER, &[]).unwrap();
        let graph = space_to_graph(&spec, TileOptions::square(0.4)).unwrap();
        let terminals = identify_terminals(&graph, &spec, vdd1).unwrap();
        let sub = seed_subgraph(&graph, &terminals, vdd1, 6, SeedOptions::default()).unwrap();
        (graph, sub, terminals)
    }

    #[test]
    fn pair_enumeration_source_to_sinks() {
        let (_, _, terminals) = setup();
        let pairs = injection_pairs(&terminals, PairPolicy::SourceToSinks, 3.0);
        // 1 source × 9 sinks.
        assert_eq!(pairs.len(), 9);
        let total: f64 = pairs.iter().map(|p| p.current_a).sum();
        assert!((total - 3.0).abs() < 1e-9, "sinks share the rail current");
    }

    #[test]
    fn pair_enumeration_all_pairs() {
        let (_, _, terminals) = setup();
        let pairs = injection_pairs(&terminals, PairPolicy::AllPairs, 3.0);
        // 9 source-sink + C(9,2) = 36 sink-sink.
        assert_eq!(pairs.len(), 9 + 36);
        // Sink-sink currents are small.
        let max_ss = pairs[9..]
            .iter()
            .map(|p| p.current_a)
            .fold(0.0f64, f64::max);
        assert!(max_ss < pairs[0].current_a);
    }

    #[test]
    fn metric_positive_inside_zero_outside() {
        let (graph, sub, terminals) = setup();
        let pairs = injection_pairs(&terminals, PairPolicy::SourceToSinks, 3.0);
        let nc = node_current(&graph, &sub, &pairs).unwrap();
        assert_eq!(nc.solves(), pairs.len());
        // Terminal nodes carry current.
        for t in &terminals {
            assert!(nc.of(t.node) > 0.0, "terminal node must carry current");
        }
        // Nodes outside the subgraph have zero metric.
        let outside = (0..graph.node_count() as u32)
            .map(NodeId)
            .find(|&id| !sub.contains(id))
            .unwrap();
        assert_eq!(nc.of(outside), 0.0);
        assert!(nc.resistance_sq() > 0.0);
    }

    #[test]
    fn resistance_drops_when_subgraph_grows() {
        let (graph, sub, terminals) = setup();
        let pairs = injection_pairs(&terminals, PairPolicy::SourceToSinks, 3.0);
        let r_seed = node_current(&graph, &sub, &pairs).unwrap().resistance_sq();
        // Add the full boundary (a crude one-step dilation).
        let mut bigger = sub.clone();
        for b in sub.boundary(&graph) {
            bigger.insert(&graph, b);
        }
        let r_big = node_current(&graph, &bigger, &pairs)
            .unwrap()
            .resistance_sq();
        assert!(
            r_big < r_seed,
            "Rayleigh: growing the subgraph lowers resistance ({r_big} vs {r_seed})"
        );
    }

    #[test]
    fn rejects_pairs_outside_subgraph() {
        let (graph, sub, terminals) = setup();
        let outside = (0..graph.node_count() as u32)
            .map(NodeId)
            .find(|&id| !sub.contains(id))
            .unwrap();
        let bad = vec![InjectionPair {
            source: terminals[0].node,
            sink: outside,
            current_a: 1.0,
        }];
        assert!(matches!(
            node_current(&graph, &sub, &bad),
            Err(SproutError::InvalidConfig(_))
        ));
        assert!(matches!(
            node_current(&graph, &sub, &[]),
            Err(SproutError::InvalidConfig(_))
        ));
    }

    #[test]
    fn disconnected_subgraph_is_reported() {
        let (graph, _, terminals) = setup();
        // A subgraph of just the two far-apart terminal nodes, no path.
        let mut sub = Subgraph::new(&graph);
        sub.insert(&graph, terminals[0].node);
        sub.insert(&graph, terminals[5].node);
        let pairs = vec![InjectionPair {
            source: terminals[0].node,
            sink: terminals[5].node,
            current_a: 1.0,
        }];
        assert!(matches!(
            node_current(&graph, &sub, &pairs),
            Err(SproutError::Linalg(_))
        ));
    }

    #[test]
    fn voltages_ground_at_first_sink_and_peak_at_source() {
        let (graph, sub, terminals) = setup();
        let pairs = injection_pairs(&terminals, PairPolicy::SourceToSinks, 3.0);
        let v = node_voltages(&graph, &sub, &pairs).unwrap();
        // Ground reference: the first pair's sink sits at 0 V.
        assert!(v[pairs[0].sink.index()].abs() < 1e-12);
        // The source feeds every sink, so it holds the peak potential.
        let src = pairs[0].source;
        let peak = sub
            .members()
            .iter()
            .map(|m| v[m.index()])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((v[src.index()] - peak).abs() < 1e-9, "source is the peak");
        // Nodes outside the subgraph are NaN (empty tiles in the map).
        let outside = (0..graph.node_count() as u32)
            .map(NodeId)
            .find(|&id| !sub.contains(id))
            .unwrap();
        assert!(v[outside.index()].is_nan());
        // max_current_a matches a manual scan of the metric.
        let nc = node_current(&graph, &sub, &pairs).unwrap();
        let manual = (0..graph.node_count() as u32)
            .map(|i| nc.of(NodeId(i)))
            .fold(0.0f64, f64::max);
        assert!((nc.max_current_a() - manual).abs() < 1e-15);
    }

    #[test]
    fn hotspots_concentrate_near_terminals() {
        // In a seed (thin path), the metric along the path is roughly the
        // pair current; wide regions spread current thin. The maximum
        // metric node must lie inside the subgraph.
        let (graph, sub, terminals) = setup();
        let pairs = injection_pairs(&terminals, PairPolicy::SourceToSinks, 3.0);
        let nc = node_current(&graph, &sub, &pairs).unwrap();
        let best = (0..graph.node_count() as u32)
            .map(NodeId)
            .max_by(|&a, &b| nc.of(a).total_cmp(&nc.of(b)))
            .unwrap();
        assert!(sub.contains(best));
    }
}
