//! Post-route design-rule check.
//!
//! Verifies that a synthesized shape honours every foreign element's
//! buffer (§II-A): the distance from the routed metal to foreign-net
//! geometry must be at least the element's clearance.

use crate::backconv::RoutedShape;
use crate::SproutError;
use sprout_board::{Board, NetId};
use sprout_geom::{Point, Polygon};

/// A clearance violation found by [`check_route`].
#[derive(Debug, Clone, PartialEq)]
pub struct DrcViolation {
    /// Centroid of the offended foreign geometry.
    pub location: Point,
    /// Required clearance (mm).
    pub required_mm: f64,
    /// Measured distance (mm).
    pub measured_mm: f64,
}

/// Numerical slack granted to the tiling discretization (mm).
const DRC_SLACK_MM: f64 = 1e-6;

/// Checks a routed shape against every foreign element on the layer and
/// any `extra_blockers` (earlier-routed nets, which require the default
/// clearance).
///
/// Returns the list of violations (empty means clean).
///
/// # Errors
///
/// Returns [`SproutError::Board`] for an unknown net or layer.
pub fn check_route(
    board: &Board,
    net: NetId,
    layer: usize,
    shape: &RoutedShape,
    extra_blockers: &[Polygon],
) -> Result<Vec<DrcViolation>, SproutError> {
    board.net(net)?;
    board.stackup().layer(layer)?;
    let metal = shape.blocker_polygons();
    let mut violations = Vec::new();

    let mut check_poly = |foreign: &Polygon, required: f64| {
        let fb = foreign.bounds();
        let mut min_dist = f64::INFINITY;
        for piece in &metal {
            let pb = piece.bounds();
            // Bounds prefilter: skip pieces that cannot violate.
            let gap_x = (fb.min().x - pb.max().x).max(pb.min().x - fb.max().x);
            let gap_y = (fb.min().y - pb.max().y).max(pb.min().y - fb.max().y);
            if gap_x.max(0.0).hypot(gap_y.max(0.0)) >= required {
                continue;
            }
            min_dist = min_dist.min(piece.distance_to_polygon(foreign));
            if min_dist == 0.0 {
                break;
            }
        }
        if min_dist < required - DRC_SLACK_MM {
            violations.push(DrcViolation {
                location: foreign.centroid(),
                required_mm: required,
                measured_mm: min_dist,
            });
        }
    };

    for element in board.elements_on_layer(layer) {
        if element.net == Some(net) {
            continue; // own net may touch its own geometry
        }
        check_poly(&element.shape, board.clearance_of(element));
    }
    for blocker in extra_blockers {
        check_poly(blocker, board.rules().clearance_mm);
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::current::{injection_pairs, PairPolicy};
    use crate::grow::grow_to_area;
    use crate::seed::{seed_subgraph, SeedOptions};
    use crate::space::SpaceSpec;
    use crate::tile::{identify_terminals, space_to_graph, TileOptions};
    use sprout_board::presets;

    #[test]
    fn routed_two_rail_shape_is_drc_clean() {
        let board = presets::two_rail();
        let (vdd1, _) = board.power_nets().next().unwrap();
        let layer = presets::TWO_RAIL_ROUTE_LAYER;
        let spec = SpaceSpec::build(&board, vdd1, layer, &[]).unwrap();
        let graph = space_to_graph(&spec, TileOptions::square(0.4)).unwrap();
        let terminals = identify_terminals(&graph, &spec, vdd1).unwrap();
        let mut sub =
            seed_subgraph(&graph, &terminals, vdd1, layer, SeedOptions::default()).unwrap();
        let pairs = injection_pairs(&terminals, PairPolicy::SourceToSinks, 3.0);
        {
            let budget = sub.area_mm2() * 2.5;
            grow_to_area(&graph, &mut sub, &pairs, 24, budget)
        }
        .unwrap();
        let shape = crate::backconv::back_convert(&graph, &sub);
        let violations = check_route(&board, vdd1, layer, &shape, &[]).unwrap();
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn artificial_encroachment_is_detected() {
        let board = presets::two_rail();
        let (vdd1, _) = board.power_nets().next().unwrap();
        let layer = presets::TWO_RAIL_ROUTE_LAYER;
        // Build a fake shape overlapping a ground via at (7, 2).
        let spec = SpaceSpec::build(&board, vdd1, layer, &[]).unwrap();
        let graph = space_to_graph(&spec, TileOptions::square(0.4)).unwrap();
        let mut sub = crate::graph::Subgraph::new(&graph);
        // Insert tiles near the ground via — available tiles stop at the
        // buffer, so instead fabricate encroachment via extra blockers:
        // claim metal right at a spot and check against it.
        let near = graph
            .node_near(sprout_geom::Point::new(7.6, 2.0), 3)
            .unwrap();
        sub.insert(&graph, near);
        let shape = crate::backconv::back_convert(&graph, &sub);
        // An extra blocker drawn through the same spot must violate.
        let intruder = Polygon::rectangle(
            sprout_geom::Point::new(7.3, 1.8),
            sprout_geom::Point::new(7.9, 2.2),
        )
        .unwrap();
        let violations = check_route(&board, vdd1, layer, &shape, &[intruder]).unwrap();
        assert_eq!(violations.len(), 1);
        assert!(violations[0].measured_mm < violations[0].required_mm);
    }

    #[test]
    fn unknown_net_errors() {
        let board = presets::two_rail();
        let (vdd1, _) = board.power_nets().next().unwrap();
        let layer = presets::TWO_RAIL_ROUTE_LAYER;
        let spec = SpaceSpec::build(&board, vdd1, layer, &[]).unwrap();
        let graph = space_to_graph(&spec, TileOptions::square(0.8)).unwrap();
        let sub = crate::graph::Subgraph::new(&graph);
        let shape = crate::backconv::back_convert(&graph, &sub);
        assert!(check_route(&board, sprout_board::NetId(99), layer, &shape, &[]).is_err());
    }
}
