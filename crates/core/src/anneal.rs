//! Simulated-annealing refinement — the paper's future-work direction.
//!
//! §IV closes with: "further development of the tool is possible using
//! novel techniques, such as neural networks and evolutionary
//! optimization." This module implements that extension as an
//! alternative to SmartRefine: area-preserving random node swaps with a
//! Metropolis acceptance rule over the same resistance objective
//! (Eq. 5). It shares SmartRefine's safety guards — terminals are
//! never removed and no move may disconnect the subgraph.

use crate::current::{node_current, InjectionPair};
use crate::graph::{NodeId, RoutingGraph, Subgraph};
use crate::SproutError;
use sprout_rng::SproutRng;

/// Annealing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealConfig {
    /// Metropolis iterations (each one metric evaluation).
    pub iterations: usize,
    /// Node swaps proposed per iteration (batched to amortize the
    /// solve cost, the §II-H bottleneck).
    pub moves_per_iteration: usize,
    /// Initial temperature in objective units (squares). A value near
    /// a few percent of the seed resistance works well.
    pub initial_temperature: f64,
    /// Geometric cooling factor per iteration, in `(0, 1]`.
    pub cooling: f64,
    /// RNG seed (runs are deterministic for a fixed seed).
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            iterations: 60,
            moves_per_iteration: 6,
            initial_temperature: 0.5,
            cooling: 0.94,
            seed: 1,
        }
    }
}

/// Outcome of an annealing run.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealOutcome {
    /// Accepted iterations.
    pub accepted: usize,
    /// Rejected (reverted) iterations.
    pub rejected: usize,
    /// Best objective seen (squares); the subgraph is left at this
    /// state.
    pub best_resistance_sq: f64,
    /// Linear solves performed.
    pub solves: usize,
}

/// Refines the subgraph by annealed random node swaps at constant area.
///
/// # Errors
///
/// * [`SproutError::InvalidConfig`] — bad parameters.
/// * Propagates metric-evaluation errors.
pub fn anneal_refine(
    graph: &RoutingGraph,
    sub: &mut Subgraph,
    pairs: &[InjectionPair],
    protected: &[NodeId],
    terminal_nodes: &[NodeId],
    config: AnnealConfig,
) -> Result<AnnealOutcome, SproutError> {
    if config.cooling <= 0.0 || config.cooling > 1.0 {
        return Err(SproutError::InvalidConfig("cooling must be in (0, 1]"));
    }
    if config.initial_temperature < 0.0 {
        return Err(SproutError::InvalidConfig("temperature must be >= 0"));
    }
    let mut rng = SproutRng::seed_from_u64(config.seed);
    let mut protected_mask = vec![false; graph.node_count()];
    for &p in protected {
        protected_mask[p.index()] = true;
    }

    let metric = node_current(graph, sub, pairs)?;
    let mut solves = metric.solves();
    let mut current_r = metric.resistance_sq();
    let mut best_r = current_r;
    let mut best_sub = sub.clone();
    let mut temperature = config.initial_temperature;
    let mut accepted = 0usize;
    let mut rejected = 0usize;

    for _ in 0..config.iterations {
        // Propose a batch of area-preserving swaps.
        let mut removed: Vec<NodeId> = Vec::new();
        let mut added: Vec<NodeId> = Vec::new();
        for _ in 0..config.moves_per_iteration {
            // Add a random boundary node…
            let boundary = sub.boundary(graph);
            if boundary.is_empty() {
                break;
            }
            let add = boundary[rng.usize_below(boundary.len())];
            sub.insert(graph, add);
            added.push(add);
            // …then remove a random safe member to restore the order.
            let mut candidates: Vec<NodeId> = sub
                .members()
                .iter()
                .copied()
                .filter(|m| !protected_mask[m.index()] && *m != add)
                .collect();
            let mut removed_one = false;
            while !candidates.is_empty() {
                let k = rng.usize_below(candidates.len());
                let victim = candidates.swap_remove(k);
                if sub.connected_without(graph, victim, terminal_nodes) {
                    sub.remove(graph, victim);
                    removed.push(victim);
                    removed_one = true;
                    break;
                }
            }
            if !removed_one {
                // Could not balance the addition: undo it.
                sub.remove(graph, add);
                added.pop();
            }
        }
        if added.is_empty() && removed.is_empty() {
            break; // frozen: no legal moves
        }

        let metric = node_current(graph, sub, pairs)?;
        solves += metric.solves();
        let new_r = metric.resistance_sq();
        let delta = new_r - current_r;
        let accept =
            delta <= 0.0 || (temperature > 0.0 && rng.f64() < (-delta / temperature).exp());
        if accept {
            current_r = new_r;
            accepted += 1;
            if new_r < best_r {
                best_r = new_r;
                best_sub = sub.clone();
            }
        } else {
            // Revert the batch.
            for &a in &added {
                sub.remove(graph, a);
            }
            for &r in &removed {
                sub.insert(graph, r);
            }
            rejected += 1;
        }
        temperature *= config.cooling;
    }

    *sub = best_sub;
    Ok(AnnealOutcome {
        accepted,
        rejected,
        best_resistance_sq: best_r,
        solves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::current::{injection_pairs, PairPolicy};
    use crate::grow::grow_to_area;
    use crate::seed::{seed_subgraph, SeedOptions};
    use crate::space::SpaceSpec;
    use crate::tile::{identify_terminals, space_to_graph, Terminal, TileOptions};
    use sprout_board::presets;

    fn setup() -> (RoutingGraph, Subgraph, Vec<InjectionPair>, Vec<Terminal>) {
        let board = presets::two_rail();
        let (vdd1, _) = board.power_nets().next().unwrap();
        let spec = SpaceSpec::build(&board, vdd1, presets::TWO_RAIL_ROUTE_LAYER, &[]).unwrap();
        let graph = space_to_graph(&spec, TileOptions::square(0.5)).unwrap();
        let terminals = identify_terminals(&graph, &spec, vdd1).unwrap();
        let mut sub = seed_subgraph(&graph, &terminals, vdd1, 6, SeedOptions::default()).unwrap();
        let pairs = injection_pairs(&terminals, PairPolicy::SourceToSinks, 3.0);
        let budget = sub.area_mm2() * 1.8;
        grow_to_area(&graph, &mut sub, &pairs, 20, budget).unwrap();
        (graph, sub, pairs, terminals)
    }

    fn guards(terminals: &[Terminal]) -> (Vec<NodeId>, Vec<NodeId>) {
        (
            terminals.iter().flat_map(|t| t.covered.clone()).collect(),
            terminals.iter().map(|t| t.node).collect(),
        )
    }

    #[test]
    fn annealing_never_ships_a_worse_subgraph() {
        let (graph, mut sub, pairs, terminals) = setup();
        let (prot, tn) = guards(&terminals);
        let before = node_current(&graph, &sub, &pairs).unwrap().resistance_sq();
        let out = anneal_refine(
            &graph,
            &mut sub,
            &pairs,
            &prot,
            &tn,
            AnnealConfig {
                iterations: 30,
                ..AnnealConfig::default()
            },
        )
        .unwrap();
        assert!(out.best_resistance_sq <= before + 1e-12);
        // Shipped subgraph matches the reported best.
        let after = node_current(&graph, &sub, &pairs).unwrap().resistance_sq();
        assert!((after - out.best_resistance_sq).abs() < 1e-9);
    }

    #[test]
    fn annealing_preserves_area_terminals_and_connectivity() {
        let (graph, mut sub, pairs, terminals) = setup();
        let (prot, tn) = guards(&terminals);
        let order = sub.order();
        anneal_refine(
            &graph,
            &mut sub,
            &pairs,
            &prot,
            &tn,
            AnnealConfig::default(),
        )
        .unwrap();
        assert_eq!(sub.order(), order, "swaps preserve the node count");
        for t in &terminals {
            assert!(sub.contains(t.node));
        }
        assert!(sub.connects(&graph, &tn));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (graph, sub0, pairs, terminals) = setup();
        let (prot, tn) = guards(&terminals);
        let run = |seed: u64| {
            let mut sub = sub0.clone();
            anneal_refine(
                &graph,
                &mut sub,
                &pairs,
                &prot,
                &tn,
                AnnealConfig {
                    iterations: 15,
                    seed,
                    ..AnnealConfig::default()
                },
            )
            .unwrap()
            .best_resistance_sq
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn config_validation() {
        let (graph, mut sub, pairs, terminals) = setup();
        let (prot, tn) = guards(&terminals);
        let bad = AnnealConfig {
            cooling: 0.0,
            ..AnnealConfig::default()
        };
        assert!(anneal_refine(&graph, &mut sub, &pairs, &prot, &tn, bad).is_err());
        let bad_t = AnnealConfig {
            initial_temperature: -1.0,
            ..AnnealConfig::default()
        };
        assert!(anneal_refine(&graph, &mut sub, &pairs, &prot, &tn, bad_t).is_err());
    }

    #[test]
    fn zero_temperature_is_greedy_descent() {
        let (graph, mut sub, pairs, terminals) = setup();
        let (prot, tn) = guards(&terminals);
        let before = node_current(&graph, &sub, &pairs).unwrap().resistance_sq();
        let out = anneal_refine(
            &graph,
            &mut sub,
            &pairs,
            &prot,
            &tn,
            AnnealConfig {
                iterations: 25,
                initial_temperature: 0.0,
                ..AnnealConfig::default()
            },
        )
        .unwrap();
        // Greedy: every accepted batch improved the objective.
        assert!(out.best_resistance_sq <= before);
    }
}
