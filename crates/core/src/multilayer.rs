//! Multilayer routing (Appendix, Algorithm 6; Fig. 13).
//!
//! When a net's available space is disjoint within a layer, routing must
//! hop layers through vias. A three-dimensional graph is built — one
//! coarse tile graph per candidate layer, with vertically aligned tiles
//! joined by via edges of elevated cost — and shortest paths between the
//! terminals place the vias. Each via becomes a terminal on both layers
//! it joins, decomposing the problem into single-layer routing runs.

use crate::graph::{NodeId, RoutingGraph};
use crate::router::{RouteResult, Router};
use crate::space::SpaceSpec;
use crate::supervisor::{JobReport, RailOutcome, RailReport};
use crate::tile::{space_to_graph, TileOptions};
use crate::SproutError;
use sprout_board::{Board, ElementRole, NetId};
use sprout_geom::Point;
use sprout_telemetry as telemetry;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::time::Instant;

/// Multilayer planning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultilayerConfig {
    /// Coarse tile pitch for the 3-D planning graph (Algorithm 6 tiles
    /// at the via pitch).
    pub via_pitch_mm: f64,
    /// Cost of traversing one via, in equivalent millimetres of lateral
    /// routing (the elevated vertical-edge weight of Algorithm 6).
    pub via_cost_mm: f64,
}

impl Default for MultilayerConfig {
    fn default() -> Self {
        MultilayerConfig {
            via_pitch_mm: 0.5,
            via_cost_mm: 5.0,
        }
    }
}

/// One planned via.
#[derive(Debug, Clone, PartialEq)]
pub struct ViaPlacement {
    /// Via barrel location.
    pub location: Point,
    /// The two board layers it joins (by stackup index).
    pub layers: (usize, usize),
}

/// The output of the multilayer planner.
#[derive(Debug, Clone)]
pub struct MultilayerPlan {
    /// Planned vias.
    pub vias: Vec<ViaPlacement>,
    /// For each candidate layer: via landing points that become extra
    /// terminals for the single-layer router.
    pub layer_terminals: HashMap<usize, Vec<Point>>,
    /// Candidate layers, in stack order, that ended up carrying routing.
    pub layers_used: Vec<usize>,
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    cost: f64,
    node: usize,
}

impl Eq for HeapEntry {}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| self.node.cmp(&other.node))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Plans vias for `net` across `layers` (Algorithm 6).
///
/// Terminals are gathered from every candidate layer; the returned plan
/// places vias and assigns per-layer terminal points.
///
/// # Errors
///
/// * [`SproutError::InvalidConfig`] — no candidate layers or no
///   terminals anywhere.
/// * [`SproutError::NoMultilayerPath`] — the 3-D graph does not connect
///   the terminals.
pub fn plan_multilayer(
    board: &Board,
    net: NetId,
    layers: &[usize],
    config: MultilayerConfig,
) -> Result<MultilayerPlan, SproutError> {
    plan_multilayer_impl(board, net, layers, config, |spec, opts, _layer| {
        space_to_graph(spec, opts)
    })
}

/// The planner body, generic over how per-layer graphs are produced so
/// [`route_multilayer_report`] can serve them from the router's
/// persistent tiling sessions while the free-standing
/// [`plan_multilayer`] stays a one-shot scratch build.
fn plan_multilayer_impl<F>(
    board: &Board,
    net: NetId,
    layers: &[usize],
    config: MultilayerConfig,
    mut tile: F,
) -> Result<MultilayerPlan, SproutError>
where
    F: FnMut(&SpaceSpec, TileOptions, usize) -> Result<RoutingGraph, SproutError>,
{
    if layers.is_empty() {
        return Err(SproutError::InvalidConfig("no candidate layers"));
    }

    // Per-layer coarse graphs and terminal nodes.
    let mut graphs: Vec<RoutingGraph> = Vec::with_capacity(layers.len());
    let mut terminal_nodes: Vec<(usize, NodeId)> = Vec::new(); // (layer pos, node)
    for (pos, &layer) in layers.iter().enumerate() {
        let spec = SpaceSpec::build_transit(board, net, layer, &[])?;
        let graph = tile(&spec, TileOptions::square(config.via_pitch_mm), layer)?;
        for (t_idx, t) in spec.terminals.iter().enumerate() {
            match graph.node_near(t.shape.centroid(), 3) {
                Some(node) => terminal_nodes.push((pos, node)),
                None => {
                    return Err(SproutError::TerminalBlocked {
                        net,
                        terminal: t_idx,
                    })
                }
            }
        }
        graphs.push(graph);
    }
    if terminal_nodes.len() < 2 {
        return Err(SproutError::InvalidConfig(
            "multilayer routing needs at least two terminals",
        ));
    }

    // Combined 3-D indexing.
    let offsets: Vec<usize> = graphs
        .iter()
        .scan(0usize, |acc, g| {
            let here = *acc;
            *acc += g.node_count();
            Some(here)
        })
        .collect();
    let total: usize = graphs.iter().map(|g| g.node_count()).sum();
    let global = |pos: usize, node: NodeId| offsets[pos] + node.index();

    // Vertical adjacency: same lattice cell present in both layers.
    let mut via_edges: HashMap<usize, Vec<usize>> = HashMap::new();
    for pos in 0..graphs.len().saturating_sub(1) {
        let upper = &graphs[pos];
        let lower = &graphs[pos + 1];
        for (idx, node) in upper.nodes().iter().enumerate() {
            if let Some(other) = lower.node_at_cell(node.cell) {
                via_edges
                    .entry(global(pos, NodeId(idx as u32)))
                    .or_default()
                    .push(global(pos + 1, other));
                via_edges
                    .entry(global(pos + 1, other))
                    .or_default()
                    .push(global(pos, NodeId(idx as u32)));
            }
        }
    }

    // Shortest path in 3-D from each terminal to the nearest later one
    // (the seed discipline of Algorithm 2 lifted to three dimensions).
    let locate = |g: usize| -> (usize, NodeId) {
        let pos = offsets
            .iter()
            .rposition(|&o| o <= g)
            .expect("offsets cover indices");
        (pos, NodeId((g - offsets[pos]) as u32))
    };
    let mut vias: Vec<ViaPlacement> = Vec::new();
    let mut layer_terminals: HashMap<usize, Vec<Point>> = HashMap::new();
    let mut any_path = false;

    for i in 0..terminal_nodes.len() - 1 {
        let source = global(terminal_nodes[i].0, terminal_nodes[i].1);
        let targets: Vec<usize> = terminal_nodes[i + 1..]
            .iter()
            .map(|&(p, n)| global(p, n))
            .collect();
        let path = dijkstra_3d(
            &graphs, &offsets, &via_edges, config, total, source, &targets,
        );
        let path = match path {
            Some(p) => p,
            None => continue,
        };
        any_path = true;
        for w in path.windows(2) {
            let (pos_a, node_a) = locate(w[0]);
            let (pos_b, node_b) = locate(w[1]);
            if pos_a != pos_b {
                let cell_center = graphs[pos_a].node(node_a).center();
                let _ = node_b;
                let layer_pair = (layers[pos_a.min(pos_b)], layers[pos_a.max(pos_b)]);
                if !vias
                    .iter()
                    .any(|v| v.location.approx_eq(cell_center, 1e-9) && v.layers == layer_pair)
                {
                    vias.push(ViaPlacement {
                        location: cell_center,
                        layers: layer_pair,
                    });
                    layer_terminals
                        .entry(layer_pair.0)
                        .or_default()
                        .push(cell_center);
                    layer_terminals
                        .entry(layer_pair.1)
                        .or_default()
                        .push(cell_center);
                }
            }
        }
    }
    if !any_path {
        return Err(SproutError::NoMultilayerPath);
    }

    let mut layers_used: Vec<usize> = layers
        .iter()
        .copied()
        .filter(|l| {
            layer_terminals.contains_key(l)
                || terminal_nodes.iter().any(|&(pos, _)| layers[pos] == *l)
        })
        .collect();
    layers_used.dedup();

    Ok(MultilayerPlan {
        vias,
        layer_terminals,
        layers_used,
    })
}

#[allow(clippy::too_many_arguments)]
fn dijkstra_3d(
    graphs: &[RoutingGraph],
    offsets: &[usize],
    via_edges: &HashMap<usize, Vec<usize>>,
    config: MultilayerConfig,
    total: usize,
    source: usize,
    targets: &[usize],
) -> Option<Vec<usize>> {
    let locate = |g: usize| -> (usize, NodeId) {
        let pos = offsets
            .iter()
            .rposition(|&o| o <= g)
            .expect("offsets cover indices");
        (pos, NodeId((g - offsets[pos]) as u32))
    };
    let mut dist = vec![f64::INFINITY; total];
    let mut prev: Vec<Option<usize>> = vec![None; total];
    let mut is_target = vec![false; total];
    for &t in targets {
        is_target[t] = true;
    }
    if is_target[source] {
        return Some(vec![source]);
    }
    let mut heap = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(HeapEntry {
        cost: 0.0,
        node: source,
    });
    while let Some(HeapEntry { cost, node }) = heap.pop() {
        if cost > dist[node] {
            continue;
        }
        if is_target[node] {
            // Reconstruct.
            let mut path = vec![node];
            let mut cur = node;
            while let Some(p) = prev[cur] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        let (pos, local) = locate(node);
        // Lateral moves.
        for &(next_local, _) in graphs[pos].neighbors(local) {
            let next = offsets[pos] + next_local.index();
            let step = graphs[pos]
                .node(local)
                .center()
                .distance(graphs[pos].node(next_local).center());
            let c = cost + step;
            if c < dist[next] {
                dist[next] = c;
                prev[next] = Some(node);
                heap.push(HeapEntry {
                    cost: c,
                    node: next,
                });
            }
        }
        // Via moves.
        if let Some(verticals) = via_edges.get(&node) {
            for &next in verticals {
                let c = cost + config.via_cost_mm;
                if c < dist[next] {
                    dist[next] = c;
                    prev[next] = Some(node);
                    heap.push(HeapEntry {
                        cost: c,
                        node: next,
                    });
                }
            }
        }
    }
    None
}

/// Executes a multilayer plan and reports every layer's outcome — the
/// supervisor-style counterpart of [`route_multilayer`]. The net is
/// routed on every used layer, via landing points acting as extra sink
/// terminals, and each layer's shape blocking nothing on other layers
/// (layers are independent copper).
///
/// `budget_per_layer_mm2` applies to each layer that carries routing.
///
/// Each used layer becomes one [`RailReport`]: layers with fewer than
/// two terminals (a via landing directly on the only terminal) come
/// back [`RailOutcome::Skipped`]; a failing layer comes back
/// [`RailOutcome::Failed`] with its typed error instead of collapsing
/// the whole run into one `Degraded` chain. Under
/// [`RecoveryPolicy::FailFast`] the first failure stops execution and
/// the remaining layers report as skipped; the lenient policies route
/// every layer regardless.
///
/// # Errors
///
/// Only planning errors ([`plan_multilayer`]); per-layer routing
/// failures are in the report.
///
/// [`RecoveryPolicy::FailFast`]: crate::recovery::RecoveryPolicy::FailFast
pub fn route_multilayer_report(
    router: &Router<'_>,
    board: &Board,
    net: NetId,
    layers: &[usize],
    budget_per_layer_mm2: f64,
    config: MultilayerConfig,
) -> Result<(MultilayerPlan, JobReport), SproutError> {
    use crate::recovery::RecoveryPolicy;

    let start = Instant::now();
    let mut plan_span = telemetry::span("plan")
        .field("net", net.0 as u64)
        .field("layers", layers.len())
        .field("budget_per_layer_mm2", budget_per_layer_mm2)
        .enter();
    let plan = plan_multilayer_impl(board, net, layers, config, |spec, opts, layer| {
        router.tiled_graph(spec, net, layer, opts).map(|(g, _)| g)
    })?;
    plan_span.record("layers_used", plan.layers_used.len());
    plan_span.record("vias", plan.vias.len());
    drop(plan_span);
    let fail_fast = router.config().recovery.policy == RecoveryPolicy::FailFast;
    let mut report = JobReport {
        waves: plan.layers_used.len(),
        ..JobReport::default()
    };
    let mut stopped = false;
    for (wave, &layer) in plan.layers_used.iter().enumerate() {
        let rail = |attempts: usize, outcome: RailOutcome| RailReport {
            net,
            layer,
            budget_mm2: budget_per_layer_mm2,
            wave,
            attempts,
            outcome,
        };
        if stopped {
            report.rails.push(rail(
                0,
                RailOutcome::Skipped {
                    reason: "not attempted after a fail-fast stop".into(),
                },
            ));
            continue;
        }
        let extra: Vec<(Point, ElementRole)> = plan
            .layer_terminals
            .get(&layer)
            .map(|pts| pts.iter().map(|&p| (p, ElementRole::Sink)).collect())
            .unwrap_or_default();
        // A layer with fewer than two terminals total has nothing to
        // route (e.g. a via lands directly on the only terminal).
        let own_terminals = board.terminals(net, layer).len();
        if own_terminals + extra.len() < 2 {
            report.rails.push(rail(
                0,
                RailOutcome::Skipped {
                    reason: "fewer than two terminals on this layer".into(),
                },
            ));
            continue;
        }
        // Within a layer the terminals may sit in disjoint space regions
        // (that is exactly why vias were needed); route each region.
        match router.route_net_components(net, layer, budget_per_layer_mm2, &[], &extra) {
            Ok(layer_results) => report
                .rails
                .push(rail(1, RailOutcome::Routed(layer_results))),
            Err(e) => {
                report.rails.push(rail(1, RailOutcome::Failed(e)));
                if fail_fast {
                    stopped = true;
                }
            }
        }
    }
    report.elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    Ok((plan, report))
}

/// Executes a multilayer plan with the classic result contract. Thin
/// wrapper over [`route_multilayer_report`].
///
/// `budget_per_layer_mm2` applies to each layer that carries routing.
///
/// # Errors
///
/// Propagates planning errors. Per-layer routing errors propagate
/// directly under [`RecoveryPolicy::FailFast`]; under the lenient
/// policies a failing layer aborts the route with
/// [`SproutError::Degraded`], whose diagnostics name the lost layers and
/// whose source is the first layer error — so a partial multilayer
/// failure is distinguishable from a total one.
///
/// [`RecoveryPolicy::FailFast`]: crate::recovery::RecoveryPolicy::FailFast
pub fn route_multilayer(
    router: &Router<'_>,
    board: &Board,
    net: NetId,
    layers: &[usize],
    budget_per_layer_mm2: f64,
    config: MultilayerConfig,
) -> Result<(MultilayerPlan, Vec<RouteResult>), SproutError> {
    use crate::recovery::{Degradation, RecoveryPolicy, RouteDiagnostics};

    let (plan, report) =
        route_multilayer_report(router, board, net, layers, budget_per_layer_mm2, config)?;
    let fail_fast = router.config().recovery.policy == RecoveryPolicy::FailFast;
    let mut results = Vec::new();
    let mut diagnostics = RouteDiagnostics::default();
    let mut first_err: Option<SproutError> = None;
    for rail in report.rails {
        match rail.outcome {
            RailOutcome::Routed(layer_results) => results.extend(layer_results),
            RailOutcome::Failed(e) => {
                if fail_fast {
                    return Err(e);
                }
                diagnostics.record(Degradation::LayerFailed { layer: rail.layer });
                diagnostics.warn(format!("layer {} failed: {e}", rail.layer));
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
            RailOutcome::Restored(_) | RailOutcome::Skipped { .. } => {}
        }
    }
    if let Some(e) = first_err {
        // Fold the diagnostics of what *was* routed into the report.
        for r in &results {
            diagnostics.warn(format!(
                "completed before failure: {} on layer {}",
                r.net, r.layer
            ));
        }
        return Err(SproutError::Degraded {
            diagnostics: Box::new(diagnostics),
            source: Box::new(e),
        });
    }
    Ok((plan, results))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::RouterConfig;
    use sprout_board::{Board, DesignRules, Element, ElementRole, Net, Stackup};
    use sprout_geom::{Polygon, Rect};

    /// A board where layer 6 is split by a full-height wall, forcing the
    /// route through layer 4 (Fig. 13's situation).
    fn walled_board() -> (Board, NetId) {
        let outline = Rect::new(Point::new(0.0, 0.0), Point::new(12.0, 8.0)).unwrap();
        let mut board = Board::new(
            "walled",
            outline,
            Stackup::eight_layer(),
            DesignRules::default(),
        );
        let vdd = board.add_net(Net::power("VDD", 2.0, 1e9, 1.0).unwrap());
        let pad = |c: Point| {
            Polygon::rectangle(
                Point::new(c.x - 0.25, c.y - 0.25),
                Point::new(c.x + 0.25, c.y + 0.25),
            )
            .unwrap()
        };
        // Terminals on layer 6, left and right of the wall.
        board
            .add_element(Element::terminal(
                vdd,
                6,
                pad(Point::new(2.0, 4.0)),
                ElementRole::Source,
            ))
            .unwrap();
        board
            .add_element(Element::terminal(
                vdd,
                6,
                pad(Point::new(10.0, 4.0)),
                ElementRole::Sink,
            ))
            .unwrap();
        // Full-height wall on layer 6 only.
        board
            .add_element(Element::blockage(
                6,
                Polygon::rectangle(Point::new(5.5, 0.0), Point::new(6.5, 8.0)).unwrap(),
            ))
            .unwrap();
        (board, vdd)
    }

    #[test]
    fn single_layer_routing_fails_on_walled_board() {
        let (board, vdd) = walled_board();
        let router = Router::new(
            &board,
            RouterConfig {
                tile_pitch_mm: 0.5,
                ..RouterConfig::default()
            },
        );
        assert!(matches!(
            router.route_net(vdd, 6, 15.0),
            Err(SproutError::DisjointSpace { .. })
        ));
    }

    #[test]
    fn planner_places_vias_around_the_wall() {
        let (board, vdd) = walled_board();
        let plan = plan_multilayer(&board, vdd, &[4, 6], MultilayerConfig::default()).unwrap();
        // The path must descend to layer 4 and come back: two vias.
        assert_eq!(plan.vias.len(), 2, "{:?}", plan.vias);
        for v in &plan.vias {
            assert_eq!(v.layers, (4, 6));
        }
        // One via on each side of the wall.
        let xs: Vec<f64> = plan.vias.iter().map(|v| v.location.x).collect();
        assert!(xs.iter().any(|&x| x < 5.5));
        assert!(xs.iter().any(|&x| x > 6.5));
        // Layer 4 gets both via terminals.
        assert_eq!(plan.layer_terminals[&4].len(), 2);
    }

    #[test]
    fn full_multilayer_route_succeeds() {
        let (board, vdd) = walled_board();
        let router = Router::new(
            &board,
            RouterConfig {
                tile_pitch_mm: 0.5,
                grow_iterations: 8,
                refine_iterations: 2,
                reheat: None,
                ..RouterConfig::default()
            },
        );
        let (plan, results) = route_multilayer(
            &router,
            &board,
            vdd,
            &[4, 6],
            10.0,
            MultilayerConfig::default(),
        )
        .unwrap();
        assert_eq!(plan.vias.len(), 2);
        // Layer 6 splits into two regions (source→via, via→sink) and
        // layer 4 carries the via-to-via transit: three routed shapes.
        assert_eq!(results.len(), 3);
        let on_layer = |l: usize| results.iter().filter(|r| r.layer == l).count();
        assert_eq!(on_layer(4), 1);
        assert_eq!(on_layer(6), 2);
        for r in &results {
            assert!(r.shape.area_mm2() > 0.0);
            // Each region's terminals are connected in its subgraph.
            let nodes: Vec<crate::graph::NodeId> = r.terminals.iter().map(|t| t.node).collect();
            assert!(r.subgraph.connects(&r.graph, &nodes));
        }
    }

    #[test]
    fn report_surfaces_per_layer_outcomes() {
        let (board, vdd) = walled_board();
        let router = Router::new(
            &board,
            RouterConfig {
                tile_pitch_mm: 0.5,
                grow_iterations: 8,
                refine_iterations: 2,
                reheat: None,
                ..RouterConfig::default()
            },
        );
        let (plan, report) = route_multilayer_report(
            &router,
            &board,
            vdd,
            &[4, 6],
            10.0,
            MultilayerConfig::default(),
        )
        .unwrap();
        assert_eq!(report.rails.len(), plan.layers_used.len());
        assert!(report.is_complete(), "{:?}", report.warnings);
        assert_eq!(report.results().count(), 3);
    }

    #[test]
    fn report_isolates_a_failing_layer_and_fail_fast_stops() {
        use crate::recovery::{RecoveryConfig, RecoveryPolicy};

        let (board, vdd) = walled_board();
        let router = Router::new(
            &board,
            RouterConfig {
                tile_pitch_mm: 0.5,
                grow_iterations: 8,
                refine_iterations: 2,
                reheat: None,
                recovery: RecoveryConfig {
                    policy: RecoveryPolicy::FailFast,
                    ..RecoveryConfig::default()
                },
                ..RouterConfig::default()
            },
        );
        // A budget below any connected seed fails every attempted layer.
        let (_, report) = route_multilayer_report(
            &router,
            &board,
            vdd,
            &[4, 6],
            0.05,
            MultilayerConfig::default(),
        )
        .unwrap();
        assert!(!report.is_complete());
        let first = &report.rails[0];
        assert!(
            matches!(
                first.outcome,
                RailOutcome::Failed(SproutError::AreaBudgetTooSmall { .. })
            ),
            "{:?}",
            first.outcome
        );
        // Under fail-fast the remaining layers are skipped, not
        // attempted.
        assert!(report.rails[1..]
            .iter()
            .all(|r| matches!(r.outcome, RailOutcome::Skipped { .. })));
        // The classic wrapper preserves its error contract.
        let err = route_multilayer(
            &router,
            &board,
            vdd,
            &[4, 6],
            0.05,
            MultilayerConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SproutError::AreaBudgetTooSmall { .. }));
    }

    #[test]
    fn via_cost_discourages_unnecessary_hops() {
        // On an open board (no wall), planning across two layers should
        // place no vias at all: the lateral path is cheaper.
        let outline = Rect::new(Point::new(0.0, 0.0), Point::new(12.0, 8.0)).unwrap();
        let mut board = Board::new(
            "open",
            outline,
            Stackup::eight_layer(),
            DesignRules::default(),
        );
        let vdd = board.add_net(Net::power("VDD", 2.0, 1e9, 1.0).unwrap());
        let pad = |c: Point| {
            Polygon::rectangle(
                Point::new(c.x - 0.25, c.y - 0.25),
                Point::new(c.x + 0.25, c.y + 0.25),
            )
            .unwrap()
        };
        board
            .add_element(Element::terminal(
                vdd,
                6,
                pad(Point::new(2.0, 4.0)),
                ElementRole::Source,
            ))
            .unwrap();
        board
            .add_element(Element::terminal(
                vdd,
                6,
                pad(Point::new(10.0, 4.0)),
                ElementRole::Sink,
            ))
            .unwrap();
        let plan = plan_multilayer(&board, vdd, &[4, 6], MultilayerConfig::default()).unwrap();
        assert!(plan.vias.is_empty(), "{:?}", plan.vias);
    }

    #[test]
    fn terminals_on_different_layers_force_one_via() {
        // Source on layer 5 (index 4), sink on layer 7 (index 6), no
        // walls: the only route crosses layers once.
        let outline = Rect::new(Point::new(0.0, 0.0), Point::new(12.0, 8.0)).unwrap();
        let mut board = Board::new(
            "cross-layer",
            outline,
            Stackup::eight_layer(),
            DesignRules::default(),
        );
        let vdd = board.add_net(Net::power("VDD", 2.0, 1e9, 1.0).unwrap());
        let pad = |c: Point| {
            Polygon::rectangle(
                Point::new(c.x - 0.25, c.y - 0.25),
                Point::new(c.x + 0.25, c.y + 0.25),
            )
            .unwrap()
        };
        board
            .add_element(Element::terminal(
                vdd,
                4,
                pad(Point::new(2.0, 4.0)),
                ElementRole::Source,
            ))
            .unwrap();
        board
            .add_element(Element::terminal(
                vdd,
                6,
                pad(Point::new(10.0, 4.0)),
                ElementRole::Sink,
            ))
            .unwrap();
        let plan = plan_multilayer(&board, vdd, &[4, 6], MultilayerConfig::default()).unwrap();
        assert_eq!(plan.vias.len(), 1, "{:?}", plan.vias);
        assert_eq!(plan.vias[0].layers, (4, 6));
        // Both layers participate.
        assert!(plan.layers_used.contains(&4));
        assert!(plan.layers_used.contains(&6));
    }

    #[test]
    fn planner_validates_inputs() {
        let (board, vdd) = walled_board();
        assert!(matches!(
            plan_multilayer(&board, vdd, &[], MultilayerConfig::default()),
            Err(SproutError::InvalidConfig(_))
        ));
    }
}
