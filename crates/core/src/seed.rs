//! The voidless seed subgraph (Algorithm 2, §II-C).
//!
//! Pairwise shortest paths connect the terminals; the nodes enclosed by
//! the resulting boundary are then added ("voids" are filled), which the
//! paper reports accelerates convergence (Fig. 8b).

use crate::graph::{NodeId, RoutingGraph, Subgraph};
use crate::path::dijkstra_to_nearest;
use crate::tile::Terminal;
use crate::SproutError;
use sprout_board::NetId;
use std::collections::{HashSet, VecDeque};

/// Options for seed construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedOptions {
    /// Fill enclosed voids after path construction (Algorithm 2 lines
    /// 6-10). Disabling this is an ablation knob.
    pub fill_voids: bool,
}

impl Default for SeedOptions {
    fn default() -> Self {
        SeedOptions { fill_voids: true }
    }
}

/// Builds the seed subgraph connecting all terminals.
///
/// Following Algorithm 2, each terminal `θ_i` is connected by a shortest
/// path to the nearest of `{θ_{i+1}, …, θ_k}`; every terminal therefore
/// transitively connects to the last one. All tiles covered by terminal
/// pads are force-included.
///
/// # Errors
///
/// Returns [`SproutError::DisjointSpace`] when some terminal cannot reach
/// the others within the layer (Fig. 5b — multilayer routing needed).
pub fn seed_subgraph(
    graph: &RoutingGraph,
    terminals: &[Terminal],
    net: NetId,
    layer: usize,
    opts: SeedOptions,
) -> Result<Subgraph, SproutError> {
    let mut sub = Subgraph::new(graph);
    for t in terminals {
        sub.insert(graph, t.node);
        for &c in &t.covered {
            sub.insert(graph, c);
        }
    }

    // Pairwise shortest paths (Algorithm 2 lines 3-5).
    for i in 0..terminals.len().saturating_sub(1) {
        let later: Vec<NodeId> = terminals[i + 1..].iter().map(|t| t.node).collect();
        match dijkstra_to_nearest(graph, terminals[i].node, &later) {
            Some(path) => {
                for n in path.nodes {
                    sub.insert(graph, n);
                }
            }
            None => return Err(SproutError::DisjointSpace { net, layer }),
        }
    }

    // A terminal pad can straddle a buffered keep-out, leaving covered
    // tiles on the far side with no connection to the pad's
    // representative node. Such strays would make the subgraph's
    // grounded Laplacian singular; keep only the component holding the
    // terminals.
    retain_terminal_component(graph, &mut sub, terminals);

    if opts.fill_voids {
        fill_voids(graph, &mut sub);
    }
    Ok(sub)
}

/// Removes subgraph members not connected (within the subgraph) to the
/// terminal representatives.
fn retain_terminal_component(graph: &RoutingGraph, sub: &mut Subgraph, terminals: &[Terminal]) {
    let mut reached = vec![false; graph.node_count()];
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    for t in terminals {
        if sub.contains(t.node) && !reached[t.node.index()] {
            reached[t.node.index()] = true;
            queue.push_back(t.node);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &(v, _) in graph.neighbors(u) {
            if sub.contains(v) && !reached[v.index()] {
                reached[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    let strays: Vec<NodeId> = sub
        .members()
        .iter()
        .copied()
        .filter(|m| !reached[m.index()])
        .collect();
    for s in strays {
        sub.remove(graph, s);
    }
}

/// Adds every node enclosed by the subgraph boundary (Algorithm 2 lines
/// 6-10), by flood-filling the *outside* over the lattice and taking the
/// complement.
pub fn fill_voids(graph: &RoutingGraph, sub: &mut Subgraph) {
    if sub.order() == 0 {
        return;
    }
    let cells: HashSet<(i64, i64)> = sub.members().iter().map(|&m| graph.node(m).cell).collect();
    let (mut min_i, mut max_i, mut min_j, mut max_j) = (i64::MAX, i64::MIN, i64::MAX, i64::MIN);
    for &(i, j) in &cells {
        min_i = min_i.min(i);
        max_i = max_i.max(i);
        min_j = min_j.min(j);
        max_j = max_j.max(j);
    }
    // Expand by one ring so the outside is connected around the shape.
    min_i -= 1;
    max_i += 1;
    min_j -= 1;
    max_j += 1;

    let w = (max_i - min_i + 1) as usize;
    let h = (max_j - min_j + 1) as usize;
    let idx = |i: i64, j: i64| ((j - min_j) as usize) * w + ((i - min_i) as usize);
    let mut outside = vec![false; w * h];
    let mut queue: VecDeque<(i64, i64)> = VecDeque::new();
    // Start from the whole expanded perimeter: it is outside by
    // construction. The flood passes through blocked (non-node) cells
    // too — a region fenced off by blockages is still "outside" unless
    // fully enclosed by subgraph metal.
    for i in min_i..=max_i {
        for j in [min_j, max_j] {
            if !cells.contains(&(i, j)) && !outside[idx(i, j)] {
                outside[idx(i, j)] = true;
                queue.push_back((i, j));
            }
        }
    }
    for j in min_j..=max_j {
        for i in [min_i, max_i] {
            if !cells.contains(&(i, j)) && !outside[idx(i, j)] {
                outside[idx(i, j)] = true;
                queue.push_back((i, j));
            }
        }
    }
    while let Some((i, j)) = queue.pop_front() {
        for (di, dj) in [(1, 0), (-1, 0), (0, 1), (0, -1)] {
            let (ni, nj) = (i + di, j + dj);
            if ni < min_i || ni > max_i || nj < min_j || nj > max_j {
                continue;
            }
            if cells.contains(&(ni, nj)) || outside[idx(ni, nj)] {
                continue;
            }
            outside[idx(ni, nj)] = true;
            queue.push_back((ni, nj));
        }
    }

    // Unreached cells are enclosed; add the ones that are real nodes.
    for j in min_j..=max_j {
        for i in min_i..=max_i {
            if !outside[idx(i, j)] && !cells.contains(&(i, j)) {
                if let Some(id) = graph.node_at_cell((i, j)) {
                    sub.insert(graph, id);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SpaceSpec;
    use crate::tile::{identify_terminals, space_to_graph, TileOptions};
    use sprout_board::presets;

    fn setup() -> (RoutingGraph, Vec<Terminal>, NetId) {
        let board = presets::two_rail();
        let (vdd1, _) = board.power_nets().next().unwrap();
        let spec = SpaceSpec::build(&board, vdd1, presets::TWO_RAIL_ROUTE_LAYER, &[]).unwrap();
        let graph = space_to_graph(&spec, TileOptions::square(0.4)).unwrap();
        let terminals = identify_terminals(&graph, &spec, vdd1).unwrap();
        (graph, terminals, vdd1)
    }

    #[test]
    fn seed_connects_all_terminals() {
        let (graph, terminals, net) = setup();
        let sub = seed_subgraph(&graph, &terminals, net, 6, SeedOptions::default()).unwrap();
        let nodes: Vec<NodeId> = terminals.iter().map(|t| t.node).collect();
        assert!(sub.connects(&graph, &nodes));
        assert!(sub.order() > nodes.len());
    }

    #[test]
    fn seed_includes_covered_pad_tiles() {
        let (graph, terminals, net) = setup();
        let sub = seed_subgraph(&graph, &terminals, net, 6, SeedOptions::default()).unwrap();
        for t in &terminals {
            for &c in &t.covered {
                assert!(sub.contains(c));
            }
        }
    }

    #[test]
    fn void_fill_adds_enclosed_nodes() {
        let (graph, terminals, net) = setup();
        let with = seed_subgraph(&graph, &terminals, net, 6, SeedOptions::default()).unwrap();
        let without = seed_subgraph(
            &graph,
            &terminals,
            net,
            6,
            SeedOptions { fill_voids: false },
        )
        .unwrap();
        assert!(with.order() >= without.order());
    }

    #[test]
    fn fill_voids_on_a_ring() {
        // Build a ring of cells by hand and verify the hole is filled.
        let (graph, _, _) = setup();
        // Find a 5×5 block of full cells in open space (around (6, 3)).
        let base = graph
            .node_near(sprout_geom::Point::new(6.0, 3.0), 3)
            .unwrap();
        let (bi, bj) = graph.node(base).cell;
        let mut sub = Subgraph::new(&graph);
        let mut ok = true;
        for di in 0..5i64 {
            for dj in 0..5i64 {
                let on_ring = di == 0 || di == 4 || dj == 0 || dj == 4;
                if on_ring {
                    match graph.node_at_cell((bi + di, bj + dj)) {
                        Some(id) => sub.insert(&graph, id),
                        None => ok = false,
                    }
                }
            }
        }
        assert!(ok, "test site must be open space");
        let before = sub.order();
        assert_eq!(before, 16);
        fill_voids(&graph, &mut sub);
        // The 3×3 interior is filled.
        assert_eq!(sub.order(), 25);
    }

    #[test]
    fn seed_area_is_modest() {
        let (graph, terminals, net) = setup();
        let sub = seed_subgraph(&graph, &terminals, net, 6, SeedOptions::default()).unwrap();
        // The seed must be far below the full graph area (it's a path
        // structure plus pads).
        assert!(sub.area_mm2() < graph.total_area_mm2() * 0.2);
    }

    #[test]
    fn single_terminal_seed_is_just_the_pad() {
        let (graph, terminals, net) = setup();
        let one = &terminals[..1];
        let sub = seed_subgraph(&graph, one, net, 6, SeedOptions::default()).unwrap();
        assert_eq!(sub.order(), one[0].covered.len().max(1));
    }
}
