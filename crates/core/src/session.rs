//! Incremental nodal-analysis session (§II-H).
//!
//! The scratch evaluator in [`crate::current`] rebuilds and re-factors
//! the grounded subgraph Laplacian on every metric evaluation, even
//! though SmartGrow/SmartRefine/reheat mutate only a handful of nodes
//! between evaluations. A [`NodalSession`] keeps the system alive across
//! evaluations and pays only for what actually changed:
//!
//! * **Factor reuse** — if the membership and conductances are unchanged
//!   since the cached factor, every solve runs against it directly.
//! * **Numeric refactor** — if only conductance values changed (same
//!   sparsity pattern), the cached Cholesky refactors in its stored RCM
//!   ordering without re-planning the envelope
//!   ([`SparseCholesky::try_refactor`]).
//! * **Low-rank correction** — node removals can be folded into the
//!   cached factor as Sherman–Morrison–Woodbury rank-`k` updates
//!   ([`sprout_linalg::smw`]) instead of re-factoring. Off by default
//!   (`smw_max_rank = 0`): on SPROUT's rail envelopes a full factor
//!   costs only ~10–20 solve-equivalents, so erosion bursts (rank 60+)
//!   never profit, and keeping the default exact preserves bit-identical
//!   results between the incremental and scratch engines.
//! * **Warm-started iteration** — with [`SolverConfig::force_iterative`]
//!   all solves run through preconditioned CG, warm-started from the
//!   previous evaluation's voltages and preconditioned with the last
//!   exact factor.
//!
//! Independent per-sink right-hand sides solve as one blocked
//! multi-RHS pass, optionally split across threads. The metric
//! reduction always runs on the calling thread in pair-index order, so
//! results are **bit-identical at any thread count**.
//!
//! The session replays the scratch evaluator's fault-injection hooks,
//! sanitize events, and solver-fallback events in the same order, so
//! the recovery pipeline and telemetry observe the same stream either
//! way. When a cached-factor path cannot be used safely the session
//! falls back to the scratch evaluator's resilient ladder, producing
//! identical errors and degradation events.

use crate::current::{self, InjectionPair, NodeCurrents};
use crate::graph::{NodeId, RoutingGraph, Subgraph};
use crate::recovery::{self, SolverEvent};
use crate::SproutError;
use sprout_linalg::cg::{solve_pcg_warm, CgOptions};
use sprout_linalg::cholesky::SparseCholesky;
use sprout_linalg::fallback::FallbackOptions;
use sprout_linalg::laplacian::GraphLaplacian;
use sprout_linalg::smw::{SmwUpdate, UpdateCol};
use sprout_linalg::{Csr, LinalgError};
use sprout_telemetry as telemetry;

/// Which nodal-analysis engine the router drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverEngine {
    /// Persistent [`NodalSession`] with delta Laplacian updates (default).
    #[default]
    Incremental,
    /// Rebuild-and-refactor on every evaluation (the original pipeline).
    Scratch,
}

/// Configuration for the nodal-analysis engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverConfig {
    /// Engine selection.
    pub engine: SolverEngine,
    /// Threads for the independent per-sink right-hand sides. The metric
    /// reduction stays on the calling thread in pair-index order, so any
    /// value yields bit-identical results.
    pub threads: usize,
    /// Maximum accumulated low-rank correction before a node-removal
    /// burst forces a refactor; `0` disables SMW corrections entirely.
    /// Disabled by default: the rank-`k` solve is exact only to solver
    /// precision (not bit-identical to the refactored system), and on
    /// rail-sized envelopes a refactor is cheap enough that corrections
    /// only pay off for rank ≲ 12.
    pub smw_max_rank: usize,
    /// Route all solves through warm-started preconditioned CG instead
    /// of direct substitution (experiments/tests; not bit-identical to
    /// the direct path).
    pub force_iterative: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            engine: SolverEngine::Incremental,
            threads: 1,
            smw_max_rank: 0,
            force_iterative: false,
        }
    }
}

/// Counters describing how a session (or scratch engine) spent its
/// evaluations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Metric evaluations served.
    pub evals: usize,
    /// Full symbolic + numeric factorizations (fresh RCM ordering).
    pub full_factors: usize,
    /// Numeric refactorizations into a cached ordering/envelope.
    pub numeric_refactors: usize,
    /// Evaluations served through a low-rank SMW correction.
    pub smw_evals: usize,
    /// Evaluations that reused the cached factor untouched.
    pub factor_reuses: usize,
    /// Warm-started iterative solves performed.
    pub warm_solves: usize,
    /// Full state resyncs after out-of-band subgraph edits.
    pub resyncs: usize,
    /// Evaluations that fell back to the resilient solver ladder.
    pub ladder_fallbacks: usize,
}

/// A routing-stage handle over either engine. Stage code calls
/// [`Engine::insert`]/[`Engine::remove`] instead of mutating the
/// [`Subgraph`] directly so the incremental session can mirror the
/// mutations; the scratch engine forwards them untouched.
#[derive(Debug)]
pub enum Engine {
    /// Stateless per-evaluation assembly and factorization.
    Scratch(SessionStats),
    /// Persistent incremental session.
    Incremental(Box<NodalSession>),
}

impl Engine {
    /// Builds the engine selected by `cfg`.
    pub fn new(cfg: SolverConfig) -> Engine {
        match cfg.engine {
            SolverEngine::Scratch => Engine::Scratch(SessionStats::default()),
            SolverEngine::Incremental => Engine::Incremental(Box::new(NodalSession::new(cfg))),
        }
    }

    /// A scratch engine (used by the legacy stage entry points).
    pub fn scratch() -> Engine {
        Engine::Scratch(SessionStats::default())
    }

    /// Evaluates the node-current metric through this engine.
    ///
    /// # Errors
    ///
    /// Same conditions as [`current::node_current`].
    pub fn eval(
        &mut self,
        graph: &RoutingGraph,
        sub: &Subgraph,
        pairs: &[InjectionPair],
    ) -> Result<NodeCurrents, SproutError> {
        match self {
            Engine::Scratch(stats) => {
                let nc = current::node_current(graph, sub, pairs)?;
                stats.evals += 1;
                stats.full_factors += 1;
                Ok(nc)
            }
            Engine::Incremental(session) => session.eval(graph, sub, pairs),
        }
    }

    /// Inserts `id` into the subgraph, mirroring the delta into the
    /// session.
    pub fn insert(&mut self, graph: &RoutingGraph, sub: &mut Subgraph, id: NodeId) {
        match self {
            Engine::Scratch(_) => sub.insert(graph, id),
            Engine::Incremental(session) => {
                if !sub.contains(id) {
                    sub.insert(graph, id);
                    session.note_insert(graph, sub, id);
                }
            }
        }
    }

    /// Removes `id` from the subgraph, mirroring the delta into the
    /// session.
    pub fn remove(&mut self, graph: &RoutingGraph, sub: &mut Subgraph, id: NodeId) {
        match self {
            Engine::Scratch(_) => sub.remove(graph, id),
            Engine::Incremental(session) => {
                if sub.contains(id) {
                    sub.remove(graph, id);
                    session.note_remove(graph, sub, id);
                }
            }
        }
    }

    /// Accumulated engine statistics.
    pub fn stats(&self) -> SessionStats {
        match self {
            Engine::Scratch(stats) => *stats,
            Engine::Incremental(session) => session.stats(),
        }
    }
}

/// Sentinel for a conductance stamp that lands on the grounded
/// (dropped) row/column.
const SKIP: usize = usize::MAX;

/// Cached grounded-CSR assembly plan: sparsity structure plus, for each
/// induced edge, the four value slots its conductance stamps into. A
/// value-only change replays the stamp list into the cached structure
/// without re-planning — and the stamp order matches the scratch
/// evaluator's triplet assembly exactly, so the refreshed matrix is
/// bit-identical to a from-scratch build.
#[derive(Debug)]
struct CsrPlan {
    /// Grounded (dropped) compact index this plan was built for.
    ground: usize,
    /// Mutation generation at build time.
    gen: u64,
    /// Whether the edge list had sanitized (dropped) entries; such plans
    /// are never reused because equal-length edge lists may still differ.
    sanitized: bool,
    /// Induced-edge count at build time.
    edge_count: usize,
    /// Per-edge `[diag_a, diag_b, off_ab, off_ba]` value slots (the
    /// structure itself lives in the cached CSR).
    edge_slots: Vec<[usize; 4]>,
}

/// Persistent incremental nodal-analysis state for one routing net.
///
/// Mirrors [`Subgraph`] mutations through [`Engine::insert`] /
/// [`Engine::remove`]; out-of-band edits (clones, restores) are detected
/// at the next evaluation and trigger a full resync, so the session is
/// always safe — just slower when bypassed.
#[derive(Debug)]
pub struct NodalSession {
    cfg: SolverConfig,
    stats: SessionStats,

    // --- membership mirror ---
    synced: bool,
    graph_nodes: usize,
    graph_edges: usize,
    /// Sorted member list; position = compact index.
    members: Vec<NodeId>,
    /// `compact[NodeId::index()]` → compact index (refreshed per eval).
    compact: Vec<usize>,
    /// Membership bitmap (refreshed per eval alongside `compact`, which
    /// keeps stale entries for removed nodes).
    member_mask: Vec<bool>,
    /// Sorted induced-edge indices into `graph.edges()`.
    edge_ids: Vec<u32>,
    /// Bumped on every membership mutation or resync.
    mutation_gen: u64,

    // --- cached factor and its base system ---
    factor: Option<SparseCholesky>,
    base_csr: Option<Csr<f64>>,
    plan: Option<CsrPlan>,
    /// Membership the cached factor was built for.
    base_members: Vec<NodeId>,
    base_ground_node: Option<NodeId>,
    /// Whether the cached factor's conductances are the true (unfaulted)
    /// graph weights.
    base_clean: bool,
    /// Mutation generation the factor (plus any folded SMW correction)
    /// corresponds to.
    factor_gen: u64,

    // --- low-rank delta tracking ---
    smw: SmwUpdate,
    pending_cols: Vec<UpdateCol>,
    pending_inserts: usize,
    /// Set when the recorded delta no longer describes the drift from
    /// the base factor (resync, rank overflow, ground removal).
    smw_broken: bool,

    // --- reusable buffers ---
    edges_buf: Vec<(usize, usize, f64)>,
    /// Per-row column builder for plan rebuilds; rows keep their
    /// capacity across evaluations so re-planning allocates nothing.
    plan_rows: Vec<Vec<usize>>,
    /// Scratch space for in-place re-orderings ([`SparseCholesky::refactor_into`]).
    rcm_ws: sprout_linalg::rcm::RcmWorkspace,
    uf: Vec<usize>,
    rhs: Vec<f64>,
    out: Vec<f64>,
    /// Previous evaluation's reduced voltages (warm starts).
    prev: Vec<f64>,
    prev_dim: usize,
    prev_pairs: usize,
    scratch: Vec<f64>,
    vfull: Vec<f64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    Reuse,
    Smw,
    Refresh,
    Full,
}

impl NodalSession {
    /// Creates an empty session; state materializes at the first
    /// evaluation.
    pub fn new(cfg: SolverConfig) -> Self {
        NodalSession {
            cfg,
            stats: SessionStats::default(),
            synced: false,
            graph_nodes: 0,
            graph_edges: 0,
            members: Vec::new(),
            compact: Vec::new(),
            member_mask: Vec::new(),
            edge_ids: Vec::new(),
            mutation_gen: 0,
            factor: None,
            base_csr: None,
            plan: None,
            base_members: Vec::new(),
            base_ground_node: None,
            base_clean: false,
            factor_gen: u64::MAX,
            smw: SmwUpdate::new(),
            pending_cols: Vec::new(),
            pending_inserts: 0,
            smw_broken: false,
            edges_buf: Vec::new(),
            plan_rows: Vec::new(),
            rcm_ws: sprout_linalg::rcm::RcmWorkspace::default(),
            uf: Vec::new(),
            rhs: Vec::new(),
            out: Vec::new(),
            prev: Vec::new(),
            prev_dim: 0,
            prev_pairs: 0,
            scratch: Vec::new(),
            vfull: Vec::new(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Evaluates the node-current metric, reusing as much cached solver
    /// state as the accumulated deltas allow. Numerically identical to
    /// [`current::node_current`] (bit-identical at the default
    /// configuration).
    ///
    /// # Errors
    ///
    /// Same conditions as [`current::node_current`].
    pub fn eval(
        &mut self,
        graph: &RoutingGraph,
        sub: &Subgraph,
        pairs: &[InjectionPair],
    ) -> Result<NodeCurrents, SproutError> {
        current::validate_pairs(sub, pairs)?;
        self.sync(graph, sub);
        self.materialize_edges(graph);

        // Fault-injection hooks fire in the same order and count as the
        // scratch evaluator, so fault sweeps see identical behavior.
        let corrupted = recovery::fault_corrupt_conductances(&mut self.edges_buf) > 0;
        if recovery::fault_solver_failure() {
            return Err(SproutError::from(LinalgError::NotConverged {
                iterations: 0,
                residual: f64::INFINITY,
            }));
        }
        let dropped = self
            .edges_buf
            .iter()
            .filter(|&&(_, _, g)| !(g.is_finite() && g > 0.0))
            .count();
        if dropped > 0 {
            recovery::note_event(SolverEvent::Sanitized(dropped));
            telemetry::counter!("solver.edges_sanitized", dropped as u64);
            telemetry::point("edges_sanitized")
                .field("count", dropped)
                .emit();
            self.edges_buf.retain(|&(_, _, g)| g.is_finite() && g > 0.0);
        }
        // "Clean" = the buffered conductances are the true graph weights
        // (a finite-positive corruption can survive sanitation, so the
        // corruption flag matters independently of `dropped`).
        let clean = !corrupted && dropped == 0;
        let sanitized = dropped > 0;

        let m = self.members.len();
        if m == 1 {
            return Err(SproutError::from(LinalgError::Empty));
        }
        let ground_node = pairs[0].sink;
        let ground = self.compact[ground_node.index()];
        let dim = m - 1;
        let p_count = pairs.len();
        self.stats.evals += 1;

        if self.cfg.force_iterative {
            return self.eval_iterative(graph, pairs, ground_node, ground, clean, sanitized);
        }

        // ---- pick the cheapest safe backend ----
        let ground_same = self.base_ground_node == Some(ground_node);
        let factored = self.factor.is_some();
        let gen_same = factored && ground_same && self.factor_gen == self.mutation_gen;
        let set_same = gen_same || (factored && ground_same && self.members == self.base_members);

        let mut backend = if set_same {
            if !gen_same {
                // The membership wandered and returned to the factored
                // set (refine removes then regrows): the cached base is
                // current again — drop any recorded delta.
                self.reset_delta();
                self.factor_gen = self.mutation_gen;
            }
            if clean && self.base_clean {
                if self.smw.rank() > 0 {
                    Backend::Smw
                } else {
                    Backend::Reuse
                }
            } else {
                self.reset_delta();
                Backend::Refresh
            }
        } else if self.smw_eligible(clean, ground_node) {
            Backend::Smw
        } else {
            Backend::Full
        };

        if backend == Backend::Smw && !self.pending_cols.is_empty() {
            // Engage: screen the mutated system, then fold the recorded
            // removal columns into the running correction.
            self.screen_components()?;
            let factor = self
                .factor
                .as_ref()
                .ok_or(SproutError::Internal("SMW engage requires a base factor"))?;
            let cols = std::mem::take(&mut self.pending_cols);
            let mut folded = true;
            for col in cols {
                if self.smw.push_col(factor, col).is_err() {
                    folded = false;
                    break;
                }
            }
            if folded {
                self.factor_gen = self.mutation_gen;
            } else {
                self.reset_delta();
                backend = Backend::Full;
            }
        }

        let mut need_full_factor = false;
        match backend {
            Backend::Reuse | Backend::Smw => {}
            Backend::Refresh => {
                // Same membership, different conductances: refresh the
                // cached structure's values and refactor in place.
                let plan_reused = self.refresh_csr(graph, m, ground, sanitized)?;
                if plan_reused {
                    let factor = self
                        .factor
                        .as_mut()
                        .ok_or(SproutError::Internal("refresh requires a factor"))?;
                    let csr = self
                        .base_csr
                        .as_ref()
                        .ok_or(SproutError::Internal("refresh requires a matrix"))?;
                    let refactor = {
                        let _span = telemetry::span("factor_refresh").enter();
                        factor.try_refactor(csr)
                    };
                    match refactor {
                        Ok(true) => {
                            self.base_clean = clean;
                            self.stats.numeric_refactors += 1;
                            telemetry::counter!("session.factor_refresh");
                        }
                        Ok(false) => need_full_factor = true,
                        Err(_) => {
                            self.factor = None;
                            return self.eval_ladder(graph, pairs, m, ground);
                        }
                    }
                } else {
                    need_full_factor = true;
                }
            }
            Backend::Full => {
                self.refresh_csr(graph, m, ground, sanitized)?;
                need_full_factor = true;
            }
        }

        if need_full_factor {
            let factored = {
                let _span = telemetry::span("factor_full").enter();
                self.factor_current()
            };
            match factored {
                Ok(()) => {
                    self.base_members.clear();
                    self.base_members.extend_from_slice(&self.members);
                    self.base_ground_node = Some(ground_node);
                    self.base_clean = clean;
                    self.factor_gen = self.mutation_gen;
                    self.reset_delta();
                    self.stats.full_factors += 1;
                    telemetry::counter!("session.factor_full");
                }
                Err(_) => {
                    self.factor = None;
                    return self.eval_ladder(graph, pairs, m, ground);
                }
            }
        }

        if backend == Backend::Smw && self.smw.rank() > 0 {
            self.solve_smw(pairs, ground, ground_node, dim)?;
            self.stats.smw_evals += 1;
            telemetry::counter!("session.smw_evals");
        } else {
            if backend == Backend::Reuse {
                self.stats.factor_reuses += 1;
                telemetry::counter!("session.factor_reuse");
            }
            self.stamp_rhs(pairs, ground, dim);
            self.solve_direct(p_count, dim)?;
        }

        Ok(self.finish(graph, pairs, m, ground, dim, p_count))
    }

    // ---- mutation mirroring -------------------------------------------

    /// Records the insertion of `id` (already applied to `sub`).
    pub(crate) fn note_insert(&mut self, graph: &RoutingGraph, sub: &Subgraph, id: NodeId) {
        if !self.synced {
            return;
        }
        match self.members.binary_search(&id) {
            Ok(_) => return, // desync guard; resync will repair
            Err(pos) => self.members.insert(pos, id),
        }
        for &(v, eid) in graph.neighbors(id) {
            if sub.contains(v) {
                if let Err(p) = self.edge_ids.binary_search(&eid) {
                    self.edge_ids.insert(p, eid);
                }
            }
        }
        self.mutation_gen += 1;
        self.pending_inserts += 1;
    }

    /// Records the removal of `id` (already applied to `sub`).
    pub(crate) fn note_remove(&mut self, graph: &RoutingGraph, sub: &Subgraph, id: NodeId) {
        if !self.synced {
            return;
        }
        let Ok(pos) = self.members.binary_search(&id) else {
            return; // desync guard; resync will repair
        };
        self.record_removal_cols(graph, sub, id);
        self.members.remove(pos);
        for &(v, eid) in graph.neighbors(id) {
            if sub.contains(v) {
                if let Ok(p) = self.edge_ids.binary_search(&eid) {
                    self.edge_ids.remove(p);
                }
            }
        }
        self.mutation_gen += 1;
    }

    /// Records the SMW columns for removing `id` from the *base* system:
    /// per surviving incident edge `(id, v, g)` a rank-1 column
    /// `-g·(e_id - e_v)(e_id - e_v)ᵀ` (ground component dropped), plus a
    /// `+1` identity pin on the vacated slot so the corrected operator
    /// stays positive definite. Edges to already-removed neighbors are
    /// excluded naturally — their own removal columns subtracted them.
    fn record_removal_cols(&mut self, graph: &RoutingGraph, sub: &Subgraph, id: NodeId) {
        if self.cfg.smw_max_rank == 0
            || self.smw_broken
            || self.factor.is_none()
            || self.pending_inserts > 0
        {
            return;
        }
        let Some(bg) = self.base_ground_node else {
            self.smw_broken = true;
            return;
        };
        if id == bg {
            self.smw_broken = true;
            return;
        }
        let Some(wi) = self.base_grounded_index(id) else {
            self.smw_broken = true;
            return;
        };
        let mut new_cols: Vec<UpdateCol> = Vec::new();
        for &(v, eid) in graph.neighbors(id) {
            if !sub.contains(v) {
                continue;
            }
            let g = graph.edge(eid).weight;
            let entries = if v == bg {
                vec![(wi, 1.0)]
            } else {
                match self.base_grounded_index(v) {
                    Some(vi) => vec![(wi, 1.0), (vi, -1.0)],
                    None => {
                        self.smw_broken = true;
                        return;
                    }
                }
            };
            new_cols.push(UpdateCol { entries, scale: -g });
        }
        new_cols.push(UpdateCol {
            entries: vec![(wi, 1.0)],
            scale: 1.0,
        });
        if self.smw.rank() + self.pending_cols.len() + new_cols.len() > self.cfg.smw_max_rank {
            // Over budget: the next evaluation refactors instead.
            self.smw_broken = true;
            self.pending_cols.clear();
            return;
        }
        self.pending_cols.extend(new_cols);
    }

    /// Grounded index of `id` in the base (factored) system.
    fn base_grounded_index(&self, id: NodeId) -> Option<usize> {
        let bg = self.base_ground_node?;
        let gpos = self.base_members.binary_search(&bg).ok()?;
        let pos = self.base_members.binary_search(&id).ok()?;
        if pos == gpos {
            None
        } else {
            Some(pos - usize::from(pos > gpos))
        }
    }

    // ---- synchronization ----------------------------------------------

    /// Verifies the mirrored membership against the subgraph (O(m)) and
    /// resyncs on any divergence (clone-restores, direct mutations).
    fn sync(&mut self, graph: &RoutingGraph, sub: &Subgraph) {
        let matches = self.synced
            && self.graph_nodes == graph.node_count()
            && self.graph_edges == graph.edge_count()
            && self.members.len() == sub.order()
            && self.members.iter().all(|&m| sub.contains(m));
        if !matches {
            let first = !self.synced;
            self.members.clear();
            self.members.extend_from_slice(sub.members());
            self.members.sort_unstable();
            self.edge_ids.clear();
            for (idx, e) in graph.edges().iter().enumerate() {
                if sub.contains(e.a) && sub.contains(e.b) {
                    self.edge_ids.push(idx as u32);
                }
            }
            self.graph_nodes = graph.node_count();
            self.graph_edges = graph.edge_count();
            self.synced = true;
            self.mutation_gen += 1;
            self.pending_cols.clear();
            self.pending_inserts = 0;
            self.smw_broken = true;
            if !first {
                self.stats.resyncs += 1;
                telemetry::counter!("session.resyncs");
            }
        }
        if self.compact.len() != graph.node_count() {
            self.compact = vec![usize::MAX; graph.node_count()];
        }
        self.member_mask.clear();
        self.member_mask.resize(graph.node_count(), false);
        for (k, &mid) in self.members.iter().enumerate() {
            self.compact[mid.index()] = k;
            self.member_mask[mid.index()] = true;
        }
    }

    /// Rebuilds the compact induced-edge list in ascending graph-edge
    /// order — the same order the scratch evaluator's induced-edge scan
    /// produces.
    fn materialize_edges(&mut self, graph: &RoutingGraph) {
        self.edges_buf.clear();
        self.edges_buf.reserve(self.edge_ids.len());
        for &eid in &self.edge_ids {
            let e = graph.edge(eid);
            self.edges_buf.push((
                self.compact[e.a.index()],
                self.compact[e.b.index()],
                e.weight,
            ));
        }
    }

    fn reset_delta(&mut self) {
        self.smw = SmwUpdate::new();
        self.pending_cols.clear();
        self.pending_inserts = 0;
        self.smw_broken = false;
    }

    fn smw_eligible(&self, clean: bool, ground_node: NodeId) -> bool {
        self.cfg.smw_max_rank > 0
            && !self.smw_broken
            && clean
            && self.base_clean
            && self.factor.is_some()
            && self.base_csr.is_some()
            && self.pending_inserts == 0
            && !self.pending_cols.is_empty()
            && self.base_ground_node == Some(ground_node)
            && self.smw.rank() + self.pending_cols.len() <= self.cfg.smw_max_rank
    }

    // ---- assembly ------------------------------------------------------

    /// Union-find component screen over the sanitized induced edges —
    /// the same verdict (and error) the scratch evaluator's
    /// `component_count` check produces, without building a Laplacian.
    fn screen_components(&mut self) -> Result<(), SproutError> {
        let m = self.members.len();
        self.uf.clear();
        self.uf.extend(0..m);
        fn find(uf: &mut [usize], mut x: usize) -> usize {
            while uf[x] != x {
                uf[x] = uf[uf[x]]; // path halving
                x = uf[x];
            }
            x
        }
        for i in 0..self.edges_buf.len() {
            let (a, b, _) = self.edges_buf[i];
            let ra = find(&mut self.uf, a);
            let rb = find(&mut self.uf, b);
            if ra != rb {
                self.uf[ra] = rb;
            }
        }
        let mut components = 0usize;
        for i in 0..m {
            if find(&mut self.uf, i) == i {
                components += 1;
            }
        }
        if components > 1 {
            Err(SproutError::from(LinalgError::Disconnected { components }))
        } else {
            Ok(())
        }
    }

    /// Ensures `base_csr` holds the exact current grounded system.
    /// Returns `true` when the cached sparsity plan was reused (values
    /// refreshed in place), `false` when the plan and structure were
    /// rebuilt. Screens for floating components first.
    fn refresh_csr(
        &mut self,
        graph: &RoutingGraph,
        m: usize,
        ground: usize,
        sanitized: bool,
    ) -> Result<bool, SproutError> {
        self.screen_components()?;
        let plan_ok = !sanitized
            && self.base_csr.is_some()
            && self.plan.as_ref().is_some_and(|p| {
                p.gen == self.mutation_gen
                    && p.ground == ground
                    && !p.sanitized
                    && p.edge_count == self.edges_buf.len()
            });
        if plan_ok {
            self.rebuild_values()?;
            Ok(true)
        } else {
            self.rebuild_plan(graph, m, ground, sanitized)?;
            Ok(false)
        }
    }

    /// Plans the grounded-CSR structure and per-edge value slots, then
    /// builds the matrix. Duplicate (parallel) edges share slots, and
    /// the value replay accumulates them in edge order — matching the
    /// scratch evaluator's stable triplet summation bit for bit.
    fn rebuild_plan(
        &mut self,
        graph: &RoutingGraph,
        m: usize,
        ground: usize,
        sanitized: bool,
    ) -> Result<(), SproutError> {
        let dim = m - 1;
        let gidx = |i: usize| if i < ground { i } else { i - 1 };
        // Recycle the previous plan's and matrix's allocations: the
        // router re-plans on every membership change, so this path must
        // not allocate per evaluation.
        let mut edge_slots = match self.plan.take() {
            Some(p) => {
                let mut v = p.edge_slots;
                v.clear();
                v
            }
            None => Vec::new(),
        };
        let (mut row_ptr, mut col_idx, mut values) = match self.base_csr.take() {
            Some(csr) => csr.into_raw_parts(),
            None => (Vec::new(), Vec::new(), Vec::new()),
        };
        row_ptr.clear();
        row_ptr.reserve(dim + 1);
        row_ptr.push(0usize);
        col_idx.clear();
        // Fast path: walk the graph adjacency of the mirrored members
        // directly — each grounded row is its member-neighbor columns
        // plus the diagonal, gathered into a fixed-size buffer and
        // insertion-sorted. Only valid when no edge was sanitized away
        // (the structure must mirror `edges_buf` exactly) and degrees
        // stay small; otherwise fall back to the general per-edge
        // scatter. Both produce identical sorted, deduplicated rows.
        let mut fast_ok = !sanitized;
        if fast_ok {
            'walk: for (i, &node) in self.members.iter().enumerate() {
                if i == ground {
                    continue;
                }
                let mut row = [0usize; 8];
                let mut len = 0usize;
                row[len] = gidx(i);
                len += 1;
                for &(v, _) in graph.neighbors(node) {
                    if !self.member_mask[v.index()] {
                        continue;
                    }
                    let ci = self.compact[v.index()];
                    if ci == ground {
                        continue;
                    }
                    if len == row.len() {
                        fast_ok = false;
                        break 'walk;
                    }
                    row[len] = gidx(ci);
                    len += 1;
                }
                let r = &mut row[..len];
                r.sort_unstable();
                let mut prev = usize::MAX;
                for &c in r.iter() {
                    if c != prev {
                        col_idx.push(c);
                        prev = c;
                    }
                }
                row_ptr.push(col_idx.len());
            }
        }
        if !fast_ok {
            row_ptr.clear();
            row_ptr.push(0usize);
            col_idx.clear();
            if self.plan_rows.len() < dim {
                self.plan_rows.resize_with(dim, Vec::new);
            }
            for list in &mut self.plan_rows[..dim] {
                list.clear();
            }
            for &(a, b, _) in &self.edges_buf {
                if a != ground && b != ground {
                    self.plan_rows[gidx(a)].push(gidx(b));
                    self.plan_rows[gidx(b)].push(gidx(a));
                }
                if a != ground {
                    self.plan_rows[gidx(a)].push(gidx(a));
                }
                if b != ground {
                    self.plan_rows[gidx(b)].push(gidx(b));
                }
            }
            for list in &mut self.plan_rows[..dim] {
                list.sort_unstable();
                list.dedup();
                col_idx.extend_from_slice(list);
                row_ptr.push(col_idx.len());
            }
        }
        let slot = |r: usize, c: usize| -> Result<usize, SproutError> {
            let lo = row_ptr[r];
            let hi = row_ptr[r + 1];
            col_idx[lo..hi]
                .binary_search(&c)
                .map(|off| lo + off)
                .map_err(|_| SproutError::Internal("planned CSR entry missing"))
        };
        edge_slots.reserve(self.edges_buf.len());
        for &(a, b, _) in &self.edges_buf {
            let mut s = [SKIP; 4];
            if a != ground {
                s[0] = slot(gidx(a), gidx(a))?;
            }
            if b != ground {
                s[1] = slot(gidx(b), gidx(b))?;
            }
            if a != ground && b != ground {
                s[2] = slot(gidx(a), gidx(b))?;
                s[3] = slot(gidx(b), gidx(a))?;
            }
            edge_slots.push(s);
        }
        values.clear();
        values.resize(col_idx.len(), 0.0);
        self.plan = Some(CsrPlan {
            ground,
            gen: self.mutation_gen,
            sanitized,
            edge_count: self.edges_buf.len(),
            edge_slots,
        });
        let csr = Csr::from_raw_parts(dim, dim, row_ptr, col_idx, values)?;
        self.base_csr = Some(csr);
        self.rebuild_values()?;
        Ok(())
    }

    /// Replays the conductance stamps into the cached structure.
    fn rebuild_values(&mut self) -> Result<(), SproutError> {
        let plan = self
            .plan
            .as_ref()
            .ok_or(SproutError::Internal("value replay requires a plan"))?;
        let csr = self
            .base_csr
            .as_mut()
            .ok_or(SproutError::Internal("value replay requires a matrix"))?;
        let vals = csr.values_mut();
        vals.fill(0.0);
        for (k, &(_, _, g)) in self.edges_buf.iter().enumerate() {
            let [da, db, ab, ba] = plan.edge_slots[k];
            if da != SKIP {
                vals[da] += g;
            }
            if db != SKIP {
                vals[db] += g;
            }
            if ab != SKIP {
                vals[ab] -= g;
            }
            if ba != SKIP {
                vals[ba] -= g;
            }
        }
        Ok(())
    }

    // ---- solve paths ---------------------------------------------------

    /// Stamps the per-pair grounded right-hand sides (column-major).
    fn stamp_rhs(&mut self, pairs: &[InjectionPair], ground: usize, dim: usize) {
        self.rhs.clear();
        self.rhs.resize(pairs.len() * dim, 0.0);
        let gidx = |i: usize| if i < ground { i } else { i - 1 };
        for (pi, p) in pairs.iter().enumerate() {
            let s = self.compact[p.source.index()];
            if s != ground {
                self.rhs[pi * dim + gidx(s)] += p.current_a;
            }
            let t = self.compact[p.sink.index()];
            if t != ground {
                self.rhs[pi * dim + gidx(t)] -= p.current_a;
            }
        }
    }

    /// Solves all right-hand sides against the cached factor as one
    /// blocked pass, optionally split across threads by contiguous pair
    /// ranges. Each column's substitution is independent of the
    /// grouping, so the result bits do not depend on the thread count.
    fn solve_direct(&mut self, p_count: usize, dim: usize) -> Result<(), SproutError> {
        let factor = self
            .factor
            .as_ref()
            .ok_or(SproutError::Internal("direct solve requires a factor"))?;
        let threads = self.cfg.threads.max(1).min(p_count);
        if threads <= 1 {
            // `solve_block_into` sizes and fully overwrites `out`.
            factor.solve_block_into(&self.rhs, p_count, &mut self.out, &mut self.scratch)?;
            return Ok(());
        }
        self.out.clear();
        self.out.resize(p_count * dim, 0.0);
        let chunk = p_count.div_ceil(threads) * dim;
        let rhs = &self.rhs;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (rhs_c, out_c) in rhs.chunks(chunk).zip(self.out.chunks_mut(chunk)) {
                handles.push(scope.spawn(move || -> Result<(), LinalgError> {
                    let width = rhs_c.len() / dim;
                    let mut out = Vec::new();
                    let mut scratch = Vec::new();
                    factor.solve_block_into(rhs_c, width, &mut out, &mut scratch)?;
                    out_c.copy_from_slice(&out);
                    Ok(())
                }));
            }
            let mut result: Result<(), SproutError> = Ok(());
            for h in handles {
                // A panicked solver thread is reported as a typed error,
                // not re-raised — the supervisor's catch_unwind boundary
                // should never be the first line of defense.
                match h.join() {
                    Ok(r) => {
                        if result.is_ok() {
                            result = r.map_err(SproutError::from);
                        }
                    }
                    Err(_) => {
                        if result.is_ok() {
                            result = Err(SproutError::Internal("solver thread panicked"));
                        }
                    }
                }
            }
            result
        })?;
        Ok(())
    }

    /// Solves through the accumulated SMW correction in the base index
    /// space, then maps voltages back to the current compact space.
    fn solve_smw(
        &mut self,
        pairs: &[InjectionPair],
        ground: usize,
        ground_node: NodeId,
        dim: usize,
    ) -> Result<(), SproutError> {
        let base_dim = self.base_members.len() - 1;
        let mut cur_to_base = Vec::with_capacity(self.members.len());
        for &node in &self.members {
            if node == ground_node {
                cur_to_base.push(usize::MAX);
            } else {
                cur_to_base.push(
                    self.base_grounded_index(node)
                        .ok_or(SproutError::Internal("SMW member missing from base"))?,
                );
            }
        }
        let p_count = pairs.len();
        self.out.clear();
        self.out.resize(p_count * dim, 0.0);
        let factor = self
            .factor
            .as_ref()
            .ok_or(SproutError::Internal("SMW requires a base factor"))?;
        let base_csr = self
            .base_csr
            .as_ref()
            .ok_or(SproutError::Internal("SMW requires a base matrix"))?;
        let mut b = vec![0.0f64; base_dim];
        for (pi, p) in pairs.iter().enumerate() {
            b.fill(0.0);
            let sk = self.compact[p.source.index()];
            if p.source != ground_node {
                b[cur_to_base[sk]] += p.current_a;
            }
            let tk = self.compact[p.sink.index()];
            if p.sink != ground_node {
                b[cur_to_base[tk]] -= p.current_a;
            }
            let x = self.smw.solve(factor, base_csr, &b)?;
            let col = &mut self.out[pi * dim..(pi + 1) * dim];
            for (k, &bi) in cur_to_base.iter().enumerate() {
                if k == ground {
                    continue;
                }
                col[if k < ground { k } else { k - 1 }] = x[bi];
            }
        }
        Ok(())
    }

    /// Warm-started preconditioned-CG path (`force_iterative`): the
    /// last exact factor preconditions, the previous evaluation's
    /// voltages seed, and the exact current matrix defines the system.
    fn eval_iterative(
        &mut self,
        graph: &RoutingGraph,
        pairs: &[InjectionPair],
        ground_node: NodeId,
        ground: usize,
        clean: bool,
        sanitized: bool,
    ) -> Result<NodeCurrents, SproutError> {
        let m = self.members.len();
        let dim = m - 1;
        let p_count = pairs.len();
        self.reset_delta();
        self.refresh_csr(graph, m, ground, sanitized)?;
        let stale_ok = self.factor.as_ref().is_some_and(|f| f.dimension() == dim);
        if !stale_ok && !self.refactor_exact(ground_node, clean) {
            return self.eval_ladder(graph, pairs, m, ground);
        }
        self.stamp_rhs(pairs, ground, dim);
        self.out.clear();
        self.out.resize(p_count * dim, 0.0);
        let warm = self.prev_dim == dim && self.prev_pairs == p_count;
        let zeros = vec![0.0f64; dim];
        let mut converged = true;
        {
            let factor = self.factor.as_ref().ok_or(SproutError::Internal(
                "iterative solve lost its preconditioner",
            ))?;
            let csr = self.base_csr.as_ref().ok_or(SproutError::Internal(
                "iterative solve lost its system matrix",
            ))?;
            for pi in 0..p_count {
                let b = &self.rhs[pi * dim..(pi + 1) * dim];
                let x0: &[f64] = if warm {
                    &self.prev[pi * dim..(pi + 1) * dim]
                } else {
                    &zeros
                };
                let precond = |r: &[f64], z: &mut [f64]| {
                    let mut out = Vec::new();
                    let mut scratch = Vec::new();
                    if factor
                        .solve_block_into(r, 1, &mut out, &mut scratch)
                        .is_ok()
                    {
                        z.copy_from_slice(&out);
                    } else {
                        z.copy_from_slice(r);
                    }
                };
                let opts = CgOptions {
                    tolerance: 1e-12,
                    max_iterations: 0,
                };
                match solve_pcg_warm(csr, b, x0, precond, opts) {
                    Ok(sol) => {
                        self.out[pi * dim..(pi + 1) * dim].copy_from_slice(&sol.x);
                        self.stats.warm_solves += 1;
                        telemetry::counter!("session.warm_solves");
                    }
                    Err(_) => {
                        converged = false;
                        break;
                    }
                }
            }
        }
        if !converged {
            // The stale preconditioner drifted too far — recover with an
            // exact factor and direct substitution.
            if !self.refactor_exact(ground_node, clean) {
                return self.eval_ladder(graph, pairs, m, ground);
            }
            self.solve_direct(p_count, dim)?;
        }
        Ok(self.finish(graph, pairs, m, ground, dim, p_count))
    }

    /// Factors the current `base_csr` into the cached factor object
    /// (fresh ordering, reused buffers — bit-identical to a fresh
    /// [`SparseCholesky::factor`]).
    fn factor_current(&mut self) -> Result<(), SproutError> {
        let csr = self
            .base_csr
            .as_ref()
            .ok_or(SproutError::Internal("full factor requires a matrix"))?;
        if let Some(f) = self.factor.as_mut() {
            f.refactor_into(csr, &mut self.rcm_ws)
                .map_err(SproutError::from)
        } else {
            self.factor = Some(SparseCholesky::factor(csr)?);
            Ok(())
        }
    }

    /// Factors the current `base_csr` exactly and adopts it as the new
    /// base. Returns `false` on factorization failure.
    fn refactor_exact(&mut self, ground_node: NodeId, clean: bool) -> bool {
        match self.factor_current() {
            Ok(()) => {
                self.base_members.clear();
                self.base_members.extend_from_slice(&self.members);
                self.base_ground_node = Some(ground_node);
                self.base_clean = clean;
                self.factor_gen = self.mutation_gen;
                self.stats.full_factors += 1;
                telemetry::counter!("session.factor_full");
                true
            }
            Err(_) => {
                self.factor = None;
                false
            }
        }
    }

    /// Last-resort path: run the scratch evaluator's resilient solver
    /// ladder on the already-assembled system, emitting the same
    /// degradation events it would.
    fn eval_ladder(
        &mut self,
        graph: &RoutingGraph,
        pairs: &[InjectionPair],
        m: usize,
        ground: usize,
    ) -> Result<NodeCurrents, SproutError> {
        self.stats.ladder_fallbacks += 1;
        telemetry::counter!("session.ladder_fallbacks");
        let mut lap = GraphLaplacian::from_edges(m, &self.edges_buf)?;
        let _ = lap.sanitize_conductances(); // parity no-op: edges are clean
        let factor = lap.factor_grounded_resilient(ground, FallbackOptions::default())?;
        if let Some(report) = factor.fallback_report() {
            if report.degraded() {
                recovery::note_event(SolverEvent::Fallback(report.rung));
                telemetry::counter!("solver.fallbacks");
                telemetry::point("solver_fallback")
                    .field("rung", format!("{:?}", report.rung))
                    .field("attempts", report.factor_attempts)
                    .emit();
            }
        }
        current::metric_from_factor(
            graph,
            &self.members,
            &self.compact,
            &self.edges_buf,
            &factor,
            pairs,
        )
    }

    // ---- reduction -----------------------------------------------------

    /// Expands the reduced solution columns and accumulates the metric —
    /// always sequentially, in pair-index order, on the calling thread —
    /// then caches the voltages as next evaluation's warm starts.
    fn finish(
        &mut self,
        graph: &RoutingGraph,
        pairs: &[InjectionPair],
        m: usize,
        ground: usize,
        dim: usize,
        p_count: usize,
    ) -> NodeCurrents {
        let mut node_metric = vec![0.0f64; graph.node_count()];
        let mut resistance_weighted = 0.0f64;
        let mut weight_total = 0.0f64;
        self.vfull.clear();
        self.vfull.resize(m, 0.0);
        for (pi, p) in pairs.iter().enumerate() {
            let col = &self.out[pi * dim..(pi + 1) * dim];
            self.vfull[ground] = 0.0;
            for (i, &v) in col.iter().enumerate() {
                let full = if i < ground { i } else { i + 1 };
                self.vfull[full] = v;
            }
            for &(a, b, w) in &self.edges_buf {
                let i_edge = w * (self.vfull[a] - self.vfull[b]);
                node_metric[self.members[a].index()] += i_edge.abs();
                node_metric[self.members[b].index()] += i_edge.abs();
            }
            let drop = self.vfull[self.compact[p.source.index()]]
                - self.vfull[self.compact[p.sink.index()]];
            resistance_weighted += drop; // = R_eff · i_pair
            weight_total += p.current_a;
        }
        let resistance_sq = if weight_total > 0.0 {
            resistance_weighted / weight_total
        } else {
            0.0
        };
        std::mem::swap(&mut self.prev, &mut self.out);
        self.prev_dim = dim;
        self.prev_pairs = p_count;
        telemetry::counter!("metric.evaluations");
        telemetry::histogram!("metric.solves_per_eval", p_count as u64);
        NodeCurrents::from_parts(node_metric, resistance_sq, p_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::current::{injection_pairs, node_current, PairPolicy};
    use crate::graph::RemovalCheck;
    use crate::seed::{seed_subgraph, SeedOptions};
    use crate::space::SpaceSpec;
    use crate::tile::{identify_terminals, space_to_graph, Terminal, TileOptions};
    use sprout_board::presets;

    fn setup() -> (RoutingGraph, Subgraph, Vec<Terminal>) {
        let board = presets::two_rail();
        let (vdd1, _) = board.power_nets().next().unwrap();
        let spec = SpaceSpec::build(&board, vdd1, presets::TWO_RAIL_ROUTE_LAYER, &[]).unwrap();
        let graph = space_to_graph(&spec, TileOptions::square(0.4)).unwrap();
        let terminals = identify_terminals(&graph, &spec, vdd1).unwrap();
        let sub = seed_subgraph(&graph, &terminals, vdd1, 6, SeedOptions::default()).unwrap();
        (graph, sub, terminals)
    }

    fn assert_bitwise_match(
        graph: &RoutingGraph,
        sub: &Subgraph,
        pairs: &[InjectionPair],
        engine: &mut Engine,
    ) {
        let scratch = node_current(graph, sub, pairs).unwrap();
        let incr = engine.eval(graph, sub, pairs).unwrap();
        assert_eq!(
            scratch.resistance_sq().to_bits(),
            incr.resistance_sq().to_bits(),
            "resistance must match bit for bit"
        );
        assert_eq!(scratch.solves(), incr.solves());
        for i in 0..graph.node_count() as u32 {
            let id = NodeId(i);
            assert_eq!(
                scratch.of(id).to_bits(),
                incr.of(id).to_bits(),
                "metric mismatch at node {i}"
            );
        }
    }

    #[test]
    fn incremental_matches_scratch_bitwise_through_mutations() {
        let (graph, mut sub, terminals) = setup();
        let pairs = injection_pairs(&terminals, PairPolicy::SourceToSinks, 3.0);
        let tnodes: Vec<NodeId> = terminals.iter().map(|t| t.node).collect();
        let mut engine = Engine::new(SolverConfig::default());

        // Seed evaluation: first full factor.
        assert_bitwise_match(&graph, &sub, &pairs, &mut engine);
        // Repeat without mutations: factor reuse.
        assert_bitwise_match(&graph, &sub, &pairs, &mut engine);

        // Grow a boundary ring through the engine.
        for id in sub.boundary(&graph) {
            engine.insert(&graph, &mut sub, id);
        }
        assert_bitwise_match(&graph, &sub, &pairs, &mut engine);

        // Remove a few connectivity-safe non-terminal nodes.
        let mut check = RemovalCheck::new();
        let candidates: Vec<NodeId> = sub.members().to_vec();
        let mut removed = 0;
        for id in candidates {
            if removed >= 3 || tnodes.contains(&id) {
                continue;
            }
            if check.keeps_connected(&graph, &sub, id, &tnodes) {
                engine.remove(&graph, &mut sub, id);
                removed += 1;
            }
        }
        assert!(removed > 0, "expected at least one safe removal");
        assert_bitwise_match(&graph, &sub, &pairs, &mut engine);

        // Out-of-band mutation (clone restore) must trigger a resync,
        // not wrong answers.
        let mut restored = sub.clone();
        for id in sub.boundary(&graph).into_iter().take(2) {
            restored.insert(&graph, id);
        }
        assert_bitwise_match(&graph, &restored, &pairs, &mut engine);

        let stats = engine.stats();
        assert!(stats.full_factors >= 1, "stats: {stats:?}");
        assert!(stats.factor_reuses >= 1, "stats: {stats:?}");
        assert!(stats.resyncs >= 1, "stats: {stats:?}");
        assert_eq!(
            stats.evals,
            stats.full_factors
                + stats.numeric_refactors
                + stats.smw_evals
                + stats.factor_reuses
                + stats.ladder_fallbacks,
            "every eval must be accounted to exactly one backend: {stats:?}"
        );
    }

    #[test]
    fn smw_correction_tracks_removals_within_tolerance() {
        let (graph, mut sub, terminals) = setup();
        let pairs = injection_pairs(&terminals, PairPolicy::SourceToSinks, 3.0);
        let tnodes: Vec<NodeId> = terminals.iter().map(|t| t.node).collect();
        for id in sub.boundary(&graph) {
            sub.insert(&graph, id);
        }
        let mut engine = Engine::new(SolverConfig {
            smw_max_rank: 12,
            ..SolverConfig::default()
        });
        engine.eval(&graph, &sub, &pairs).unwrap();

        // Remove one safe node: rank ≤ #incident-edges + 1 ≤ 5.
        let mut check = RemovalCheck::new();
        let id = sub
            .members()
            .to_vec()
            .into_iter()
            .find(|&id| !tnodes.contains(&id) && check.keeps_connected(&graph, &sub, id, &tnodes))
            .expect("a safe removal exists");
        engine.remove(&graph, &mut sub, id);

        let scratch = node_current(&graph, &sub, &pairs).unwrap();
        let incr = engine.eval(&graph, &sub, &pairs).unwrap();
        let stats = engine.stats();
        assert_eq!(
            stats.smw_evals, 1,
            "removal must ride the SMW path: {stats:?}"
        );
        let rel =
            (incr.resistance_sq() - scratch.resistance_sq()).abs() / scratch.resistance_sq().abs();
        assert!(rel < 1e-9, "SMW resistance drift {rel}");
        // Per-node drift scaled by the hotspot magnitude (near-zero
        // metrics are rounding noise in both evaluators).
        let scale = scratch.max_current_a();
        for i in 0..graph.node_count() as u32 {
            let id = NodeId(i);
            let (a, b) = (scratch.of(id), incr.of(id));
            assert!(
                (a - b).abs() <= 1e-9 * scale,
                "SMW metric drift at node {i}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn forced_iterative_warm_solves_match_direct_within_tolerance() {
        let (graph, mut sub, terminals) = setup();
        let pairs = injection_pairs(&terminals, PairPolicy::SourceToSinks, 3.0);
        let mut engine = Engine::new(SolverConfig {
            force_iterative: true,
            ..SolverConfig::default()
        });
        let first = engine.eval(&graph, &sub, &pairs).unwrap();
        let scratch = node_current(&graph, &sub, &pairs).unwrap();
        let rel = (first.resistance_sq() - scratch.resistance_sq()).abs() / scratch.resistance_sq();
        assert!(rel.abs() < 1e-9, "iterative drift {rel}");
        // Mutate and re-evaluate: the second eval warm-starts from the
        // first one's voltages against a stale preconditioner.
        for id in sub.boundary(&graph).into_iter().take(3) {
            engine.insert(&graph, &mut sub, id);
        }
        let second = engine.eval(&graph, &sub, &pairs).unwrap();
        let scratch2 = node_current(&graph, &sub, &pairs).unwrap();
        let rel2 =
            (second.resistance_sq() - scratch2.resistance_sq()).abs() / scratch2.resistance_sq();
        assert!(rel2.abs() < 1e-9, "warm iterative drift {rel2}");
        assert!(engine.stats().warm_solves >= pairs.len());
    }

    #[test]
    fn scratch_engine_matches_node_current_and_counts() {
        let (graph, sub, terminals) = setup();
        let pairs = injection_pairs(&terminals, PairPolicy::SourceToSinks, 3.0);
        let mut engine = Engine::scratch();
        let a = engine.eval(&graph, &sub, &pairs).unwrap();
        let b = node_current(&graph, &sub, &pairs).unwrap();
        assert_eq!(a.resistance_sq().to_bits(), b.resistance_sq().to_bits());
        let stats = engine.stats();
        assert_eq!(stats.evals, 1);
        assert_eq!(stats.full_factors, 1);
    }
}
