//! Back conversion (§II-G): subgraph → physical layout polygons.
//!
//! Interior tiles are exact lattice cells, so their union is computed
//! exactly in integer lattice coordinates ([`sprout_geom::stitch`]);
//! irregular boundary tiles are emitted as separate fragment polygons.

use crate::graph::{RoutingGraph, Subgraph};
use sprout_geom::stitch::{union_grid_cells, Contour};
use sprout_geom::{Point, Polygon, Rect};

/// The physical shape produced for one routed net on one layer.
#[derive(Debug, Clone)]
pub struct RoutedShape {
    /// Stitched boundary loops of the full-cell interior (outer loops
    /// counter-clockwise, holes clockwise).
    pub contours: Vec<Contour>,
    /// Irregular boundary tiles (clipped by buffers or the outline).
    pub fragments: Vec<Polygon>,
    area_mm2: f64,
    /// Full cells merged into maximal horizontal run rectangles (an
    /// exact, hole-free cover used for blocking other nets).
    run_rects: Vec<Polygon>,
}

impl RoutedShape {
    /// Total metal area (mm²) — the `A(Γ_n^s)` the router enforces.
    pub fn area_mm2(&self) -> f64 {
        self.area_mm2
    }

    /// Total vertex count across contours and fragments (the paper's
    /// §II-H cost driver for polygon processing).
    pub fn vertex_count(&self) -> usize {
        self.contours.iter().map(|c| c.points.len()).sum::<usize>()
            + self.fragments.iter().map(|f| f.len()).sum::<usize>()
    }

    /// `true` if the point is covered by metal.
    pub fn contains_point(&self, p: Point) -> bool {
        // Even-odd over contours (holes cancel), plus fragments.
        let mut crossings = 0usize;
        for c in &self.contours {
            let n = c.points.len();
            let mut j = n - 1;
            for i in 0..n {
                let vi = c.points[i];
                let vj = c.points[j];
                if (vi.y > p.y) != (vj.y > p.y) {
                    let x_cross = vi.x + (p.y - vi.y) / (vj.y - vi.y) * (vj.x - vi.x);
                    if p.x < x_cross {
                        crossings += 1;
                    }
                }
                j = i;
            }
        }
        if crossings % 2 == 1 {
            return true;
        }
        self.fragments.iter().any(|f| f.contains_point(p))
    }

    /// The shape as plain blocker polygons for subsequently routed nets
    /// (§II-G): horizontal run-merged rectangles of the full cells plus
    /// the fragments. Exact (no hole bookkeeping needed).
    pub fn blocker_polygons(&self) -> Vec<Polygon> {
        let mut out = self.run_rects.clone();
        out.extend(self.fragments.iter().cloned());
        out
    }

    /// The horizontal run-merged full-cell rectangles (the blocker cover
    /// minus the fragments). Exposed for checkpoint serialization.
    pub fn run_rects(&self) -> &[Polygon] {
        &self.run_rects
    }

    /// Reassembles a shape from its serialized parts — the supervisor's
    /// checkpoint-restore constructor. The caller is responsible for the
    /// parts being mutually consistent (they must come from a shape this
    /// type produced); no geometric validation is re-run, so a restored
    /// shape is bit-identical to the checkpointed one.
    pub fn from_parts(
        contours: Vec<Contour>,
        fragments: Vec<Polygon>,
        run_rects: Vec<Polygon>,
        area_mm2: f64,
    ) -> Self {
        RoutedShape {
            contours,
            fragments,
            area_mm2,
            run_rects,
        }
    }

    /// Drops fragments whose area is below `min_area_mm2` or not finite
    /// — unmanufacturable slivers that would trip DRC and inflate
    /// downstream polygon processing — returning how many were removed.
    /// The reported total area shrinks by the dropped metal.
    pub fn sanitize(&mut self, min_area_mm2: f64) -> usize {
        let before = self.fragments.len();
        let mut removed_area = 0.0f64;
        self.fragments.retain(|f| {
            let a = f.area();
            if a.is_finite() && a >= min_area_mm2 {
                true
            } else {
                if a.is_finite() {
                    removed_area += a;
                }
                false
            }
        });
        let dropped = before - self.fragments.len();
        if dropped > 0 {
            self.area_mm2 = (self.area_mm2 - removed_area).max(0.0);
        }
        dropped
    }

    /// Test-only hook for the fault-injection harness: appends a sliver
    /// fragment near `at` — large enough to survive polygon validation,
    /// orders of magnitude below any legitimate clipped cell —
    /// simulating a degenerate polygon escaping clipping.
    /// [`RoutedShape::sanitize`] must remove it before the shape reaches
    /// DRC.
    pub(crate) fn inject_degenerate_fragment(&mut self, at: Point) {
        if let Ok(p) = Polygon::rectangle(at, Point::new(at.x + 1e-3, at.y + 1e-3)) {
            self.fragments.push(p);
        }
    }
}

/// Converts the final subgraph back into polygons (§II-G).
pub fn back_convert(graph: &RoutingGraph, sub: &Subgraph) -> RoutedShape {
    let frame = graph.frame();
    let mut full_cells: Vec<(i64, i64)> = Vec::new();
    let mut fragments: Vec<Polygon> = Vec::new();
    for &m in sub.members() {
        let node = graph.node(m);
        let exact_w = (node.rect.width() - frame.dx).abs() < 1e-9;
        let exact_h = (node.rect.height() - frame.dy).abs() < 1e-9;
        if node.pieces.is_none() && exact_w && exact_h {
            full_cells.push(node.cell);
        } else {
            match &node.pieces {
                Some(set) => fragments.extend(set.pieces().iter().cloned()),
                None => fragments.push(node.rect.to_polygon()),
            }
        }
    }
    let contours = union_grid_cells(&full_cells, frame);
    let run_rects = merge_runs(&full_cells, frame);
    RoutedShape {
        contours,
        fragments,
        area_mm2: sub.area_mm2(),
        run_rects,
    }
}

/// Merges lattice cells into maximal horizontal run rectangles. Row
/// order is deterministic (bottom to top): the resulting blocker list
/// is compared and checkpointed exactly.
fn merge_runs(cells: &[(i64, i64)], frame: sprout_geom::stitch::GridFrame) -> Vec<Polygon> {
    let mut rows: std::collections::BTreeMap<i64, Vec<i64>> = std::collections::BTreeMap::new();
    for &(i, j) in cells {
        rows.entry(j).or_default().push(i);
    }
    let mut out = Vec::new();
    for (j, mut is) in rows {
        is.sort_unstable();
        is.dedup();
        let mut k = 0usize;
        while k < is.len() {
            let start = is[k];
            let mut end = start;
            while k + 1 < is.len() && is[k + 1] == end + 1 {
                end += 1;
                k += 1;
            }
            k += 1;
            let r = Rect::new(frame.corner(start, j), frame.corner(end + 1, j + 1))
                .expect("positive run extent");
            out.push(r.to_polygon());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::current::{injection_pairs, PairPolicy};
    use crate::grow::grow_to_area;
    use crate::seed::{seed_subgraph, SeedOptions};
    use crate::space::SpaceSpec;
    use crate::tile::{identify_terminals, space_to_graph, TileOptions};
    use sprout_board::presets;
    use sprout_geom::stitch::contours_area;

    fn routed() -> (RoutingGraph, Subgraph) {
        let board = presets::two_rail();
        let (vdd1, _) = board.power_nets().next().unwrap();
        let spec = SpaceSpec::build(&board, vdd1, presets::TWO_RAIL_ROUTE_LAYER, &[]).unwrap();
        let graph = space_to_graph(&spec, TileOptions::square(0.4)).unwrap();
        let terminals = identify_terminals(&graph, &spec, vdd1).unwrap();
        let mut sub = seed_subgraph(&graph, &terminals, vdd1, 6, SeedOptions::default()).unwrap();
        let pairs = injection_pairs(&terminals, PairPolicy::SourceToSinks, 3.0);
        {
            let budget = sub.area_mm2() * 2.0;
            grow_to_area(&graph, &mut sub, &pairs, 24, budget)
        }
        .unwrap();
        (graph, sub)
    }

    #[test]
    fn area_is_conserved() {
        let (graph, sub) = routed();
        let shape = back_convert(&graph, &sub);
        let contour_area = contours_area(&shape.contours);
        let fragment_area: f64 = shape.fragments.iter().map(|f| f.area()).sum();
        assert!(
            (contour_area + fragment_area - sub.area_mm2()).abs() < 1e-6,
            "contours {} + fragments {} vs subgraph {}",
            contour_area,
            fragment_area,
            sub.area_mm2()
        );
        assert!((shape.area_mm2() - sub.area_mm2()).abs() < 1e-12);
    }

    #[test]
    fn tile_centers_are_covered() {
        let (graph, sub) = routed();
        let shape = back_convert(&graph, &sub);
        let mut checked = 0;
        for &m in sub.members().iter().step_by(7) {
            let c = graph.node(m).center();
            assert!(shape.contains_point(c), "member tile centre {c} uncovered");
            checked += 1;
        }
        assert!(checked > 10);
    }

    #[test]
    fn non_member_space_is_uncovered() {
        let (graph, sub) = routed();
        let shape = back_convert(&graph, &sub);
        let mut checked = 0;
        for id in 0..graph.node_count() as u32 {
            let node = crate::graph::NodeId(id);
            if !sub.contains(node) && graph.node(node).pieces.is_none() {
                let c = graph.node(node).center();
                assert!(!shape.contains_point(c), "non-member centre {c} covered");
                checked += 1;
                if checked > 50 {
                    break;
                }
            }
        }
        assert!(checked > 10);
    }

    #[test]
    fn blocker_polygons_cover_the_shape_area() {
        let (graph, sub) = routed();
        let shape = back_convert(&graph, &sub);
        let blockers = shape.blocker_polygons();
        let total: f64 = blockers.iter().map(|b| b.area()).sum();
        assert!(
            (total - sub.area_mm2()).abs() < 1e-6,
            "blockers {} vs area {}",
            total,
            sub.area_mm2()
        );
        // Run merging must compress the representation well below
        // one-polygon-per-cell.
        assert!(blockers.len() * 2 < sub.order());
    }

    #[test]
    fn vertex_count_reported() {
        let (graph, sub) = routed();
        let shape = back_convert(&graph, &sub);
        assert!(shape.vertex_count() >= 4);
    }
}
