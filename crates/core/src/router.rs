//! End-to-end routing pipeline (Fig. 3 of the paper).
//!
//! `Router` wires the stages together — available space, tiling, seed,
//! SmartGrow, SmartRefine, reheating, back conversion — with per-stage
//! wall-clock telemetry reproducing the §II-H runtime breakdown, and
//! tracks the best subgraph seen so a wandering refinement never ships a
//! worse result than it already had.
//!
//! Every stage runs under a [`StageGuard`]: wall-clock and solve-count
//! budgets from [`RecoveryConfig`] are checked between steps, and stage
//! errors are resolved by the configured [`RecoveryPolicy`] — fail
//! fast, skip the rest of the stage, or revert to the best
//! fully-evaluated subgraph. Whatever the router absorbs (solver
//! fallbacks, sanitized conductances, skipped stages, dropped sliver
//! fragments) is recorded in the [`RouteDiagnostics`] attached to the
//! [`RouteResult`], so degraded routes are always distinguishable from
//! clean ones. Seed-stage failures still propagate: with no subgraph
//! yet, there is nothing to degrade to.

use crate::backconv::{back_convert, RoutedShape};
use crate::current::{injection_pairs, InjectionPair, PairPolicy};
use crate::graph::{NodeId, RoutingGraph, Subgraph};
use crate::grow::smart_grow_with;
use crate::recovery::{
    self, Degradation, RecoveryConfig, RecoveryPolicy, RouteDiagnostics, Stage, StageGuard,
};
use crate::refine::smart_refine_with;
use crate::reheat::{reheat_with, ReheatConfig};
use crate::seed::{seed_subgraph, SeedOptions};
use crate::session::{Engine, SolverConfig};
use crate::space::{SpaceSpec, TerminalShape};
use crate::tile::{identify_terminals, space_to_graph, Terminal, TileOptions};
use crate::tile_session::{TileConfig, TileMode, TileOutcome, TilingSession};
use crate::SproutError;
use sprout_board::{Board, ElementRole, NetId};
use sprout_geom::{Point, Polygon};
use sprout_telemetry as telemetry;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Router configuration (the paper's design variables of §II-H).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterConfig {
    /// Tile pitch Δx = Δy (mm). Finer tiles give smoother shapes and
    /// lower resistance at more runtime (Eq. 14).
    pub tile_pitch_mm: f64,
    /// Sliver threshold for irregular cells.
    pub min_cell_fraction: f64,
    /// Target number of SmartGrow iterations (sets ΔV ≈ budget / this).
    pub grow_iterations: usize,
    /// SmartRefine iterations after growth.
    pub refine_iterations: usize,
    /// Nodes moved per refinement iteration (`None` → half the grow
    /// step, decreasing over iterations per §II-E's guidance).
    pub refine_step: Option<usize>,
    /// Reheating parameters (`None` disables §II-F).
    pub reheat: Option<ReheatConfig>,
    /// Terminal-pair enumeration policy for Algorithm 3.
    pub pair_policy: PairPolicy,
    /// Seed options (void filling).
    pub seed: SeedOptions,
    /// Stage-failure policy, per-stage budgets, and (test-only) fault
    /// injection.
    pub recovery: RecoveryConfig,
    /// Nodal-analysis backend: incremental session (delta factor
    /// updates, warm starts) or from-scratch per evaluation. Both yield
    /// bit-identical routes at the default settings.
    pub solver: SolverConfig,
    /// Tiling backend: persistent [`TilingSession`]s keyed by
    /// `(net, layer, pitch)` with incremental re-clipping, or a
    /// from-scratch build per call. Both yield bit-identical graphs.
    pub tile: TileConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            tile_pitch_mm: 0.4,
            min_cell_fraction: 0.05,
            grow_iterations: 20,
            refine_iterations: 6,
            refine_step: None,
            reheat: Some(ReheatConfig::default()),
            pair_policy: PairPolicy::SourceToSinks,
            seed: SeedOptions { fill_voids: true },
            recovery: RecoveryConfig::default(),
            solver: SolverConfig::default(),
            tile: TileConfig::default(),
        }
    }
}

/// Wall-clock telemetry per pipeline stage (ms), reproducing §II-H.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageTimings {
    /// Available-space computation.
    pub space_ms: f64,
    /// Tiling / graph construction (Algorithm 1).
    pub tile_ms: f64,
    /// Seed construction (Algorithm 2).
    pub seed_ms: f64,
    /// SmartGrow (Algorithm 4).
    pub grow_ms: f64,
    /// SmartRefine (Algorithm 5).
    pub refine_ms: f64,
    /// Reheating (§II-F).
    pub reheat_ms: f64,
    /// Back conversion (§II-G).
    pub backconv_ms: f64,
    /// Linear solves performed (the §II-H bottleneck counter).
    pub solves: usize,
    /// Full Cholesky factorizations computed (each a from-scratch
    /// symbolic + numeric factor of the grounded Laplacian).
    pub factorizations: usize,
    /// Metric evaluations served without a full factorization —
    /// verbatim factor reuses, numeric-only refactorizations on a
    /// cached elimination plan, and low-rank SMW corrections.
    pub factor_updates: usize,
    /// Routing graphs built from scratch (full lattice clip).
    pub tile_rebuilds: usize,
    /// Routing graphs served from a persistent [`TilingSession`] —
    /// verbatim reuses and incremental patches of dirty cells only.
    pub tile_reuses: usize,
}

impl StageTimings {
    /// Total wall-clock time (ms).
    pub fn total_ms(&self) -> f64 {
        self.space_ms
            + self.tile_ms
            + self.seed_ms
            + self.grow_ms
            + self.refine_ms
            + self.reheat_ms
            + self.backconv_ms
    }

    /// Fraction of the total spent in the metric/solve-heavy stages
    /// (grow + refine + reheat) — the paper reports ≈90 %.
    pub fn solve_stage_fraction(&self) -> f64 {
        let t = self.total_ms();
        if t <= 0.0 {
            return 0.0;
        }
        (self.grow_ms + self.refine_ms + self.reheat_ms) / t
    }
}

/// The output of routing one net on one layer.
#[derive(Debug, Clone)]
pub struct RouteResult {
    /// The routed net.
    pub net: NetId,
    /// The routing layer.
    pub layer: usize,
    /// The synthesized shape.
    pub shape: RoutedShape,
    /// The routing graph (kept for extraction: its induced subgraph *is*
    /// the electrical mesh).
    pub graph: RoutingGraph,
    /// The final subgraph.
    pub subgraph: Subgraph,
    /// Terminals mapped onto the graph.
    pub terminals: Vec<Terminal>,
    /// Injection pairs used for the node-current metric.
    pub pairs: Vec<InjectionPair>,
    /// Objective (squares) after each optimization step.
    pub resistance_history_sq: Vec<f64>,
    /// Final objective in squares (multiply by sheet resistance for Ω).
    /// `f64::INFINITY` when no evaluation succeeded (see `diagnostics`).
    pub final_resistance_sq: f64,
    /// Per-stage telemetry.
    pub timings: StageTimings,
    /// Degradations taken while producing this result;
    /// [`RouteDiagnostics::is_clean`] is `true` for an undisturbed run.
    pub diagnostics: RouteDiagnostics,
}

/// Cache key for persistent tiling sessions: one session per
/// `(net, layer, dx, dy, sliver threshold)`. Pitches are keyed by their
/// bit patterns so distinct configurations never alias.
pub(crate) type TileKey = (usize, usize, u64, u64, u64);

/// The shared persistent-tiling-session store a [`Router`] draws from.
pub(crate) type TileCache = Arc<Mutex<HashMap<TileKey, TilingSession>>>;

/// The SPROUT router bound to a board.
#[derive(Debug, Clone)]
pub struct Router<'b> {
    board: &'b Board,
    config: RouterConfig,
    /// Persistent tiling sessions, shared across clones of this router
    /// (the supervisor clones the router per worker but schedules each
    /// `(net, layer)` on at most one thread at a time, so a session is
    /// checked out of the map, mutated privately, and put back).
    tile_cache: TileCache,
}

impl<'b> Router<'b> {
    /// Creates a router over `board` with `config`.
    pub fn new(board: &'b Board, config: RouterConfig) -> Self {
        Router {
            board,
            config,
            tile_cache: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Creates a router whose tiling sessions live in `cache` — the
    /// supervisor constructs one router per attempt but shares a single
    /// cache across the whole job, so retries and later waves reuse the
    /// lattices already built for their `(net, layer, pitch)`.
    pub(crate) fn with_tile_cache(
        board: &'b Board,
        config: RouterConfig,
        cache: TileCache,
    ) -> Self {
        Router {
            board,
            config,
            tile_cache: cache,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// The board this router is bound to.
    pub fn board(&self) -> &'b Board {
        self.board
    }

    /// Snapshot of the persistent tiling sessions' lifetime counters,
    /// summed across every `(net, layer, pitch)` session this router
    /// (and its clones) created. Empty-cache snapshots are all zeros.
    pub fn tile_stats(&self) -> crate::tile_session::TileSessionStats {
        let cache = self.tile_cache.lock().unwrap_or_else(|e| e.into_inner());
        let mut total = crate::tile_session::TileSessionStats::default();
        for session in cache.values() {
            let s = session.stats();
            total.rebuilds += s.rebuilds;
            total.incremental_updates += s.incremental_updates;
            total.reuse_hits += s.reuse_hits;
            total.cells_reclipped += s.cells_reclipped;
        }
        total
    }

    /// Builds the routing graph for `spec`, honouring the configured
    /// [`TileMode`]: `Scratch` tiles from scratch every call; `Session`
    /// checks a persistent [`TilingSession`] out of the shared cache,
    /// diffs the spec against it (blocker prefix match → verbatim reuse
    /// or incremental re-clip of the delta cells), and puts it back.
    /// Both paths produce bit-identical graphs by construction.
    pub(crate) fn tiled_graph(
        &self,
        spec: &SpaceSpec,
        net: NetId,
        layer: usize,
        opts: TileOptions,
    ) -> Result<(RoutingGraph, TileOutcome), SproutError> {
        match self.config.tile.mode {
            TileMode::Scratch => Ok((space_to_graph(spec, opts)?, TileOutcome::Rebuilt)),
            TileMode::Session => {
                let key: TileKey = (
                    net.0,
                    layer,
                    opts.dx.to_bits(),
                    opts.dy.to_bits(),
                    opts.min_cell_fraction.to_bits(),
                );
                let checked_out = {
                    let mut cache = self.tile_cache.lock().unwrap_or_else(|e| e.into_inner());
                    cache.remove(&key)
                };
                let (mut session, outcome) = match checked_out {
                    Some(mut s) => {
                        let outcome = s.update_to(spec);
                        (s, outcome)
                    }
                    None => (
                        TilingSession::new(spec, opts, self.config.tile.threads)?,
                        TileOutcome::Rebuilt,
                    ),
                };
                let graph = session.graph();
                let mut cache = self.tile_cache.lock().unwrap_or_else(|e| e.into_inner());
                cache.insert(key, session);
                Ok((graph, outcome))
            }
        }
    }

    /// Routes one net on one layer under an area budget (mm²).
    ///
    /// # Errors
    ///
    /// See [`Router::route_net_with`].
    pub fn route_net(
        &self,
        net: NetId,
        layer: usize,
        area_budget_mm2: f64,
    ) -> Result<RouteResult, SproutError> {
        self.route_net_with(net, layer, area_budget_mm2, &[], &[])
    }

    /// Routes one net with extra blockers (shapes of previously routed
    /// nets, §II-G) and extra terminals (via landing points from the
    /// multilayer planner, Algorithm 6).
    ///
    /// # Errors
    ///
    /// * [`SproutError::InvalidConfig`] — bad pitch/budget or fewer than
    ///   two terminals.
    /// * [`SproutError::NoTerminals`] / [`SproutError::TerminalBlocked`]
    ///   — terminal mapping failed.
    /// * [`SproutError::DisjointSpace`] — terminals are unreachable in
    ///   this layer.
    /// * [`SproutError::AreaBudgetTooSmall`] — the budget cannot hold a
    ///   connected seed.
    pub fn route_net_with(
        &self,
        net: NetId,
        layer: usize,
        area_budget_mm2: f64,
        extra_blockers: &[Polygon],
        extra_terminals: &[(Point, ElementRole)],
    ) -> Result<RouteResult, SproutError> {
        if self.config.tile_pitch_mm <= 0.0 {
            return Err(SproutError::InvalidConfig("tile pitch must be positive"));
        }
        if area_budget_mm2 <= 0.0 {
            return Err(SproutError::InvalidConfig("area budget must be positive"));
        }
        if recovery::cancel_requested() {
            return Err(SproutError::Cancelled);
        }
        let _route_span = telemetry::span("route")
            .field("net", net.0 as u64)
            .field("layer", layer)
            .field("budget_mm2", area_budget_mm2)
            .enter();
        let mut timings = StageTimings::default();

        // Stage 1: available space. Transit layers (multilayer routing)
        // may have no board terminals of their own — the via landing
        // points supplied in `extra_terminals` stand in.
        let t = Instant::now();
        let mut space_span = telemetry::span("space").enter();
        let mut spec = if extra_terminals.is_empty() {
            SpaceSpec::build(self.board, net, layer, extra_blockers)?
        } else {
            SpaceSpec::build_transit(self.board, net, layer, extra_blockers)?
        };
        let pad = self.config.tile_pitch_mm;
        for &(p, role) in extra_terminals {
            spec.terminals.push(TerminalShape {
                shape: Polygon::rectangle(
                    Point::new(p.x - pad / 2.0, p.y - pad / 2.0),
                    Point::new(p.x + pad / 2.0, p.y + pad / 2.0),
                )?,
                role,
            });
        }
        if spec.terminals.is_empty() {
            return Err(SproutError::NoTerminals { net, layer });
        }
        space_span.record("terminals", spec.terminals.len());
        drop(space_span);
        timings.space_ms = t.elapsed().as_secs_f64() * 1e3;

        // Stage 2: tiling (Algorithm 1).
        let t = Instant::now();
        let mut tile_span = telemetry::span("tile")
            .field("pitch_mm", self.config.tile_pitch_mm)
            .enter();
        let (graph, outcome) = self.tiled_graph(
            &spec,
            net,
            layer,
            TileOptions {
                dx: self.config.tile_pitch_mm,
                dy: self.config.tile_pitch_mm,
                min_cell_fraction: self.config.min_cell_fraction,
            },
        )?;
        match outcome {
            TileOutcome::Rebuilt => {
                telemetry::counter!("tile.rebuilds");
                timings.tile_rebuilds += 1;
            }
            TileOutcome::Patched => {
                telemetry::counter!("tile.incremental");
                timings.tile_reuses += 1;
            }
            TileOutcome::Reused => {
                telemetry::counter!("tile.reuse_hits");
                timings.tile_reuses += 1;
            }
        }
        tile_span.record("nodes", graph.node_count());
        tile_span.record("edges", graph.edge_count());
        drop(tile_span);
        timings.tile_ms = t.elapsed().as_secs_f64() * 1e3;

        let terminals = identify_terminals(&graph, &spec, net)?;
        if terminals.len() < 2 {
            return Err(SproutError::InvalidConfig(
                "routing needs at least two terminals",
            ));
        }
        let terminal_nodes: Vec<NodeId> = terminals.iter().map(|t| t.node).collect();
        if !graph.connects(&terminal_nodes) {
            return Err(SproutError::DisjointSpace { net, layer });
        }
        self.optimize_group(graph, terminals, net, layer, area_budget_mm2, timings)
    }

    /// Routes one net on one layer where the available space (and hence
    /// the terminal set) may be split into several connected regions —
    /// the per-layer step of multilayer routing (Appendix: "from source
    /// to via, between vias, and from via to target"). Each region with
    /// at least two terminals is routed independently; the total budget
    /// is split across regions proportionally to their terminal counts.
    ///
    /// # Errors
    ///
    /// Same as [`Router::route_net_with`], minus `DisjointSpace` (that
    /// is the expected situation here).
    pub fn route_net_components(
        &self,
        net: NetId,
        layer: usize,
        area_budget_mm2: f64,
        extra_blockers: &[Polygon],
        extra_terminals: &[(Point, ElementRole)],
    ) -> Result<Vec<RouteResult>, SproutError> {
        if self.config.tile_pitch_mm <= 0.0 {
            return Err(SproutError::InvalidConfig("tile pitch must be positive"));
        }
        if area_budget_mm2 <= 0.0 {
            return Err(SproutError::InvalidConfig("area budget must be positive"));
        }
        let _route_span = telemetry::span("route")
            .field("net", net.0 as u64)
            .field("layer", layer)
            .field("budget_mm2", area_budget_mm2)
            .field("components", true)
            .enter();
        let mut spec = if extra_terminals.is_empty() {
            SpaceSpec::build(self.board, net, layer, extra_blockers)?
        } else {
            SpaceSpec::build_transit(self.board, net, layer, extra_blockers)?
        };
        let pad = self.config.tile_pitch_mm;
        for &(p, role) in extra_terminals {
            spec.terminals.push(TerminalShape {
                shape: Polygon::rectangle(
                    Point::new(p.x - pad / 2.0, p.y - pad / 2.0),
                    Point::new(p.x + pad / 2.0, p.y + pad / 2.0),
                )?,
                role,
            });
        }
        if spec.terminals.is_empty() {
            return Err(SproutError::NoTerminals { net, layer });
        }
        let (graph, outcome) = self.tiled_graph(
            &spec,
            net,
            layer,
            TileOptions {
                dx: self.config.tile_pitch_mm,
                dy: self.config.tile_pitch_mm,
                min_cell_fraction: self.config.min_cell_fraction,
            },
        )?;
        let mut base_timings = StageTimings::default();
        match outcome {
            TileOutcome::Rebuilt => base_timings.tile_rebuilds += 1,
            TileOutcome::Patched | TileOutcome::Reused => base_timings.tile_reuses += 1,
        }
        let terminals = identify_terminals(&graph, &spec, net)?;

        // Group terminals by connected component of the graph.
        let component = component_labels(&graph);
        let mut groups: std::collections::HashMap<u32, Vec<Terminal>> =
            std::collections::HashMap::new();
        for t in terminals {
            groups.entry(component[t.node.index()]).or_default().push(t);
        }
        let total_terms: usize = groups.values().map(|g| g.len()).sum();
        let mut group_list: Vec<Vec<Terminal>> =
            groups.into_values().filter(|g| g.len() >= 2).collect();
        // Deterministic order: by smallest terminal node id.
        group_list.sort_by_key(|g| g.iter().map(|t| t.node).min());
        let mut results = Vec::with_capacity(group_list.len());
        let mut skipped: Vec<String> = Vec::new();
        let mut first_err: Option<SproutError> = None;
        for group in group_list {
            let share = area_budget_mm2 * group.len() as f64 / total_terms as f64;
            // The shared graph build is attributed to the first group so
            // aggregated reports count it exactly once.
            match self.optimize_group(
                graph.clone(),
                group,
                net,
                layer,
                share,
                std::mem::take(&mut base_timings),
            ) {
                Ok(result) => results.push(result),
                Err(e) => {
                    // Under a lenient policy a dead terminal group must
                    // not cost the groups that can still be routed.
                    if self.config.recovery.policy == RecoveryPolicy::FailFast {
                        return Err(e);
                    }
                    skipped.push(format!("terminal group skipped: {e}"));
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if results.is_empty() {
            if let Some(e) = first_err {
                return Err(e);
            }
        }
        for r in &mut results {
            for w in &skipped {
                r.diagnostics.record(Degradation::GroupSkipped);
                r.diagnostics.warn(w.clone());
            }
        }
        Ok(results)
    }

    /// The optimization pipeline for one connected terminal group:
    /// seed → SmartGrow → SmartRefine → reheat → back conversion.
    ///
    /// Every optimization stage runs under a [`StageGuard`]; stage
    /// failures after seeding are absorbed per the configured
    /// [`RecoveryPolicy`] and recorded in the result's
    /// [`RouteDiagnostics`]. Seed failures always propagate — without a
    /// connected seed there is nothing to degrade to.
    fn optimize_group(
        &self,
        graph: RoutingGraph,
        terminals: Vec<Terminal>,
        net: NetId,
        layer: usize,
        area_budget_mm2: f64,
        mut timings: StageTimings,
    ) -> Result<RouteResult, SproutError> {
        let rec = self.config.recovery;
        let _fault_scope = rec.fault.map(recovery::FaultScope::install);
        let _event_scope = recovery::EventScope::install();
        let mut diagnostics = RouteDiagnostics::default();

        let terminal_nodes: Vec<NodeId> = terminals.iter().map(|t| t.node).collect();
        let pairs = self.build_pairs(&terminals, net)?;
        let protected: Vec<NodeId> = terminals
            .iter()
            .flat_map(|t| t.covered.iter().copied())
            .collect();

        // Stage 3: seed (Algorithm 2). A failure here is always fatal.
        let t = Instant::now();
        let mut seed_span = telemetry::span("seed")
            .field("terminals", terminals.len())
            .enter();
        let guard = StageGuard::begin(Stage::Seed, rec.budget, timings.solves);
        let mut sub = seed_subgraph(&graph, &terminals, net, layer, self.config.seed)?;
        seed_span.record("nodes", sub.order());
        drop(seed_span);
        timings.seed_ms = t.elapsed().as_secs_f64() * 1e3;
        if let Some(d) = guard.over_budget(timings.solves) {
            diagnostics.record(d);
        }
        diagnostics.absorb_events(Stage::Seed);
        if sub.area_mm2() > area_budget_mm2 {
            return Err(SproutError::AreaBudgetTooSmall {
                budget_mm2: area_budget_mm2,
                seed_mm2: sub.area_mm2(),
            });
        }

        let cell_area = self.config.tile_pitch_mm * self.config.tile_pitch_mm;
        let budget_cells = (area_budget_mm2 / cell_area) as usize;
        let grow_step = ((budget_cells.saturating_sub(sub.order()))
            / self.config.grow_iterations.max(1))
        .max(4);

        // Best-seen tracking: the seed is always a valid fallback.
        let mut best_resistance = f64::INFINITY;
        let mut best_sub = sub.clone();
        let mut history: Vec<f64> = Vec::new();

        // One nodal-analysis engine spans every optimization stage, so
        // the incremental session's cached factor survives across
        // grow/refine/reheat iterations (the tentpole of §II-H's
        // bottleneck). `best_sub` restores are out-of-band mutations;
        // the session detects and resyncs from them.
        let mut engine = Engine::new(self.config.solver);

        // Cooperative cancellation (supervisor jobs): checked between
        // pipeline stages so a cancelled rail stops within one stage.
        if recovery::cancel_requested() {
            return Err(SproutError::Cancelled);
        }

        // Stage 4: SmartGrow to the area budget (Algorithm 4), stepwise
        // so the guard can truncate between steps.
        let t = Instant::now();
        let solves_at_grow = timings.solves;
        let mut grow_span = telemetry::span("grow")
            .field("budget_cells", budget_cells)
            .field("step", grow_step)
            .enter();
        let guard = StageGuard::begin(Stage::Grow, rec.budget, timings.solves);
        let frame_cell_area = {
            let f = graph.frame();
            f.dx * f.dy
        };
        let mut stage_err: Option<SproutError> = None;
        let mut grow_iter = 0usize;
        let mut prev_objective = f64::NAN;
        while sub.area_mm2() < area_budget_mm2 {
            if let Some(d) = guard.over_budget(timings.solves) {
                diagnostics.record(d);
                break;
            }
            // Don't overshoot by more than one step: shrink the last batch.
            let remaining = ((area_budget_mm2 - sub.area_mm2()) / frame_cell_area).ceil() as usize;
            let step = grow_step.min(remaining.max(1));
            match smart_grow_with(&mut engine, &graph, &mut sub, &pairs, step) {
                Ok(out) => {
                    history.push(out.resistance_sq);
                    timings.solves += out.solves;
                    telemetry::point("grow_iter")
                        .field("iter", grow_iter)
                        .field("added", out.added)
                        .field("area_mm2", sub.area_mm2())
                        .field("budget_mm2", area_budget_mm2)
                        .field("resistance_sq", out.resistance_sq)
                        .field("objective_delta", prev_objective - out.resistance_sq)
                        .field("max_current_a", out.max_current_a)
                        .emit();
                    prev_objective = out.resistance_sq;
                    grow_iter += 1;
                    if out.added == 0 {
                        break; // saturated: every reachable node is in
                    }
                }
                Err(e) => {
                    stage_err = Some(e);
                    break;
                }
            }
        }
        grow_span.record("nodes", sub.order());
        grow_span.record("solves", timings.solves - solves_at_grow);
        drop(grow_span);
        timings.grow_ms = t.elapsed().as_secs_f64() * 1e3;
        if let Some(e) = stage_err {
            apply_policy(
                rec.policy,
                Stage::Grow,
                e,
                &mut sub,
                &best_sub,
                &mut diagnostics,
            )?;
        }

        // Objective after growth; feeds best-seen tracking.
        match engine.eval(&graph, &sub, &pairs) {
            Ok(nc) => {
                timings.solves += nc.solves();
                let r = nc.resistance_sq();
                history.push(r);
                if r < best_resistance {
                    best_resistance = r;
                    best_sub = sub.clone();
                }
            }
            Err(e) => match rec.policy {
                RecoveryPolicy::FailFast => return Err(e),
                _ => diagnostics.warn(format!("post-grow evaluation failed: {e}")),
            },
        }
        diagnostics.absorb_events(Stage::Grow);

        if recovery::cancel_requested() {
            return Err(SproutError::Cancelled);
        }

        // Stage 5: SmartRefine (Algorithm 5) with a decreasing move
        // count (§II-E: fewer moves later yield lower impedance).
        let t = Instant::now();
        let solves_at_refine = timings.solves;
        let mut refine_span = telemetry::span("refine")
            .field("iterations", self.config.refine_iterations)
            .enter();
        let guard = StageGuard::begin(Stage::Refine, rec.budget, timings.solves);
        let base_step = self.config.refine_step.unwrap_or((grow_step / 2).max(2));
        for i in 0..self.config.refine_iterations {
            if let Some(d) = guard.over_budget(timings.solves) {
                diagnostics.record(d);
                break;
            }
            let step = (base_step * (self.config.refine_iterations - i)
                / self.config.refine_iterations)
                .max(1);
            match smart_refine_with(
                &mut engine,
                &graph,
                &mut sub,
                &pairs,
                &protected,
                &terminal_nodes,
                step,
            ) {
                Ok(out) => {
                    timings.solves += out.solves;
                    history.push(out.resistance_after_sq);
                    telemetry::point("refine_iter")
                        .field("iter", i)
                        .field("moved", out.moved)
                        .field("area_mm2", sub.area_mm2())
                        .field("budget_mm2", area_budget_mm2)
                        .field("resistance_sq", out.resistance_after_sq)
                        .field(
                            "objective_delta",
                            out.resistance_before_sq - out.resistance_after_sq,
                        )
                        .field("max_current_a", out.max_current_a)
                        .emit();
                    if out.resistance_after_sq < best_resistance {
                        best_resistance = out.resistance_after_sq;
                        best_sub = sub.clone();
                    }
                    if out.moved == 0 {
                        break;
                    }
                }
                Err(e) => {
                    apply_policy(
                        rec.policy,
                        Stage::Refine,
                        e,
                        &mut sub,
                        &best_sub,
                        &mut diagnostics,
                    )?;
                    break;
                }
            }
        }
        diagnostics.absorb_events(Stage::Refine);
        refine_span.record("nodes", sub.order());
        refine_span.record("solves", timings.solves - solves_at_refine);
        drop(refine_span);
        timings.refine_ms = t.elapsed().as_secs_f64() * 1e3;

        if recovery::cancel_requested() {
            return Err(SproutError::Cancelled);
        }

        // Stage 6: reheating (§II-F), then a short post-refine.
        if let Some(rh) = self.config.reheat {
            let t = Instant::now();
            let solves_at_reheat = timings.solves;
            let mut reheat_span = telemetry::span("reheat").enter();
            let guard = StageGuard::begin(Stage::Reheat, rec.budget, timings.solves);
            'reheat: {
                if let Some(d) = guard.over_budget(timings.solves) {
                    diagnostics.record(d);
                    break 'reheat;
                }
                // Reheat transiently overshoots the area budget before
                // shrinking back, so abandoning it mid-way must restore
                // the pre-reheat subgraph rather than ship the overshoot.
                let pre_reheat = sub.clone();
                match reheat_with(
                    &mut engine,
                    &graph,
                    &mut sub,
                    &pairs,
                    &protected,
                    &terminal_nodes,
                    area_budget_mm2,
                    rh,
                ) {
                    Ok(out) => {
                        timings.solves += out.solves;
                        history.push(out.resistance_after_sq);
                        telemetry::point("reheat_iter")
                            .field("phase", "dilate_erode")
                            .field("dilated", out.dilated)
                            .field("eroded", out.eroded)
                            .field("area_mm2", sub.area_mm2())
                            .field("budget_mm2", area_budget_mm2)
                            .field("resistance_sq", out.resistance_after_sq)
                            .field("max_current_a", out.max_current_a)
                            .emit();
                        if out.resistance_after_sq < best_resistance {
                            best_resistance = out.resistance_after_sq;
                            best_sub = sub.clone();
                        }
                    }
                    Err(e) => {
                        apply_policy(
                            rec.policy,
                            Stage::Reheat,
                            e,
                            &mut sub,
                            &best_sub,
                            &mut diagnostics,
                        )?;
                        if rec.policy == RecoveryPolicy::SkipStage {
                            sub = pre_reheat;
                        }
                        break 'reheat;
                    }
                }
                for post_iter in 0..2 {
                    if let Some(d) = guard.over_budget(timings.solves) {
                        diagnostics.record(d);
                        break;
                    }
                    match smart_refine_with(
                        &mut engine,
                        &graph,
                        &mut sub,
                        &pairs,
                        &protected,
                        &terminal_nodes,
                        4,
                    ) {
                        Ok(out) => {
                            timings.solves += out.solves;
                            history.push(out.resistance_after_sq);
                            telemetry::point("reheat_iter")
                                .field("phase", "post_refine")
                                .field("iter", post_iter as u64)
                                .field("moved", out.moved)
                                .field("area_mm2", sub.area_mm2())
                                .field("budget_mm2", area_budget_mm2)
                                .field("resistance_sq", out.resistance_after_sq)
                                .field(
                                    "objective_delta",
                                    out.resistance_before_sq - out.resistance_after_sq,
                                )
                                .field("max_current_a", out.max_current_a)
                                .emit();
                            if out.resistance_after_sq < best_resistance {
                                best_resistance = out.resistance_after_sq;
                                best_sub = sub.clone();
                            }
                        }
                        Err(e) => {
                            apply_policy(
                                rec.policy,
                                Stage::Reheat,
                                e,
                                &mut sub,
                                &best_sub,
                                &mut diagnostics,
                            )?;
                            break;
                        }
                    }
                }
            }
            diagnostics.absorb_events(Stage::Reheat);
            reheat_span.record("nodes", sub.order());
            reheat_span.record("solves", timings.solves - solves_at_reheat);
            drop(reheat_span);
            timings.reheat_ms = t.elapsed().as_secs_f64() * 1e3;
        }

        // Factorization accounting from the nodal engine (§II-H: full
        // factors are the bottleneck the incremental session avoids).
        let solver_stats = engine.stats();
        timings.factorizations = solver_stats.full_factors;
        timings.factor_updates =
            solver_stats.factor_reuses + solver_stats.numeric_refactors + solver_stats.smw_evals;

        // Ship the best subgraph seen, not necessarily the last. When no
        // evaluation ever succeeded the current subgraph (at minimum the
        // connected seed) ships with an infinite objective.
        if best_resistance.is_finite() {
            sub = best_sub;
        } else {
            diagnostics
                .warn("objective was never evaluated; shipping the unscored subgraph".into());
        }

        // Stage 7: back conversion (§II-G), then sliver cleanup.
        let t = Instant::now();
        let mut backconv_span = telemetry::span("backconv")
            .field("nodes", sub.order())
            .enter();
        let mut shape = back_convert(&graph, &sub);
        if recovery::fault_degenerate_polygon() {
            shape.inject_degenerate_fragment(graph.frame().origin);
        }
        let dropped = shape.sanitize(SLIVER_AREA_MM2);
        if dropped > 0 {
            diagnostics.record(Degradation::FragmentsDropped { count: dropped });
        }
        diagnostics.absorb_events(Stage::BackConvert);
        backconv_span.record("area_mm2", shape.area_mm2());
        backconv_span.record("fragments_dropped", dropped);
        drop(backconv_span);
        timings.backconv_ms = t.elapsed().as_secs_f64() * 1e3;

        // Terminal convergence record: `area_mm2` here is the shipped
        // shape's area, byte-identical to `RailRunRecord::area_mm2`.
        telemetry::point("route_final")
            .field("net", net.0 as u64)
            .field("layer", layer)
            .field("area_mm2", shape.area_mm2())
            .field("budget_mm2", area_budget_mm2)
            .field("resistance_sq", best_resistance)
            .field("solves", timings.solves)
            .emit();

        Ok(RouteResult {
            net,
            layer,
            shape,
            graph,
            subgraph: sub,
            terminals,
            pairs,
            resistance_history_sq: history,
            final_resistance_sq: best_resistance,
            timings,
            diagnostics,
        })
    }

    /// Routes several nets on the calling thread with sequential
    /// semantics; each routed shape is removed from the available space
    /// of the *same-layer* nets after it, in request order (§II-G).
    /// Nets on different layers never block each other — layers are
    /// independent copper (see [`crate::supervisor`] for the ordering
    /// guarantee and for concurrent, deadline-bounded, checkpointed
    /// jobs).
    ///
    /// Unlike the pre-supervisor `route_all`, a rail failure no longer
    /// discards the whole job: every rail's outcome — including typed
    /// panic containment — is reported. Use
    /// [`JobReport::into_results`] for the old all-or-first-error shape.
    pub fn route_all(&self, requests: &[(NetId, usize, f64)]) -> crate::supervisor::JobReport {
        crate::supervisor::Supervisor::new(
            self.board,
            self.config,
            crate::supervisor::SupervisorConfig::sequential(),
        )
        .run(requests)
    }

    /// Builds injection pairs; when a terminal set has no source (a
    /// transit layer in multilayer routing), the first terminal stands
    /// in as the source.
    #[doc(hidden)]
    fn build_pairs(
        &self,
        terminals: &[Terminal],
        net: NetId,
    ) -> Result<Vec<InjectionPair>, SproutError> {
        let rail_current = self.board.net(net)?.current_a.max(1e-3);
        let has_source = terminals.iter().any(|t| t.role == ElementRole::Source);
        let pairs = if has_source {
            injection_pairs(terminals, self.config.pair_policy, rail_current)
        } else {
            let mut promoted = terminals.to_vec();
            promoted[0].role = ElementRole::Source;
            injection_pairs(&promoted, self.config.pair_policy, rail_current)
        };
        if pairs.is_empty() {
            return Err(SproutError::InvalidConfig(
                "terminal set yields no injection pairs",
            ));
        }
        Ok(pairs)
    }
}

/// Fragments below this area are numerical noise, never routable copper
/// (the smallest legitimate irregular cell is `min_cell_fraction` of a
/// tile — ~1e-2 mm² at the default configuration, two orders of
/// magnitude above this).
const SLIVER_AREA_MM2: f64 = 1e-4;

/// Applies the recovery policy to a failed optimization stage: under
/// `FailFast` the error propagates; otherwise it is downgraded to a
/// warning and the subgraph is either kept as-is (`SkipStage`) or
/// reverted to the best evaluated one (`BestSoFar`).
fn apply_policy(
    policy: RecoveryPolicy,
    stage: Stage,
    err: SproutError,
    sub: &mut Subgraph,
    best_sub: &Subgraph,
    diagnostics: &mut RouteDiagnostics,
) -> Result<(), SproutError> {
    match policy {
        RecoveryPolicy::FailFast => Err(err),
        RecoveryPolicy::SkipStage => {
            diagnostics.record(Degradation::StageSkipped { stage });
            diagnostics.warn(format!("{stage} stage abandoned: {err}"));
            Ok(())
        }
        RecoveryPolicy::BestSoFar => {
            *sub = best_sub.clone();
            diagnostics.record(Degradation::RevertedToBest { stage });
            diagnostics.warn(format!(
                "{stage} stage failed, reverted to best subgraph: {err}"
            ));
            Ok(())
        }
    }
}

/// Connected-component label per node (BFS).
fn component_labels(graph: &RoutingGraph) -> Vec<u32> {
    let n = graph.node_count();
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if label[start] != u32::MAX {
            continue;
        }
        label[start] = next;
        queue.push_back(NodeId(start as u32));
        while let Some(u) = queue.pop_front() {
            for &(v, _) in graph.neighbors(u) {
                if label[v.index()] == u32::MAX {
                    label[v.index()] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drc::check_route;
    use sprout_board::presets;

    fn fast_config() -> RouterConfig {
        RouterConfig {
            tile_pitch_mm: 0.5,
            grow_iterations: 10,
            refine_iterations: 3,
            reheat: Some(ReheatConfig {
                dilate_iterations: 1,
                erode_step: 24,
            }),
            ..RouterConfig::default()
        }
    }

    #[test]
    fn routes_two_rail_vdd1() {
        let board = presets::two_rail();
        let router = Router::new(&board, fast_config());
        let (vdd1, _) = board.power_nets().next().unwrap();
        let result = router
            .route_net(vdd1, presets::TWO_RAIL_ROUTE_LAYER, 20.0)
            .unwrap();
        // Budget respected (one grow step of slack).
        assert!(result.shape.area_mm2() <= 20.0 + 2.0);
        assert!(result.shape.area_mm2() > 10.0);
        // Objective decreased along the run.
        let first = result.resistance_history_sq.first().unwrap();
        assert!(result.final_resistance_sq < *first);
        // The result is DRC-clean.
        let v = check_route(
            &board,
            vdd1,
            presets::TWO_RAIL_ROUTE_LAYER,
            &result.shape,
            &[],
        )
        .unwrap();
        assert!(v.is_empty(), "{v:?}");
        // Terminals stay connected in the shipped subgraph.
        let nodes: Vec<NodeId> = result.terminals.iter().map(|t| t.node).collect();
        assert!(result.subgraph.connects(&result.graph, &nodes));
    }

    #[test]
    fn route_all_keeps_nets_separated() {
        let board = presets::two_rail();
        let router = Router::new(&board, fast_config());
        let nets: Vec<NetId> = board.power_nets().map(|(id, _)| id).collect();
        let layer = presets::TWO_RAIL_ROUTE_LAYER;
        let results = router
            .route_all(&[(nets[0], layer, 22.0), (nets[1], layer, 22.0)])
            .into_results()
            .unwrap();
        assert_eq!(results.len(), 2);
        // The second net must be DRC-clean against the first's shape.
        let first_blockers = results[0].shape.blocker_polygons();
        let v = check_route(&board, nets[1], layer, &results[1].shape, &first_blockers).unwrap();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn budget_too_small_is_reported() {
        let board = presets::two_rail();
        let router = Router::new(&board, fast_config());
        let (vdd1, _) = board.power_nets().next().unwrap();
        match router.route_net(vdd1, presets::TWO_RAIL_ROUTE_LAYER, 0.5) {
            Err(SproutError::AreaBudgetTooSmall { seed_mm2, .. }) => {
                assert!(seed_mm2 > 0.5);
            }
            other => panic!("expected AreaBudgetTooSmall, got {other:?}"),
        }
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let board = presets::two_rail();
        let (vdd1, _) = board.power_nets().next().unwrap();
        let router = Router::new(&board, fast_config());
        assert!(matches!(
            router.route_net(vdd1, presets::TWO_RAIL_ROUTE_LAYER, -1.0),
            Err(SproutError::InvalidConfig(_))
        ));
        let mut bad = fast_config();
        bad.tile_pitch_mm = 0.0;
        let router = Router::new(&board, bad);
        assert!(matches!(
            router.route_net(vdd1, presets::TWO_RAIL_ROUTE_LAYER, 10.0),
            Err(SproutError::InvalidConfig(_))
        ));
    }

    #[test]
    fn telemetry_is_populated() {
        let board = presets::two_rail();
        let router = Router::new(&board, fast_config());
        let (vdd1, _) = board.power_nets().next().unwrap();
        let result = router
            .route_net(vdd1, presets::TWO_RAIL_ROUTE_LAYER, 22.0)
            .unwrap();
        let t = result.timings;
        assert!(t.total_ms() > 0.0);
        assert!(t.solves > 10, "solve counter must track the bottleneck");
        // The solve-heavy stages carry substantial weight, as §II-H
        // reports (the paper's ≈90 % shows in release builds; debug
        // builds shift the balance toward the geometry stages, so this
        // threshold stays conservative to keep the test deterministic).
        assert!(
            t.solve_stage_fraction() > 0.2,
            "grow/refine/reheat fraction {}",
            t.solve_stage_fraction()
        );
    }

    #[test]
    fn larger_budget_gives_lower_resistance() {
        let board = presets::two_rail();
        let router = Router::new(&board, fast_config());
        let (vdd1, _) = board.power_nets().next().unwrap();
        let small = router
            .route_net(vdd1, presets::TWO_RAIL_ROUTE_LAYER, 18.0)
            .unwrap();
        let large = router
            .route_net(vdd1, presets::TWO_RAIL_ROUTE_LAYER, 36.0)
            .unwrap();
        assert!(
            large.final_resistance_sq < small.final_resistance_sq,
            "more metal must lower resistance: {} vs {}",
            large.final_resistance_sq,
            small.final_resistance_sq
        );
    }
}

#[cfg(test)]
mod component_tests {
    use super::*;
    use sprout_board::{Board, DesignRules, Element, ElementRole, Net, Stackup};
    use sprout_geom::Rect;

    /// Two separate islands of the same net on one layer (a wall between
    /// them): `route_net_components` must route each island.
    fn island_board() -> (Board, NetId) {
        let outline = Rect::new(Point::new(0.0, 0.0), Point::new(14.0, 8.0)).unwrap();
        let mut board = Board::new(
            "islands",
            outline,
            Stackup::eight_layer(),
            DesignRules::default(),
        );
        let vdd = board.add_net(Net::power("VDD", 2.0, 1e7, 1.0).unwrap());
        let pad = |x: f64, y: f64| {
            Polygon::rectangle(
                Point::new(x - 0.25, y - 0.25),
                Point::new(x + 0.25, y + 0.25),
            )
            .unwrap()
        };
        // Left island: source + sink.
        board
            .add_element(Element::terminal(
                vdd,
                6,
                pad(1.5, 4.0),
                ElementRole::Source,
            ))
            .unwrap();
        board
            .add_element(Element::terminal(vdd, 6, pad(5.0, 4.0), ElementRole::Sink))
            .unwrap();
        // Right island: two sinks.
        board
            .add_element(Element::terminal(vdd, 6, pad(9.0, 4.0), ElementRole::Sink))
            .unwrap();
        board
            .add_element(Element::terminal(vdd, 6, pad(12.5, 4.0), ElementRole::Sink))
            .unwrap();
        // Wall between the islands.
        board
            .add_element(Element::blockage(
                6,
                Polygon::rectangle(Point::new(6.8, 0.0), Point::new(7.6, 8.0)).unwrap(),
            ))
            .unwrap();
        (board, vdd)
    }

    fn config() -> RouterConfig {
        RouterConfig {
            tile_pitch_mm: 0.5,
            grow_iterations: 6,
            refine_iterations: 1,
            reheat: None,
            ..RouterConfig::default()
        }
    }

    #[test]
    fn components_routed_separately() {
        let (board, vdd) = island_board();
        let router = Router::new(&board, config());
        // The monolithic entry point refuses (disjoint space)…
        assert!(matches!(
            router.route_net(vdd, 6, 16.0),
            Err(SproutError::DisjointSpace { .. })
        ));
        // …while the component-aware one routes both islands.
        let results = router.route_net_components(vdd, 6, 16.0, &[], &[]).unwrap();
        assert_eq!(results.len(), 2);
        // Budget split 2:2 across the four terminals.
        for r in &results {
            assert!(r.shape.area_mm2() <= 8.0 + 1.0);
            let nodes: Vec<NodeId> = r.terminals.iter().map(|t| t.node).collect();
            assert!(r.subgraph.connects(&r.graph, &nodes));
        }
    }

    #[test]
    fn single_component_matches_route_net() {
        let board = sprout_board::presets::two_rail();
        let router = Router::new(&board, config());
        let (vdd1, _) = board.power_nets().next().unwrap();
        let layer = sprout_board::presets::TWO_RAIL_ROUTE_LAYER;
        let single = router.route_net(vdd1, layer, 20.0).unwrap();
        let comps = router
            .route_net_components(vdd1, layer, 20.0, &[], &[])
            .unwrap();
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].subgraph.order(), single.subgraph.order());
        assert!(
            (comps[0].final_resistance_sq - single.final_resistance_sq).abs() < 1e-12,
            "deterministic pipeline"
        );
    }
}
