//! Machine-readable run reports.
//!
//! A [`RunReport`] condenses a routing run — one rail or a whole
//! supervised job — into a single JSON line per run: per-stage wall
//! time with monotonic start offsets (the §II-H breakdown), solve
//! counts, metal area against the budget, solver-fallback counts, and
//! every [`Degradation`] verbatim. Bench binaries append these lines to
//! JSONL files under `target/experiments/`, so a regression sweep is a
//! `jq` query instead of a scrape of pretty-printed stdout.
//!
//! The report is built from data the pipeline already carries —
//! [`StageTimings`], [`RouteDiagnostics`], [`JobReport`] — plus a
//! snapshot of the global telemetry counters, so producing one costs
//! nothing beyond formatting.

use crate::recovery::RouteDiagnostics;
use crate::router::{RouteResult, StageTimings};
use crate::supervisor::{JobReport, RailOutcome};
use sprout_telemetry::json::{array, str_array, Obj};
use sprout_telemetry::metrics;

/// Pipeline stage names in execution order — the span names the router
/// emits and the keys of [`StageTimings`].
pub const STAGE_ORDER: [&str; 7] = [
    "space", "tile", "seed", "grow", "refine", "reheat", "backconv",
];

/// One stage's slice of a rail's wall clock.
#[derive(Debug, Clone, PartialEq)]
pub struct StageBreakdown {
    /// Stage name (one of [`STAGE_ORDER`]).
    pub name: &'static str,
    /// Offset from rail start (ms). Cumulative over the pipeline order,
    /// so offsets are monotonically non-decreasing by construction.
    pub start_ms: f64,
    /// Stage duration (ms).
    pub duration_ms: f64,
}

/// Builds the per-stage breakdown from [`StageTimings`], in pipeline
/// order with cumulative start offsets.
pub fn stage_breakdown(t: &StageTimings) -> Vec<StageBreakdown> {
    let durations = [
        t.space_ms,
        t.tile_ms,
        t.seed_ms,
        t.grow_ms,
        t.refine_ms,
        t.reheat_ms,
        t.backconv_ms,
    ];
    let mut start_ms = 0.0;
    STAGE_ORDER
        .iter()
        .zip(durations)
        .map(|(&name, duration_ms)| {
            let s = StageBreakdown {
                name,
                start_ms,
                duration_ms,
            };
            start_ms += duration_ms;
            s
        })
        .collect()
}

/// One rail of a [`RunReport`].
#[derive(Debug, Clone, Default)]
pub struct RailRunRecord {
    /// Routed net id.
    pub net: usize,
    /// Routing layer.
    pub layer: usize,
    /// Requested area budget (mm²).
    pub budget_mm2: f64,
    /// `"routed"`, `"restored"`, `"failed"`, or `"skipped"`.
    pub outcome: &'static str,
    /// Shipped metal area (mm²); 0 when nothing shipped.
    pub area_mm2: f64,
    /// Final objective in squares (`None` when nothing shipped or the
    /// objective was never evaluated).
    pub final_resistance_sq: Option<f64>,
    /// Linear solves performed.
    pub solves: usize,
    /// Full Cholesky factorizations computed.
    pub factorizations: usize,
    /// Evaluations served from the incremental session without a full
    /// factorization (reuse, numeric refactor, SMW correction).
    pub factor_updates: usize,
    /// Routing graphs tiled from scratch.
    pub tile_rebuilds: usize,
    /// Routing graphs served from a persistent tiling session (verbatim
    /// reuse or incremental re-clip).
    pub tile_reuses: usize,
    /// Total rail wall clock (ms).
    pub total_ms: f64,
    /// Per-stage breakdown (empty for restored/failed/skipped rails).
    pub stages: Vec<StageBreakdown>,
    /// Count of solver-ladder fallbacks.
    pub solver_fallbacks: usize,
    /// Edges dropped by conductance sanitization.
    pub edges_sanitized: usize,
    /// Count of skipped/reverted stages.
    pub stages_skipped: usize,
    /// Count of stage-budget overruns.
    pub budget_overruns: usize,
    /// Every degradation, formatted via its `Display` impl, verbatim
    /// and in the order recorded.
    pub degradations: Vec<String>,
    /// Warnings attached to the rail.
    pub warnings: Vec<String>,
    /// The error, for failed rails; the skip reason, for skipped ones.
    pub error: Option<String>,
    /// Routing attempts made (retries included).
    pub attempts: usize,
    /// Scheduling wave.
    pub wave: usize,
}

impl RailRunRecord {
    /// Builds the record for one routed result.
    pub fn from_result(r: &RouteResult) -> Self {
        let mut rec = RailRunRecord {
            net: r.net.0,
            layer: r.layer,
            outcome: "routed",
            area_mm2: r.shape.area_mm2(),
            final_resistance_sq: r
                .final_resistance_sq
                .is_finite()
                .then_some(r.final_resistance_sq),
            solves: r.timings.solves,
            factorizations: r.timings.factorizations,
            factor_updates: r.timings.factor_updates,
            tile_rebuilds: r.timings.tile_rebuilds,
            tile_reuses: r.timings.tile_reuses,
            total_ms: r.timings.total_ms(),
            stages: stage_breakdown(&r.timings),
            attempts: 1,
            ..RailRunRecord::default()
        };
        rec.absorb_diagnostics(&r.diagnostics);
        rec
    }

    fn absorb_diagnostics(&mut self, d: &RouteDiagnostics) {
        self.solver_fallbacks += d.solver_fallbacks;
        self.edges_sanitized += d.edges_sanitized;
        self.stages_skipped += d.stages_skipped;
        self.budget_overruns += d.budget_overruns;
        self.degradations
            .extend(d.degradations.iter().map(ToString::to_string));
        self.warnings.extend(d.warnings.iter().cloned());
    }

    fn to_json_obj(&self) -> String {
        let mut o = Obj::new();
        o.u64("net", self.net as u64)
            .u64("layer", self.layer as u64)
            .f64("budget_mm2", self.budget_mm2)
            .str("outcome", self.outcome)
            .f64("area_mm2", self.area_mm2);
        match self.final_resistance_sq {
            Some(r) => o.f64("final_resistance_sq", r),
            None => o.raw("final_resistance_sq", "null"),
        };
        o.u64("solves", self.solves as u64)
            .u64("factorizations", self.factorizations as u64)
            .u64("factor_updates", self.factor_updates as u64)
            .u64("tile_rebuilds", self.tile_rebuilds as u64)
            .u64("tile_reuses", self.tile_reuses as u64)
            .f64("total_ms", self.total_ms)
            .raw(
                "stages",
                &array(self.stages.iter().map(|s| {
                    let mut so = Obj::new();
                    so.str("name", s.name)
                        .f64("start_ms", s.start_ms)
                        .f64("duration_ms", s.duration_ms);
                    so.finish()
                })),
            )
            .u64("solver_fallbacks", self.solver_fallbacks as u64)
            .u64("edges_sanitized", self.edges_sanitized as u64)
            .u64("stages_skipped", self.stages_skipped as u64)
            .u64("budget_overruns", self.budget_overruns as u64)
            .raw(
                "degradations",
                &str_array(self.degradations.iter().map(String::as_str)),
            )
            .raw(
                "warnings",
                &str_array(self.warnings.iter().map(String::as_str)),
            );
        if let Some(e) = &self.error {
            o.str("error", e);
        }
        o.u64("attempts", self.attempts as u64)
            .u64("wave", self.wave as u64);
        o.finish()
    }
}

/// One spatial IR-drop/current hotspot — a row of the top-k report a
/// heatmap builder attaches to a [`RunReport`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HotspotRecord {
    /// Net the hotspot belongs to.
    pub net: usize,
    /// Routing layer.
    pub layer: usize,
    /// Tile cell column (grid i index).
    pub cell_i: i64,
    /// Tile cell row (grid j index).
    pub cell_j: i64,
    /// Tile center x (mm, board frame).
    pub x_mm: f64,
    /// Tile center y (mm, board frame).
    pub y_mm: f64,
    /// Node-current metric at the tile (A).
    pub current_a: f64,
    /// Nodal potential relative to the grounded sink (A·squares).
    pub voltage_sq: f64,
    /// IR drop below the peak potential (A·squares).
    pub ir_drop_sq: f64,
}

impl HotspotRecord {
    fn to_json_obj(&self) -> String {
        let mut o = Obj::new();
        o.u64("net", self.net as u64)
            .u64("layer", self.layer as u64)
            .i64("cell_i", self.cell_i)
            .i64("cell_j", self.cell_j)
            .f64("x_mm", self.x_mm)
            .f64("y_mm", self.y_mm)
            .f64("current_a", self.current_a)
            .f64("voltage_sq", self.voltage_sq)
            .f64("ir_drop_sq", self.ir_drop_sq);
        o.finish()
    }
}

/// A machine-readable summary of one routing run, serializable as a
/// single JSONL line via [`RunReport::to_json`].
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Run label (bench name, scenario id, …).
    pub label: String,
    /// Per-rail records, in request order.
    pub rails: Vec<RailRunRecord>,
    /// Scheduling waves the job spanned (1 for a single-rail run).
    pub waves: usize,
    /// Whole-run wall clock (ms).
    pub elapsed_ms: f64,
    /// Rails restored from a checkpoint.
    pub resumed: usize,
    /// Job-level warnings.
    pub warnings: Vec<String>,
    /// Snapshot of the global telemetry counters at report time
    /// (process-cumulative; diff two snapshots for per-run deltas).
    pub counters: Vec<(&'static str, u64)>,
    /// Top-k spatial hotspots, highest current first (attached by the
    /// heatmap builder; empty unless spatial observability ran).
    pub hotspots: Vec<HotspotRecord>,
}

impl RunReport {
    /// Builds a report for a set of independent [`RouteResult`]s (bench
    /// binaries routing one rail at a time).
    pub fn from_results(label: &str, results: &[RouteResult]) -> Self {
        let rails: Vec<RailRunRecord> = results.iter().map(RailRunRecord::from_result).collect();
        RunReport {
            label: label.to_owned(),
            elapsed_ms: rails.iter().map(|r| r.total_ms).sum(),
            waves: usize::from(!rails.is_empty()),
            rails,
            counters: counter_snapshot(),
            ..RunReport::default()
        }
    }

    /// Builds a report from a supervised [`JobReport`], carrying every
    /// rail outcome (routed, restored, failed, skipped).
    pub fn from_job(label: &str, job: &JobReport) -> Self {
        let mut rails = Vec::with_capacity(job.rails.len());
        for rail in &job.rails {
            match &rail.outcome {
                RailOutcome::Routed(results) => {
                    for r in results {
                        let mut rec = RailRunRecord::from_result(r);
                        rec.budget_mm2 = rail.budget_mm2;
                        rec.attempts = rail.attempts;
                        rec.wave = rail.wave;
                        rails.push(rec);
                    }
                }
                RailOutcome::Restored(rr) => rails.push(RailRunRecord {
                    net: rail.net.0,
                    layer: rail.layer,
                    budget_mm2: rail.budget_mm2,
                    outcome: "restored",
                    area_mm2: rr.shape.area_mm2(),
                    final_resistance_sq: rr
                        .final_resistance_sq
                        .is_finite()
                        .then_some(rr.final_resistance_sq),
                    wave: rail.wave,
                    ..RailRunRecord::default()
                }),
                RailOutcome::Failed(e) => rails.push(RailRunRecord {
                    net: rail.net.0,
                    layer: rail.layer,
                    budget_mm2: rail.budget_mm2,
                    outcome: "failed",
                    error: Some(e.to_string()),
                    attempts: rail.attempts,
                    wave: rail.wave,
                    ..RailRunRecord::default()
                }),
                RailOutcome::Skipped { reason } => rails.push(RailRunRecord {
                    net: rail.net.0,
                    layer: rail.layer,
                    budget_mm2: rail.budget_mm2,
                    outcome: "skipped",
                    error: Some(reason.clone()),
                    wave: rail.wave,
                    ..RailRunRecord::default()
                }),
            }
        }
        RunReport {
            label: label.to_owned(),
            rails,
            waves: job.waves,
            elapsed_ms: job.elapsed_ms,
            resumed: job.resumed,
            warnings: job.warnings.clone(),
            counters: counter_snapshot(),
            hotspots: Vec::new(),
        }
    }

    /// `true` when every rail routed (or restored) without degradation.
    pub fn is_clean(&self) -> bool {
        self.warnings.is_empty()
            && self.rails.iter().all(|r| {
                (r.outcome == "routed" || r.outcome == "restored")
                    && r.degradations.is_empty()
                    && r.warnings.is_empty()
            })
    }

    /// Total solver fallbacks across all rails.
    pub fn solver_fallbacks(&self) -> usize {
        self.rails.iter().map(|r| r.solver_fallbacks).sum()
    }

    /// Total shipped metal area (mm²).
    pub fn total_area_mm2(&self) -> f64 {
        self.rails.iter().map(|r| r.area_mm2).sum()
    }

    /// Serializes the report as one JSON line (no trailing newline) —
    /// append to a `.jsonl` file.
    pub fn to_json(&self) -> String {
        let mut o = Obj::new();
        o.str("report", "sprout-run")
            .str("label", &self.label)
            .u64("waves", self.waves as u64)
            .f64("elapsed_ms", self.elapsed_ms)
            .u64("resumed", self.resumed as u64)
            .bool("clean", self.is_clean())
            .raw(
                "rails",
                &array(self.rails.iter().map(RailRunRecord::to_json_obj)),
            )
            .raw(
                "warnings",
                &str_array(self.warnings.iter().map(String::as_str)),
            );
        let mut counters = Obj::new();
        for (k, v) in &self.counters {
            counters.u64(k, *v);
        }
        o.raw("counters", &counters.finish());
        if !self.hotspots.is_empty() {
            o.raw(
                "hotspots",
                &array(self.hotspots.iter().map(HotspotRecord::to_json_obj)),
            );
        }
        o.finish()
    }
}

fn counter_snapshot() -> Vec<(&'static str, u64)> {
    metrics::global().snapshot().counters.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timings() -> StageTimings {
        StageTimings {
            space_ms: 1.0,
            tile_ms: 2.0,
            seed_ms: 3.0,
            grow_ms: 10.0,
            refine_ms: 5.0,
            reheat_ms: 4.0,
            backconv_ms: 0.5,
            solves: 42,
            factorizations: 3,
            factor_updates: 39,
            tile_rebuilds: 1,
            tile_reuses: 0,
        }
    }

    #[test]
    fn breakdown_is_monotonic_and_ordered() {
        let stages = stage_breakdown(&timings());
        assert_eq!(
            stages.iter().map(|s| s.name).collect::<Vec<_>>(),
            STAGE_ORDER
        );
        for pair in stages.windows(2) {
            assert!(pair[1].start_ms >= pair[0].start_ms, "monotonic offsets");
            assert!(
                (pair[1].start_ms - (pair[0].start_ms + pair[0].duration_ms)).abs() < 1e-12,
                "offsets are cumulative"
            );
        }
        let last = stages.last().unwrap();
        assert!((last.start_ms + last.duration_ms - timings().total_ms()).abs() < 1e-12);
    }

    #[test]
    fn report_json_is_one_line_with_rails() {
        let report = RunReport {
            label: "unit".into(),
            rails: vec![RailRunRecord {
                net: 1,
                layer: 6,
                budget_mm2: 20.0,
                outcome: "routed",
                area_mm2: 19.5,
                final_resistance_sq: Some(0.25),
                solves: 40,
                total_ms: 25.5,
                stages: stage_breakdown(&timings()),
                degradations: vec!["grow stage skipped".into()],
                attempts: 1,
                ..RailRunRecord::default()
            }],
            waves: 1,
            elapsed_ms: 25.5,
            ..RunReport::default()
        };
        let json = report.to_json();
        assert!(!json.contains('\n'), "single line");
        assert!(json.starts_with(r#"{"report":"sprout-run","label":"unit""#));
        assert!(json.contains(r#""outcome":"routed""#));
        assert!(json.contains(r#""degradations":["grow stage skipped"]"#));
        assert!(json.contains(r#""stages":[{"name":"space","start_ms":0"#));
        assert!(json.contains(r#""counters":{"#));
        assert!(!report.is_clean(), "degradations mean not clean");
        assert_eq!(report.total_area_mm2(), 19.5);
    }

    #[test]
    fn missing_resistance_serializes_as_null() {
        let report = RunReport {
            label: "x".into(),
            rails: vec![RailRunRecord {
                outcome: "failed",
                error: Some("boom".into()),
                ..RailRunRecord::default()
            }],
            ..RunReport::default()
        };
        let json = report.to_json();
        assert!(json.contains(r#""final_resistance_sq":null"#));
        assert!(json.contains(r#""error":"boom""#));
        assert!(!report.is_clean());
    }
}
