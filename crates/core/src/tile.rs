//! `SpaceToGraph` — Algorithm 1 of the paper.
//!
//! The available space is divided into `Δx × Δy` tiles; every tile with
//! usable area becomes a node, and adjacent tiles are connected by edges
//! whose weight is proportional to the width of the contact between them
//! (Fig. 6). Boundary tiles intersected by buffers or the board outline
//! become irregular polygons (Fig. 7).

use crate::graph::{NodeId, RoutingGraph};
use crate::space::SpaceSpec;
use crate::tile_session::TilingSession;
use crate::SproutError;
use sprout_board::{ElementRole, NetId};

/// Tiling options for [`space_to_graph`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileOptions {
    /// Tile pitch Δx (mm).
    pub dx: f64,
    /// Tile pitch Δy (mm).
    pub dy: f64,
    /// Cells whose usable area falls below this fraction of `Δx·Δy` are
    /// discarded (slivers conduct poorly and inflate the graph).
    pub min_cell_fraction: f64,
}

impl TileOptions {
    /// Square tiles with the given pitch and the default 5 % sliver
    /// threshold.
    pub fn square(pitch_mm: f64) -> Self {
        TileOptions {
            dx: pitch_mm,
            dy: pitch_mm,
            min_cell_fraction: 0.05,
        }
    }
}

/// Converts the available space into the equivalent graph Γ_n
/// (Algorithm 1).
///
/// This is the one-shot entry point: it builds a throwaway
/// [`TilingSession`] and hands out its graph, so the from-scratch and
/// incremental paths share a single clip kernel and stay bit-identical
/// by construction. Callers that re-tile the same `(board, layer,
/// pitch)` repeatedly should hold a [`TilingSession`] instead.
///
/// # Errors
///
/// Returns [`SproutError::InvalidConfig`] for non-positive pitches or a
/// threshold outside `[0, 1)`.
pub fn space_to_graph(spec: &SpaceSpec, opts: TileOptions) -> Result<RoutingGraph, SproutError> {
    let mut session = TilingSession::new(spec, opts, 1)?;
    Ok(session.graph())
}

/// A routing terminal mapped onto the graph.
#[derive(Debug, Clone)]
pub struct Terminal {
    /// Representative node (used for path finding and current
    /// injections).
    pub node: NodeId,
    /// All nodes whose tiles the terminal pad touches (Fig. 7 treats
    /// them as one node; they are force-included in the seed).
    pub covered: Vec<NodeId>,
    /// Electrical role.
    pub role: ElementRole,
}

/// Maps each terminal shape of the spec onto graph nodes
/// (`identifyTerminals` of Algorithm 6).
///
/// # Errors
///
/// Returns [`SproutError::TerminalBlocked`] when a terminal's pad covers
/// no routable tile.
pub fn identify_terminals(
    graph: &RoutingGraph,
    spec: &SpaceSpec,
    net: NetId,
) -> Result<Vec<Terminal>, SproutError> {
    let mut out = Vec::with_capacity(spec.terminals.len());
    for (t_idx, t) in spec.terminals.iter().enumerate() {
        let bounds = t.shape.bounds();
        let frame = graph.frame();
        let i0 = ((bounds.min().x - frame.origin.x) / frame.dx).floor() as i64;
        let i1 = ((bounds.max().x - frame.origin.x) / frame.dx).floor() as i64;
        let j0 = ((bounds.min().y - frame.origin.y) / frame.dy).floor() as i64;
        let j1 = ((bounds.max().y - frame.origin.y) / frame.dy).floor() as i64;
        let mut covered: Vec<NodeId> = Vec::new();
        for i in i0..=i1 {
            for j in j0..=j1 {
                if let Some(id) = graph.node_at_cell((i, j)) {
                    let node = graph.node(id);
                    // The tile must actually touch the pad.
                    if node.rect.intersects(&bounds)
                        && (t.shape.contains_point(node.center())
                            || node.contains_point(t.shape.centroid())
                            || node
                                .rect
                                .intersection(&bounds)
                                .map(|r| t.shape.contains_point(r.center()))
                                .unwrap_or(false))
                    {
                        covered.push(id);
                    }
                }
            }
        }
        let representative = covered
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let da = graph.node(a).center().distance(t.shape.centroid());
                let db = graph.node(b).center().distance(t.shape.centroid());
                da.total_cmp(&db)
            })
            .or_else(|| graph.node_near(t.shape.centroid(), 2));
        match representative {
            Some(node) => {
                if covered.is_empty() {
                    covered.push(node);
                }
                out.push(Terminal {
                    node,
                    covered,
                    role: t.role,
                });
            }
            None => {
                return Err(SproutError::TerminalBlocked {
                    net,
                    terminal: t_idx,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SpaceSpec;
    use sprout_board::presets;
    use sprout_geom::Point;

    fn two_rail_graph() -> (RoutingGraph, SpaceSpec, NetId) {
        let board = presets::two_rail();
        let (vdd1, _) = board.power_nets().next().unwrap();
        let spec = SpaceSpec::build(&board, vdd1, presets::TWO_RAIL_ROUTE_LAYER, &[]).unwrap();
        let graph = space_to_graph(&spec, TileOptions::square(0.4)).unwrap();
        (graph, spec, vdd1)
    }

    #[test]
    fn options_validate() {
        let board = presets::two_rail();
        let (vdd1, _) = board.power_nets().next().unwrap();
        let spec = SpaceSpec::build(&board, vdd1, presets::TWO_RAIL_ROUTE_LAYER, &[]).unwrap();
        assert!(space_to_graph(
            &spec,
            TileOptions {
                dx: 0.0,
                dy: 0.4,
                min_cell_fraction: 0.05
            }
        )
        .is_err());
        assert!(space_to_graph(
            &spec,
            TileOptions {
                dx: 0.4,
                dy: 0.4,
                min_cell_fraction: 1.5
            }
        )
        .is_err());
    }

    #[test]
    fn graph_covers_most_of_the_board() {
        let (graph, spec, _) = two_rail_graph();
        // 24×16 board at 0.4 mm pitch: 60×40 = 2400 candidate cells.
        assert!(graph.node_count() > 1500, "{}", graph.node_count());
        // Edge/node ratio approaches 2 for a full grid (§II-H).
        let ratio = graph.edge_count() as f64 / graph.node_count() as f64;
        assert!(ratio > 1.6 && ratio < 2.1, "ratio {ratio}");
        // The graph area is at most the design space and near it minus
        // blocked area.
        let total = graph.total_area_mm2();
        assert!(total < spec.design_space.area());
        assert!(total > spec.design_space.area() * 0.7);
    }

    #[test]
    fn blocked_cells_are_missing() {
        let (graph, _, _) = two_rail_graph();
        // Centre of the mechanical blockage (9.5..13, 6..10).
        assert!(graph.node_near(Point::new(11.2, 8.0), 0).is_none());
    }

    #[test]
    fn boundary_cells_are_irregular() {
        let (graph, _, _) = two_rail_graph();
        let irregular = graph.nodes().iter().filter(|n| n.pieces.is_some()).count();
        let full = graph.nodes().iter().filter(|n| n.pieces.is_none()).count();
        assert!(irregular > 0, "buffers must clip some cells");
        assert!(full > irregular, "most of the board is open");
        // Irregular tiles have less area than the pitch square.
        for n in graph.nodes().iter().filter(|n| n.pieces.is_some()) {
            assert!(n.area_mm2 <= 0.4 * 0.4 + 1e-9);
        }
    }

    #[test]
    fn full_grid_edge_weights_are_unity() {
        // In open space with square tiles, contact width = pitch ⇒ w = 1.
        let (graph, _, _) = two_rail_graph();
        let full_weight_edges = graph
            .edges()
            .iter()
            .filter(|e| (e.weight - 1.0).abs() < 1e-6)
            .count();
        assert!(full_weight_edges * 2 > graph.edge_count());
        // No edge exceeds full contact.
        for e in graph.edges() {
            assert!(e.weight <= 1.0 + 1e-6);
            assert!(e.weight > 0.0);
        }
    }

    #[test]
    fn terminals_identified_and_connected() {
        let (graph, spec, net) = two_rail_graph();
        let terminals = identify_terminals(&graph, &spec, net).unwrap();
        assert_eq!(terminals.len(), 10);
        assert!(terminals.iter().any(|t| t.role == ElementRole::Source));
        let nodes: Vec<NodeId> = terminals.iter().map(|t| t.node).collect();
        assert!(graph.connects(&nodes), "terminals must share a component");
        // Every terminal pad covers at least one node.
        for t in &terminals {
            assert!(!t.covered.is_empty());
        }
    }

    #[test]
    fn finer_tiles_give_more_nodes() {
        let board = presets::two_rail();
        let (vdd1, _) = board.power_nets().next().unwrap();
        let spec = SpaceSpec::build(&board, vdd1, presets::TWO_RAIL_ROUTE_LAYER, &[]).unwrap();
        let coarse = space_to_graph(&spec, TileOptions::square(0.8)).unwrap();
        let fine = space_to_graph(&spec, TileOptions::square(0.4)).unwrap();
        assert!(fine.node_count() > 3 * coarse.node_count());
        // Area estimates agree within a few percent.
        let rel = (fine.total_area_mm2() - coarse.total_area_mm2()).abs() / fine.total_area_mm2();
        assert!(rel < 0.05, "rel {rel}");
    }
}
