//! `SpaceToGraph` — Algorithm 1 of the paper.
//!
//! The available space is divided into `Δx × Δy` tiles; every tile with
//! usable area becomes a node, and adjacent tiles are connected by edges
//! whose weight is proportional to the width of the contact between them
//! (Fig. 6). Boundary tiles intersected by buffers or the board outline
//! become irregular polygons (Fig. 7).

use crate::graph::{GraphEdge, NodeId, RoutingGraph, TileNode};
use crate::space::SpaceSpec;
use crate::SproutError;
use sprout_board::{ElementRole, NetId};
use sprout_geom::stitch::GridFrame;
use sprout_geom::{Point, PolygonSet, Rect};
use sprout_telemetry as telemetry;

/// Tiling options for [`space_to_graph`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileOptions {
    /// Tile pitch Δx (mm).
    pub dx: f64,
    /// Tile pitch Δy (mm).
    pub dy: f64,
    /// Cells whose usable area falls below this fraction of `Δx·Δy` are
    /// discarded (slivers conduct poorly and inflate the graph).
    pub min_cell_fraction: f64,
}

impl TileOptions {
    /// Square tiles with the given pitch and the default 5 % sliver
    /// threshold.
    pub fn square(pitch_mm: f64) -> Self {
        TileOptions {
            dx: pitch_mm,
            dy: pitch_mm,
            min_cell_fraction: 0.05,
        }
    }
}

/// Converts the available space into the equivalent graph Γ_n
/// (Algorithm 1).
///
/// # Errors
///
/// Returns [`SproutError::InvalidConfig`] for non-positive pitches or a
/// threshold outside `[0, 1)`.
pub fn space_to_graph(spec: &SpaceSpec, opts: TileOptions) -> Result<RoutingGraph, SproutError> {
    if opts.dx <= 0.0 || opts.dy <= 0.0 {
        return Err(SproutError::InvalidConfig("tile pitch must be positive"));
    }
    if !(0.0..1.0).contains(&opts.min_cell_fraction) {
        return Err(SproutError::InvalidConfig(
            "min_cell_fraction must be in [0, 1)",
        ));
    }
    let u = spec.design_space;
    let origin = u.min();
    let nx = (u.width() / opts.dx).ceil() as i64;
    let ny = (u.height() / opts.dy).ceil() as i64;
    let frame = GridFrame {
        origin,
        dx: opts.dx,
        dy: opts.dy,
    };
    let cell_area = opts.dx * opts.dy;
    let min_area = opts.min_cell_fraction * cell_area;

    let mut nodes: Vec<TileNode> = Vec::new();
    // Dense cell → node index map for edge construction.
    let mut cell_node: Vec<Option<u32>> = vec![None; (nx * ny) as usize];

    // The profiler splits the dominant `tile` stage into its two
    // phases: cell clipping (boolean ops against blockers) and edge
    // construction (cross-section contacts).
    let mut cells_span = telemetry::span("tile.cells").enter();
    for j in 0..ny {
        for i in 0..nx {
            let x0 = origin.x + i as f64 * opts.dx;
            let y0 = origin.y + j as f64 * opts.dy;
            let x1 = (x0 + opts.dx).min(u.max().x);
            let y1 = (y0 + opts.dy).min(u.max().y);
            if x1 - x0 < 1e-12 || y1 - y0 < 1e-12 {
                continue;
            }
            let rect =
                Rect::new(Point::new(x0, y0), Point::new(x1, y1)).expect("positive cell extent");
            let nearby: Vec<_> = spec
                .blockers_near(&rect)
                .filter(|b| b.bounds().intersects(&rect))
                .collect();
            let node = if nearby.is_empty() {
                // Fast path: the full (possibly outline-clipped) cell.
                TileNode {
                    cell: (i, j),
                    rect,
                    area_mm2: rect.area(),
                    pieces: None,
                }
            } else {
                let mut set = PolygonSet::from_polygon(rect.to_polygon());
                for b in nearby {
                    set = set.subtract_polygon(b);
                    if set.is_empty() {
                        break;
                    }
                }
                let area = set.area();
                if area < min_area {
                    continue;
                }
                TileNode {
                    cell: (i, j),
                    rect,
                    area_mm2: area,
                    pieces: Some(set),
                }
            };
            cell_node[(j * nx + i) as usize] = Some(nodes.len() as u32);
            nodes.push(node);
        }
    }

    cells_span.record("nodes", nodes.len() as u64);
    drop(cells_span);

    // Edges between lattice-adjacent tiles, weighted by contact width.
    // The contact is measured by intersecting cross-sections taken a hair
    // inside each tile, which sidesteps collinear-boundary degeneracies.
    let mut edges_span = telemetry::span("tile.edges").enter();
    let mut edges: Vec<GraphEdge> = Vec::new();
    let delta = 1e-4 * opts.dx.min(opts.dy);
    for j in 0..ny {
        for i in 0..nx {
            let here = match cell_node[(j * nx + i) as usize] {
                Some(h) => h,
                None => continue,
            };
            // West neighbor (i-1, j): contact on the vertical line x0.
            if i > 0 {
                if let Some(west) = cell_node[(j * nx + i - 1) as usize] {
                    let x_shared = origin.x + i as f64 * opts.dx;
                    let a = &nodes[west as usize];
                    let b = &nodes[here as usize];
                    let width = contact_width(
                        a.cross_section_x(x_shared - delta),
                        b.cross_section_x(x_shared + delta),
                    );
                    if width > 1e-9 {
                        edges.push(GraphEdge {
                            a: NodeId(west),
                            b: NodeId(here),
                            weight: width / opts.dx,
                        });
                    }
                }
            }
            // South neighbor (i, j-1): contact on the horizontal line y0.
            if j > 0 {
                if let Some(south) = cell_node[((j - 1) * nx + i) as usize] {
                    let y_shared = origin.y + j as f64 * opts.dy;
                    let a = &nodes[south as usize];
                    let b = &nodes[here as usize];
                    let width = contact_width(
                        a.cross_section_y(y_shared - delta),
                        b.cross_section_y(y_shared + delta),
                    );
                    if width > 1e-9 {
                        edges.push(GraphEdge {
                            a: NodeId(south),
                            b: NodeId(here),
                            weight: width / opts.dy,
                        });
                    }
                }
            }
        }
    }

    edges_span.record("edges", edges.len() as u64);
    drop(edges_span);

    Ok(RoutingGraph::assemble(frame, nodes, edges))
}

fn contact_width(a: sprout_geom::IntervalSet, b: sprout_geom::IntervalSet) -> f64 {
    a.intersect(&b).total_length()
}

/// A routing terminal mapped onto the graph.
#[derive(Debug, Clone)]
pub struct Terminal {
    /// Representative node (used for path finding and current
    /// injections).
    pub node: NodeId,
    /// All nodes whose tiles the terminal pad touches (Fig. 7 treats
    /// them as one node; they are force-included in the seed).
    pub covered: Vec<NodeId>,
    /// Electrical role.
    pub role: ElementRole,
}

/// Maps each terminal shape of the spec onto graph nodes
/// (`identifyTerminals` of Algorithm 6).
///
/// # Errors
///
/// Returns [`SproutError::TerminalBlocked`] when a terminal's pad covers
/// no routable tile.
pub fn identify_terminals(
    graph: &RoutingGraph,
    spec: &SpaceSpec,
    net: NetId,
) -> Result<Vec<Terminal>, SproutError> {
    let mut out = Vec::with_capacity(spec.terminals.len());
    for (t_idx, t) in spec.terminals.iter().enumerate() {
        let bounds = t.shape.bounds();
        let frame = graph.frame();
        let i0 = ((bounds.min().x - frame.origin.x) / frame.dx).floor() as i64;
        let i1 = ((bounds.max().x - frame.origin.x) / frame.dx).floor() as i64;
        let j0 = ((bounds.min().y - frame.origin.y) / frame.dy).floor() as i64;
        let j1 = ((bounds.max().y - frame.origin.y) / frame.dy).floor() as i64;
        let mut covered: Vec<NodeId> = Vec::new();
        for i in i0..=i1 {
            for j in j0..=j1 {
                if let Some(id) = graph.node_at_cell((i, j)) {
                    let node = graph.node(id);
                    // The tile must actually touch the pad.
                    if node.rect.intersects(&bounds)
                        && (t.shape.contains_point(node.center())
                            || node.contains_point(t.shape.centroid())
                            || node
                                .rect
                                .intersection(&bounds)
                                .map(|r| t.shape.contains_point(r.center()))
                                .unwrap_or(false))
                    {
                        covered.push(id);
                    }
                }
            }
        }
        let representative = covered
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let da = graph.node(a).center().distance(t.shape.centroid());
                let db = graph.node(b).center().distance(t.shape.centroid());
                da.total_cmp(&db)
            })
            .or_else(|| graph.node_near(t.shape.centroid(), 2));
        match representative {
            Some(node) => {
                if covered.is_empty() {
                    covered.push(node);
                }
                out.push(Terminal {
                    node,
                    covered,
                    role: t.role,
                });
            }
            None => {
                return Err(SproutError::TerminalBlocked {
                    net,
                    terminal: t_idx,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SpaceSpec;
    use sprout_board::presets;

    fn two_rail_graph() -> (RoutingGraph, SpaceSpec, NetId) {
        let board = presets::two_rail();
        let (vdd1, _) = board.power_nets().next().unwrap();
        let spec = SpaceSpec::build(&board, vdd1, presets::TWO_RAIL_ROUTE_LAYER, &[]).unwrap();
        let graph = space_to_graph(&spec, TileOptions::square(0.4)).unwrap();
        (graph, spec, vdd1)
    }

    #[test]
    fn options_validate() {
        let board = presets::two_rail();
        let (vdd1, _) = board.power_nets().next().unwrap();
        let spec = SpaceSpec::build(&board, vdd1, presets::TWO_RAIL_ROUTE_LAYER, &[]).unwrap();
        assert!(space_to_graph(
            &spec,
            TileOptions {
                dx: 0.0,
                dy: 0.4,
                min_cell_fraction: 0.05
            }
        )
        .is_err());
        assert!(space_to_graph(
            &spec,
            TileOptions {
                dx: 0.4,
                dy: 0.4,
                min_cell_fraction: 1.5
            }
        )
        .is_err());
    }

    #[test]
    fn graph_covers_most_of_the_board() {
        let (graph, spec, _) = two_rail_graph();
        // 24×16 board at 0.4 mm pitch: 60×40 = 2400 candidate cells.
        assert!(graph.node_count() > 1500, "{}", graph.node_count());
        // Edge/node ratio approaches 2 for a full grid (§II-H).
        let ratio = graph.edge_count() as f64 / graph.node_count() as f64;
        assert!(ratio > 1.6 && ratio < 2.1, "ratio {ratio}");
        // The graph area is at most the design space and near it minus
        // blocked area.
        let total = graph.total_area_mm2();
        assert!(total < spec.design_space.area());
        assert!(total > spec.design_space.area() * 0.7);
    }

    #[test]
    fn blocked_cells_are_missing() {
        let (graph, _, _) = two_rail_graph();
        // Centre of the mechanical blockage (9.5..13, 6..10).
        assert!(graph.node_near(Point::new(11.2, 8.0), 0).is_none());
    }

    #[test]
    fn boundary_cells_are_irregular() {
        let (graph, _, _) = two_rail_graph();
        let irregular = graph.nodes().iter().filter(|n| n.pieces.is_some()).count();
        let full = graph.nodes().iter().filter(|n| n.pieces.is_none()).count();
        assert!(irregular > 0, "buffers must clip some cells");
        assert!(full > irregular, "most of the board is open");
        // Irregular tiles have less area than the pitch square.
        for n in graph.nodes().iter().filter(|n| n.pieces.is_some()) {
            assert!(n.area_mm2 <= 0.4 * 0.4 + 1e-9);
        }
    }

    #[test]
    fn full_grid_edge_weights_are_unity() {
        // In open space with square tiles, contact width = pitch ⇒ w = 1.
        let (graph, _, _) = two_rail_graph();
        let full_weight_edges = graph
            .edges()
            .iter()
            .filter(|e| (e.weight - 1.0).abs() < 1e-6)
            .count();
        assert!(full_weight_edges * 2 > graph.edge_count());
        // No edge exceeds full contact.
        for e in graph.edges() {
            assert!(e.weight <= 1.0 + 1e-6);
            assert!(e.weight > 0.0);
        }
    }

    #[test]
    fn terminals_identified_and_connected() {
        let (graph, spec, net) = two_rail_graph();
        let terminals = identify_terminals(&graph, &spec, net).unwrap();
        assert_eq!(terminals.len(), 10);
        assert!(terminals.iter().any(|t| t.role == ElementRole::Source));
        let nodes: Vec<NodeId> = terminals.iter().map(|t| t.node).collect();
        assert!(graph.connects(&nodes), "terminals must share a component");
        // Every terminal pad covers at least one node.
        for t in &terminals {
            assert!(!t.covered.is_empty());
        }
    }

    #[test]
    fn finer_tiles_give_more_nodes() {
        let board = presets::two_rail();
        let (vdd1, _) = board.power_nets().next().unwrap();
        let spec = SpaceSpec::build(&board, vdd1, presets::TWO_RAIL_ROUTE_LAYER, &[]).unwrap();
        let coarse = space_to_graph(&spec, TileOptions::square(0.8)).unwrap();
        let fine = space_to_graph(&spec, TileOptions::square(0.4)).unwrap();
        assert!(fine.node_count() > 3 * coarse.node_count());
        // Area estimates agree within a few percent.
        let rel = (fine.total_area_mm2() - coarse.total_area_mm2()).abs() / fine.total_area_mm2();
        assert!(rel < 0.05, "rel {rel}");
    }
}
