//! # sprout-core
//!
//! SPROUT — Smart Power ROUting Tool for board-level power network
//! exploration and prototyping (Bairamkulov, Roy, Nagarajan, Srinivas,
//! Friedman — DAC 2021).
//!
//! Given a PCB description ([`sprout_board::Board`]), SPROUT synthesizes
//! the arbitrarily-shaped copper pour connecting each power rail's PMIC
//! output to its target BGA balls and decoupling capacitors while
//! minimizing the impedance between the terminals under a metal-area
//! budget. The pipeline follows §II of the paper:
//!
//! 1. [`space`] — available routing space `A_n = U \ ∪ b_j` (Eq. 1).
//! 2. [`tile`] — `SpaceToGraph` (Algorithm 1): tiles become graph nodes,
//!    edge weights ∝ contact width between adjacent tiles (Fig. 6).
//! 3. [`seed`] — the voidless seed subgraph (Algorithm 2).
//! 4. [`current`] — the node-current metric via nodal analysis
//!    `V = L⁻¹E` (Algorithm 3).
//! 5. [`grow`] — SmartGrow frontier expansion (Algorithm 4).
//! 6. [`refine`] — SmartRefine node migration (Algorithm 5).
//! 7. [`reheat`] — dilation/erosion reheating (§II-F).
//! 8. [`backconv`] — back conversion of the subgraph into polygons
//!    (§II-G).
//! 9. [`multilayer`] — via placement and decomposition into single-layer
//!    problems (Appendix, Algorithm 6).
//!
//! The [`router`] module orchestrates the stages with per-stage timing
//! telemetry (reproducing the §II-H runtime analysis), and [`drc`]
//! verifies the output against the design rules. [`anneal`] implements
//! the evolutionary-optimization extension the paper's conclusion
//! proposes as future work.
//!
//! # Example
//!
//! ```
//! use sprout_board::presets;
//! use sprout_core::router::{Router, RouterConfig};
//!
//! # fn main() -> Result<(), sprout_core::SproutError> {
//! let board = presets::two_rail();
//! let mut config = RouterConfig::default();
//! config.tile_pitch_mm = 0.8; // coarse for a fast doc example
//! let router = Router::new(&board, config);
//! let (net, _) = board.power_nets().next().expect("preset has rails");
//! let result = router.route_net(net, presets::TWO_RAIL_ROUTE_LAYER, 30.0)?;
//! assert!(result.shape.area_mm2() <= 30.0 * 1.12);
//! # Ok(())
//! # }
//! ```

pub mod anneal;
pub mod backconv;
pub mod current;
pub mod drc;
pub mod graph;
pub mod grow;
pub mod multilayer;
pub mod path;
pub mod recovery;
pub mod refine;
pub mod reheat;
pub mod report;
pub mod router;
pub mod seed;
pub mod session;
pub mod space;
pub mod supervisor;
pub mod tile;
pub mod tile_session;

pub use graph::{NodeId, RoutingGraph, Subgraph};
pub use recovery::{
    CancelToken, Degradation, FaultPlan, RecoveryConfig, RecoveryPolicy, RouteDiagnostics,
    StageBudget,
};
pub use report::{HotspotRecord, RailRunRecord, RunReport, StageBreakdown};
pub use router::{RouteResult, Router, RouterConfig};
pub use session::{Engine, NodalSession, SessionStats, SolverConfig, SolverEngine};
pub use supervisor::{
    JobReport, RailOutcome, RailReport, RestoredRail, Supervisor, SupervisorConfig,
};
pub use tile_session::{TileConfig, TileMode, TileOutcome, TileSessionStats, TilingSession};

use std::fmt;

/// Errors from the SPROUT pipeline.
#[derive(Debug)]
#[must_use]
#[non_exhaustive]
pub enum SproutError {
    /// The board description itself is inconsistent.
    Board(sprout_board::BoardError),
    /// A geometry operation failed.
    Geometry(sprout_geom::GeomError),
    /// A linear solve failed.
    Linalg(sprout_linalg::LinalgError),
    /// The net has no terminals on the requested layer.
    NoTerminals {
        /// Net being routed.
        net: sprout_board::NetId,
        /// Layer searched.
        layer: usize,
    },
    /// A terminal's location maps to no routable tile.
    TerminalBlocked {
        /// Net being routed.
        net: sprout_board::NetId,
        /// Index of the terminal within the net's terminal list.
        terminal: usize,
    },
    /// Terminals fall in disjoint regions of the available space; the
    /// single-layer router cannot connect them (see Fig. 5 — use
    /// [`multilayer`]).
    DisjointSpace {
        /// Net being routed.
        net: sprout_board::NetId,
        /// Layer attempted.
        layer: usize,
    },
    /// The area budget is below the seed subgraph's area.
    AreaBudgetTooSmall {
        /// Requested budget (mm²).
        budget_mm2: f64,
        /// Minimum area of a connected seed (mm²).
        seed_mm2: f64,
    },
    /// A configuration value is unusable.
    InvalidConfig(&'static str),
    /// Multilayer routing could not find any layer stack path.
    NoMultilayerPath,
    /// Part of a multilayer route succeeded before another part failed;
    /// the diagnostics describe what was lost.
    Degraded {
        /// Degradations and warnings accumulated before the failure.
        diagnostics: Box<recovery::RouteDiagnostics>,
        /// The error that stopped the remainder of the route.
        source: Box<SproutError>,
    },
    /// A supervisor worker thread panicked while routing a rail. The
    /// panic was contained by the worker's `catch_unwind` boundary; the
    /// rest of the job is unaffected.
    WorkerPanicked {
        /// Net whose worker panicked.
        net: sprout_board::NetId,
        /// Layer the rail was routing on.
        layer: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// The job's [`CancelToken`](recovery::CancelToken) was triggered
    /// before or while this rail was routing.
    Cancelled,
    /// The job-level wall-clock deadline expired before this rail could
    /// start.
    DeadlineExpired {
        /// The configured deadline (ms).
        deadline_ms: f64,
        /// Wall-clock already spent when this rail was considered (ms).
        elapsed_ms: f64,
    },
    /// An internal invariant did not hold. Replaces what used to be an
    /// `expect` panic on a fallible path: the pipeline reports the
    /// broken invariant as a typed, non-retryable error instead of
    /// tearing the worker down.
    Internal(&'static str),
}

impl fmt::Display for SproutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SproutError::Board(e) => write!(f, "board error: {e}"),
            SproutError::Geometry(e) => write!(f, "geometry error: {e}"),
            SproutError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            SproutError::NoTerminals { net, layer } => {
                write!(f, "{net} has no terminals on layer {layer}")
            }
            SproutError::TerminalBlocked { net, terminal } => {
                write!(f, "terminal {terminal} of {net} maps to no routable tile")
            }
            SproutError::DisjointSpace { net, layer } => write!(
                f,
                "available space for {net} on layer {layer} is disjoint; multilayer routing required"
            ),
            SproutError::AreaBudgetTooSmall { budget_mm2, seed_mm2 } => write!(
                f,
                "area budget {budget_mm2:.3} mm² is below the minimum connected seed area {seed_mm2:.3} mm²"
            ),
            SproutError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            SproutError::NoMultilayerPath => {
                write!(f, "no multilayer path connects the terminals")
            }
            SproutError::Degraded { diagnostics, source } => write!(
                f,
                "route partially failed ({} warning(s), {} degradation(s)): {source}",
                diagnostics.warnings.len(),
                diagnostics.degradations.len()
            ),
            SproutError::WorkerPanicked { net, layer, message } => write!(
                f,
                "worker routing {net} on layer {layer} panicked: {message}"
            ),
            SproutError::Cancelled => write!(f, "routing job was cancelled"),
            SproutError::DeadlineExpired {
                deadline_ms,
                elapsed_ms,
            } => write!(
                f,
                "job deadline of {deadline_ms:.0} ms expired ({elapsed_ms:.0} ms elapsed)"
            ),
            SproutError::Internal(what) => {
                write!(f, "internal invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for SproutError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SproutError::Board(e) => Some(e),
            SproutError::Geometry(e) => Some(e),
            SproutError::Linalg(e) => Some(e),
            SproutError::Degraded { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<sprout_board::BoardError> for SproutError {
    fn from(e: sprout_board::BoardError) -> Self {
        SproutError::Board(e)
    }
}

impl From<sprout_geom::GeomError> for SproutError {
    fn from(e: sprout_geom::GeomError) -> Self {
        SproutError::Geometry(e)
    }
}

impl From<sprout_linalg::LinalgError> for SproutError {
    fn from(e: sprout_linalg::LinalgError) -> Self {
        SproutError::Linalg(e)
    }
}
