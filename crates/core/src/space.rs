//! Available routing space (§II-A, Eq. 1).
//!
//! The available space for net `n` is the design space `U` minus the
//! buffered geometry of every other net: `A_n = U \ ∪_{j≠n} b_j`.
//! Rather than materializing `A_n` as one global polygon, this module
//! prepares the *specification* — buffered blocker polygons plus a
//! spatial index — that the tiling stage (Algorithm 1) consumes cell by
//! cell, which is numerically robust and cache-friendly.

use crate::SproutError;
use sprout_board::{Board, ElementRole, NetId};
use sprout_geom::buffer::{buffer_polygon, BufferStyle};
use sprout_geom::{Point, Polygon, Rect};

/// A terminal shape on the routing layer with its electrical role.
#[derive(Debug, Clone)]
pub struct TerminalShape {
    /// Terminal geometry.
    pub shape: Polygon,
    /// Source / sink / decap role.
    pub role: ElementRole,
}

/// The available-space specification for one net on one layer.
#[derive(Debug, Clone)]
pub struct SpaceSpec {
    /// The design space `U` (board outline).
    pub design_space: Rect,
    /// Buffered foreign-net geometry (each polygon is a keep-out).
    pub blockers: Vec<Polygon>,
    /// Same-net terminal shapes, in board element order.
    pub terminals: Vec<TerminalShape>,
    index: SpatialIndex,
}

impl SpaceSpec {
    /// Builds the specification for `net` on `layer`.
    ///
    /// `extra_blockers` lets the caller pass shapes routed earlier for
    /// other nets (§II-G: "it is crucial to remove the routed polygon
    /// from the available space of other nets").
    ///
    /// # Errors
    ///
    /// * [`SproutError::Board`] — unknown net/layer.
    /// * [`SproutError::NoTerminals`] — the net has no terminal on the
    ///   layer.
    /// * [`SproutError::Geometry`] — buffering failed.
    pub fn build(
        board: &Board,
        net: NetId,
        layer: usize,
        extra_blockers: &[Polygon],
    ) -> Result<Self, SproutError> {
        Self::build_inner(board, net, layer, extra_blockers, true)
    }

    /// Like [`SpaceSpec::build`] but tolerates a layer with no terminals
    /// — transit layers in multilayer routing (Appendix, Fig. 13) only
    /// carry via-to-via shapes.
    ///
    /// # Errors
    ///
    /// Same as [`SpaceSpec::build`] minus the terminal requirement.
    pub fn build_transit(
        board: &Board,
        net: NetId,
        layer: usize,
        extra_blockers: &[Polygon],
    ) -> Result<Self, SproutError> {
        Self::build_inner(board, net, layer, extra_blockers, false)
    }

    fn build_inner(
        board: &Board,
        net: NetId,
        layer: usize,
        extra_blockers: &[Polygon],
        require_terminals: bool,
    ) -> Result<Self, SproutError> {
        board.net(net)?;
        board.stackup().layer(layer)?;
        let style = BufferStyle::new();

        let mut blockers: Vec<Polygon> = Vec::new();
        let mut terminals: Vec<TerminalShape> = Vec::new();
        for element in board.elements_on_layer(layer) {
            if element.net == Some(net) {
                if element.is_terminal() {
                    terminals.push(TerminalShape {
                        shape: element.shape.clone(),
                        role: element.role,
                    });
                }
                // Same-net geometry never blocks (§II-A, Fig. 4: a net may
                // cross its own buffers).
                continue;
            }
            let clearance = board.clearance_of(element);
            let buffered = buffer_polygon(&element.shape, clearance, style)?;
            blockers.extend(buffered.pieces().iter().cloned());
        }
        for shape in extra_blockers {
            let buffered = buffer_polygon(shape, board.rules().clearance_mm, style)?;
            blockers.extend(buffered.pieces().iter().cloned());
        }

        if require_terminals && terminals.is_empty() {
            return Err(SproutError::NoTerminals { net, layer });
        }

        let design_space = board.outline();
        let index = SpatialIndex::build(design_space, &blockers);
        Ok(SpaceSpec {
            design_space,
            blockers,
            terminals,
            index,
        })
    }

    /// Indices of blockers whose bounds intersect `query`.
    pub fn blockers_near(&self, query: &Rect) -> impl Iterator<Item = &Polygon> {
        self.index
            .query(query)
            .into_iter()
            .map(move |i| &self.blockers[i])
    }

    /// `true` if `p` lies in the available space (inside `U`, outside all
    /// buffered blockers).
    pub fn contains_point(&self, p: Point) -> bool {
        if !self.design_space.contains_point(p) {
            return false;
        }
        let probe = Rect::from_center_size(p, 1e-6, 1e-6).expect("positive probe");
        !self.blockers_near(&probe).any(|b| b.contains_point(p))
    }
}

/// A uniform-bucket spatial index over polygon bounding boxes.
#[derive(Debug, Clone)]
struct SpatialIndex {
    origin: Point,
    cell: f64,
    nx: usize,
    ny: usize,
    buckets: Vec<Vec<usize>>,
}

impl SpatialIndex {
    fn build(extent: Rect, polys: &[Polygon]) -> Self {
        // Target ~1 polygon per bucket: bucket side ≈ extent / sqrt(n).
        let n = polys.len().max(1);
        let side = (extent.width().max(extent.height()) / (n as f64).sqrt()).max(0.5);
        let nx = ((extent.width() / side).ceil() as usize).max(1);
        let ny = ((extent.height() / side).ceil() as usize).max(1);
        let mut buckets = vec![Vec::new(); nx * ny];
        let origin = extent.min();
        let clampi = |v: f64, hi: usize| -> usize { (v.floor().max(0.0) as usize).min(hi - 1) };
        for (i, p) in polys.iter().enumerate() {
            let b = p.bounds();
            let x0 = clampi((b.min().x - origin.x) / side, nx);
            let x1 = clampi((b.max().x - origin.x) / side, nx);
            let y0 = clampi((b.min().y - origin.y) / side, ny);
            let y1 = clampi((b.max().y - origin.y) / side, ny);
            for x in x0..=x1 {
                for y in y0..=y1 {
                    buckets[y * nx + x].push(i);
                }
            }
        }
        SpatialIndex {
            origin,
            cell: side,
            nx,
            ny,
            buckets,
        }
    }

    fn query(&self, r: &Rect) -> Vec<usize> {
        let clampi = |v: f64, hi: usize| -> usize { (v.floor().max(0.0) as usize).min(hi - 1) };
        let x0 = clampi((r.min().x - self.origin.x) / self.cell, self.nx);
        let x1 = clampi((r.max().x - self.origin.x) / self.cell, self.nx);
        let y0 = clampi((r.min().y - self.origin.y) / self.cell, self.ny);
        let y1 = clampi((r.max().y - self.origin.y) / self.cell, self.ny);
        let mut out: Vec<usize> = Vec::new();
        for x in x0..=x1 {
            for y in y0..=y1 {
                for &i in &self.buckets[y * self.nx + x] {
                    if !out.contains(&i) {
                        out.push(i);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprout_board::presets;

    #[test]
    fn two_rail_spec_builds() {
        let board = presets::two_rail();
        let (vdd1, _) = board.power_nets().next().unwrap();
        let spec = SpaceSpec::build(&board, vdd1, presets::TWO_RAIL_ROUTE_LAYER, &[]).unwrap();
        // 1 source + 9 sinks.
        assert_eq!(spec.terminals.len(), 10);
        // VDD2 terminals (10) + ground vias (6) + blockage (1) buffered.
        assert!(spec.blockers.len() >= 17);
    }

    #[test]
    fn blockers_exclude_own_net() {
        let board = presets::two_rail();
        let (vdd1, _) = board.power_nets().next().unwrap();
        let spec = SpaceSpec::build(&board, vdd1, presets::TWO_RAIL_ROUTE_LAYER, &[]).unwrap();
        // Every own terminal centroid must lie in available space.
        for t in &spec.terminals {
            assert!(
                spec.contains_point(t.shape.centroid()),
                "own terminal blocked at {}",
                t.shape.centroid()
            );
        }
    }

    #[test]
    fn foreign_terminals_are_blocked() {
        let board = presets::two_rail();
        let mut nets = board.power_nets();
        let (vdd1, _) = nets.next().unwrap();
        let (vdd2, _) = nets.next().unwrap();
        let spec = SpaceSpec::build(&board, vdd1, presets::TWO_RAIL_ROUTE_LAYER, &[]).unwrap();
        for t in board.terminals(vdd2, presets::TWO_RAIL_ROUTE_LAYER) {
            assert!(
                !spec.contains_point(t.shape.centroid()),
                "foreign terminal should be blocked"
            );
        }
    }

    #[test]
    fn blockage_area_is_unavailable() {
        let board = presets::two_rail();
        let (vdd1, _) = board.power_nets().next().unwrap();
        let spec = SpaceSpec::build(&board, vdd1, presets::TWO_RAIL_ROUTE_LAYER, &[]).unwrap();
        // Centre of the mechanical blockage.
        assert!(!spec.contains_point(Point::new(11.0, 8.0)));
        // Outside the outline.
        assert!(!spec.contains_point(Point::new(-1.0, 8.0)));
        // Open area.
        assert!(spec.contains_point(Point::new(6.0, 5.0)));
    }

    #[test]
    fn extra_blockers_shrink_space() {
        let board = presets::two_rail();
        let (vdd1, _) = board.power_nets().next().unwrap();
        let claim = Polygon::rectangle(Point::new(5.0, 4.0), Point::new(7.0, 6.0)).unwrap();
        let spec = SpaceSpec::build(&board, vdd1, presets::TWO_RAIL_ROUTE_LAYER, &[claim]).unwrap();
        assert!(!spec.contains_point(Point::new(6.0, 5.0)));
    }

    #[test]
    fn missing_terminals_error() {
        let board = presets::two_rail();
        let (vdd1, _) = board.power_nets().next().unwrap();
        // Layer 0 has no VDD1 terminals in this preset.
        assert!(matches!(
            SpaceSpec::build(&board, vdd1, 0, &[]),
            Err(SproutError::NoTerminals { .. })
        ));
    }

    #[test]
    fn unknown_layer_error() {
        let board = presets::two_rail();
        let (vdd1, _) = board.power_nets().next().unwrap();
        assert!(matches!(
            SpaceSpec::build(&board, vdd1, 99, &[]),
            Err(SproutError::Board(_))
        ));
    }

    #[test]
    fn spatial_index_query_matches_bruteforce() {
        let board = presets::six_rail();
        let (net, _) = board.power_nets().next().unwrap();
        let spec = SpaceSpec::build(&board, net, presets::TEN_LAYER_ROUTE_LAYER, &[]).unwrap();
        let query = Rect::new(Point::new(10.0, 6.0), Point::new(12.0, 8.0)).unwrap();
        let via_index: Vec<&Polygon> = spec.blockers_near(&query).collect();
        let brute: Vec<&Polygon> = spec
            .blockers
            .iter()
            .filter(|b| b.bounds().intersects(&query))
            .collect();
        // The index may over-approximate, never under-approximate.
        for b in brute {
            assert!(via_index.iter().any(|q| std::ptr::eq(*q, b)));
        }
    }
}
