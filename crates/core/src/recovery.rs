//! Stage guards, recovery policies, route diagnostics, and the
//! fault-injection harness.
//!
//! The routing pipeline (seed → SmartGrow → SmartRefine → reheat) is a
//! long chain of numerical stages, any of which can fail on marginal
//! inputs: a solver breakdown, a NaN conductance from a degenerate
//! tile, a stage that stops converging and eats the wall-clock budget.
//! This module gives the router the vocabulary to *degrade* instead of
//! *die*:
//!
//! * [`RecoveryPolicy`] — what to do when a stage fails: propagate the
//!   error, skip the stage, or revert to the best subgraph seen.
//! * [`StageBudget`] / [`StageGuard`] — per-stage wall-clock and solve
//!   budgets, checked between optimization steps.
//! * [`RouteDiagnostics`] — a record of every degradation taken while
//!   producing a result, attached to
//!   [`RouteResult`](crate::router::RouteResult).
//! * [`FaultPlan`] / [`FaultScope`] — a deterministic, seed-driven
//!   fault injector used by the test suite to prove the router returns
//!   a connected, DRC-clean shape (or a typed error) under every
//!   injected fault. Faults cost one thread-local read per query when
//!   disabled.
//! * [`CancelToken`] / [`CancelScope`] — cooperative cancellation,
//!   polled by the router between pipeline stages and by the
//!   [`Supervisor`](crate::supervisor::Supervisor) between rails and
//!   waves.

use sprout_linalg::fallback::Rung;
use sprout_rng::{hash3, u64_to_f64};
use sprout_telemetry as telemetry;
use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A pipeline stage, as named in degradations and fault plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Stage {
    /// Seed construction (Algorithm 2).
    Seed,
    /// SmartGrow (Algorithm 4).
    Grow,
    /// SmartRefine (Algorithm 5).
    Refine,
    /// Reheating (§II-F), including its post-refine passes.
    Reheat,
    /// Back conversion (§II-G).
    BackConvert,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Stage::Seed => "seed",
            Stage::Grow => "grow",
            Stage::Refine => "refine",
            Stage::Reheat => "reheat",
            Stage::BackConvert => "back-convert",
        };
        f.write_str(name)
    }
}

/// What the router does when an optimization stage fails.
///
/// Seed failures always propagate — without a connected seed there is
/// nothing to degrade to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Propagate the first stage error (the pre-recovery behaviour).
    FailFast,
    /// Abandon the failing stage and continue the pipeline with the
    /// current subgraph.
    SkipStage,
    /// Revert to the best fully evaluated subgraph and continue
    /// (default: a wandering stage never costs a result it already had).
    #[default]
    BestSoFar,
}

/// Per-stage resource budget. The guard is checked between optimization
/// steps, so a stage overruns by at most one step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageBudget {
    /// Wall-clock cap per stage (ms). Infinite by default.
    pub wall_clock_ms: f64,
    /// Linear-solve cap per stage. Unbounded by default.
    pub max_solves: usize,
}

impl Default for StageBudget {
    fn default() -> Self {
        StageBudget {
            wall_clock_ms: f64::INFINITY,
            max_solves: usize::MAX,
        }
    }
}

/// Recovery configuration carried by
/// [`RouterConfig`](crate::router::RouterConfig).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RecoveryConfig {
    /// Stage-failure policy.
    pub policy: RecoveryPolicy,
    /// Per-stage budget.
    pub budget: StageBudget,
    /// Deterministic fault injection (testing only; `None` in
    /// production).
    pub fault: Option<FaultPlan>,
}

/// One degradation taken while producing a route.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Degradation {
    /// A linear solve needed a lower rung of the fallback ladder.
    SolverFallback {
        /// Stage whose metric evaluation degraded.
        stage: Stage,
        /// The rung that finally worked.
        rung: Rung,
    },
    /// Non-finite or non-positive conductances were dropped before
    /// solving.
    EdgesSanitized {
        /// Stage whose metric evaluation was affected.
        stage: Stage,
        /// Number of edges dropped.
        count: usize,
    },
    /// A stage failed and was abandoned ([`RecoveryPolicy::SkipStage`]).
    StageSkipped {
        /// The abandoned stage.
        stage: Stage,
    },
    /// A stage failed and the subgraph reverted to the best seen
    /// ([`RecoveryPolicy::BestSoFar`]).
    RevertedToBest {
        /// The failing stage.
        stage: Stage,
    },
    /// A stage hit its [`StageBudget`] and was cut short.
    BudgetOverrun {
        /// The truncated stage.
        stage: Stage,
        /// Wall-clock spent when the guard fired (ms).
        elapsed_ms: f64,
        /// Solves spent when the guard fired.
        solves: usize,
    },
    /// Degenerate fragments were dropped from the back-converted shape.
    FragmentsDropped {
        /// Number of fragments removed.
        count: usize,
    },
    /// A connected-component group could not be routed and was skipped.
    GroupSkipped,
    /// A layer of a multilayer route failed entirely.
    LayerFailed {
        /// The failing layer (stackup index).
        layer: usize,
    },
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Degradation::SolverFallback { stage, rung } => {
                write!(f, "solver fallback to {rung:?} during {stage}")
            }
            Degradation::EdgesSanitized { stage, count } => {
                write!(f, "{count} non-finite edge(s) sanitized during {stage}")
            }
            Degradation::StageSkipped { stage } => write!(f, "{stage} stage skipped"),
            Degradation::RevertedToBest { stage } => {
                write!(f, "{stage} stage reverted to best subgraph")
            }
            Degradation::BudgetOverrun {
                stage,
                elapsed_ms,
                solves,
            } => write!(
                f,
                "{stage} stage over budget ({elapsed_ms:.1} ms, {solves} solve(s))"
            ),
            Degradation::FragmentsDropped { count } => {
                write!(f, "{count} degenerate fragment(s) dropped")
            }
            Degradation::GroupSkipped => f.write_str("terminal group skipped"),
            Degradation::LayerFailed { layer } => write!(f, "layer {layer} failed"),
        }
    }
}

/// Everything that went sideways while producing a
/// [`RouteResult`](crate::router::RouteResult).
///
/// An empty diagnostics (see [`is_clean`](RouteDiagnostics::is_clean))
/// means the route ran exactly as the pre-recovery pipeline would have.
#[derive(Debug, Clone, Default, PartialEq)]
#[must_use]
pub struct RouteDiagnostics {
    /// Every degradation, in the order it occurred.
    pub degradations: Vec<Degradation>,
    /// Human-readable warnings (stage errors absorbed by the policy).
    pub warnings: Vec<String>,
    /// Count of [`Degradation::SolverFallback`] entries.
    pub solver_fallbacks: usize,
    /// Total edges dropped across [`Degradation::EdgesSanitized`].
    pub edges_sanitized: usize,
    /// Count of skipped/reverted stages.
    pub stages_skipped: usize,
    /// Count of [`Degradation::BudgetOverrun`] entries.
    pub budget_overruns: usize,
}

impl RouteDiagnostics {
    /// `true` when the route ran without any degradation or warning.
    pub fn is_clean(&self) -> bool {
        self.degradations.is_empty() && self.warnings.is_empty()
    }

    /// Records a degradation and updates the summary counters.
    pub fn record(&mut self, d: Degradation) {
        match &d {
            Degradation::SolverFallback { .. } => self.solver_fallbacks += 1,
            Degradation::EdgesSanitized { count, .. } => self.edges_sanitized += count,
            Degradation::StageSkipped { .. }
            | Degradation::RevertedToBest { .. }
            | Degradation::GroupSkipped
            | Degradation::LayerFailed { .. } => self.stages_skipped += 1,
            Degradation::BudgetOverrun { .. } => self.budget_overruns += 1,
            Degradation::FragmentsDropped { .. } => {}
        }
        self.degradations.push(d);
    }

    /// Appends a warning line.
    pub fn warn(&mut self, message: String) {
        self.warnings.push(message);
    }

    /// Drains the thread-local solver-event channel into this record,
    /// tagging each event with the stage that triggered it.
    pub(crate) fn absorb_events(&mut self, stage: Stage) {
        for e in drain_events() {
            match e {
                SolverEvent::Fallback(rung) => {
                    self.record(Degradation::SolverFallback { stage, rung })
                }
                SolverEvent::Sanitized(count) => {
                    self.record(Degradation::EdgesSanitized { stage, count })
                }
            }
        }
    }
}

/// Budget guard for one stage run. Construct with [`StageGuard::begin`]
/// before the stage's loop; call [`StageGuard::over_budget`] between
/// steps.
pub struct StageGuard {
    stage: Stage,
    budget: StageBudget,
    start: Instant,
    solves_at_start: usize,
}

impl StageGuard {
    /// Starts guarding `stage` with `solves_so_far` as the pipeline's
    /// solve counter at stage entry.
    pub fn begin(stage: Stage, budget: StageBudget, solves_so_far: usize) -> Self {
        StageGuard {
            stage,
            budget,
            start: Instant::now(),
            solves_at_start: solves_so_far,
        }
    }

    /// Returns the overrun degradation once the stage has exhausted its
    /// wall-clock or solve budget (or a fault plan forces a timeout).
    pub fn over_budget(&self, solves_now: usize) -> Option<Degradation> {
        let elapsed_ms = self.start.elapsed().as_secs_f64() * 1e3;
        let solves = solves_now.saturating_sub(self.solves_at_start);
        if fault_timeout(self.stage)
            || elapsed_ms > self.budget.wall_clock_ms
            || solves > self.budget.max_solves
        {
            telemetry::counter!("router.budget_overruns");
            telemetry::point("budget_overrun")
                .field("stage", self.stage.to_string())
                .field("elapsed_ms", elapsed_ms)
                .field("solves", solves)
                .emit();
            Some(Degradation::BudgetOverrun {
                stage: self.stage,
                elapsed_ms,
                solves,
            })
        } else {
            None
        }
    }
}

/// Cooperative cancellation handle shared between a
/// [`Supervisor`](crate::supervisor::Supervisor) job and its caller.
///
/// Cloning is cheap (an `Arc` bump); every clone observes the same
/// flag. The router checks the innermost installed token between
/// pipeline stages and aborts the rail with
/// [`SproutError::Cancelled`](crate::SproutError::Cancelled) once it is
/// set — cancellation is cooperative, so a stage in flight finishes its
/// current step first.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; observed by every clone.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// `true` once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Installs a [`CancelToken`] on the current thread for the guard's
/// lifetime; the router polls it between pipeline stages. Scopes nest;
/// the innermost token wins. The supervisor installs one per worker —
/// direct use is only needed when driving pipeline stages by hand.
pub struct CancelScope(());

impl CancelScope {
    /// Installs `token`; checks deactivate when the guard drops.
    pub fn install(token: CancelToken) -> CancelScope {
        CANCEL.with(|s| s.borrow_mut().push(token));
        CancelScope(())
    }
}

impl Drop for CancelScope {
    fn drop(&mut self) {
        CANCEL.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// `true` when the innermost installed [`CancelToken`] (if any) has
/// been cancelled. Without a scope this is a single thread-local read.
pub(crate) fn cancel_requested() -> bool {
    CANCEL.with(|s| {
        s.borrow()
            .last()
            .map(CancelToken::is_cancelled)
            .unwrap_or(false)
    })
}

/// A deterministic, seed-driven fault-injection plan.
///
/// Every decision is a pure function of `(seed, site, counter)` through
/// [`sprout_rng::hash3`], so a plan replays identically — a failing
/// sweep seed is a reproducible bug report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for all injection decisions.
    pub seed: u64,
    /// Probability that a metric evaluation's solve is forced to fail.
    pub solver_failure_rate: f64,
    /// Per-edge probability of corrupting a conductance to NaN.
    pub nan_conductance_rate: f64,
    /// Inject a degenerate sliver polygon into the back-converted shape.
    pub degenerate_polygon: bool,
    /// Force this stage's budget guard to fire immediately.
    pub timeout_stage: Option<Stage>,
    /// Per-rail probability that a supervisor worker panics outright
    /// before routing (exercises the `catch_unwind` isolation boundary;
    /// ignored by `route_net`, which runs no worker).
    pub worker_panic_rate: f64,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a sweep baseline).
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            solver_failure_rate: 0.0,
            nan_conductance_rate: 0.0,
            degenerate_polygon: false,
            timeout_stage: None,
            worker_panic_rate: 0.0,
        }
    }

    /// Derives a mixed fault scenario from a sweep seed: failure rates,
    /// the sliver bit, and the timed-out stage all come out of the hash,
    /// so consecutive seeds exercise different fault combinations.
    pub fn for_scenario(seed: u64) -> Self {
        let h = hash3(seed, 0xFA17, 0);
        let byte = |shift: u32| ((h >> shift) & 0xFF) as f64 / 255.0;
        FaultPlan {
            seed,
            solver_failure_rate: byte(0) * 0.35,
            nan_conductance_rate: byte(8) * 0.01,
            degenerate_polygon: (h >> 16) & 1 == 1,
            timeout_stage: match (h >> 17) & 0b11 {
                0 => Some(Stage::Grow),
                1 => Some(Stage::Refine),
                2 => Some(Stage::Reheat),
                _ => None,
            },
            // One scenario in four panics a subset of worker rails.
            worker_panic_rate: if (h >> 19) & 0b11 == 0 { 0.5 } else { 0.0 },
        }
    }

    /// Deterministic per-rail draw of the "this worker panics" decision.
    /// A pure function of `(seed, rail_index)` — independent of thread
    /// count, retry attempt, and routing progress, so an injected panic
    /// replays identically on resume.
    pub fn worker_panics(&self, rail_index: usize) -> bool {
        self.worker_panic_rate > 0.0
            && u64_to_f64(hash3(self.seed, SITE_PANIC, rail_index as u64)) < self.worker_panic_rate
    }
}

struct FaultFrame {
    plan: FaultPlan,
    counter: u64,
}

thread_local! {
    static FAULTS: RefCell<Vec<FaultFrame>> = const { RefCell::new(Vec::new()) };
    static EVENTS: RefCell<Vec<Vec<SolverEvent>>> = const { RefCell::new(Vec::new()) };
    static CANCEL: RefCell<Vec<CancelToken>> = const { RefCell::new(Vec::new()) };
}

/// Activates a [`FaultPlan`] on the current thread for the guard's
/// lifetime. Scopes nest; the innermost plan wins. The router installs
/// one automatically when
/// [`RecoveryConfig::fault`] is set — direct use is only needed when
/// driving pipeline stages by hand in tests.
pub struct FaultScope(());

impl FaultScope {
    /// Installs `plan`; faults deactivate when the guard drops.
    pub fn install(plan: FaultPlan) -> FaultScope {
        FAULTS.with(|s| s.borrow_mut().push(FaultFrame { plan, counter: 0 }));
        FaultScope(())
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        FAULTS.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

fn with_fault<T>(f: impl FnOnce(&mut FaultFrame) -> T) -> Option<T> {
    FAULTS.with(|s| s.borrow_mut().last_mut().map(f))
}

const SITE_SOLVER: u64 = 1;
const SITE_NAN: u64 = 2;
const SITE_PANIC: u64 = 3;

/// Draws the "force this solve to fail" decision. One draw per metric
/// evaluation.
pub(crate) fn fault_solver_failure() -> bool {
    with_fault(|f| {
        if f.plan.solver_failure_rate <= 0.0 {
            return false;
        }
        f.counter += 1;
        u64_to_f64(hash3(f.plan.seed, SITE_SOLVER, f.counter)) < f.plan.solver_failure_rate
    })
    .unwrap_or(false)
}

/// Corrupts a deterministic subset of conductances to NaN, returning how
/// many were hit.
pub(crate) fn fault_corrupt_conductances(edges: &mut [(usize, usize, f64)]) -> usize {
    with_fault(|f| {
        if f.plan.nan_conductance_rate <= 0.0 {
            return 0;
        }
        f.counter += 1;
        let call = f.counter;
        let mut hit = 0usize;
        for (i, e) in edges.iter_mut().enumerate() {
            if u64_to_f64(hash3(f.plan.seed, SITE_NAN ^ (call << 20), i as u64))
                < f.plan.nan_conductance_rate
            {
                e.2 = f64::NAN;
                hit += 1;
            }
        }
        hit
    })
    .unwrap_or(0)
}

/// `true` when the active plan forces `stage` to time out.
pub(crate) fn fault_timeout(stage: Stage) -> bool {
    with_fault(|f| f.plan.timeout_stage == Some(stage)).unwrap_or(false)
}

/// `true` when the active plan wants a degenerate sliver injected into
/// the back-converted shape.
pub(crate) fn fault_degenerate_polygon() -> bool {
    with_fault(|f| f.plan.degenerate_polygon).unwrap_or(false)
}

/// Solver-side events reported by metric evaluation and drained into
/// [`RouteDiagnostics`] by the router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum SolverEvent {
    Fallback(Rung),
    Sanitized(usize),
}

/// Collects [`SolverEvent`]s on the current thread while alive. Without
/// an installed scope, events are discarded (library users calling
/// [`crate::current::node_current`] directly lose nothing but
/// telemetry).
pub(crate) struct EventScope(());

impl EventScope {
    pub(crate) fn install() -> EventScope {
        EVENTS.with(|s| s.borrow_mut().push(Vec::new()));
        EventScope(())
    }
}

impl Drop for EventScope {
    fn drop(&mut self) {
        EVENTS.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Reports a solver event to the innermost scope, if any.
pub(crate) fn note_event(e: SolverEvent) {
    EVENTS.with(|s| {
        if let Some(top) = s.borrow_mut().last_mut() {
            top.push(e);
        }
    });
}

fn drain_events() -> Vec<SolverEvent> {
    EVENTS.with(|s| {
        s.borrow_mut()
            .last_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostics_counters_track_records() {
        let mut d = RouteDiagnostics::default();
        assert!(d.is_clean());
        d.record(Degradation::SolverFallback {
            stage: Stage::Grow,
            rung: Rung::ConjugateGradient,
        });
        d.record(Degradation::EdgesSanitized {
            stage: Stage::Refine,
            count: 3,
        });
        d.record(Degradation::StageSkipped {
            stage: Stage::Reheat,
        });
        d.record(Degradation::BudgetOverrun {
            stage: Stage::Grow,
            elapsed_ms: 12.0,
            solves: 40,
        });
        assert_eq!(d.solver_fallbacks, 1);
        assert_eq!(d.edges_sanitized, 3);
        assert_eq!(d.stages_skipped, 1);
        assert_eq!(d.budget_overruns, 1);
        assert_eq!(d.degradations.len(), 4);
        assert!(!d.is_clean());
    }

    #[test]
    fn fault_plans_are_deterministic_and_varied() {
        let a = FaultPlan::for_scenario(7);
        let b = FaultPlan::for_scenario(7);
        assert_eq!(a, b);
        // Across a seed range, the sweep must cover all fault kinds.
        let plans: Vec<FaultPlan> = (0..64).map(FaultPlan::for_scenario).collect();
        assert!(plans.iter().any(|p| p.solver_failure_rate > 0.1));
        assert!(plans.iter().any(|p| p.nan_conductance_rate > 0.001));
        assert!(plans.iter().any(|p| p.degenerate_polygon));
        assert!(plans.iter().any(|p| p.timeout_stage.is_some()));
        assert!(plans.iter().any(|p| p.timeout_stage.is_none()));
    }

    #[test]
    fn fault_scope_activates_and_deactivates() {
        assert!(!fault_solver_failure(), "no scope: never fires");
        {
            let _scope = FaultScope::install(FaultPlan {
                solver_failure_rate: 1.0,
                ..FaultPlan::quiet(1)
            });
            assert!(fault_solver_failure(), "rate 1.0 always fires");
        }
        assert!(!fault_solver_failure(), "scope dropped");
    }

    #[test]
    fn fault_draws_replay_identically() {
        let plan = FaultPlan {
            solver_failure_rate: 0.5,
            ..FaultPlan::quiet(42)
        };
        let run = || {
            let _scope = FaultScope::install(plan);
            (0..32).map(|_| fault_solver_failure()).collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x), "rate 0.5 fires sometimes");
        assert!(a.iter().any(|&x| !x), "rate 0.5 spares sometimes");
    }

    #[test]
    fn nan_corruption_is_deterministic() {
        let plan = FaultPlan {
            nan_conductance_rate: 0.3,
            ..FaultPlan::quiet(9)
        };
        let run = || {
            let _scope = FaultScope::install(plan);
            let mut edges: Vec<(usize, usize, f64)> = (0..50).map(|i| (i, i + 1, 1.0)).collect();
            let hit = fault_corrupt_conductances(&mut edges);
            (hit, edges.iter().map(|e| e.2.is_nan()).collect::<Vec<_>>())
        };
        let (hit_a, mask_a) = run();
        let (hit_b, mask_b) = run();
        assert_eq!(hit_a, hit_b);
        assert_eq!(mask_a, mask_b);
        assert!(hit_a > 0, "rate 0.3 over 50 edges must hit");
        assert!(hit_a < 50, "rate 0.3 must not hit everything");
    }

    #[test]
    fn guard_fires_on_solve_budget() {
        let budget = StageBudget {
            wall_clock_ms: f64::INFINITY,
            max_solves: 10,
        };
        let guard = StageGuard::begin(Stage::Grow, budget, 100);
        assert!(guard.over_budget(105).is_none());
        match guard.over_budget(111) {
            Some(Degradation::BudgetOverrun { stage, solves, .. }) => {
                assert_eq!(stage, Stage::Grow);
                assert_eq!(solves, 11);
            }
            other => panic!("expected overrun, got {other:?}"),
        }
    }

    #[test]
    fn forced_timeout_fires_immediately() {
        let plan = FaultPlan {
            timeout_stage: Some(Stage::Refine),
            ..FaultPlan::quiet(3)
        };
        let _scope = FaultScope::install(plan);
        let guard = StageGuard::begin(Stage::Refine, StageBudget::default(), 0);
        assert!(guard.over_budget(0).is_some());
        let other = StageGuard::begin(Stage::Grow, StageBudget::default(), 0);
        assert!(other.over_budget(0).is_none(), "only the named stage");
    }

    #[test]
    fn cancel_token_is_shared_and_scoped() {
        assert!(!cancel_requested(), "no scope: never cancelled");
        let token = CancelToken::new();
        let clone = token.clone();
        {
            let _scope = CancelScope::install(token.clone());
            assert!(!cancel_requested());
            clone.cancel();
            assert!(token.is_cancelled(), "clones share the flag");
            assert!(cancel_requested());
        }
        assert!(!cancel_requested(), "scope dropped");
    }

    #[test]
    fn worker_panic_draw_is_deterministic_per_rail() {
        let plan = FaultPlan {
            worker_panic_rate: 0.5,
            ..FaultPlan::quiet(21)
        };
        let a: Vec<bool> = (0..32).map(|i| plan.worker_panics(i)).collect();
        let b: Vec<bool> = (0..32).map(|i| plan.worker_panics(i)).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x), "rate 0.5 hits some rails");
        assert!(a.iter().any(|&x| !x), "rate 0.5 spares some rails");
        assert!(
            !FaultPlan::quiet(21).worker_panics(0),
            "quiet plans never panic"
        );
        // The sweep generator must produce both panicking and quiet
        // scenarios.
        let plans: Vec<FaultPlan> = (0..64).map(FaultPlan::for_scenario).collect();
        assert!(plans.iter().any(|p| p.worker_panic_rate > 0.0));
        assert!(plans.iter().any(|p| p.worker_panic_rate == 0.0));
    }

    #[test]
    fn event_channel_collects_within_scope() {
        note_event(SolverEvent::Sanitized(1)); // no scope: dropped
        let _scope = EventScope::install();
        note_event(SolverEvent::Fallback(Rung::RegularizedCholesky));
        note_event(SolverEvent::Sanitized(2));
        let mut d = RouteDiagnostics::default();
        d.absorb_events(Stage::Refine);
        assert_eq!(d.solver_fallbacks, 1);
        assert_eq!(d.edges_sanitized, 2);
        // Drained: a second absorb adds nothing.
        d.absorb_events(Stage::Refine);
        assert_eq!(d.degradations.len(), 2);
    }
}
