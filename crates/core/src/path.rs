//! Shortest-path algorithms over the routing graph (§II-C).
//!
//! The paper's seed stage cites Dijkstra \[25\] and Bellman–Ford \[26\], and
//! §II-H notes A* \[30\] as a drop-in acceleration. All three are
//! implemented here; they agree on path lengths (a test invariant) and
//! Dijkstra is the default.

use crate::graph::{NodeId, RoutingGraph};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Edge traversal cost: centre-to-centre distance of the two tiles (mm),
/// so "shortest" means geometrically shortest.
fn edge_cost(graph: &RoutingGraph, a: NodeId, b: NodeId) -> f64 {
    graph.node(a).center().distance(graph.node(b).center())
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| self.node.cmp(&other.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A found path with its total cost (mm).
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Nodes from source to destination, inclusive.
    pub nodes: Vec<NodeId>,
    /// Total cost (mm).
    pub cost: f64,
}

/// Dijkstra from `source` to the *nearest* node of `targets`.
///
/// Returns `None` if no target is reachable. Used by the seed stage
/// (Algorithm 2) to connect each terminal to the rest.
pub fn dijkstra_to_nearest(
    graph: &RoutingGraph,
    source: NodeId,
    targets: &[NodeId],
) -> Option<Path> {
    if targets.contains(&source) {
        return Some(Path {
            nodes: vec![source],
            cost: 0.0,
        });
    }
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut target_set = vec![false; n];
    for &t in targets {
        target_set[t.index()] = true;
    }
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        cost: 0.0,
        node: source,
    });
    while let Some(HeapEntry { cost, node }) = heap.pop() {
        if cost > dist[node.index()] {
            continue;
        }
        if target_set[node.index()] {
            return Some(reconstruct(&prev, source, node, cost));
        }
        for &(next, _) in graph.neighbors(node) {
            let c = cost + edge_cost(graph, node, next);
            if c < dist[next.index()] {
                dist[next.index()] = c;
                prev[next.index()] = Some(node);
                heap.push(HeapEntry {
                    cost: c,
                    node: next,
                });
            }
        }
    }
    None
}

/// A* from `source` to a single `target` with the Euclidean heuristic.
pub fn astar(graph: &RoutingGraph, source: NodeId, target: NodeId) -> Option<Path> {
    if source == target {
        return Some(Path {
            nodes: vec![source],
            cost: 0.0,
        });
    }
    let goal = graph.node(target).center();
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        cost: graph.node(source).center().distance(goal),
        node: source,
    });
    while let Some(HeapEntry { cost: _, node }) = heap.pop() {
        if node == target {
            return Some(reconstruct(&prev, source, target, dist[target.index()]));
        }
        let here = dist[node.index()];
        for &(next, _) in graph.neighbors(node) {
            let c = here + edge_cost(graph, node, next);
            if c < dist[next.index()] {
                dist[next.index()] = c;
                prev[next.index()] = Some(node);
                heap.push(HeapEntry {
                    cost: c + graph.node(next).center().distance(goal),
                    node: next,
                });
            }
        }
    }
    None
}

/// Bellman–Ford single-source distances (kept for parity with the
/// paper's citation; `O(V·E)` so only sensible on small graphs).
///
/// Returns per-node distances from `source` (infinity when unreachable).
pub fn bellman_ford(graph: &RoutingGraph, source: NodeId) -> Vec<f64> {
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    dist[source.index()] = 0.0;
    for _ in 0..n.saturating_sub(1) {
        let mut changed = false;
        for e in graph.edges() {
            let c = edge_cost(graph, e.a, e.b);
            if dist[e.a.index()] + c < dist[e.b.index()] {
                dist[e.b.index()] = dist[e.a.index()] + c;
                changed = true;
            }
            if dist[e.b.index()] + c < dist[e.a.index()] {
                dist[e.a.index()] = dist[e.b.index()] + c;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

fn reconstruct(prev: &[Option<NodeId>], source: NodeId, target: NodeId, cost: f64) -> Path {
    let mut nodes = vec![target];
    let mut cur = target;
    while cur != source {
        cur = prev[cur.index()].expect("path reconstruction follows predecessors");
        nodes.push(cur);
    }
    nodes.reverse();
    Path { nodes, cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SpaceSpec;
    use crate::tile::{space_to_graph, TileOptions};
    use sprout_board::presets;

    fn graph() -> RoutingGraph {
        let board = presets::two_rail();
        let (vdd1, _) = board.power_nets().next().unwrap();
        let spec = SpaceSpec::build(&board, vdd1, presets::TWO_RAIL_ROUTE_LAYER, &[]).unwrap();
        space_to_graph(&spec, TileOptions::square(0.5)).unwrap()
    }

    #[test]
    fn trivial_path_to_self() {
        let g = graph();
        let s = NodeId(0);
        let p = dijkstra_to_nearest(&g, s, &[s]).unwrap();
        assert_eq!(p.nodes, vec![s]);
        assert_eq!(p.cost, 0.0);
        let a = astar(&g, s, s).unwrap();
        assert_eq!(a.cost, 0.0);
    }

    #[test]
    fn dijkstra_path_is_contiguous() {
        let g = graph();
        let s = g.node_near(sprout_geom::Point::new(2.5, 4.5), 3).unwrap();
        let t = g.node_near(sprout_geom::Point::new(20.0, 11.0), 3).unwrap();
        let p = dijkstra_to_nearest(&g, s, &[t]).unwrap();
        assert_eq!(*p.nodes.first().unwrap(), s);
        assert_eq!(*p.nodes.last().unwrap(), t);
        for w in p.nodes.windows(2) {
            assert!(
                g.neighbors(w[0]).iter().any(|&(n, _)| n == w[1]),
                "consecutive path nodes must be adjacent"
            );
        }
        // The cost is at least the straight-line distance.
        let straight = g.node(s).center().distance(g.node(t).center());
        assert!(p.cost >= straight - 1e-9);
    }

    #[test]
    fn dijkstra_picks_nearest_target() {
        let g = graph();
        let s = g.node_near(sprout_geom::Point::new(2.5, 4.5), 3).unwrap();
        let near = g.node_near(sprout_geom::Point::new(5.0, 4.5), 3).unwrap();
        let far = g.node_near(sprout_geom::Point::new(21.0, 14.0), 3).unwrap();
        let p = dijkstra_to_nearest(&g, s, &[far, near]).unwrap();
        assert_eq!(*p.nodes.last().unwrap(), near);
    }

    #[test]
    fn astar_matches_dijkstra_cost() {
        let g = graph();
        let s = g.node_near(sprout_geom::Point::new(2.5, 4.5), 3).unwrap();
        let t = g.node_near(sprout_geom::Point::new(19.0, 11.5), 3).unwrap();
        let d = dijkstra_to_nearest(&g, s, &[t]).unwrap();
        let a = astar(&g, s, t).unwrap();
        assert!(
            (d.cost - a.cost).abs() < 1e-9,
            "dijkstra {} vs a* {}",
            d.cost,
            a.cost
        );
    }

    #[test]
    fn bellman_ford_matches_dijkstra() {
        // Small coarse graph to keep O(V·E) affordable.
        let board = presets::two_rail();
        let (vdd1, _) = board.power_nets().next().unwrap();
        let spec = SpaceSpec::build(&board, vdd1, presets::TWO_RAIL_ROUTE_LAYER, &[]).unwrap();
        let g = space_to_graph(&spec, TileOptions::square(1.2)).unwrap();
        let s = NodeId(0);
        let bf = bellman_ford(&g, s);
        for t in [NodeId(5), NodeId((g.node_count() - 1) as u32)] {
            if let Some(p) = dijkstra_to_nearest(&g, s, &[t]) {
                assert!(
                    (bf[t.index()] - p.cost).abs() < 1e-9,
                    "bf {} vs dijkstra {}",
                    bf[t.index()],
                    p.cost
                );
            }
        }
    }

    #[test]
    fn unreachable_targets_return_none() {
        let g = graph();
        let s = NodeId(0);
        assert!(dijkstra_to_nearest(&g, s, &[]).is_none());
    }

    #[test]
    fn path_avoids_blockage() {
        let g = graph();
        // Source left of the blockage, target right of it, both at the
        // blockage's mid-height: the path must detour around
        // (9.5..13 × 6..10).
        let s = g.node_near(sprout_geom::Point::new(8.0, 8.0), 3).unwrap();
        let t = g.node_near(sprout_geom::Point::new(15.0, 8.0), 3).unwrap();
        let p = dijkstra_to_nearest(&g, s, &[t]).unwrap();
        let straight = g.node(s).center().distance(g.node(t).center());
        assert!(
            p.cost > straight * 1.15,
            "path must detour, cost {}",
            p.cost
        );
        for &n in &p.nodes {
            let c = g.node(n).center();
            let inside_blockage = c.x > 9.5 && c.x < 13.0 && c.y > 6.0 && c.y < 10.0;
            assert!(!inside_blockage, "path crosses the blockage at {c}");
        }
    }
}
